"""Figure series containers: named (x, y) curves plus derived metrics.

Each benchmark builds one :class:`FigureSeries` per plotted line and uses
the helpers here for the quantities the paper annotates (speedups,
ratios, crossover points).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

__all__ = ["FigureSeries", "speedup_series", "crossover", "sparkline"]

#: Eight-level block glyphs used by :func:`sparkline`, lowest first.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


@dataclass
class FigureSeries:
    """One curve of a figure."""

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append a point (x must be non-decreasing)."""
        if self.x and x < self.x[-1]:
            raise ValueError(f"{self.name}: x must be non-decreasing")
        self.x.append(float(x))
        self.y.append(float(y))

    def at(self, x: float) -> float:
        """y at an exact recorded x."""
        try:
            return self.y[self.x.index(float(x))]
        except ValueError:
            raise KeyError(f"{self.name}: no point at x={x}") from None

    def ratio_to(self, other: "FigureSeries") -> "FigureSeries":
        """Pointwise other/self ratio (i.e. speedup of self vs other)."""
        if self.x != other.x:
            raise ValueError("series have different x grids")
        out = FigureSeries(f"{other.name}/{self.name}")
        for x, a, b in zip(self.x, self.y, other.y):
            out.add(x, b / a)
        return out

    def rows(self) -> list[tuple[float, float]]:
        return list(zip(self.x, self.y))


def sparkline(values: _t.Sequence[float],
              marks: _t.Collection[int] = ()) -> str:
    """Render a metric history as a one-line unicode sparkline.

    Values are scaled to the eight :data:`SPARK_BLOCKS` levels between
    the series min and max.  An empty series renders as the empty
    string; a single point (or a zero-range series) renders at the
    middle level.  Indices in ``marks`` (e.g. changepoints) are rendered
    as ``|`` regardless of their value, so a step reads ``▁▁▁|██``.
    """
    if not values:
        return ""
    vals = [float(v) for v in values]
    lo, hi = min(vals), max(vals)
    span = hi - lo
    mid = SPARK_BLOCKS[len(SPARK_BLOCKS) // 2]
    marked = set(marks)
    out = []
    for i, v in enumerate(vals):
        if i in marked:
            out.append("|")
        elif span <= 0:
            out.append(mid)
        else:
            level = int((v - lo) / span * (len(SPARK_BLOCKS) - 1))
            out.append(SPARK_BLOCKS[level])
    return "".join(out)


def speedup_series(baseline: FigureSeries,
                   candidate: FigureSeries) -> FigureSeries:
    """Speedup of ``candidate`` over ``baseline`` at each x."""
    return candidate.ratio_to(baseline)


def crossover(a: FigureSeries, b: FigureSeries) -> float | None:
    """First x where the sign of (a - b) changes; ``None`` if it never
    does.  Linear interpolation between grid points."""
    if a.x != b.x:
        raise ValueError("series have different x grids")
    diffs = [ya - yb for ya, yb in zip(a.y, b.y)]
    for i in range(1, len(diffs)):
        if diffs[i - 1] == 0:
            return a.x[i - 1]
        if diffs[i - 1] * diffs[i] < 0:
            x0, x1 = a.x[i - 1], a.x[i]
            d0, d1 = diffs[i - 1], diffs[i]
            return x0 + (x1 - x0) * (-d0) / (d1 - d0)
    return None
