"""Plain-text table rendering for the benchmark harness.

Every benchmark prints the rows/series of its figure with these helpers,
so ``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
evaluation as readable text.
"""

from __future__ import annotations

import typing as _t

__all__ = ["render_table", "format_seconds", "format_count",
           "render_metrics_table"]


def format_seconds(t: float) -> str:
    """Human-scaled time formatting."""
    if t >= 100:
        return f"{t:.1f} s"
    if t >= 1:
        return f"{t:.3f} s"
    if t >= 1e-3:
        return f"{t * 1e3:.3f} ms"
    return f"{t * 1e6:.1f} us"


def format_count(n: float) -> str:
    """Compact counts (1.5e9 style for large values)."""
    if n >= 1e6:
        return f"{n:.3g}"
    return f"{n:,.0f}" if float(n).is_integer() else f"{n:,.3f}"


def render_table(headers: _t.Sequence[str],
                 rows: _t.Sequence[_t.Sequence],
                 title: str | None = None,
                 align_right: bool = True) -> str:
    """Render an aligned monospace table.

    >>> print(render_table(["a", "b"], [[1, 2.5], [10, 3.25]]))
     a     b
    --  ----
     1   2.5
    10  3.25
    """
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([c if isinstance(c, str) else f"{c:g}" if
                      isinstance(c, float) else str(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    pad = (str.rjust if align_right else str.ljust)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(pad(c, w) for c, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(pad(c, w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_bytes_per_s(rate: float) -> str:
    if rate >= 1e9:
        return f"{rate / 1e9:.2f} GB/s"
    if rate >= 1e6:
        return f"{rate / 1e6:.2f} MB/s"
    return f"{rate:.0f} B/s"


def render_metrics_table(metrics: dict) -> str:
    """Render a run's observability metrics (``SortResult.metrics``) as
    stacked text tables: headline numbers, per-lane utilisation, the
    category-overlap matrix, link throughput and counter summaries."""
    blocks: list[str] = []

    headline = [
        ["makespan", format_seconds(metrics.get("makespan_s", 0.0))],
        ["elapsed (end-to-end)", format_seconds(metrics.get("elapsed_s", 0.0))],
        ["critical path (lower bound)",
         format_seconds(metrics.get("critical_path_s", 0.0))],
        ["overlap efficiency",
         f"{metrics.get('overlap_efficiency', 1.0):.3f}"],
        ["stretch over critical path",
         f"{metrics.get('stretch', 1.0):.3f}"],
        ["related-work end-to-end",
         format_seconds(metrics.get("related_work_end_to_end_s", 0.0))],
        ["missing overhead",
         format_seconds(metrics.get("missing_overhead_s", 0.0))],
    ]
    blocks.append(render_table(["metric", "value"], headline,
                               title="run metrics", align_right=False))

    lanes = metrics.get("lanes", {})
    if lanes:
        rows = [[lane or "(main)", format_seconds(m["busy_s"]),
                 format_seconds(m["idle_s"]), f"{m['utilization']:.3f}",
                 m["bubbles"], format_seconds(m["bubble_s"])]
                for lane, m in lanes.items()]
        blocks.append(render_table(
            ["lane", "busy", "idle", "util", "bubbles", "bubble time"],
            rows, title="per-lane utilization"))

    matrix = metrics.get("overlap_matrix", {})
    if matrix:
        cats = list(matrix)
        rows = [[a] + [format_seconds(matrix[a][b]) for b in cats]
                for a in cats]
        blocks.append(render_table(
            ["overlap [s]"] + cats, rows,
            title="category-overlap matrix (diagonal = busy time)"))

    links = metrics.get("links", {})
    if links:
        rows = [[cat, format_count(m["bytes"]),
                 format_seconds(m["busy_s"]),
                 _format_bytes_per_s(m["bytes_per_s"])]
                for cat, m in links.items()]
        blocks.append(render_table(["link", "bytes", "busy", "goodput"],
                                   rows, title="link throughput"))

    counters = metrics.get("counters", {})
    if counters:
        rows = [[name, m["samples"], f"{m['last']:g}", f"{m['max']:g}",
                 f"{m['mean']:.3f}"]
                for name, m in counters.items()]
        blocks.append(render_table(
            ["counter", "samples", "last", "max", "time-wtd mean"],
            rows, title="live counters"))

    return "\n\n".join(blocks)
