"""Plain-text table rendering for the benchmark harness.

Every benchmark prints the rows/series of its figure with these helpers,
so ``pytest benchmarks/ --benchmark-only -s`` regenerates the paper's
evaluation as readable text.
"""

from __future__ import annotations

import typing as _t

__all__ = ["render_table", "format_seconds", "format_count"]


def format_seconds(t: float) -> str:
    """Human-scaled time formatting."""
    if t >= 100:
        return f"{t:.1f} s"
    if t >= 1:
        return f"{t:.3f} s"
    if t >= 1e-3:
        return f"{t * 1e3:.3f} ms"
    return f"{t * 1e6:.1f} us"


def format_count(n: float) -> str:
    """Compact counts (1.5e9 style for large values)."""
    if n >= 1e6:
        return f"{n:.3g}"
    return f"{n:,.0f}" if float(n).is_integer() else f"{n:,.3f}"


def render_table(headers: _t.Sequence[str],
                 rows: _t.Sequence[_t.Sequence],
                 title: str | None = None,
                 align_right: bool = True) -> str:
    """Render an aligned monospace table.

    >>> print(render_table(["a", "b"], [[1, 2.5], [10, 3.25]]))
     a     b
    --  ----
     1   2.5
    10  3.25
    """
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([c if isinstance(c, str) else f"{c:g}" if
                      isinstance(c, float) else str(c) for c in row])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    pad = (str.rjust if align_right else str.ljust)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(pad(c, w) for c, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(pad(c, w) for c, w in zip(row, widths)))
    return "\n".join(lines)
