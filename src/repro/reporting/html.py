"""Self-contained HTML dashboard for a sweep ledger (inline SVG, no
external dependencies).

:func:`render_dashboard` turns ledger records plus their
:func:`repro.obs.conformance.conformance_summary` into one HTML file a
browser can open offline:

* stat tiles (runs, groups, anomalies, mean model/measured);
* a Fig. 11-style measured-vs-model scatter per (platform, n_gpus,
  approach) group, with the fitted line, the lower-bound model line and
  -- where the paper reports one -- the paper's slope as a reference;
* a Fig. 8-style missing-overhead chart (related-work accounting vs.
  full end-to-end, gap shaded);
* residual-by-category stacked bars (each run's model-vs-measured gap,
  attributed along the causal critical path -- segments sum exactly to
  the gap);
* an anomaly table linking to per-run critical-path details, and a full
  ledger table as the accessible table-view twin of every chart.

Charts follow a small fixed spec: thin marks, hairline solid gridlines,
a legend for multi-series panels, hover tooltips (enhance, never gate --
every value is also in the tables), text in ink tokens rather than
series colors, and a dark mode selected via ``prefers-color-scheme``.
The categorical palette and its slot order are CVD-validated; values are
documented in the palette table below.
"""

from __future__ import annotations

import html as _html
import typing as _t

__all__ = ["render_dashboard", "write_dashboard",
           "render_trend_dashboard", "write_trend_dashboard",
           "render_memory_dashboard", "write_memory_dashboard",
           "render_flows_dashboard", "write_flows_dashboard"]

# Categorical palette (validated slot order; light / dark pairs).
_SERIES_LIGHT = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                 "#e87ba4", "#008300", "#4a3aa7", "#e34948"]
_SERIES_DARK = ["#3987e5", "#d95926", "#199e70", "#c98500",
                "#d55181", "#008300", "#9085e9", "#e66767"]

#: Fixed category -> palette-slot order for the residual stacks (the
#: stack order is also the adjacency the palette was validated for).
_STACK_CATEGORIES = ["GPUSort", "HtoD", "DtoH", "MCpy", "Sync",
                     "PinnedAlloc", "(wait)"]

_CSS = """
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --good: #0ca30c; --critical: #d03b3b;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
  background: var(--page); color: var(--ink-1);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --border: rgba(255,255,255,0.10);
    --good: #0ca30c; --critical: #d03b3b;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
  }
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 8px; }
.viz-root .sub { color: var(--ink-2); margin: 0 0 16px; }
.viz-root .note { color: var(--ink-3); font-size: 12px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile { background: var(--surface-1); border: 1px solid var(--border);
        border-radius: 8px; padding: 10px 16px; min-width: 120px; }
.tile .label { font-size: 12px; color: var(--ink-2); }
.tile .value { font-size: 26px; font-weight: 600; }
.tile .value.bad { color: var(--critical); }
.tile .value.ok { color: var(--good); }
.cards { display: flex; flex-wrap: wrap; gap: 16px; }
.card { background: var(--surface-1); border: 1px solid var(--border);
        border-radius: 8px; padding: 12px 14px; }
.card h3 { font-size: 13px; margin: 0 0 2px; }
.card .sub { font-size: 12px; margin: 0 0 6px; }
.legend { display: flex; flex-wrap: wrap; gap: 12px; font-size: 12px;
          color: var(--ink-2); margin: 6px 0; align-items: center; }
.legend .key { display: inline-flex; align-items: center; gap: 5px; }
.legend .swatch { width: 10px; height: 10px; border-radius: 2px;
                  display: inline-block; }
.legend .linekey { width: 14px; height: 2px; display: inline-block; }
table.viz { border-collapse: collapse; background: var(--surface-1);
            border: 1px solid var(--border); border-radius: 8px;
            font-size: 13px; }
table.viz th, table.viz td { padding: 5px 10px; text-align: right;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
table.viz th { color: var(--ink-2); font-weight: 600; }
table.viz td.l, table.viz th.l { text-align: left;
  font-variant-numeric: normal; }
.chip { display: inline-flex; align-items: center; gap: 4px;
        font-size: 12px; font-weight: 600; }
.chip.bad { color: var(--critical); }
.chip.ok { color: var(--good); }
.runs details { margin: 4px 0; }
.runs summary { cursor: pointer; color: var(--ink-2); }
svg text { fill: var(--ink-3); font: 11px system-ui, sans-serif; }
svg text.lab { fill: var(--ink-2); }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--axis); stroke-width: 1; }
#tip { position: fixed; pointer-events: none; display: none;
  background: var(--surface-1); color: var(--ink-1);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 6px 9px; font-size: 12px; white-space: pre-line;
  box-shadow: 0 2px 8px rgba(0,0,0,0.18); z-index: 10; max-width: 320px; }
[data-tip] { cursor: default; }
"""

_TIP_JS = """
(function () {
  var tip = document.getElementById('tip');
  function show(el, x, y) {
    tip.textContent = el.getAttribute('data-tip');
    tip.style.display = 'block';
    var pad = 14, w = tip.offsetWidth, h = tip.offsetHeight;
    var left = Math.min(x + pad, window.innerWidth - w - 6);
    var top = y + pad + h > window.innerHeight ? y - h - 6 : y + pad;
    tip.style.left = left + 'px'; tip.style.top = top + 'px';
  }
  function hide() { tip.style.display = 'none'; }
  document.querySelectorAll('[data-tip]').forEach(function (el) {
    el.addEventListener('pointermove', function (ev) {
      show(el, ev.clientX, ev.clientY);
    });
    el.addEventListener('pointerleave', hide);
    el.addEventListener('focus', function () {
      var r = el.getBoundingClientRect();
      show(el, r.left + r.width / 2, r.top);
    });
    el.addEventListener('blur', hide);
  });
})();
"""


def _esc(s) -> str:
    return _html.escape(str(s), quote=True)


def _fmt_n(n: float) -> str:
    for unit, div in (("B", 1e9), ("M", 1e6), ("k", 1e3)):
        if abs(n) >= div:
            v = n / div
            return (f"{v:.0f}{unit}" if float(v).is_integer()
                    else f"{v:.3g}{unit}")
    return f"{n:g}"


def _fmt_s(t: float) -> str:
    if abs(t) >= 1:
        return f"{t:.3f} s"
    return f"{t * 1e3:.2f} ms"


def _fmt_b(nbytes: float) -> str:
    for unit, div in (("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if abs(nbytes) >= div:
            return f"{nbytes / div:.3g} {unit}"
    return f"{nbytes:g} B"


def _nice_ticks(lo: float, hi: float, n: int = 4) -> list[float]:
    """<= n+2 round tick positions covering [lo, hi] (1/2/5 ladder)."""
    if hi <= lo:
        return [lo]
    span = hi - lo
    raw = span / max(1, n)
    mag = 10 ** __import__("math").floor(__import__("math").log10(raw))
    step = next((m * mag for m in (1, 2, 5, 10) if m * mag >= raw),
                10 * mag)
    t = __import__("math").ceil(lo / step) * step
    out = []
    while t <= hi + 1e-12 * span:
        out.append(0.0 if abs(t) < step * 1e-9 else t)
        t += step
    return out or [lo]


class _Scale:
    """Linear data -> pixel mapping for one axis."""

    def __init__(self, lo: float, hi: float, a: float, b: float) -> None:
        self.lo, self.hi, self.a, self.b = lo, hi, a, b

    def __call__(self, v: float) -> float:
        if self.hi <= self.lo:
            return self.a
        f = (v - self.lo) / (self.hi - self.lo)
        return self.a + f * (self.b - self.a)


def _frame(sx: _Scale, sy: _Scale, *, x_time: bool = False,
           y_time: bool = True) -> list[str]:
    """Gridlines, axes and tick labels shared by every panel."""
    out = []
    for t in _nice_ticks(sy.lo, sy.hi):
        y = sy(t)
        out.append(f'<line class="grid" x1="{sx.a:.1f}" y1="{y:.1f}" '
                   f'x2="{sx.b:.1f}" y2="{y:.1f}"/>')
        lab = _fmt_s(t) if y_time else _fmt_n(t)
        out.append(f'<text x="{sx.a - 6:.1f}" y="{y + 3.5:.1f}" '
                   f'text-anchor="end">{lab}</text>')
    for t in _nice_ticks(sx.lo, sx.hi):
        x = sx(t)
        lab = _fmt_s(t) if x_time else _fmt_n(t)
        out.append(f'<text x="{x:.1f}" y="{sy.a + 16:.1f}" '
                   f'text-anchor="middle">{lab}</text>')
    out.append(f'<line class="axis" x1="{sx.a:.1f}" y1="{sy.a:.1f}" '
               f'x2="{sx.b:.1f}" y2="{sy.a:.1f}"/>')
    out.append(f'<line class="axis" x1="{sx.a:.1f}" y1="{sy.a:.1f}" '
               f'x2="{sx.a:.1f}" y2="{sy.b:.1f}"/>')
    return out


def _svg(width: int, height: int, body: _t.Iterable[str],
         label: str) -> str:
    return (f'<svg role="img" aria-label="{_esc(label)}" '
            f'width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            + "".join(body) + "</svg>")


def _poly(points: list[tuple[float, float]]) -> str:
    return " ".join(f"{x:.1f},{y:.1f}" for x, y in points)


# ---------------------------------------------------------------------------
# Panels
# ---------------------------------------------------------------------------

def _scatter_panel(key: str, group: dict, records: list[dict]) -> str:
    """Fig. 11-style measured vs. model scatter for one fit group."""
    from repro.obs.conformance import group_key
    recs = sorted((r for r in records if group_key(r) == key),
                  key=lambda r: r["conformance"]["n"])
    pts = [(r["conformance"]["n"], r["conformance"]["measured_s"], r)
           for r in recs]
    if not pts:
        return ""
    w, h, ml, mr, mt, mb = 380, 240, 64, 14, 14, 30
    nmax = max(n for n, _, _ in pts) * 1.05
    slope, icpt = group["fitted_slope"], group["fitted_intercept"]
    model_slope = group["model_slope"]
    paper_slope = group.get("paper_slope")
    ymax = max([t for _, t, _ in pts]
               + [icpt + slope * nmax, model_slope * nmax]
               + ([paper_slope * nmax] if paper_slope else [])) * 1.08
    sx = _Scale(0, nmax, ml, w - mr)
    sy = _Scale(0, ymax, h - mb, mt)
    body = _frame(sx, sy)
    # Reference/overlay lines: paper (muted), model (slot 3), fit (slot 2).
    if paper_slope:
        body.append(f'<line x1="{sx(0):.1f}" y1="{sy(0):.1f}" '
                    f'x2="{sx(nmax):.1f}" y2="{sy(paper_slope * nmax):.1f}"'
                    f' stroke="var(--ink-3)" stroke-width="1.5"/>')
    body.append(f'<line x1="{sx(0):.1f}" y1="{sy(0):.1f}" '
                f'x2="{sx(nmax):.1f}" y2="{sy(model_slope * nmax):.1f}" '
                f'stroke="var(--s3)" stroke-width="2" '
                f'stroke-linecap="round"/>')
    body.append(f'<line x1="{sx(0):.1f}" y1="{sy(icpt):.1f}" '
                f'x2="{sx(nmax):.1f}" y2="{sy(icpt + slope * nmax):.1f}" '
                f'stroke="var(--s2)" stroke-width="2" '
                f'stroke-linecap="round"/>')
    anom_ids = {a["run_id"] for a in group["anomalies"]}
    for n, t, rec in pts:
        c = rec["conformance"]
        tip = (f"{rec['run_id']}\nmeasured {_fmt_s(t)}\n"
               f"model {_fmt_s(c['predicted_s'])}\n"
               f"gap {_fmt_s(c['gap_s'])}  "
               f"model/measured {c['slowdown']:.3f}")
        ring = ('stroke="var(--critical)" stroke-width="2"'
                if rec["run_id"] in anom_ids
                else 'stroke="var(--surface-1)" stroke-width="2"')
        body.append(
            f'<circle cx="{sx(n):.1f}" cy="{sy(t):.1f}" r="4.5" '
            f'fill="var(--s1)" {ring} tabindex="0" '
            f'data-tip="{_esc(tip)}">'
            f'<title>{_esc(rec["run_id"])}</title></circle>')
    paper_txt = (f" &middot; paper slope {paper_slope * 1e9:.3f} ns/el"
                 if paper_slope else "")
    sub = (f"fit {slope * 1e9:.3f} ns/el, R&sup2; {group['r2']:.4f} "
           f"&middot; model {model_slope * 1e9:.3f} ns/el{paper_txt}")
    return (f'<div class="card"><h3>{_esc(key)}</h3>'
            f'<p class="sub">{sub}</p>'
            + _svg(w, h, body, f"measured vs model, {key}")
            + "</div>")


def _fig8_panel(records: list[dict]) -> str:
    """Missing-overhead growth: full end-to-end vs. related-work total,
    gap shaded (the Fig. 8 methodology) for the first blocking group
    with enough sizes."""
    from repro.obs.conformance import group_key
    groups: dict[str, list[dict]] = {}
    for r in records:
        if r["point"]["approach"] in ("bline", "blinemulti"):
            groups.setdefault(group_key(r), []).append(r)
    key = next((k for k in sorted(groups) if len(groups[k]) >= 2), None)
    if key is None:
        return ""
    recs = sorted(groups[key], key=lambda r: r["point"]["n"])
    xs = [r["point"]["n"] for r in recs]
    full = [r["measured"]["elapsed_s"] for r in recs]
    rel = [r["measured"]["related_work_s"] for r in recs]
    w, h, ml, mr, mt, mb = 520, 250, 64, 14, 14, 30
    sx = _Scale(0, max(xs) * 1.05, ml, w - mr)
    sy = _Scale(0, max(full) * 1.1, h - mb, mt)
    body = _frame(sx, sy)
    band = ([(sx(n), sy(t)) for n, t in zip(xs, full)]
            + [(sx(n), sy(t)) for n, t in zip(reversed(xs), reversed(rel))])
    body.append(f'<polygon points="{_poly(band)}" fill="var(--s1)" '
                f'opacity="0.10"/>')
    for series, slot in ((full, 1), (rel, 2)):
        line = [(sx(n), sy(t)) for n, t in zip(xs, series)]
        body.append(f'<polyline points="{_poly(line)}" fill="none" '
                    f'stroke="var(--s{slot})" stroke-width="2" '
                    f'stroke-linejoin="round" stroke-linecap="round"/>')
    for r, n, f_t, r_t in zip(recs, xs, full, rel):
        gap = r["measured"]["missing_overhead_s"]
        tip = (f"{r['run_id']}\nfull end-to-end {_fmt_s(f_t)}\n"
               f"related-work total {_fmt_s(r_t)}\n"
               f"missing overhead {_fmt_s(gap)} "
               f"({gap / f_t:.0%} of the run)" if f_t > 0 else r["run_id"])
        for t, slot in ((f_t, 1), (r_t, 2)):
            body.append(
                f'<circle cx="{sx(n):.1f}" cy="{sy(t):.1f}" r="4" '
                f'fill="var(--s{slot})" stroke="var(--surface-1)" '
                f'stroke-width="2" tabindex="0" data-tip="{_esc(tip)}"/>')
    mid_i = len(xs) // 2
    gy = (sy(full[mid_i]) + sy(rel[mid_i])) / 2
    body.append(f'<text class="lab" x="{sx(xs[mid_i]) + 8:.1f}" '
                f'y="{gy:.1f}">missing overhead</text>')
    legend = ('<div class="legend">'
              '<span class="key"><span class="linekey" '
              'style="background:var(--s1)"></span>full end-to-end</span>'
              '<span class="key"><span class="linekey" '
              'style="background:var(--s2)"></span>related-work accounting '
              '(HtoD + DtoH + GPUSort)</span></div>')
    return (f'<div class="card"><h3>Missing overhead (Fig. 8) '
            f'&mdash; {_esc(key)}</h3>{legend}'
            + _svg(w, h, body, "missing overhead growth") + "</div>")


def _residual_panel(records: list[dict]) -> str:
    """Stacked per-run residual bars: the model-vs-measured gap split by
    category along the critical path (segments sum exactly to the gap)."""
    cats = list(_STACK_CATEGORIES)
    extra = sorted({c for r in records
                    for c in r["conformance"]["residuals"]
                    if c not in cats})
    cats += extra
    cats = cats[:8]            # palette slots; overflow folds below
    runs = list(records)
    bw, gap_px = 22, 14
    w = max(320, 70 + len(runs) * (bw + gap_px))
    h, ml, mt, mb = 260, 64, 14, 64
    lo = min(0.0, min(sum(v for v in r["conformance"]["residuals"]
                          .values() if v < 0) for r in runs))
    hi = max(0.0, max(sum(v for v in r["conformance"]["residuals"]
                          .values() if v > 0) for r in runs))
    sy = _Scale(lo, hi * 1.05 if hi else 1.0, h - mb, mt)
    body = []
    for t in _nice_ticks(sy.lo, sy.hi):
        y = sy(t)
        body.append(f'<line class="grid" x1="{ml}" y1="{y:.1f}" '
                    f'x2="{w - 10}" y2="{y:.1f}"/>')
        body.append(f'<text x="{ml - 6}" y="{y + 3.5:.1f}" '
                    f'text-anchor="end">{_fmt_s(t)}</text>')
    y0 = sy(0.0)
    body.append(f'<line class="axis" x1="{ml}" y1="{y0:.1f}" '
                f'x2="{w - 10}" y2="{y0:.1f}"/>')
    for i, rec in enumerate(runs):
        x = ml + 10 + i * (bw + gap_px)
        res = rec["conformance"]["residuals"]
        folded = dict.fromkeys(cats, 0.0)
        for c, v in res.items():
            folded[c if c in cats else cats[-1]] = \
                folded.get(c if c in cats else cats[-1], 0.0) + v
        up = down = 0.0
        for ci, cat in enumerate(cats):
            v = folded.get(cat, 0.0)
            if v == 0.0:
                continue
            if v > 0:
                y_top, y_bot = sy(up + v), sy(up)
                up += v
            else:
                y_top, y_bot = sy(down), sy(down + v)
                down += v
            hh = max(0.0, y_bot - y_top)
            inset = 1 if hh > 3 else 0
            tip = (f"{rec['run_id']}\n{cat}: {_fmt_s(v)} of "
                   f"{_fmt_s(rec['conformance']['gap_s'])} gap")
            body.append(
                f'<rect x="{x}" y="{y_top + inset:.1f}" width="{bw}" '
                f'height="{max(0.5, hh - 2 * inset):.1f}" rx="1.5" '
                f'fill="var(--s{ci + 1})" tabindex="0" '
                f'data-tip="{_esc(tip)}"/>')
        label = f"{rec['point']['approach']} {_fmt_n(rec['point']['n'])}"
        body.append(
            f'<text x="{x + bw / 2:.1f}" y="{h - mb + 14}" '
            f'text-anchor="end" transform="rotate(-35 {x + bw / 2:.1f} '
            f'{h - mb + 14})">{_esc(label)}</text>')
    legend = '<div class="legend">' + "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:var(--s{i + 1})"></span>{_esc(c)}</span>'
        for i, c in enumerate(cats)) + "</div>"
    return ('<div class="card"><h3>Model-vs-measured gap by category'
            '</h3><p class="sub">each bar is one run&rsquo;s gap to the '
            'lower-bound model, attributed along the causal critical '
            'path; segments sum exactly to the gap</p>'
            + legend + _svg(w, h, body, "residuals by category")
            + "</div>")


def _anomaly_table(summary: dict) -> str:
    anomalies = summary.get("anomalies", [])
    if not anomalies:
        return ('<p><span class="chip ok">&#10003; no anomalies</span> '
                '<span class="note">every run within '
                f'{summary.get("rel_tolerance", 0):.0%} of its group '
                'fit (z-threshold '
                f'{summary.get("z_threshold", 0):g})</span></p>')
    rows = []
    for a in anomalies:
        rid = _esc(a["run_id"])
        rows.append(
            "<tr>"
            f'<td class="l"><a href="#run-{rid}">{rid}</a></td>'
            f'<td class="l">{_esc(a["group"])}</td>'
            f'<td>{_fmt_n(a["n"])}</td>'
            f'<td>{_fmt_s(a["measured_s"])}</td>'
            f'<td>{_fmt_s(a["expected_s"])}</td>'
            f'<td>{a["deviation_s"] / a["expected_s"] * 100:+.1f}%</td>'
            f'<td>{a["z"]:+.2f}</td>'
            f'<td class="l"><span class="chip bad">&#9888; '
            f'{_esc(", ".join(a["flags"]))}</span></td></tr>')
    return ('<table class="viz"><thead><tr>'
            '<th class="l">run</th><th class="l">group</th><th>n</th>'
            '<th>measured</th><th>fit expects</th><th>deviation</th>'
            '<th>z</th><th class="l">flags</th></tr></thead><tbody>'
            + "".join(rows) + "</tbody></table>")


def _ledger_table(records: list[dict]) -> str:
    from repro.obs.conformance import group_key
    rows = []
    for r in records:
        c = r["conformance"]
        rid = _esc(r["run_id"])
        rows.append(
            "<tr>"
            f'<td class="l"><a href="#run-{rid}">{rid}</a></td>'
            f'<td class="l">{_esc(group_key(r))}</td>'
            f'<td>{_fmt_n(r["point"]["n"])}</td>'
            f'<td>{_fmt_s(c["measured_s"])}</td>'
            f'<td>{_fmt_s(c["predicted_s"])}</td>'
            f'<td>{_fmt_s(c["gap_s"])}</td>'
            f'<td>{c["slowdown"]:.3f}</td>'
            f'<td>{_fmt_s(r["measured"]["missing_overhead_s"])}</td>'
            "</tr>")
    return ('<table class="viz"><thead><tr>'
            '<th class="l">run</th><th class="l">group</th><th>n</th>'
            '<th>measured</th><th>model</th><th>gap</th>'
            '<th>model/measured</th><th>missing overhead</th>'
            '</tr></thead><tbody>' + "".join(rows) + "</tbody></table>")


def _run_details(records: list[dict]) -> str:
    blocks = []
    for r in records:
        rid = _esc(r["run_id"])
        cp = r["report"]["critical_path"]
        res = r["conformance"]["residuals"]
        cp_rows = "".join(
            f'<tr><td class="l">{_esc(c)}</td><td>{_fmt_s(v)}</td>'
            f'<td>{_fmt_s(res.get(c, 0.0))}</td></tr>'
            for c, v in cp["by_category"].items())
        blocks.append(
            f'<details id="run-{rid}"><summary>{rid} &mdash; critical '
            f'path {cp["n_spans"]} spans, wait {_fmt_s(cp["wait"])}'
            '</summary>'
            '<table class="viz"><thead><tr><th class="l">category</th>'
            '<th>on critical path</th><th>gap attribution</th></tr>'
            f'</thead><tbody>{cp_rows}</tbody></table></details>')
    return '<div class="runs">' + "".join(blocks) + "</div>"


def _paper_band_note(summary: dict) -> str:
    bands = summary.get("paper_bands", {})
    slope_band = bands.get("fig11_slope_rel", {})
    fig7 = bands.get("fig7_transfer_rel", {})
    parts = [
        "documented reproduction bands: "
        + ", ".join(f"Fig. 11 slope ({g} GPU) &plusmn;{tol:.0%}"
                    for g, tol in sorted(slope_band.items()))
        + "; "
        + ", ".join(f"Fig. 7 {k.split('_')[0]} &plusmn;{tol:.0%}"
                    for k, tol in sorted(fig7.items()))
    ]
    for key, g in summary.get("groups", {}).items():
        if g.get("model_vs_paper"):
            parts.append(f"{_esc(key)}: model slope is "
                         f"{g['model_vs_paper']:.3f}&times; the "
                         "paper&rsquo;s")
    return ('<p class="note">' + " &middot; ".join(parts) +
            " (asserted by tests/model/test_paper_band.py)</p>")


# ---------------------------------------------------------------------------
# Memory observatory panels (repro.memory/v1 ledger documents)
# ---------------------------------------------------------------------------

def _memory_pool_order(pools: _t.Mapping[str, dict]) -> list[str]:
    return sorted(pools, key=lambda p: (p == "pinned", p))


def _memory_panel(doc: dict) -> str:
    """Stacked occupancy-over-time SVG for one ``repro.memory/v1``
    ledger: one band per pool (device pools first, pinned on top) with a
    dashed high-watermark line per pool."""
    entries = doc.get("entries", [])
    pools = doc.get("pools", {})
    order = _memory_pool_order(pools)
    if not entries or not order:
        return ('<div class="card"><h3>Memory occupancy</h3>'
                '<p class="note">empty ledger &mdash; no allocations '
                'recorded</p></div>')
    times = sorted({e["t"] for e in entries})
    if times[0] > 0.0:
        times.insert(0, 0.0)
    # Balance of every pool at each event time (step function between).
    values = {p: [0] * len(times) for p in order}
    cur = dict.fromkeys(order, 0)
    j = 0
    for i, t in enumerate(times):
        while j < len(entries) and entries[j]["t"] <= t:
            cur[entries[j]["pool"]] = entries[j]["balance"]
            j += 1
        for p in order:
            values[p][i] = cur[p]
    totals = [sum(values[p][i] for p in order) for i in range(len(times))]
    peaks = {p: pools[p].get("peak_bytes", 0) for p in order}
    ymax = max(max(totals), max(peaks.values()), 1) * 1.12
    w, h, ml, mr, mt, mb = 560, 260, 64, 14, 14, 30
    sx = _Scale(0.0, times[-1] or 1.0, ml, w - mr)
    sy = _Scale(0.0, ymax, h - mb, mt)
    body = []
    for tk in _nice_ticks(0.0, ymax):
        y = sy(tk)
        body.append(f'<line class="grid" x1="{ml}" y1="{y:.1f}" '
                    f'x2="{w - mr}" y2="{y:.1f}"/>')
        body.append(f'<text x="{ml - 6}" y="{y + 3.5:.1f}" '
                    f'text-anchor="end">{_fmt_b(tk)}</text>')
    for tk in _nice_ticks(0.0, sx.hi):
        body.append(f'<text x="{sx(tk):.1f}" y="{h - mb + 16:.1f}" '
                    f'text-anchor="middle">{_fmt_s(tk)}</text>')
    body.append(f'<line class="axis" x1="{ml}" y1="{sy.a:.1f}" '
                f'x2="{w - mr}" y2="{sy.a:.1f}"/>')
    body.append(f'<line class="axis" x1="{ml}" y1="{sy.a:.1f}" '
                f'x2="{ml}" y2="{sy.b:.1f}"/>')

    def steps(series: list[float]) -> list[tuple[float, float]]:
        pts = []
        for i, v in enumerate(series):
            pts.append((sx(times[i]), sy(v)))
            if i + 1 < len(times):
                pts.append((sx(times[i + 1]), sy(v)))
        return pts

    base = [0.0] * len(times)
    for slot, p in enumerate(order):
        top = [base[i] + values[p][i] for i in range(len(times))]
        cap = pools[p].get("capacity_bytes")
        head = pools[p].get("headroom_bytes")
        tip = (f"{p}\npeak {_fmt_b(peaks[p])}"
               + (f"\ncapacity {_fmt_b(cap)}" if cap is not None else "")
               + (f"\nheadroom {_fmt_b(head)}" if head is not None else ""))
        band = steps(top) + list(reversed(steps(base)))
        body.append(f'<polygon points="{_poly(band)}" '
                    f'fill="var(--s{slot % 8 + 1})" opacity="0.35" '
                    f'tabindex="0" data-tip="{_esc(tip)}"/>')
        body.append(f'<polyline points="{_poly(steps(top))}" fill="none" '
                    f'stroke="var(--s{slot % 8 + 1})" stroke-width="1.5" '
                    f'stroke-linejoin="round"/>')
        base = top
    # High-watermark lines: each pool's own peak, in absolute bytes.
    for slot, p in enumerate(order):
        y = sy(peaks[p])
        body.append(
            f'<line x1="{ml}" y1="{y:.1f}" x2="{w - mr}" y2="{y:.1f}" '
            f'stroke="var(--s{slot % 8 + 1})" stroke-width="1.5" '
            f'stroke-dasharray="4 3" tabindex="0" '
            f'data-tip="{_esc(f"{p} high-watermark {_fmt_b(peaks[p])}")}"/>')
    legend = '<div class="legend">' + "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:var(--s{slot % 8 + 1})"></span>'
        f'{_esc(p)}</span>'
        for slot, p in enumerate(order)) + (
        '<span class="key"><span class="linekey" style="background:'
        'var(--ink-3)"></span>dashed: high-watermark</span></div>')
    return ('<div class="card"><h3>Memory occupancy</h3>'
            '<p class="sub">stacked pool occupancy over simulated time; '
            'dashed lines mark each pool&rsquo;s high-watermark</p>'
            + legend + _svg(w, h, body, "memory occupancy over time")
            + "</div>")


def _memory_table(doc: dict) -> str:
    """Accessible table-view twin of the occupancy chart."""
    pools = doc.get("pools", {})
    if not pools:
        return '<p class="note">no pools recorded</p>'
    rows = []
    for p in _memory_pool_order(pools):
        d = pools[p]
        cap = d.get("capacity_bytes")
        head = d.get("headroom_bytes")
        leak = d.get("balance_bytes", 0)
        verdict = ('<span class="chip ok">&#10003; balanced</span>'
                   if leak == 0 else
                   f'<span class="chip bad">&#9888; leak '
                   f'{_fmt_b(leak)}</span>')
        rows.append(
            "<tr>"
            f'<td class="l">{_esc(p)}</td>'
            f'<td>{_fmt_b(d.get("peak_bytes", 0))}</td>'
            f'<td>{_fmt_b(cap) if cap is not None else "&mdash;"}</td>'
            f'<td>{_fmt_b(head) if head is not None else "&mdash;"}</td>'
            f'<td>{d.get("n_allocs", 0)}</td>'
            f'<td>{d.get("n_frees", 0)}</td>'
            f'<td class="l">{verdict}</td></tr>')
    return ('<table class="viz"><thead><tr>'
            '<th class="l">pool</th><th>peak</th><th>capacity</th>'
            '<th>headroom</th><th>allocs</th><th>frees</th>'
            '<th class="l">verdict</th></tr></thead><tbody>'
            + "".join(rows) + "</tbody></table>")


def render_memory_dashboard(doc: dict, title: str = "") -> str:
    """Self-contained memory-observatory HTML for one
    ``repro.memory/v1`` ledger document (from
    :meth:`repro.obs.memory.MemoryLedger.to_dict`)."""
    pools = doc.get("pools", {})
    n_allocs = sum(p.get("n_allocs", 0) for p in pools.values())
    n_frees = sum(p.get("n_frees", 0) for p in pools.values())
    balanced = doc.get("balanced", True)
    tiles = [
        ("pools", f"{len(pools)}", ""),
        ("allocations", f"{n_allocs}", ""),
        ("releases", f"{n_frees}", ""),
        ("leak check", "balanced" if balanced else "LEAK",
         "ok" if balanced else "bad"),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="label">{_esc(lab)}</div>'
        f'<div class="value {cls}">{_esc(val)}</div></div>'
        for lab, val, cls in tiles)
    sub = _esc(title) if title else ("byte-exact allocation ledger over "
                                     "the simulated cudaMalloc / "
                                     "cudaMallocHost paths")
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Memory observatory</title>
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>{_CSS}</style></head>
<body class="viz-root">
<h1>Memory observatory</h1>
<p class="sub">{sub}</p>
<div class="tiles">{tile_html}</div>
<h2>Occupancy</h2>
<div class="cards">{_memory_panel(doc)}</div>
<h2>Pools</h2>
{_memory_table(doc)}
<div id="tip" role="status"></div>
<script>{_TIP_JS}</script>
</body></html>
"""


def write_memory_dashboard(doc: dict, path, title: str = "") -> None:
    """Render and write the memory observatory to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_memory_dashboard(doc, title=title))


# ---------------------------------------------------------------------------
# Interconnect observatory panels (repro.flows/v1 ledger documents)
# ---------------------------------------------------------------------------

def _flow_link_panel(name: str, pts: _t.Sequence[tuple[float, float]],
                     capacity: float | None) -> str:
    """Granted-bandwidth-over-time SVG for one link: the aggregate
    allocated rate as a step series with a dashed capacity line."""
    if not pts:
        return (f'<div class="card"><h3>{_esc(name)}</h3>'
                '<p class="note">no flows crossed this link</p></div>')
    t_end = pts[-1][0] or 1.0
    peak = max(v for _, v in pts)
    ymax = max(peak, capacity or 0.0, 1.0) * 1.12
    w, h, ml, mr, mt, mb = 420, 200, 64, 14, 14, 30
    sx = _Scale(0.0, t_end, ml, w - mr)
    sy = _Scale(0.0, ymax, h - mb, mt)
    body = []
    for tk in _nice_ticks(0.0, ymax):
        y = sy(tk)
        body.append(f'<line class="grid" x1="{ml}" y1="{y:.1f}" '
                    f'x2="{w - mr}" y2="{y:.1f}"/>')
        body.append(f'<text x="{ml - 6}" y="{y + 3.5:.1f}" '
                    f'text-anchor="end">{_fmt_b(tk)}/s</text>')
    for tk in _nice_ticks(0.0, sx.hi):
        body.append(f'<text x="{sx(tk):.1f}" y="{h - mb + 16:.1f}" '
                    f'text-anchor="middle">{_fmt_s(tk)}</text>')
    body.append(f'<line class="axis" x1="{ml}" y1="{sy.a:.1f}" '
                f'x2="{w - mr}" y2="{sy.a:.1f}"/>')
    body.append(f'<line class="axis" x1="{ml}" y1="{sy.a:.1f}" '
                f'x2="{ml}" y2="{sy.b:.1f}"/>')
    steps = []
    for i, (t, v) in enumerate(pts):
        steps.append((sx(t), sy(v)))
        if i + 1 < len(pts):
            steps.append((sx(pts[i + 1][0]), sy(v)))
    band = steps + [(sx(t_end), sy.a), (sx(pts[0][0]), sy.a)]
    tip = (f"{name}\npeak {_fmt_b(peak)}/s"
           + (f"\ncapacity {_fmt_b(capacity)}/s"
              f"\npeak utilization {peak / capacity:.0%}"
              if capacity else ""))
    body.append(f'<polygon points="{_poly(band)}" fill="var(--s1)" '
                f'opacity="0.35" tabindex="0" data-tip="{_esc(tip)}"/>')
    body.append(f'<polyline points="{_poly(steps)}" fill="none" '
                f'stroke="var(--s1)" stroke-width="1.5" '
                f'stroke-linejoin="round"/>')
    if capacity:
        y = sy(capacity)
        body.append(
            f'<line x1="{ml}" y1="{y:.1f}" x2="{w - mr}" y2="{y:.1f}" '
            f'stroke="var(--ink-3)" stroke-width="1.5" '
            f'stroke-dasharray="4 3" tabindex="0" '
            f'data-tip="{_esc(f"{name} capacity {_fmt_b(capacity)}/s")}"/>')
    return (f'<div class="card"><h3>{_esc(name)}</h3>'
            '<p class="sub">granted bandwidth over simulated time; '
            'dashed line marks link capacity</p>'
            + _svg(w, h, body, f"granted bandwidth on {name}")
            + "</div>")


def _flow_concurrency_panel(series: _t.Sequence[tuple[float, int]]) -> str:
    """Flows-in-flight-over-time SVG (integer step series)."""
    if not series:
        return ('<div class="card"><h3>Flows in flight</h3>'
                '<p class="note">no flows recorded</p></div>')
    t_end = series[-1][0] or 1.0
    peak = max(c for _, c in series)
    ymax = max(peak, 1) * 1.15
    w, h, ml, mr, mt, mb = 420, 200, 44, 14, 14, 30
    sx = _Scale(0.0, t_end, ml, w - mr)
    sy = _Scale(0.0, ymax, h - mb, mt)
    body = []
    for tk in _nice_ticks(0.0, ymax):
        if tk != int(tk):
            continue
        y = sy(tk)
        body.append(f'<line class="grid" x1="{ml}" y1="{y:.1f}" '
                    f'x2="{w - mr}" y2="{y:.1f}"/>')
        body.append(f'<text x="{ml - 6}" y="{y + 3.5:.1f}" '
                    f'text-anchor="end">{int(tk)}</text>')
    for tk in _nice_ticks(0.0, sx.hi):
        body.append(f'<text x="{sx(tk):.1f}" y="{h - mb + 16:.1f}" '
                    f'text-anchor="middle">{_fmt_s(tk)}</text>')
    body.append(f'<line class="axis" x1="{ml}" y1="{sy.a:.1f}" '
                f'x2="{w - mr}" y2="{sy.a:.1f}"/>')
    body.append(f'<line class="axis" x1="{ml}" y1="{sy.a:.1f}" '
                f'x2="{ml}" y2="{sy.b:.1f}"/>')
    steps = []
    for i, (t, c) in enumerate(series):
        steps.append((sx(t), sy(c)))
        if i + 1 < len(series):
            steps.append((sx(series[i + 1][0]), sy(c)))
    body.append(f'<polyline points="{_poly(steps)}" fill="none" '
                f'stroke="var(--s3)" stroke-width="1.5" '
                f'stroke-linejoin="round" tabindex="0" '
                f'data-tip="{_esc(f"peak {peak} concurrent flows")}"/>')
    return ('<div class="card"><h3>Flows in flight</h3>'
            '<p class="sub">concurrent transfers over simulated time</p>'
            + _svg(w, h, body, "flows in flight over time") + "</div>")


def _flow_links_table(doc: dict) -> str:
    """Accessible table-view twin of the per-link panels."""
    from repro.obs.flows import link_peaks
    peaks = link_peaks(doc)
    if not peaks:
        return '<p class="note">no links recorded</p>'
    rows = []
    for name in sorted(peaks):
        d = peaks[name]
        cap = d["capacity_bytes_per_s"]
        util = d["peak_utilization"]
        rows.append(
            "<tr>"
            f'<td class="l">{_esc(name)}</td>'
            f'<td>{_fmt_b(cap) + "/s" if cap is not None else "&mdash;"}'
            "</td>"
            f'<td>{_fmt_b(d["peak_bytes_per_s"])}/s</td>'
            f'<td>{util:.0%}</td></tr>')
    return ('<table class="viz"><thead><tr>'
            '<th class="l">link</th><th>capacity</th><th>peak rate</th>'
            '<th>peak utilization</th></tr></thead><tbody>'
            + "".join(rows) + "</tbody></table>")


def _flow_contention_table(contention: dict, limit: int = 15) -> str:
    """Top-contended flows: measured duration split into isolation time
    and per-culprit slowdown charges (charges sum to the duration bit
    for bit; see :func:`repro.obs.flows.attribute_contention`)."""
    flows = sorted(contention.get("flows", []),
                   key=lambda f: (-f["slowdown_s"], f["id"]))
    if not flows:
        return '<p class="note">no completed flows recorded</p>'
    rows = []
    for f in flows[:limit]:
        charges = sorted(((k, v) for k, v in f["parts"].items()
                          if k != "isolation" and v > 0.0),
                         key=lambda kv: -kv[1])
        top = ", ".join(f"{_esc(k)} {_fmt_s(v)}" for k, v in charges[:3])
        rows.append(
            "<tr>"
            f'<td>{f["id"]}</td>'
            f'<td class="l">{_esc(f["label"])}</td>'
            f'<td>{_fmt_s(f["duration_s"])}</td>'
            f'<td>{_fmt_s(f["isolation_s"])}</td>'
            f'<td>{_fmt_s(f["slowdown_s"])}</td>'
            f'<td class="l">{top or "&mdash;"}</td></tr>')
    return ('<table class="viz"><thead><tr>'
            '<th>id</th><th class="l">flow</th><th>duration</th>'
            '<th>isolation</th><th>slowdown</th>'
            '<th class="l">charged to</th></tr></thead><tbody>'
            + "".join(rows) + "</tbody></table>")


def _flows_section(doc: dict) -> str:
    """Link panels + concurrency panel + tables for one
    ``repro.flows/v1`` document (shared by the standalone observatory
    page and the sweep dashboard's flows section)."""
    from repro.obs.flows import (attribute_contention, concurrency_series,
                                 link_timelines)
    caps = doc.get("capacities", {})
    panels = "".join(
        _flow_link_panel(name, pts, caps.get(name))
        for name, pts in link_timelines(doc).items())
    panels += _flow_concurrency_panel(concurrency_series(doc))
    contention = attribute_contention(doc)
    return (f'<div class="cards">{panels}</div>'
            '<h2>Links</h2>' + _flow_links_table(doc) +
            '<h2>Top contended flows</h2>'
            + _flow_contention_table(contention))


def render_flows_dashboard(doc: dict, title: str = "") -> str:
    """Self-contained interconnect-observatory HTML for one
    ``repro.flows/v1`` ledger document (from
    :meth:`repro.obs.flows.FlowLedger.to_dict`)."""
    from repro.obs.flows import attribute_contention, link_peaks
    peaks = link_peaks(doc)
    contention = attribute_contention(doc)
    n_flows = doc.get("n_flows", 0)
    moved = sum(f["moved"] for f in doc.get("flows", [])
                if f.get("moved") is not None)
    peak_util = max((d["peak_utilization"] for d in peaks.values()),
                    default=0.0)
    tiles = [
        ("flows", f"{n_flows}", ""),
        ("bytes moved", _fmt_b(moved), ""),
        ("links", f"{len(peaks)}", ""),
        ("peak link utilization", f"{peak_util:.0%}",
         "bad" if peak_util >= 1.0 else ""),
        ("contention", _fmt_s(contention["total_contention_s"]), ""),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="label">{_esc(lab)}</div>'
        f'<div class="value {cls}">{_esc(val)}</div></div>'
        for lab, val, cls in tiles)
    sub = _esc(title) if title else ("per-flow bandwidth grants from the "
                                     "max-min fair fluid-flow network")
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Interconnect observatory</title>
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>{_CSS}</style></head>
<body class="viz-root">
<h1>Interconnect observatory</h1>
<p class="sub">{sub}</p>
<div class="tiles">{tile_html}</div>
<h2>Link occupancy</h2>
{_flows_section(doc)}
<div id="tip" role="status"></div>
<script>{_TIP_JS}</script>
</body></html>
"""


def write_flows_dashboard(doc: dict, path, title: str = "") -> None:
    """Render and write the interconnect observatory to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_flows_dashboard(doc, title=title))


# ---------------------------------------------------------------------------
# Multi-tenant service panels (repro.service/v1 verdicts)
# ---------------------------------------------------------------------------

def _service_jobs_panel(verdict: dict) -> str:
    """Tenant-latency timeline: one horizontal bar per job from arrival
    to completion, the queued prefix hollow and the service suffix
    solid, rows grouped by tenant (one palette slot each)."""
    jobs = verdict.get("jobs", [])
    if not jobs:
        return ('<div class="card"><h3>Job latencies</h3>'
                '<p class="note">no jobs completed</p></div>')
    tenants = list(verdict.get("tenants", {}))
    slot_of = {t: i % 8 + 1 for i, t in enumerate(tenants)}
    ordered = sorted(jobs, key=lambda j: (tenants.index(j["tenant"]),
                                          j["arrival_s"], j["job_id"]))
    t_end = max(j["end_s"] for j in jobs) or 1.0
    row_h, ml, mr, mt, mb = 14, 64, 14, 14, 30
    w = 560
    h = mt + row_h * len(ordered) + mb
    sx = _Scale(0.0, t_end, ml, w - mr)
    body = []
    for tk in _nice_ticks(0.0, t_end):
        x = sx(tk)
        body.append(f'<line class="grid" x1="{x:.1f}" y1="{mt}" '
                    f'x2="{x:.1f}" y2="{h - mb:.1f}"/>')
        body.append(f'<text x="{x:.1f}" y="{h - mb + 16:.1f}" '
                    f'text-anchor="middle">{_fmt_s(tk)}</text>')
    body.append(f'<line class="axis" x1="{ml}" y1="{h - mb:.1f}" '
                f'x2="{w - mr}" y2="{h - mb:.1f}"/>')
    prev_tenant = None
    for i, j in enumerate(ordered):
        y = mt + i * row_h
        slot = slot_of[j["tenant"]]
        if j["tenant"] != prev_tenant:
            body.append(f'<text class="lab" x="{ml - 6}" '
                        f'y="{y + row_h - 4:.1f}" text-anchor="end">'
                        f'{_esc(j["tenant"])}</text>')
            prev_tenant = j["tenant"]
        tip = (f"{j['job_id']}\nlatency {_fmt_s(j['latency_s'])}"
               f"\nqueued {_fmt_s(j['queued_s'])}"
               f"\nservice {_fmt_s(j['service_s'])}")
        if j.get("slo_s") is not None:
            tip += ("\nSLO " + _fmt_s(j["slo_s"])
                    + (" (hit)" if j["slo_ok"] else " (MISS)"))
        x0, x1, x2 = sx(j["arrival_s"]), sx(j["admit_s"]), sx(j["end_s"])
        body.append(
            f'<rect x="{x0:.1f}" y="{y + 2:.1f}" '
            f'width="{max(x1 - x0, 0.0):.1f}" height="{row_h - 5}" '
            f'fill="none" stroke="var(--s{slot})" stroke-width="1" '
            f'opacity="0.7"/>')
        body.append(
            f'<rect x="{x1:.1f}" y="{y + 2:.1f}" '
            f'width="{max(x2 - x1, 1.0):.1f}" height="{row_h - 5}" '
            f'fill="var(--s{slot})" opacity="0.8" tabindex="0" '
            f'data-tip="{_esc(tip)}"/>')
        if not j.get("slo_ok", True) and j.get("slo_s") is not None:
            body.append(f'<text x="{x2 + 4:.1f}" y="{y + row_h - 4:.1f}" '
                        f'fill="var(--critical)">&#9888;</text>')
    legend = '<div class="legend">' + "".join(
        f'<span class="key"><span class="swatch" '
        f'style="background:var(--s{slot_of[t]})"></span>{_esc(t)}</span>'
        for t in tenants) + (
        '<span class="key"><span class="linekey" style="background:'
        'var(--ink-3)"></span>hollow prefix: queued</span></div>')
    return ('<div class="card"><h3>Per-tenant job latencies</h3>'
            '<p class="sub">each bar spans arrival to completion; the '
            'hollow prefix is admission queueing, the solid part is '
            'service</p>'
            + legend
            + _svg(w, h, body, "per-tenant job latency timeline")
            + "</div>")


def _service_tenant_table(verdict: dict) -> str:
    """Accessible table-view twin of the latency panel."""
    tenants = verdict.get("tenants", {})
    if not tenants:
        return '<p class="note">no tenants recorded</p>'
    rows = []
    for name, t in tenants.items():
        hit = t.get("slo_hit_rate")
        slo = (f'{hit:.0%} of {t["slo_jobs"]}' if hit is not None
               else "&mdash;")
        rows.append(
            "<tr>"
            f'<td class="l">{_esc(name)}</td>'
            f'<td>{t["priority"]}</td>'
            f'<td>{t["share"]:g}</td>'
            f'<td>{t["n_jobs"]}</td>'
            f'<td>{_fmt_s(t["p50_latency_s"])}</td>'
            f'<td>{_fmt_s(t["p99_latency_s"])}</td>'
            f'<td>{_fmt_s(t["mean_queued_s"])}</td>'
            f'<td>{slo}</td>'
            f'<td>{_fmt_b(t["bytes_moved"])}</td></tr>')
    return ('<table class="viz"><thead><tr>'
            '<th class="l">tenant</th><th>priority</th><th>share</th>'
            '<th>jobs</th><th>p50 latency</th><th>p99 latency</th>'
            '<th>mean queued</th><th>SLO hits</th><th>bytes moved</th>'
            '</tr></thead><tbody>' + "".join(rows) + "</tbody></table>")


def render_service_dashboard(verdict: dict, title: str = "") -> str:
    """Self-contained multi-tenant service HTML for one
    ``repro.service/v1`` verdict (from
    :func:`repro.service.verdict.build_verdict`)."""
    jain = verdict.get("fairness", {}).get("jain_latency_index", 1.0)
    slo = verdict.get("slo", {})
    hit = slo.get("hit_rate")
    ctl = verdict.get("controller")
    tiles = [
        ("allocator", str(verdict.get("allocator", "?")), ""),
        ("tenants", f"{verdict.get('n_tenants', 0)}", ""),
        ("jobs", f"{verdict.get('n_jobs', 0)}", ""),
        ("Jain fairness", f"{jain:.4f}", ""),
        ("SLO hit rate",
         f"{hit:.0%}" if hit is not None else "n/a",
         "" if hit is None else ("ok" if hit >= 1.0 else "bad")),
    ]
    if ctl is not None:
        tiles.append(("reclaimed / epoch",
                      f"{ctl['mean_reclaimed_fraction']:.0%}", ""))
    tile_html = "".join(
        f'<div class="tile"><div class="label">{_esc(lab)}</div>'
        f'<div class="value {cls}">{_esc(val)}</div></div>'
        for lab, val, cls in tiles)
    sub = _esc(title) if title else (
        "per-tenant QoS under the "
        f"{_esc(verdict.get('allocator', '?'))} bandwidth allocator")
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Sort service</title>
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>{_CSS}</style></head>
<body class="viz-root">
<h1>Multi-tenant sort service</h1>
<p class="sub">{sub}</p>
<div class="tiles">{tile_html}</div>
<h2>Job latencies</h2>
<div class="cards">{_service_jobs_panel(verdict)}</div>
<h2>Tenants</h2>
{_service_tenant_table(verdict)}
<div id="tip" role="status"></div>
<script>{_TIP_JS}</script>
</body></html>
"""


def write_service_dashboard(verdict: dict, path, title: str = "") -> None:
    """Render and write the service dashboard to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_service_dashboard(verdict, title=title))


# ---------------------------------------------------------------------------
# Trend observatory panels (archive history; repro.trends/v1 documents)
# ---------------------------------------------------------------------------

def _trend_metric_panel(fp: str, label: str, metric: str,
                        tr: dict) -> str:
    """One metric's archive history for one fingerprint: the raw series
    (slot 1) with its EWMA smoothing (slot 2), a dashed vertical marker
    at every detected changepoint and a critical ring on every
    regime-local anomaly."""
    vals = tr["values"]
    if not vals:
        return ""
    smooth = tr["ewma"]
    cps = {c["index"]: c for c in tr["changepoints"]}
    anomalies = set(tr["anomalies"])
    w, h, ml, mr, mt, mb = 380, 200, 64, 14, 14, 30
    lo = min(vals + smooth)
    hi = max(vals + smooth)
    if hi <= lo:                       # flat series still gets a band
        lo, hi = lo - max(abs(lo), 1.0) * 0.05, hi + max(abs(hi), 1.0) * 0.05
    pad = (hi - lo) * 0.08
    sx = _Scale(0, max(1, len(vals) - 1), ml, w - mr)
    sy = _Scale(lo - pad, hi + pad, h - mb, mt)
    is_time = metric.endswith("_s")
    body = _frame(sx, sy, y_time=is_time)
    for i, cp in cps.items():
        x = sx(i)
        body.append(
            f'<line x1="{x:.1f}" y1="{sy.a:.1f}" x2="{x:.1f}" '
            f'y2="{sy.b:.1f}" stroke="var(--critical)" '
            f'stroke-width="1.5" stroke-dasharray="4 3" tabindex="0" '
            f'data-tip="{_esc(_cp_tip(i, cp, is_time))}"/>')
    body.append(f'<polyline points="'
                f'{_poly([(sx(i), sy(v)) for i, v in enumerate(smooth)])}"'
                f' fill="none" stroke="var(--s2)" stroke-width="1.5" '
                f'opacity="0.7" stroke-linejoin="round"/>')
    body.append(f'<polyline points="'
                f'{_poly([(sx(i), sy(v)) for i, v in enumerate(vals)])}" '
                f'fill="none" stroke="var(--s1)" stroke-width="2" '
                f'stroke-linejoin="round" stroke-linecap="round"/>')
    for i, v in enumerate(vals):
        flag = (" &#9888; anomaly within its regime"
                if i in anomalies else "")
        tip = (f"run {i + 1}/{len(vals)}\n{metric} = "
               f"{_fmt_s(v) if is_time else _fmt_n(v)}{flag}")
        ring = ('stroke="var(--critical)" stroke-width="2"'
                if i in anomalies
                else 'stroke="var(--surface-1)" stroke-width="1.5"')
        body.append(
            f'<circle cx="{sx(i):.1f}" cy="{sy(v):.1f}" r="3.5" '
            f'fill="var(--s1)" {ring} tabindex="0" '
            f'data-tip="{_esc(tip)}"/>')
    bits = [f"median {_fmt_s(tr['median']) if is_time else _fmt_n(tr['median'])}",
            f"{len(cps)} changepoint(s)"]
    if anomalies:
        bits.append(f"{len(anomalies)} anomaly flag(s)")
    ratchet = tr.get("ratchet")
    sub = " &middot; ".join(bits)
    extra = (f'<p class="sub"><span class="chip bad">&#9888; '
             f'{_esc(ratchet["message"])}</span></p>' if ratchet else "")
    return (f'<div class="card"><h3>{_esc(metric)} &mdash; '
            f'{_esc(label or fp)}</h3><p class="sub">{sub}</p>{extra}'
            + _svg(w, h, body, f"{metric} history, {label or fp}")
            + "</div>")


def _cp_tip(index: int, cp: dict, is_time: bool) -> str:
    fmt = _fmt_s if is_time else _fmt_n
    return (f"changepoint at run {index + 1}\n"
            f"before {fmt(cp['before'])} -> after {fmt(cp['after'])}\n"
            f"ratio {cp['ratio']:.2f}x, score {cp['score']:.1f} sigma")


def _trend_spark_table(trends: dict) -> str:
    """Accessible table-view twin of the trend cards: one row per
    (fingerprint, metric) series with a unicode sparkline (changepoints
    rendered as ``|``) and the headline statistics."""
    from repro.reporting.series import sparkline
    rows = []
    for fp, blk in trends.get("fingerprints", {}).items():
        for metric, tr in blk.get("metrics", {}).items():
            if not tr["values"]:
                continue
            is_time = metric.endswith("_s")
            fmt = _fmt_s if is_time else _fmt_n
            marks = [c["index"] for c in tr["changepoints"]]
            spark = sparkline(tr["values"], marks)
            flags = []
            if tr["changepoints"]:
                flags.append(f'{len(tr["changepoints"])} step(s)')
            if tr["anomalies"]:
                flags.append(f'{len(tr["anomalies"])} anomaly')
            if tr.get("ratchet"):
                flags.append("re-baseline proposed")
            chip = (f'<span class="chip bad">&#9888; '
                    f'{_esc("; ".join(flags))}</span>' if flags else
                    '<span class="chip ok">&#10003; stable</span>')
            rows.append(
                "<tr>"
                f'<td class="l">{_esc(blk.get("label") or fp)}</td>'
                f'<td class="l">{_esc(metric)}</td>'
                f'<td>{tr["n"]}</td>'
                f'<td class="l" style="font-family:monospace">'
                f'{_esc(spark)}</td>'
                f'<td>{fmt(tr["median"])}</td>'
                f'<td>{fmt(tr["last"])}</td>'
                f'<td class="l">{chip}</td></tr>')
    if not rows:
        return '<p class="note">no archived series yet</p>'
    return ('<table class="viz"><thead><tr>'
            '<th class="l">workload</th><th class="l">metric</th>'
            '<th>runs</th><th class="l">history</th><th>median</th>'
            '<th>last</th><th class="l">verdict</th></tr></thead>'
            '<tbody>' + "".join(rows) + "</tbody></table>")


def _trend_section(trends: dict) -> str:
    """The trend-observatory block shared by both dashboards: metric
    history cards (changepoint markers + anomaly rings) and the
    sparkline table."""
    cards = "".join(
        _trend_metric_panel(fp, blk.get("label", ""), metric, tr)
        for fp, blk in trends.get("fingerprints", {}).items()
        for metric, tr in blk.get("metrics", {}).items())
    legend = (
        '<div class="legend">'
        '<span class="key"><span class="linekey" '
        'style="background:var(--s1)"></span>archived runs</span>'
        '<span class="key"><span class="linekey" '
        'style="background:var(--s2)"></span>EWMA '
        f'(&alpha; {trends.get("params", {}).get("ewma_alpha", 0.3):g})'
        '</span>'
        '<span class="key"><span class="linekey" '
        'style="background:var(--critical)"></span>changepoint</span>'
        '<span class="key"><span class="swatch" '
        'style="background:var(--s1);border:2px solid var(--critical);'
        'border-radius:50%"></span>anomaly flag</span></div>')
    return (legend + f'<div class="cards">{cards}</div>'
            '<h2>Series overview</h2>' + _trend_spark_table(trends))


def render_trend_dashboard(trends: dict) -> str:
    """Self-contained trend-observatory HTML for one ``repro.trends/v1``
    document (from :func:`repro.obs.trends.trend_summary`)."""
    n_cps = trends.get("n_changepoints", 0)
    n_props = trends.get("n_proposals", 0)
    tiles = [
        ("workloads", f"{trends.get('n_fingerprints', 0)}", ""),
        ("metric series", f"{trends.get('n_series', 0)}", ""),
        ("changepoints", f"{n_cps}", "bad" if n_cps else "ok"),
        ("re-baseline proposals", f"{n_props}",
         "bad" if n_props else "ok"),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="label">{_esc(lab)}</div>'
        f'<div class="value {cls}">{val}</div></div>'
        for lab, val, cls in tiles)
    return f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Trend observatory</title>
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>{_CSS}</style></head>
<body class="viz-root">
<h1>Trend observatory</h1>
<p class="sub">per-metric history over the run archive, grouped by
workload fingerprint; steps detected by robust (MAD-scored) binary
segmentation, anomalies flagged regime-locally</p>
<div class="tiles">{tile_html}</div>
<h2>Metric history</h2>
{_trend_section(trends)}
<div id="tip" role="status"></div>
<script>{_TIP_JS}</script>
</body></html>
"""


def write_trend_dashboard(trends: dict, path) -> None:
    """Render and write the trend observatory to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_trend_dashboard(trends))


# ---------------------------------------------------------------------------
# The document
# ---------------------------------------------------------------------------

def render_dashboard(records: _t.Sequence[dict], summary: dict,
                     trends: dict | None = None,
                     memory: dict | None = None,
                     flows: dict | None = None) -> str:
    """The complete, self-contained dashboard HTML for a sweep ledger
    (``records``) and its conformance ``summary``.  When a
    ``repro.trends/v1`` document is passed, a trend-observatory panel
    (archive history with changepoint markers) is appended; when a
    ``repro.memory/v1`` ledger document is passed, a memory-occupancy
    panel (stacked occupancy SVG with watermark lines) is appended; when
    a ``repro.flows/v1`` ledger document is passed, per-link occupancy
    panels and the contention table are appended."""
    records = list(records)
    n_anom = summary.get("n_anomalies", 0)
    anom_cls = "bad" if n_anom else "ok"
    worst_rel_gap = max(
        (abs(r["conformance"]["gap_s"]) / r["conformance"]["measured_s"]
         for r in records if r["conformance"]["measured_s"] > 0),
        default=0.0)
    tiles = [
        ("runs", f"{summary.get('n_runs', len(records))}", ""),
        ("fit groups", f"{summary.get('n_groups', 0)}", ""),
        ("anomalies", f"{n_anom}", anom_cls),
        ("mean model/measured",
         f"{summary.get('mean_slowdown', 0.0):.3f}", ""),
        ("worst gap vs measured", f"{worst_rel_gap:.0%}", ""),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="label">{_esc(lab)}</div>'
        f'<div class="value {cls}">{val}</div></div>'
        for lab, val, cls in tiles)
    scatter = "".join(
        _scatter_panel(key, grp, records)
        for key, grp in summary.get("groups", {}).items())
    scatter_legend = (
        '<div class="legend">'
        '<span class="key"><span class="swatch" '
        'style="background:var(--s1);border-radius:50%"></span>'
        'measured runs</span>'
        '<span class="key"><span class="linekey" '
        'style="background:var(--s2)"></span>fitted line</span>'
        '<span class="key"><span class="linekey" '
        'style="background:var(--s3)"></span>lower-bound model</span>'
        '<span class="key"><span class="linekey" '
        'style="background:var(--ink-3)"></span>paper slope '
        '(PLATFORM2)</span>'
        '<span class="key"><span class="swatch" '
        'style="background:var(--s1);border:2px solid var(--critical);'
        'border-radius:50%"></span>anomalous run</span></div>')
    fig8 = _fig8_panel(records)
    doc = f"""<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>Model-conformance dashboard</title>
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>{_CSS}</style></head>
<body class="viz-root">
<h1>Model-conformance dashboard</h1>
<p class="sub">lower-bound model vs. measured makespans across the sweep
ledger (Sec. IV-G / Fig. 11 methodology); gap attribution along the
causal critical path</p>
<div class="tiles">{tile_html}</div>
<h2>Measured vs. model (Fig. 11)</h2>
{scatter_legend}
<div class="cards">{scatter}</div>
{'<h2>Missing overhead (Fig. 8)</h2><div class="cards">' + fig8 +
 '</div>' if fig8 else ''}
<h2>Gap attribution</h2>
<div class="cards">{_residual_panel(records)}</div>
<h2>Anomalies</h2>
{_anomaly_table(summary)}
<h2>Sweep ledger</h2>
{_ledger_table(records)}
<h2>Per-run critical paths</h2>
{_run_details(records)}
{('<h2>Memory occupancy</h2><div class="cards">' + _memory_panel(memory)
  + '</div>' + _memory_table(memory)) if memory else ''}
{('<h2>Interconnect occupancy</h2>' + _flows_section(flows))
 if flows else ''}
{('<h2>Performance over time</h2>' + _trend_section(trends))
 if trends else ''}
{_paper_band_note(summary)}
<div id="tip" role="status"></div>
<script>{_TIP_JS}</script>
</body></html>
"""
    return doc


def write_dashboard(records: _t.Sequence[dict], summary: dict,
                    path, trends: dict | None = None,
                    memory: dict | None = None,
                    flows: dict | None = None) -> None:
    """Render and write the dashboard to ``path``."""
    with open(path, "w") as fh:
        fh.write(render_dashboard(records, summary, trends, memory=memory,
                                  flows=flows))
