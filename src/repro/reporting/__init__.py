"""Text tables, figure series, ASCII Gantt timelines, and the
self-contained HTML conformance dashboard."""

from repro.reporting.chrometrace import to_chrome_trace, write_chrome_trace
from repro.reporting.gantt import render_gantt
from repro.reporting.html import (render_dashboard,
                                  render_flows_dashboard,
                                  render_memory_dashboard,
                                  render_service_dashboard,
                                  render_trend_dashboard,
                                  write_dashboard,
                                  write_flows_dashboard,
                                  write_memory_dashboard,
                                  write_service_dashboard,
                                  write_trend_dashboard)
from repro.reporting.live import (format_bytes, render_bar,
                                  render_plain_line, render_snapshot)
from repro.reporting.series import (FigureSeries, crossover, sparkline,
                                    speedup_series)
from repro.reporting.table import (format_count, format_seconds,
                                   render_metrics_table, render_table)

__all__ = [
    "render_table", "format_seconds", "format_count",
    "render_metrics_table",
    "FigureSeries", "speedup_series", "crossover", "sparkline",
    "render_gantt", "to_chrome_trace", "write_chrome_trace",
    "render_dashboard", "write_dashboard",
    "render_trend_dashboard", "write_trend_dashboard",
    "render_snapshot", "render_plain_line", "render_bar", "format_bytes",
    "render_memory_dashboard", "write_memory_dashboard",
    "render_flows_dashboard", "write_flows_dashboard",
    "render_service_dashboard", "write_service_dashboard",
]
