"""Render :class:`~repro.obs.sinks.LiveAggregator` snapshots as text.

Two views of the same snapshot dict:

* :func:`render_snapshot` -- a multi-line frame (progress bar, per-lane
  utilization/throughput, queue depths, ETA) for
  :class:`~repro.obs.sinks.TtySink`'s in-place redraw and the final
  summary of ``repro watch``;
* :func:`render_plain_line` -- one line per sample for non-TTY output
  (CI logs, piped output).
"""

from __future__ import annotations

from repro.reporting.table import format_count, format_seconds

__all__ = ["render_snapshot", "render_plain_line", "render_bar",
           "format_bytes"]


def render_bar(fraction: float | None, width: int = 30) -> str:
    """An ASCII progress bar; unknown fractions render as indeterminate."""
    if fraction is None:
        return "[" + "." * width + "]  ?"
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return ("[" + "#" * filled + "-" * (width - filled) +
            f"] {fraction:4.0%}")


def _format_rate(bytes_per_s: float) -> str:
    if bytes_per_s >= 1e9:
        return f"{bytes_per_s / 1e9:6.2f} GB/s"
    if bytes_per_s >= 1e6:
        return f"{bytes_per_s / 1e6:6.2f} MB/s"
    return f"{bytes_per_s:6.0f} B/s"


def format_bytes(nbytes: float) -> str:
    """Compact byte count (``6.4 MB``, ``128 B``, ``-2.56 GB``)."""
    sign = "-" if nbytes < 0 else ""
    nbytes = abs(nbytes)
    if nbytes >= 1e9:
        return f"{sign}{nbytes / 1e9:.2f} GB"
    if nbytes >= 1e6:
        return f"{sign}{nbytes / 1e6:.1f} MB"
    if nbytes >= 1e3:
        return f"{sign}{nbytes / 1e3:.1f} kB"
    return f"{sign}{nbytes:.0f} B"


def render_snapshot(snap: dict, width: int = 72) -> str:
    """The full live frame for one aggregator snapshot."""
    run = snap.get("run", {})
    prog = snap.get("progress", {})
    lines = []
    head = f"{run.get('approach', '?')} on {run.get('platform', '?')}"
    if run.get("n"):
        head += (f"  n={format_count(run['n'])}"
                 f"  gpus={run.get('n_gpus', '?')}"
                 f"  streams={run.get('n_streams', '?')}")
    lines.append(head)

    bar_w = max(10, width - 34)
    frac = prog.get("fraction")
    batches = prog.get("batches_completed", 0)
    n_batches = prog.get("n_batches")
    label = (f"batches {batches}/{n_batches}" if n_batches
             else f"batches {batches}")
    if prog.get("merge_started"):
        label += " +merge"
    lines.append(f"  {render_bar(frac, bar_w)}  {label}")

    eta = snap.get("eta_s")
    t_line = f"  t={format_seconds(snap.get('t', 0.0))}"
    if snap.get("ended"):
        t_line += f"  done in {format_seconds(snap.get('elapsed_s') or 0.0)}"
    elif eta is not None:
        t_line += f"  eta~{format_seconds(eta)}"
    lines.append(t_line)

    for name, lane in snap.get("lanes", {}).items():
        lines.append(
            f"  {name:<18s} {lane['utilization']:5.1%} busy  "
            f"{_format_rate(lane['throughput_B_s'])}  "
            f"{lane['spans']:5d} spans")

    for name, pool in snap.get("memory", {}).items():
        cap = pool.get("capacity_bytes")
        frac = pool["bytes"] / cap if cap else None
        lines.append(
            f"  mem {name:<14s} {render_bar(frac, bar_w)}  "
            f"{format_bytes(pool['bytes'])} "
            f"(peak {format_bytes(pool['peak_bytes'])})")

    queues = snap.get("queues", {})
    if queues:
        depths = "  ".join(f"{n}={d}" for n, d in queues.items())
        lines.append(f"  queues: {depths}")

    if snap.get("warnings"):
        lines.append(f"  ! {snap['warnings']} warning(s): "
                     f"{snap.get('last_warning')}")
    return "\n".join(lines)


def render_plain_line(snap: dict) -> str:
    """One compact progress line (the non-TTY / CI degradation)."""
    prog = snap.get("progress", {})
    frac = prog.get("fraction")
    pct = f"{frac:4.0%}" if frac is not None else "   ?"
    eta = snap.get("eta_s")
    eta_s = f" eta~{format_seconds(eta)}" if eta is not None else ""
    busiest = ""
    lanes = snap.get("lanes", {})
    if lanes:
        name, lane = max(lanes.items(),
                         key=lambda kv: kv[1]["utilization"])
        busiest = f" busiest={name}@{lane['utilization']:.0%}"
    warn = f" warnings={snap['warnings']}" if snap.get("warnings") else ""
    return (f"live t={snap.get('t', 0.0):9.4f}s {pct} "
            f"batches={prog.get('batches_completed', 0)}"
            f"/{prog.get('n_batches') or '?'}{eta_s}{busiest}{warn}")
