"""ASCII Gantt rendering of a simulation trace.

Turns a :class:`~repro.sim.trace.Trace` into the kind of lane/timeline
picture the paper uses to explain pipelining (Figs. 1-3), so the examples
can *show* the overlap structure each approach achieves.

When given the run's causal analysis (``critical`` -- the path spans from
:meth:`repro.obs.causal.SpanGraph.critical_path` -- and optionally the
per-span ``slack`` list), the chart grows a top ``*critical*`` row
painting the binding dependency chain (waits between its spans shown as
``~``) and per-lane annotations: what fraction of each lane's busy time
sits on the path and the smallest slack among the lane's spans.
"""

from __future__ import annotations

import typing as _t

from repro.sim.trace import Span, Trace

__all__ = ["render_gantt"]

_GLYPHS = {
    "HtoD": "H", "DtoH": "D", "GPUSort": "S", "MCpy": "m",
    "Merge": "M", "PairMerge": "P", "PinnedAlloc": "A", "Sync": ".",
    "CPUSort": "C",
}

#: Glyph for wait gaps along the critical path.
_WAIT_GLYPH = "~"


def _paint(row: list[str], start: float, end: float, glyph: str,
           t0: float, scale: float, width: int) -> None:
    a = int((start - t0) * scale)
    b = max(a + 1, int((end - t0) * scale))
    for i in range(a, min(b, width)):
        row[i] = glyph


def render_gantt(trace: Trace, width: int = 100, max_lanes: int = 24,
                 critical: _t.Sequence[Span] | None = None,
                 slack: _t.Sequence[float] | None = None) -> str:
    """Render the trace as one text row per lane.

    Each column is ``makespan / width`` seconds; a span paints its
    category glyph over its columns (later spans overwrite earlier ones
    within a lane).  ``critical``/``slack`` add the causal overlay
    described in the module docstring.
    """
    if not trace.spans:
        return "(empty trace)"
    t0 = min(s.start for s in trace.spans)
    t1 = max(s.end for s in trace.spans)
    span = max(t1 - t0, 1e-12)
    scale = width / span

    crit_ids = {s.id for s in critical} if critical else set()
    lanes = trace.lanes()[:max_lanes]
    rows = []
    labels = list(lanes)
    if critical:
        labels.append("*critical*")
    label_w = max((len(l) for l in labels), default=4) + 2

    if critical:
        crow = [" "] * width
        prev_end: float | None = None
        for s in critical:
            if prev_end is not None and s.start > prev_end:
                _paint(crow, prev_end, s.start, _WAIT_GLYPH, t0, scale,
                       width)
            _paint(crow, s.start, s.end, _GLYPHS.get(s.category, "?"),
                   t0, scale, width)
            prev_end = s.end
        rows.append(f"{'*critical*':<{label_w}}|{''.join(crow)}|")

    for lane in lanes:
        row = [" "] * width
        lane_spans = trace.filter(lane=lane)
        for s in lane_spans:
            _paint(row, s.start, s.end, _GLYPHS.get(s.category, "?"),
                   t0, scale, width)
        note = ""
        if critical:
            busy = sum(s.duration for s in lane_spans)
            on_path = sum(s.duration for s in lane_spans
                          if s.id in crit_ids)
            note = f"  crit={on_path / busy:4.0%}" if busy > 0 \
                else "  crit=  0%"
            if slack is not None and lane_spans:
                min_slack = min(slack[s.id] for s in lane_spans)
                note += f" slack={min_slack * 1e3:.3g}ms"
        rows.append(f"{lane:<{label_w}}|{''.join(row)}|{note}")
    legend = "  ".join(f"{g}={c}" for c, g in _GLYPHS.items())
    if critical:
        legend += f"  {_WAIT_GLYPH}=wait(critical)"
    header = (f"t=[{t0:.4f}s .. {t1:.4f}s]  "
              f"({span / width:.4g} s/column)")
    return "\n".join([header, *rows, legend])
