"""ASCII Gantt rendering of a simulation trace.

Turns a :class:`~repro.sim.trace.Trace` into the kind of lane/timeline
picture the paper uses to explain pipelining (Figs. 1-3), so the examples
can *show* the overlap structure each approach achieves.
"""

from __future__ import annotations

from repro.sim.trace import Trace

__all__ = ["render_gantt"]

_GLYPHS = {
    "HtoD": "H", "DtoH": "D", "GPUSort": "S", "MCpy": "m",
    "Merge": "M", "PairMerge": "P", "PinnedAlloc": "A", "Sync": ".",
    "CPUSort": "C",
}


def render_gantt(trace: Trace, width: int = 100,
                 max_lanes: int = 24) -> str:
    """Render the trace as one text row per lane.

    Each column is ``makespan / width`` seconds; a span paints its
    category glyph over its columns (later spans overwrite earlier ones
    within a lane).
    """
    if not trace.spans:
        return "(empty trace)"
    t0 = min(s.start for s in trace.spans)
    t1 = max(s.end for s in trace.spans)
    span = max(t1 - t0, 1e-12)
    scale = width / span

    lanes = trace.lanes()[:max_lanes]
    rows = []
    label_w = max((len(l) for l in lanes), default=4) + 2
    for lane in lanes:
        row = [" "] * width
        for s in trace.filter(lane=lane):
            a = int((s.start - t0) * scale)
            b = max(a + 1, int((s.end - t0) * scale))
            g = _GLYPHS.get(s.category, "?")
            for i in range(a, min(b, width)):
                row[i] = g
        rows.append(f"{lane:<{label_w}}|{''.join(row)}|")
    legend = "  ".join(f"{g}={c}" for c, g in _GLYPHS.items())
    header = (f"t=[{t0:.4f}s .. {t1:.4f}s]  "
              f"({span / width:.4g} s/column)")
    return "\n".join([header, *rows, legend])
