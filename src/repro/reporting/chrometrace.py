"""Export a simulation trace to Chrome's trace-event JSON format.

Load the produced file in ``chrome://tracing`` or https://ui.perfetto.dev
to inspect a pipeline interactively -- every lane (GPU engines, streams,
CPU merge workers) becomes a track, every span a complete event.  Live
counter series (queue depths, pinned-buffer occupancy, in-flight
transfers) recorded by a :class:`~repro.obs.counters.MetricsRecorder`
render as Perfetto counter tracks alongside the spans.  The trace's
causal edges export as flow events ("s"/"f" pairs), so Perfetto draws
the dependency arrows -- staging copy to HtoD, sort to DtoH, producers
into the final merge -- right on the timeline.

>>> from repro import HeterogeneousSorter, PLATFORM1
>>> from repro.reporting.chrometrace import to_chrome_trace
>>> r = HeterogeneousSorter(PLATFORM1, batch_size=int(2e8)).sort(
...     n=int(4e8), approach="pipedata")
>>> events = to_chrome_trace(r.trace)
>>> sorted({e["ph"] for e in events})
['M', 'X', 'f', 's']
"""

from __future__ import annotations

import json
import typing as _t

from repro.sim.trace import Trace

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: Stable colour names per category (Chrome trace colour palette).
_COLOURS = {
    "HtoD": "thread_state_running",
    "DtoH": "thread_state_runnable",
    "GPUSort": "rail_response",
    "MCpy": "thread_state_iowait",
    "Merge": "rail_animation",
    "PairMerge": "rail_idle",
    "PinnedAlloc": "startup",
    "Sync": "grey",
    "CPUSort": "rail_load",
}


def _counter_series(counters) -> "dict":
    """Accept a MetricsRecorder or a plain ``{name: CounterSeries}``."""
    if counters is None:
        return {}
    return getattr(counters, "series", counters)


def to_chrome_trace(trace: Trace, counters=None) -> list[dict]:
    """Convert a :class:`Trace` into a list of trace-event dicts.

    Spans become complete ("X") events; lanes map to thread ids so each
    lane renders as its own track.  Times are microseconds, as the format
    requires.  Every causal edge becomes a flow-event pair: a start
    ("s") at the parent span's end on the parent's track and a finish
    ("f", binding point "e") at the child span's start on the child's
    track, so Perfetto renders the span DAG as arrows.  ``counters`` (a
    :class:`~repro.obs.counters.MetricsRecorder` or a mapping of
    :class:`~repro.obs.counters.CounterSeries`) adds one Perfetto counter
    ("C") track per series.
    """
    lanes = {lane: tid for tid, lane in enumerate(trace.lanes())}
    events: list[dict] = []
    for lane, tid in lanes.items():
        events.append({
            "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
            "args": {"name": lane or "(main)"},
        })
    for s in trace.spans:
        ev = {
            "ph": "X",
            "pid": 0,
            "tid": lanes[s.lane],
            "name": s.label,
            "cat": s.category,
            "ts": s.start * 1e6,
            "dur": s.duration * 1e6,
            "args": {},
        }
        if s.nbytes:
            ev["args"]["bytes"] = s.nbytes
        if s.elements:
            ev["args"]["elements"] = s.elements
        for key, value in s.meta:
            ev["args"][str(key)] = value
        colour = _COLOURS.get(s.category)
        if colour:
            ev["cname"] = colour
        events.append(ev)
    flow_id = 0
    for parent_id, child_id in trace.edges():
        parent = trace.span_by_id(parent_id)
        child = trace.span_by_id(child_id)
        common = {"cat": "causal", "name": "dep", "pid": 0, "id": flow_id}
        events.append(common | {"ph": "s", "tid": lanes[parent.lane],
                                "ts": parent.end * 1e6})
        events.append(common | {"ph": "f", "bp": "e",
                                "tid": lanes[child.lane],
                                "ts": child.start * 1e6})
        flow_id += 1
    for name in sorted(_counter_series(counters)):
        series = _counter_series(counters)[name]
        for t, v in series.samples():
            events.append({
                "ph": "C",
                "pid": 0,
                "name": name,
                "ts": t * 1e6,
                "args": {series.unit or "value": v},
            })
    return events


def write_chrome_trace(trace: Trace, path: str, counters=None) -> int:
    """Write the trace-event JSON to ``path``; returns the event count."""
    events = to_chrome_trace(trace, counters=counters)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return len(events)
