"""Structural trace diffing and the regression harness built on it.

A *run report* is a compact, JSON-stable summary of one run: makespan,
per-category and per-lane time, the causal critical path, and a
structural index of the trace (how many spans of each
``category|label|lane`` shape were recorded).  Reports from two runs --
two commits, two configs, two platforms -- are compared with
:func:`diff_reports`, which answers both *how much* (timing deltas) and
*what changed* (span shapes added/removed/recounted, critical-path
composition shifts).

Because everything in a report is a pure function of the deterministic
trace, a same-seed run diffed against itself is exactly zero -- the
property ``repro diff`` and the CI regression gate rely on:
``benchmarks/regression_gate.py`` re-runs pinned scenarios, diffs them
against ``benchmarks/results/baseline.json`` and fails on makespan
regressions beyond tolerance.
"""

from __future__ import annotations

import json
import typing as _t

from repro.obs.causal import SpanGraph, critical_path_report
from repro.obs.metrics import interval_length as _interval_length
from repro.obs.metrics import merge_intervals as _merge_intervals
from repro.sim.trace import Trace

__all__ = ["run_report", "report_from_trace", "write_report", "load_report",
           "diff_reports", "check_regression", "render_diff",
           "canonical_json"]

REPORT_SCHEMA = "repro.report/v1"
DIFF_SCHEMA = "repro.diff/v1"


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

def _span_index(trace: Trace) -> dict[str, int]:
    """Structural index: span count per ``category|label|lane`` shape.

    Counts (not ids or timestamps) make the index comparable across runs
    whose timings differ but whose structure should not.
    """
    out: dict[str, int] = {}
    for s in trace.spans:
        key = f"{s.category}|{s.label}|{s.lane}"
        out[key] = out.get(key, 0) + 1
    return dict(sorted(out.items()))


def report_from_trace(trace: Trace, elapsed: float | None = None,
                      label: str = "", context: dict | None = None) -> dict:
    """Build a run report from a bare trace (no sorter involved)."""
    graph = SpanGraph.from_trace(trace)
    cp = critical_path_report(graph)
    makespan = trace.makespan()
    # Group lane intervals in one pass; merging each group reproduces
    # Trace.busy_time's floats exactly (same sort, same sweep) without
    # re-scanning the whole span list once per lane.
    lane_ivs: dict[str, list[tuple[float, float]]] = {}
    for s in trace.spans:
        lane_ivs.setdefault(s.lane, []).append((s.start, s.end))
    return {
        "schema": REPORT_SCHEMA,
        "label": label,
        "context": dict(context or {}),
        "makespan_s": makespan,
        "elapsed_s": makespan if elapsed is None else float(elapsed),
        "n_spans": len(trace.spans),
        "n_edges": graph.edge_count(),
        "categories": {k: v for k, v in sorted(trace.breakdown().items())},
        "lanes": {ln: _interval_length(_merge_intervals(lane_ivs[ln]))
                  for ln in sorted(lane_ivs)},
        "span_index": _span_index(trace),
        "critical_path": {
            "duration": cp["duration"],
            "wait": cp["wait"],
            "n_spans": cp["n_spans"],
            "by_category": cp["by_category"],
            "by_lane": cp["by_lane"],
        },
    }


def run_report(result, label: str = "") -> dict:
    """Run report for a :class:`~repro.hetsort.result.SortResult`."""
    context = {
        "platform": result.platform_name,
        "approach": result.approach,
    }
    if result.plan is not None:
        context.update(n=result.plan.n, n_batches=result.plan.n_batches,
                       batch_size=result.plan.batch_size,
                       n_gpus=result.plan.n_gpus)
    return report_from_trace(result.trace, elapsed=result.elapsed,
                             label=label or result.approach,
                             context=context)


def canonical_json(doc, indent: int | None = 2) -> str:
    """The one serializer every machine-readable artifact shares.

    ``sort_keys`` plus a fixed separator style makes the bytes a pure
    function of the content -- two identical runs produce identical
    output.  ``indent=None`` emits the compact single-line form used for
    sweep-ledger JSONL lines; the default pretty form is what ``--json``
    flags and ``--report`` files print."""
    if indent is None:
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return json.dumps(doc, indent=indent, sort_keys=True)


def write_report(report: dict, path) -> None:
    """Write a report (or any diff/gate document) as canonical JSON
    (see :func:`canonical_json`)."""
    with open(path, "w") as fh:
        fh.write(canonical_json(report))
        fh.write("\n")


def load_report(path) -> dict:
    with open(path) as fh:
        return json.load(fh)


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------

def _num_delta(a: float, b: float) -> dict:
    return {"a": a, "b": b, "delta": b - a,
            "rel": ((b - a) / a) if a else (0.0 if b == a else float("inf"))}


def _map_delta(a: _t.Mapping[str, float], b: _t.Mapping[str, float]) -> dict:
    out = {}
    for k in sorted(set(a) | set(b)):
        out[k] = _num_delta(a.get(k, 0.0), b.get(k, 0.0))
    return out


def diff_reports(a: dict, b: dict, tolerance: float = 0.0) -> dict:
    """Structural + timing comparison of two run reports.

    ``tolerance`` is the relative makespan change below which the diff
    counts as clean (``regression`` stays False).  ``zero`` is True only
    for a *bit-identical* comparison: no timing delta anywhere and no
    structural change -- the self-diff invariant.
    """
    idx_a, idx_b = a.get("span_index", {}), b.get("span_index", {})
    added = sorted(k for k in idx_b if k not in idx_a)
    removed = sorted(k for k in idx_a if k not in idx_b)
    recounted = {k: {"a": idx_a[k], "b": idx_b[k]}
                 for k in sorted(set(idx_a) & set(idx_b))
                 if idx_a[k] != idx_b[k]}

    makespan = _num_delta(a["makespan_s"], b["makespan_s"])
    elapsed = _num_delta(a["elapsed_s"], b["elapsed_s"])
    categories = _map_delta(a.get("categories", {}), b.get("categories", {}))
    lanes = _map_delta(a.get("lanes", {}), b.get("lanes", {}))
    cp = _map_delta(a.get("critical_path", {}).get("by_category", {}),
                    b.get("critical_path", {}).get("by_category", {}))

    structural = bool(added or removed or recounted)
    zero = (not structural
            and makespan["delta"] == 0.0 and elapsed["delta"] == 0.0
            and all(d["delta"] == 0.0 for d in categories.values())
            and all(d["delta"] == 0.0 for d in lanes.values())
            and all(d["delta"] == 0.0 for d in cp.values()))
    return {
        "schema": DIFF_SCHEMA,
        "a": a.get("label", "a"),
        "b": b.get("label", "b"),
        "tolerance": tolerance,
        "makespan": makespan,
        "elapsed": elapsed,
        "categories": categories,
        "lanes": lanes,
        "critical_path": cp,
        "spans": {"added": added, "removed": removed,
                  "recounted": recounted},
        "structural_change": structural,
        "zero": zero,
        "regression": makespan["rel"] > tolerance,
    }


def check_regression(current: dict, baseline: dict,
                     tolerance: float = 0.02) -> dict:
    """Gate verdict for one scenario: current vs. committed baseline.

    Fails (``ok = False``) when the makespan regressed by more than
    ``tolerance`` (relative) or the trace structure changed (spans
    appeared, disappeared, or changed multiplicity) -- structure changes
    mean the scenario no longer measures what the baseline froze.
    """
    d = diff_reports(baseline, current, tolerance=tolerance)
    failures = []
    if d["regression"]:
        failures.append(
            f"makespan regressed {d['makespan']['rel'] * 100:+.2f}% "
            f"({d['makespan']['a']:.6f}s -> {d['makespan']['b']:.6f}s, "
            f"tolerance {tolerance * 100:.1f}%)")
    if d["structural_change"]:
        sp = d["spans"]
        failures.append(
            f"trace structure changed: +{len(sp['added'])} span shapes, "
            f"-{len(sp['removed'])}, {len(sp['recounted'])} recounted")
    return {"ok": not failures, "failures": failures, "diff": d}


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _fmt(v: float) -> str:
    return f"{v * 1e3:10.4f} ms"


def render_diff(diff: dict, min_rel: float = 0.0) -> str:
    """Human-readable multi-line rendering of a :func:`diff_reports`
    result.  Rows whose relative change is below ``min_rel`` are
    suppressed (structural changes always shown)."""
    lines = [f"diff: {diff['a']} -> {diff['b']}"]
    if diff["zero"]:
        lines.append("  identical (zero deltas, no structural change)")
        return "\n".join(lines)

    def row(name, d):
        mark = " *" if abs(d["rel"]) > max(min_rel, diff["tolerance"]) \
            else ""
        return (f"  {name:<28s} {_fmt(d['a'])} -> {_fmt(d['b'])}  "
                f"({d['rel'] * 100:+7.2f}%){mark}")

    lines.append(row("makespan", diff["makespan"]))
    lines.append(row("elapsed", diff["elapsed"]))
    for section in ("categories", "lanes", "critical_path"):
        shown = [(k, d) for k, d in diff[section].items()
                 if d["delta"] != 0.0 and abs(d["rel"]) >= min_rel]
        if shown:
            lines.append(f"  {section}:")
            for k, d in shown:
                lines.append("  " + row(k, d))
    sp = diff["spans"]
    for label, keys in (("added", sp["added"]), ("removed", sp["removed"])):
        for k in keys:
            lines.append(f"  span shape {label}: {k}")
    for k, c in sp["recounted"].items():
        lines.append(f"  span count changed: {k} ({c['a']} -> {c['b']})")
    if diff["regression"]:
        lines.append(f"  REGRESSION: makespan "
                     f"{diff['makespan']['rel'] * 100:+.2f}% exceeds "
                     f"tolerance {diff['tolerance'] * 100:.1f}%")
    return "\n".join(lines)
