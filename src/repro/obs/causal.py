"""Causal span-DAG analysis: critical paths, slack, and what-if predictions.

Every :class:`~repro.sim.trace.Trace` records, besides the flat timeline,
the *causal edges* between spans -- which operations had to finish before
each span could run (buffer handoffs, stream order, engine contention,
synchronisation waits, host program order).  This module turns that DAG
into the three questions a performance engineer actually asks:

* **Where did the time go?**  :meth:`SpanGraph.critical_path` walks the
  longest dependency chain ending at the last span and attributes every
  second of the makespan to a span category (or to *wait* -- time where
  the chain sat between a parent finishing and the child starting, e.g.
  queueing behind a busy engine whose release edge was not the binding
  one).  Unlike the busiest-lane *resource* bound of
  :func:`repro.obs.metrics.critical_path_lower_bound`, this is the actual
  *dependency* chain: shortening anything off it cannot help.

* **What has room?**  :meth:`SpanGraph.slack` runs the classic
  critical-path-method backward pass (lags preserved) and reports, per
  span, how much later it could have finished without growing the
  makespan.  Spans on the critical path have (near-)zero slack.

* **What if?**  :meth:`SpanGraph.whatif` re-schedules the DAG with one or
  more categories' durations scaled by a factor ``k``, predicting the new
  makespan.  The reschedule is *shift-based*: a span keeps its original
  start unless a parent moved, so ``k = 1`` reproduces the measured
  timeline bit-for-bit (an exact fixed point, used as a self-check).
  Predictions are optimistic for ``k < 1``: only the recorded dependency
  edges constrain the reschedule, so contention that would re-arise in a
  real re-run is not re-modelled.

All reports are plain dicts of floats/strings/lists, deterministic for a
deterministic trace, so ``json.dumps(..., sort_keys=True)`` is
byte-stable across same-seed runs -- the property the trace-diff
regression harness (:mod:`repro.obs.diff`) relies on.
"""

from __future__ import annotations

import typing as _t

from repro.errors import ReproError
from repro.sim.trace import Span, Trace

__all__ = ["SpanGraph", "CausalGraphError", "WAIT",
           "critical_path_report", "whatif_report", "sensitivity_report"]

#: Pseudo-category used to attribute gaps along the critical path.
WAIT = "(wait)"

#: Tolerance for the lag invariant ``child.start >= parent.end``; spans
#: are recorded at event-queue precision so genuine edges never violate
#: it, but serialized traces may round.
LAG_EPS = 1e-9


class CausalGraphError(ReproError):
    """A trace's span DAG violates its structural invariants."""


class SpanGraph:
    """The causal DAG of one run's spans.

    Spans are indexed by their stable ``id``; because every dependency id
    is smaller than the dependent span's id, id order is a topological
    order and every traversal below is a single linear pass.
    """

    def __init__(self, spans: _t.Sequence[Span]) -> None:
        self.spans: list[Span] = list(spans)
        # Lazy caches -- the span list is treated as immutable after
        # construction, so window/adjacency/edge-count are computed once.
        self._window: tuple[float, float] | None = None
        self._children: list[list[int]] | None = None
        self._edge_count: int | None = None
        self.validate()

    @classmethod
    def from_trace(cls, trace: Trace) -> "SpanGraph":
        return cls(trace.spans)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the DAG invariants; raises :class:`CausalGraphError`.

        * ids are dense and equal to list position (hence acyclic);
        * every dependency refers to an earlier span;
        * every edge has non-negative lag (a span never starts before a
          recorded dependency finished).
        """
        for i, s in enumerate(self.spans):
            if s.id != i:
                raise CausalGraphError(
                    f"span at position {i} has id {s.id}")
            for d in s.deps:
                if not 0 <= d < i:
                    raise CausalGraphError(
                        f"span {i} ({s.label!r}) depends on {d}, which is "
                        "not an earlier span")
                p = self.spans[d]
                if s.start < p.end - LAG_EPS:
                    raise CausalGraphError(
                        f"negative lag: span {i} ({s.label!r}) starts at "
                        f"{s.start} before dependency {d} ({p.label!r}) "
                        f"ends at {p.end}")

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def window(self) -> tuple[float, float]:
        """``(t0, t1)`` of the whole trace."""
        if self._window is None:
            if not self.spans:
                self._window = (0.0, 0.0)
            else:
                t0 = t1 = None
                for s in self.spans:
                    if t0 is None or s.start < t0:
                        t0 = s.start
                    if t1 is None or s.end > t1:
                        t1 = s.end
                self._window = (t0, t1)
        return self._window

    @property
    def makespan(self) -> float:
        t0, t1 = self.window
        return t1 - t0

    def roots(self) -> list[Span]:
        """Spans with no recorded dependency."""
        return [s for s in self.spans if not s.deps]

    def children(self) -> list[list[int]]:
        """Forward adjacency: ``children()[p]`` lists ids depending on
        ``p`` (computed once; do not mutate)."""
        if self._children is None:
            out: list[list[int]] = [[] for _ in self.spans]
            edges = 0
            for s in self.spans:
                for d in s.deps:
                    out[d].append(s.id)
                edges += len(s.deps)
            self._children = out
            self._edge_count = edges
        return self._children

    def edge_count(self) -> int:
        if self._edge_count is None:
            self._edge_count = sum(len(s.deps) for s in self.spans)
        return self._edge_count

    # ------------------------------------------------------------------
    # Critical path
    # ------------------------------------------------------------------

    def critical_path(self) -> list[Span]:
        """The binding dependency chain, earliest span first.

        Walks backward from the span with the latest end (ties broken by
        id, deterministically), at each step following the dependency
        with the latest end.  Consecutive path spans never overlap
        (edges have non-negative lag), so the path tiles the interval
        ``[path[0].start, t1]`` with span durations and wait gaps.
        """
        if not self.spans:
            return []
        cur = max(self.spans, key=lambda s: (s.end, s.id))
        path = [cur]
        while cur.deps:
            cur = max((self.spans[d] for d in cur.deps),
                      key=lambda s: (s.end, s.id))
            path.append(cur)
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # Slack
    # ------------------------------------------------------------------

    def slack(self) -> list[float]:
        """Per-span slack: how much later each span could finish without
        growing the makespan, treating every edge as a pure precedence
        constraint (classic critical-path-method backward pass: a child
        may start any time at or after its parents' ends).

        Always >= 0.  Along the critical path, a span's slack is bounded
        by the total wait remaining after it on the path (exactly zero
        when the chain is gapless); off-path spans report the real
        scheduling headroom the what-if engine could exploit."""
        n = len(self.spans)
        _, t1 = self.window
        latest_finish = [t1] * n
        # Reverse id order is reverse topological order.
        kids = self.children()
        for s in reversed(self.spans):
            lf = t1
            for c in kids[s.id]:
                child = self.spans[c]
                lf = min(lf, latest_finish[c] - child.duration)
            latest_finish[s.id] = lf
        return [latest_finish[s.id] - s.end for s in self.spans]

    # ------------------------------------------------------------------
    # What-if rescheduling
    # ------------------------------------------------------------------

    def whatif(self, scale: _t.Mapping[str, float]
               ) -> tuple[list[float], list[float]]:
        """Re-schedule the DAG with each category ``c`` in ``scale``
        having its span durations multiplied by ``scale[c]``.

        Returns ``(new_start, new_end)`` lists indexed by span id.  A
        span starts at its original start plus the largest shift among
        its dependencies (how much later/earlier the latest-ending parent
        now finishes), so an empty/identity ``scale`` returns the
        measured timeline exactly.
        """
        for cat, k in scale.items():
            if k < 0:
                raise ValueError(f"negative what-if factor {k} for {cat!r}")
        new_start = [0.0] * len(self.spans)
        new_end = [0.0] * len(self.spans)
        for s in self.spans:
            if s.deps:
                shift = (max(new_end[d] for d in s.deps)
                         - max(self.spans[d].end for d in s.deps))
            else:
                shift = 0.0
            ns = s.start + shift
            k = scale.get(s.category, 1.0)
            # k == 1 keeps the span's own end arithmetic untouched so an
            # unshifted span reproduces its floats bit-for-bit.
            ne = s.end + shift if k == 1.0 else ns + k * s.duration
            new_start[s.id] = ns
            new_end[s.id] = ne
        return new_start, new_end

    def whatif_makespan(self, scale: _t.Mapping[str, float]) -> float:
        """Predicted makespan under :meth:`whatif` rescheduling."""
        if not self.spans:
            return 0.0
        new_start, new_end = self.whatif(scale)
        return max(new_end) - min(new_start)


# ---------------------------------------------------------------------------
# Reports (plain dicts, deterministic, JSON-stable)
# ---------------------------------------------------------------------------

def _span_brief(s: Span) -> dict:
    return {"id": s.id, "category": s.category, "label": s.label,
            "lane": s.lane, "start": s.start, "end": s.end,
            "duration": s.duration}


def critical_path_report(graph: SpanGraph) -> dict:
    """Critical path with per-category and per-lane attribution.

    The report's ``duration`` equals the trace makespan whenever the
    chain roots at the first span of the run (it does, for every
    approach: the acceptance check of the differential battery).  Gaps
    between consecutive path spans are attributed to the :data:`WAIT`
    pseudo-category (and pseudo-lane).
    """
    path = graph.critical_path()
    t0, t1 = graph.window
    slack = graph.slack()
    by_category: dict[str, float] = {}
    by_lane: dict[str, float] = {}
    steps: list[dict] = []
    prev_end = path[0].start if path else t0
    wait_total = 0.0
    for s in path:
        gap = s.start - prev_end
        if gap > 0:
            by_category[WAIT] = by_category.get(WAIT, 0.0) + gap
            by_lane[WAIT] = by_lane.get(WAIT, 0.0) + gap
            wait_total += gap
        by_category[s.category] = by_category.get(s.category, 0.0) \
            + s.duration
        by_lane[s.lane] = by_lane.get(s.lane, 0.0) + s.duration
        step = _span_brief(s)
        step["wait_before"] = gap
        step["slack"] = slack[s.id]
        steps.append(step)
        prev_end = s.end
    duration = (t1 - path[0].start) if path else 0.0
    return {
        "schema": "repro.critical_path/v1",
        "makespan": graph.makespan,
        "duration": duration,
        "lead_in": (path[0].start - t0) if path else 0.0,
        "n_spans": len(path),
        "n_trace_spans": len(graph),
        "n_edges": graph.edge_count(),
        "wait": wait_total,
        "by_category": dict(sorted(by_category.items(),
                                   key=lambda kv: (-kv[1], kv[0]))),
        "by_lane": dict(sorted(by_lane.items(),
                               key=lambda kv: (-kv[1], kv[0]))),
        "path": steps,
    }


def whatif_report(graph: SpanGraph, scale: _t.Mapping[str, float]) -> dict:
    """Predicted effect of scaling the given categories by their factors."""
    measured = graph.makespan
    predicted = graph.whatif_makespan(scale)
    return {
        "schema": "repro.whatif/v1",
        "scale": dict(sorted(scale.items())),
        "measured_makespan": measured,
        "predicted_makespan": predicted,
        "delta": predicted - measured,
        "speedup": (measured / predicted) if predicted > 0 else float("inf"),
    }


def sensitivity_report(graph: SpanGraph,
                       factors: _t.Sequence[float] = (0.0, 0.5, 2.0),
                       categories: _t.Sequence[str] | None = None) -> dict:
    """One what-if prediction per (category, factor) pair.

    The default factors answer: what if this component were free (0),
    twice as fast (0.5), or twice as slow (2)?  Categories default to
    every category present in the trace, in deterministic (sorted)
    order."""
    if categories is None:
        categories = sorted({s.category for s in graph.spans})
    rows = []
    for cat in categories:
        for k in factors:
            rows.append(whatif_report(graph, {cat: k}) | {"category": cat,
                                                          "factor": k})
    return {
        "schema": "repro.sensitivity/v1",
        "measured_makespan": graph.makespan,
        "rows": rows,
    }
