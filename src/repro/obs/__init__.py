"""Observability: derived metrics, live counters, and profiling hooks.

The paper's entire argument is about *where time goes* -- how much of the
makespan each component occupies (Fig. 7), how much overhead the related
work's accounting hides (Fig. 8), and how close a pipeline gets to the
analytical lower bound (Fig. 11).  This package turns the raw
:class:`~repro.sim.trace.Trace` spans and in-sim state into those
quantities:

* :mod:`repro.obs.metrics` -- derived metrics computed *after* a run:
  per-lane busy/idle utilisation, the pairwise category-overlap matrix,
  overlap efficiency (critical-path lower bound / makespan), per-link
  throughput and pipeline-bubble detection;
* :mod:`repro.obs.counters` -- live counters and gauges sampled *during*
  a run (queue depths, pinned-buffer occupancy, in-flight transfers),
  recorded as deterministic time series;
* :mod:`repro.obs.causal` -- the causal span DAG: critical-path
  extraction with per-category/per-lane attribution, per-span slack, and
  shift-based what-if rescheduling (``k = 1`` is an exact fixed point);
* :mod:`repro.obs.diff` -- structural trace diffing (run reports, report
  diffs, the CI regression gate's verdict logic);
* :mod:`repro.obs.sweep` -- the sweep harness: run an (approach x n x
  streams x platform) grid and persist every run as one canonical JSONL
  ledger line (byte-stable for a deterministic sweep);
* :mod:`repro.obs.conformance` -- model-vs-measured conformance: the
  lower-bound prediction per run, critical-path residual attribution
  (exact by construction), per-group fitted slopes with R² vs. the
  paper's, and anomaly flags;
* :mod:`repro.obs.profile` -- wall-clock profiling of the *real* numpy
  kernels behind a zero-overhead-when-disabled toggle (never affects the
  simulated timeline or the sorted output);
* :mod:`repro.obs.memory` -- the memory observatory: a byte-exact
  allocation ledger over the simulated ``cudaMalloc`` /
  ``cudaMallocHost`` paths (occupancy timelines, high-watermarks, leak
  detection at run end) and the analytic capacity planner behind
  ``repro plan-mem`` (predict peak device/pinned occupancy from the
  plan, reject infeasible configurations before any simulation);
* :mod:`repro.obs.flows` -- the interconnect observatory: a byte-stable
  per-flow bandwidth grant ledger over the fluid-flow network
  (piecewise-constant granted-rate timelines whose integral reproduces
  the bytes moved bit for bit), per-link utilization/saturation and
  flows-in-flight series, and contention attribution that decomposes
  each transfer's duration into isolation time plus slowdown charged to
  the specific concurrent flows sharing its links -- summing back to
  the measured duration bit for bit;
* :mod:`repro.obs.events` / :mod:`repro.obs.sinks` -- the typed
  publish/subscribe telemetry bus and its shipped sinks: byte-stable
  ``repro.events/v1`` JSONL structured logs (replayable back into a
  trace), rolling live aggregation with ETA, a throttled terminal
  renderer (``repro run --live`` / ``repro watch``), and a stall/
  deadline watchdog.  Sinks are passive: attaching or detaching any of
  them never perturbs the simulated timeline or the canonical report.
"""

from repro.obs.archive import (ARCHIVE_SCHEMA, append_entries,
                               archive_summary, build_manifest, entry_id,
                               entry_from_ledger, entry_from_result,
                               fingerprint, load_archive, make_entry,
                               manifest_path, validate_archive)
from repro.obs.causal import (CausalGraphError, SpanGraph,
                              critical_path_report, sensitivity_report,
                              whatif_report)
from repro.obs.conformance import (attach_conformance, conformance_record,
                                   conformance_summary, fit_line,
                                   group_conformance, residual_attribution)
from repro.obs.counters import CounterSeries, MetricsRecorder
from repro.obs.diff import (canonical_json, check_regression, diff_reports,
                            load_report, render_diff, report_from_trace,
                            run_report, write_report)
from repro.obs.events import (EV, EVENTS_SCHEMA, EventBus, Sink,
                              TelemetryEvent, connect_context,
                              connect_machine)
from repro.obs.flows import (CONTENTION_SCHEMA, FLOWS_SCHEMA,
                             FlowLedger, FlowRateSeries,
                             attribute_contention, concurrency_series,
                             flow_rate_counters, link_peaks,
                             link_timelines, link_utilization,
                             reconcile_flow_spans, settled_split,
                             verify_contention, verify_rate_integral)
from repro.obs.memory import (MEMORY_SCHEMA, MEMPLAN_SCHEMA,
                              MEMORY_CONFORMANCE_SCHEMA, PLAN_TOLERANCE,
                              MemoryLedger, measured_peaks,
                              memory_conformance, plan_memory)
from repro.obs.metrics import (category_overlap_matrix, compute_metrics,
                               critical_path_lower_bound, detect_bubbles,
                               lane_metrics, link_throughput,
                               overlap_efficiency)
from repro.obs.profile import (KernelStats, disable_profiling,
                               enable_profiling, merge_snapshots,
                               profiled, profiling_enabled,
                               profiling_stats, reset_profiling,
                               snapshot_to_jsonl)
from repro.obs.profile import snapshot as profiling_snapshot
from repro.obs.sinks import (JsonlSink, LiveAggregator, TtySink,
                             WatchdogSink, read_events, replay_events,
                             validate_event_log, validate_events)
from repro.obs.sweep import (GRIDS, ledger_record, load_ledger, run_sweep,
                             sweep_points, write_ledger)
from repro.obs.trends import (TRENDS_SCHEMA, classify_miss,
                              compare_entries, detect_changepoints, ewma,
                              metric_series, ratchet_proposal,
                              series_trend, trend_summary)

__all__ = [
    "CounterSeries", "MetricsRecorder",
    "compute_metrics", "lane_metrics", "category_overlap_matrix",
    "overlap_efficiency", "critical_path_lower_bound", "link_throughput",
    "detect_bubbles",
    "SpanGraph", "CausalGraphError", "critical_path_report",
    "whatif_report", "sensitivity_report",
    "run_report", "report_from_trace", "diff_reports", "check_regression",
    "render_diff", "write_report", "load_report", "canonical_json",
    "GRIDS", "sweep_points", "run_sweep", "ledger_record",
    "write_ledger", "load_ledger",
    "residual_attribution", "conformance_record", "attach_conformance",
    "fit_line", "group_conformance", "conformance_summary",
    "profiled", "enable_profiling", "disable_profiling",
    "profiling_enabled", "profiling_stats", "reset_profiling",
    "KernelStats", "profiling_snapshot", "merge_snapshots",
    "snapshot_to_jsonl",
    "EV", "EVENTS_SCHEMA", "TelemetryEvent", "Sink", "EventBus",
    "connect_machine", "connect_context",
    "JsonlSink", "LiveAggregator", "TtySink", "WatchdogSink",
    "read_events", "replay_events", "validate_events",
    "validate_event_log",
    "ARCHIVE_SCHEMA", "fingerprint", "entry_id", "make_entry",
    "entry_from_result", "entry_from_ledger", "load_archive",
    "append_entries", "manifest_path", "build_manifest",
    "archive_summary", "validate_archive",
    "TRENDS_SCHEMA", "ewma", "detect_changepoints", "series_trend",
    "ratchet_proposal", "classify_miss", "metric_series",
    "trend_summary", "compare_entries",
    "MEMORY_SCHEMA", "MEMPLAN_SCHEMA", "MEMORY_CONFORMANCE_SCHEMA",
    "PLAN_TOLERANCE", "MemoryLedger", "plan_memory", "measured_peaks",
    "memory_conformance",
    "FLOWS_SCHEMA", "CONTENTION_SCHEMA", "FlowLedger", "FlowRateSeries",
    "link_timelines", "link_utilization", "link_peaks",
    "concurrency_series", "settled_split", "attribute_contention",
    "verify_contention", "verify_rate_integral", "reconcile_flow_spans",
    "flow_rate_counters",
]
