"""Interconnect flow observatory: the per-flow bandwidth grant ledger.

The paper's central finding is that end-to-end heterogeneous sort time
is dominated by host<->device transfers, yet the max-min fair allocator
in :mod:`repro.sim.bandwidth` computes per-flow rates continuously and
discards them.  The :class:`FlowLedger` keeps them: attached as
``FlowNetwork.ledger`` it records, for every :class:`~repro.sim.bandwidth.Flow`,

* the lifecycle -- start/end simulated times, bytes, the weighted link
  path, and (bound post-hoc by the machine primitives) the causal-trace
  span that owns the transfer;
* a piecewise-constant **granted-rate timeline**: one ``[t, rate,
  progressed]`` capture at every allocator update while the flow is
  active.  Because every :meth:`FlowNetwork._advance` accumulation step
  is immediately followed by exactly one allocator update, consecutive
  captures satisfy ``p[i+1] == p[i] + rate[i] * (t[i+1] - t[i])`` *bit
  for bit* -- the rate integral equals the bytes moved exactly, not
  approximately (:func:`verify_rate_integral` pins it).

Everything else is post-hoc analysis of the serialized ``repro.flows/v1``
document (:meth:`FlowLedger.to_dict`, byte-stable through
:func:`repro.obs.diff.canonical_json`):

* :func:`link_timelines` / :func:`link_utilization` -- per-link
  aggregate granted rate and saturation step series;
* :func:`concurrency_series` -- flows-in-flight over time;
* :func:`attribute_contention` -- each flow's measured duration
  decomposed into *isolation* time (what the bytes would have taken at
  full bottleneck bandwidth) plus slowdown charged to the specific
  concurrent flows sharing its links.  The parts sum back to the
  measured duration **bit for bit** in sorted key order, via the same
  absorber + half-ulp tie walk as
  :func:`repro.obs.conformance.residual_attribution`;
* :func:`reconcile_flow_spans` -- every span-bound flow must end
  exactly when its causal-trace span ends;
* :func:`flow_rate_counters` -- ``link.<name>.bw_bytes_per_s`` counter
  tracks for the Perfetto exporter.

Recording follows the bus's neutrality invariant: the ledger never
schedules simulation events, and with no ledger attached every network
hook is a single ``is None`` check (zero overhead when disabled).
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import FlowLedgerError

__all__ = ["FLOWS_SCHEMA", "CONTENTION_SCHEMA", "RECONCILE_SCHEMA",
           "FlowLedger", "FlowRateSeries", "link_timelines",
           "link_utilization", "link_peaks", "concurrency_series",
           "settled_split", "attribute_contention", "verify_contention",
           "verify_rate_integral", "reconcile_flow_spans",
           "flow_rate_counters"]

#: Schema identifier of the serialized flow ledger.
FLOWS_SCHEMA = "repro.flows/v1"
#: Schema identifier of the contention-attribution document.
CONTENTION_SCHEMA = "repro.flow_contention/v1"
#: Schema identifier of the span-reconciliation verdict.
RECONCILE_SCHEMA = "repro.flow_reconcile/v1"


class FlowLedger:
    """Per-flow bandwidth grant ledger for one :class:`FlowNetwork`.

    ``capacities`` maps link names to their bytes/second capacity (used
    for utilization; :meth:`on_capacity` records mid-run changes).  The
    recording hooks (``on_start`` / ``on_update`` / ``on_end`` /
    ``on_capacity``) are called by the network behind its single
    ``ledger is None`` check; :meth:`bind_span` is called by the machine
    primitives after the owning trace span is recorded.
    """

    def __init__(self, clock: _t.Callable[[], float] | None = None,
                 capacities: _t.Mapping[str, float] | None = None) -> None:
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.capacities = {str(k): float(v)
                           for k, v in (capacities or {}).items()}
        #: One record per flow, indexed by the ledger-assigned flow id.
        self.flows: list[dict] = []
        #: ``[t, link, bytes_per_s]`` rows, one per ``set_capacity``.
        self.capacity_events: list[list] = []
        #: Streaming telemetry: optional
        #: :class:`~repro.obs.events.EventBus` that every lifecycle and
        #: rate-change record is mirrored onto (``flow.start`` /
        #: ``flow.rate`` / ``flow.end``).
        self.bus = None

    # -- recording hooks (called by FlowNetwork) -----------------------------

    def on_start(self, flow, now: float) -> None:
        """A flow joined the network (or completed instantly, for the
        zero-byte path); assigns the flow its ledger id."""
        fid = len(self.flows)
        flow.fid = fid
        links = [[link.name, weight] for link, weight in flow.links]
        # Isolation rate: what the flow would be granted alone -- its own
        # cap or the tightest weighted link capacity, whichever binds.
        iso = flow.cap
        for link, weight in flow.links:
            alone = link.capacity / weight
            if alone < iso:
                iso = alone
        rec = {
            "id": fid,
            "label": flow.label,
            "nbytes": flow.nbytes,
            "links": links,
            "cap": flow.cap if math.isfinite(flow.cap) else None,
            "iso_rate": iso if math.isfinite(iso) else None,
            "start": now,
            "end": None,
            "span": None,
            "moved": None,
            "rates": [],
        }
        # Tenant attribution (multi-tenant service runs).  Only recorded
        # when present so untagged runs keep producing byte-identical
        # repro.flows/v1 documents (the flows gate digests them).
        tenant = getattr(flow, "tenant", None)
        if tenant is not None:
            rec["tenant"] = tenant
        self.flows.append(rec)
        if self.bus is not None:
            self.bus.flow_start(fid, flow.nbytes, links, label=flow.label)

    def on_update(self, now: float, flows: _t.Iterable) -> None:
        """The allocator refilled; capture every active flow's granted
        rate and progress.  Same-instant re-captures are deduplicated;
        only actual rate changes are mirrored onto the bus."""
        records = self.flows
        bus = self.bus
        for f in flows:
            rates = records[f.fid]["rates"]
            if rates:
                last = rates[-1]
                if (last[0] == now and last[1] == f.rate
                        and last[2] == f.progressed):
                    continue
                changed = last[1] != f.rate
            else:
                changed = True
            rates.append([now, f.rate, f.progressed])
            if changed and bus is not None:
                bus.flow_rate(f.fid, f.rate)

    def on_end(self, flow, now: float) -> None:
        """A flow completed; freeze its end time and bytes moved."""
        rec = self.flows[flow.fid]
        rec["end"] = now
        rec["moved"] = flow.progressed
        if self.bus is not None:
            self.bus.flow_end(flow.fid, flow.progressed)

    def on_capacity(self, name: str, capacity: float, now: float) -> None:
        """A link's capacity changed mid-run (fault injection)."""
        self.capacity_events.append([now, str(name), float(capacity)])

    def bind_span(self, flow, span_id: int) -> None:
        """Attach the owning causal-trace span to a recorded flow (the
        machine primitives call this after ``trace.record``)."""
        fid = getattr(flow, "fid", -1)
        if not 0 <= fid < len(self.flows):
            raise FlowLedgerError(
                f"cannot bind span {span_id} to unrecorded flow "
                f"{getattr(flow, 'label', flow)!r}")
        self.flows[fid]["span"] = int(span_id)

    # -- views ---------------------------------------------------------------

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    @property
    def bytes_moved(self) -> float:
        """Total bytes actually moved by completed flows."""
        return sum(f["moved"] for f in self.flows
                   if f["moved"] is not None)

    @property
    def spans_bound(self) -> int:
        return sum(1 for f in self.flows if f["span"] is not None)

    def to_dict(self) -> dict:
        """The full ledger as a ``repro.flows/v1`` document (canonical
        JSON of this is byte-stable across identical runs)."""
        return {
            "schema": FLOWS_SCHEMA,
            "capacities": dict(sorted(self.capacities.items())),
            "capacity_events": [list(e) for e in self.capacity_events],
            "n_flows": len(self.flows),
            "flows": [dict(rec, links=[list(l) for l in rec["links"]],
                           rates=[list(p) for p in rec["rates"]])
                      for rec in self.flows],
        }

    def summary(self) -> dict:
        """Scalar summary for ``SortResult.metrics['flows']``."""
        doc = self.to_dict()
        peaks = {name: d["peak_utilization"]
                 for name, d in link_peaks(doc).items()}
        contention = attribute_contention(doc)
        return {
            "n_flows": len(self.flows),
            "bytes_moved": self.bytes_moved,
            "spans_bound": self.spans_bound,
            "peak_utilization": peaks,
            "link_peak_utilization": max(peaks.values(), default=0.0),
            "transfer_contention_s": contention["total_contention_s"],
        }


# ---------------------------------------------------------------------------
# Post-hoc analyses of a repro.flows/v1 document
# ---------------------------------------------------------------------------

def link_timelines(doc: dict) -> dict[str, list[tuple[float, float]]]:
    """Per-link aggregate granted rate as a ``[(t, bytes/s), ...]`` step
    series.

    Every flow active at an allocator update has a capture at that
    instant, so the load at each capture time is an exact sum over the
    captures -- no prefix-sum cancellation.  A link drops to an explicit
    zero at the instant its last flow completes.
    """
    loads: dict[str, dict[float, float]] = {}
    for f in doc.get("flows", []):
        # A flow can carry several same-instant captures (its join plus
        # a reallocation at the same sim time); the last one appended is
        # the rate that actually flowed from that instant on.
        operative: dict[float, float] = {}
        for t, rate, _p in f["rates"]:
            operative[t] = rate
        for name, weight in f["links"]:
            per = loads.setdefault(name, {})
            for t, rate in operative.items():
                per[t] = per.get(t, 0.0) + weight * rate
    for f in doc.get("flows", []):
        if f["end"] is None:
            continue
        for name, _weight in f["links"]:
            loads.setdefault(name, {}).setdefault(f["end"], 0.0)
    for name in doc.get("capacities", {}):
        loads.setdefault(name, {})
    return {name: sorted(per.items())
            for name, per in sorted(loads.items())}


def link_utilization(doc: dict) -> dict[str, list[tuple[float, float]]]:
    """Per-link saturation (granted rate / capacity in effect) step
    series; links with unknown capacity are omitted."""
    events: dict[str, list[tuple[float, float]]] = {}
    for t, name, cap in doc.get("capacity_events", []):
        events.setdefault(name, []).append((t, cap))
    out: dict[str, list[tuple[float, float]]] = {}
    for name, pts in link_timelines(doc).items():
        cap = doc.get("capacities", {}).get(name)
        evs = sorted(events.get(name, []))
        if cap is None and not evs:
            continue
        series = []
        i = 0
        for t, load in pts:
            while i < len(evs) and evs[i][0] <= t:
                cap = evs[i][1]
                i += 1
            series.append((t, load / cap if cap else 0.0))
        out[name] = series
    return out


def link_peaks(doc: dict) -> dict[str, dict]:
    """Per-link headline numbers: capacity, peak granted rate, peak
    utilization."""
    util = link_utilization(doc)
    out = {}
    for name, pts in link_timelines(doc).items():
        out[name] = {
            "capacity_bytes_per_s": doc.get("capacities", {}).get(name),
            "peak_bytes_per_s": max((v for _, v in pts), default=0.0),
            "peak_utilization": max((v for _, v in util.get(name, [])),
                                    default=0.0),
        }
    return out


def concurrency_series(doc: dict) -> list[tuple[float, int]]:
    """Flows-in-flight over time as a ``[(t, count), ...]`` step series
    (integer-exact; zero-byte flows contribute a net zero)."""
    deltas: dict[float, int] = {}
    for f in doc.get("flows", []):
        deltas[f["start"]] = deltas.get(f["start"], 0) + 1
        if f["end"] is not None:
            deltas[f["end"]] = deltas.get(f["end"], 0) - 1
    out: list[tuple[float, int]] = []
    current = 0
    for t in sorted(deltas):
        current += deltas[t]
        out.append((t, current))
    return out


def settled_split(total: float,
                  weights: _t.Mapping[str, float]) -> dict[str, float]:
    """Split ``total`` proportionally over ``weights`` so that summing
    the returned parts in sorted key order reproduces ``total`` *bit for
    bit* -- the same absorber + directional-walk + half-ulp tie
    hardening as :func:`repro.obs.conformance.residual_attribution`.
    Degenerate weights (empty, or summing to <= 0) put everything on an
    ``"unattributed"`` part.
    """
    cats = sorted(weights)
    wsum = 0.0
    for c in cats:
        wsum += weights[c]
    if not cats or wsum <= 0:
        return {"unattributed": total}
    out = {c: total * (weights[c] / wsum) for c in cats}
    if len(cats) == 1:
        out[cats[0]] = total
        return out
    last = cats[-1]

    def _accumulate() -> float:
        p = 0.0
        for c in cats[:-1]:
            p += out[c]
        return p

    def _settle(p: float) -> bool:
        out[last] = total - p
        s = p + out[last]
        for _ in range(4):
            if s == total:
                return True
            out[last] = math.nextafter(out[last],
                                       math.inf if total > s else -math.inf)
            s = p + out[last]
        return s == total

    prefix = _accumulate()
    if not _settle(prefix):
        # Round-to-even tie: step prefix elements by half a prefix ulp
        # until the absorber can land on the total (see the long comment
        # in conformance.residual_attribution).
        half = math.ulp(prefix) / 2.0
        for j in range(len(cats) - 2, -1, -1):
            step = max(half, math.ulp(out[cats[j]]))
            landed = False
            for _ in range(8):
                out[cats[j]] += step
                if _settle(_accumulate()):
                    landed = True
                    break
            if landed:
                break
    return out


def attribute_contention(doc: dict) -> dict:
    """Decompose every completed flow's measured duration into isolation
    time plus slowdown charged to the concurrent flows sharing its
    links.

    Per rate segment the flow's bytes would have taken ``rate * dt /
    iso_rate`` seconds alone; the remainder of the segment is *excess*
    caused by contention, split over the concurrent flows in proportion
    to the byte volume they pushed through shared links during that
    segment (weighted by their link weights).  Excess with no sharer in
    sight (a capacity-degradation window) lands on ``"unattributed"``.
    The final ``parts`` -- ``"isolation"``, ``"flow:<id>"`` charges and
    ``"unattributed"`` -- sum to ``duration_s`` bit for bit in sorted
    key order (:func:`settled_split`); :func:`verify_contention`
    re-checks that independently.
    """
    flows = doc.get("flows", [])
    linkset = {f["id"]: {name: w for name, w in f["links"]} for f in flows}
    at: dict[float, list[tuple[int, float]]] = {}
    for f in flows:
        fid = f["id"]
        for t, rate, _p in f["rates"]:
            at.setdefault(t, []).append((fid, rate))
    out_flows = []
    total_contention = 0.0
    for f in flows:
        fid, end = f["id"], f["end"]
        if end is None:
            continue
        duration = end - f["start"]
        rates = f["rates"]
        iso_rate = f.get("iso_rate")
        base = {"id": fid, "label": f["label"], "span": f["span"],
                "duration_s": duration}
        if duration <= 0.0 or not rates or not iso_rate:
            base.update(isolation_s=duration, slowdown_s=0.0,
                        parts={"isolation": duration})
            out_flows.append(base)
            continue
        mylinks = linkset[fid]
        iso_w = 0.0
        shares: dict[str, float] = {}
        unattributed = 0.0
        for i, (t, rate, _p) in enumerate(rates):
            t_next = rates[i + 1][0] if i + 1 < len(rates) else end
            dt = t_next - t
            if dt <= 0.0:
                continue
            iso_dt = (rate * dt) / iso_rate
            if iso_dt > dt:
                iso_dt = dt
            iso_w += iso_dt
            excess = dt - iso_dt
            if excess <= 0.0:
                continue
            w: dict[int, float] = {}
            for gid, grate in at.get(t, ()):
                if gid == fid or grate <= 0.0:
                    continue
                shared = 0.0
                for name, gweight in linkset[gid].items():
                    if name in mylinks:
                        shared += gweight
                if shared > 0.0:
                    w[gid] = shared * grate * dt
            tot = 0.0
            for gid in sorted(w):
                tot += w[gid]
            if tot > 0.0:
                for gid in sorted(w):
                    key = f"flow:{gid}"
                    shares[key] = shares.get(key, 0.0) \
                        + excess * (w[gid] / tot)
            else:
                unattributed += excess
        weights: dict[str, float] = {"isolation": iso_w}
        weights.update(shares)
        if unattributed > 0.0:
            weights["unattributed"] = unattributed
        parts = settled_split(duration, weights)
        isolation = parts.get("isolation", 0.0)
        slowdown = duration - isolation
        total_contention += slowdown
        base.update(isolation_s=isolation, slowdown_s=slowdown,
                    parts=parts)
        out_flows.append(base)
    return {"schema": CONTENTION_SCHEMA, "flows": out_flows,
            "n_flows": len(out_flows),
            "total_contention_s": total_contention}


def verify_contention(contention: dict) -> dict:
    """Independently re-check the bit-for-bit attribution invariant:
    for every flow, summing ``parts`` in sorted key order (the order
    canonical JSON preserves) must reproduce ``duration_s`` exactly."""
    failures = []
    for f in contention["flows"]:
        parts = f["parts"]
        s = 0.0
        for k in sorted(parts):
            s += parts[k]
        if s != f["duration_s"]:
            failures.append(
                f"flow {f['id']} ({f['label']}): parts sum {s!r} != "
                f"duration {f['duration_s']!r}")
    return {"ok": not failures, "n_flows": len(contention["flows"]),
            "failures": failures}


def verify_rate_integral(doc: dict) -> dict:
    """Check the exact rate-integral invariant of the ledger.

    Between consecutive captures the network performed exactly one
    progress accumulation ``progressed += rate * dt`` with the same
    operands the ledger recorded, so ``p[i+1] == p[i] + rate[i] *
    (t[i+1] - t[i])`` must hold bit for bit -- and the bytes moved at
    completion must equal the last capture advanced to the end time the
    same way.  Any miss means the ledger and the allocator disagree.
    """
    failures = []
    checked = 0
    for f in doc.get("flows", []):
        pts = f["rates"]
        if not pts:
            if f["end"] is None or f["nbytes"] > 1e-6:
                failures.append(
                    f"flow {f['id']} ({f['label']}): no rate captures")
            continue
        checked += 1
        if pts[0][2] != 0.0:
            failures.append(
                f"flow {f['id']} ({f['label']}): first capture has "
                f"nonzero progress {pts[0][2]!r}")
            continue
        pt, pr, pp = pts[0]
        clean = True
        for t, rate, p in pts[1:]:
            if p != pp + pr * (t - pt):
                failures.append(
                    f"flow {f['id']} ({f['label']}): integral drift at "
                    f"t={t!r} ({p!r} != {pp + pr * (t - pt)!r})")
                clean = False
                break
            pt, pr, pp = t, rate, p
        if clean and f["end"] is not None and f["moved"] is not None:
            final = pp + pr * (f["end"] - pt)
            if f["moved"] != final:
                failures.append(
                    f"flow {f['id']} ({f['label']}): moved {f['moved']!r}"
                    f" != rate integral {final!r}")
    return {"ok": not failures, "checked": checked, "failures": failures}


def reconcile_flow_spans(doc: dict, trace) -> dict:
    """Reconcile the ledger against the causal trace: every span-bound
    flow must end exactly when its span ends and start no earlier than
    the span starts (merge spans include compute lead-in before their
    flow joins the bus)."""
    spans = trace.spans
    failures: list[str] = []
    checked = unbound = 0
    for f in doc.get("flows", []):
        sid = f.get("span")
        if sid is None:
            unbound += 1
            continue
        if not 0 <= sid < len(spans):
            failures.append(
                f"flow {f['id']} ({f['label']}): span {sid} not in trace")
            continue
        span = spans[sid]
        checked += 1
        if f["end"] != span.end:
            failures.append(
                f"flow {f['id']} ({f['label']}): ends at {f['end']!r} "
                f"but span {sid} ends at {span.end!r}")
        if f["start"] < span.start:
            failures.append(
                f"flow {f['id']} ({f['label']}): starts at {f['start']!r}"
                f" before span {sid} starts at {span.start!r}")
    return {"schema": RECONCILE_SCHEMA, "ok": not failures,
            "checked": checked, "unbound": unbound, "failures": failures}


class FlowRateSeries:
    """One link's granted-rate step series, duck-typing
    :class:`repro.obs.counters.CounterSeries` for the chrome-trace
    counter exporter (``samples()`` + ``unit``)."""

    __slots__ = ("name", "unit", "points")

    def __init__(self, name: str, points: _t.Sequence[tuple[float, float]],
                 unit: str = "bytes/s") -> None:
        self.name = name
        self.unit = unit
        self.points = list(points)

    def samples(self) -> _t.Iterator[tuple[float, float]]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FlowRateSeries {self.name!r} n={len(self.points)}>"


def flow_rate_counters(doc: dict) -> dict[str, FlowRateSeries]:
    """``link.<name>.bw_bytes_per_s`` Perfetto counter tracks for every
    link in the ledger (merge into the recorder's series mapping when
    exporting a chrome trace)."""
    out = {}
    for name, pts in link_timelines(doc).items():
        track = f"link.{name}.bw_bytes_per_s"
        out[track] = FlowRateSeries(track, pts)
    return out
