"""Derived metrics computed from a :class:`~repro.sim.trace.Trace`.

All quantities are pure functions of the recorded spans, so they can be
computed after any run (timing-only or functional) without touching the
simulation.  Definitions:

busy / idle / utilisation (per lane)
    ``busy`` is the union length of the lane's span intervals, ``idle``
    is ``makespan - busy`` over the whole run window, and
    ``utilization = busy / makespan`` (0 when the trace is empty).

category-overlap matrix
    ``overlap[a][b]`` is the length of the intersection of the interval
    *unions* of categories ``a`` and ``b`` -- how long the two kinds of
    work truly ran concurrently.  The diagonal ``overlap[a][a]`` equals
    the category's collapsed busy time, so the related-work subset
    (HtoD, DtoH, GPUSort) reproduces Fig. 7/Fig. 8's per-component
    accounting.

overlap efficiency
    ``critical_path / makespan`` where the critical-path lower bound is
    the busy time of the busiest serial lane (no schedule can finish
    before its most loaded resource does).  1.0 means the pipeline hides
    every other component behind the critical lane; the reciprocal
    (``makespan / critical_path``, the *stretch*) is the ratio the
    ISSUE/Fig. 11 accounting quotes.

pipeline bubbles
    Idle gaps inside a lane between its first and last span -- the
    stalls a better schedule could fill.
"""

from __future__ import annotations

import typing as _t

from repro.sim.trace import CAT, Trace

__all__ = [
    "merge_intervals", "intersect_intervals", "interval_length",
    "lane_metrics", "category_overlap_matrix", "overlap_efficiency",
    "critical_path_lower_bound", "link_throughput", "detect_bubbles",
    "compute_metrics",
]

Interval = _t.Tuple[float, float]


# ---------------------------------------------------------------------------
# Interval algebra
# ---------------------------------------------------------------------------

def merge_intervals(intervals: _t.Iterable[Interval]) -> list[Interval]:
    """Sorted union of intervals (overlapping/adjacent spans collapsed)."""
    ivs = sorted(intervals)
    out: list[Interval] = []
    for s, e in ivs:
        if out and s <= out[-1][1]:
            if e > out[-1][1]:
                out[-1] = (out[-1][0], e)
        else:
            out.append((s, e))
    return out


def interval_length(merged: _t.Sequence[Interval]) -> float:
    """Total length of a merged (disjoint, sorted) interval list."""
    return sum(e - s for s, e in merged)


def intersect_intervals(a: _t.Sequence[Interval],
                        b: _t.Sequence[Interval]) -> list[Interval]:
    """Intersection of two merged interval lists (two-pointer sweep)."""
    out: list[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        s = max(a[i][0], b[j][0])
        e = min(a[i][1], b[j][1])
        if s < e:
            out.append((s, e))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _spans_by(trace: Trace, *, category: str | None = None,
              lane: str | None = None) -> list[Interval]:
    return [(s.start, s.end) for s in trace.spans
            if (category is None or s.category == category)
            and (lane is None or s.lane == lane)]


# ---------------------------------------------------------------------------
# Per-lane accounting
# ---------------------------------------------------------------------------

def detect_bubbles(trace: Trace, lane: str,
                   min_gap: float = 0.0) -> list[Interval]:
    """Idle gaps within ``lane`` between its first and last span.

    Gaps no longer than ``min_gap`` are ignored.  Gaps before the lane's
    first span or after its last are *not* bubbles (the lane simply had
    no work yet / any more).
    """
    merged = merge_intervals(_spans_by(trace, lane=lane))
    out: list[Interval] = []
    for (_, prev_end), (nxt_start, _) in zip(merged[:-1], merged[1:]):
        if nxt_start - prev_end > min_gap:
            out.append((prev_end, nxt_start))
    return out


def lane_metrics(trace: Trace) -> dict[str, dict]:
    """Per-lane busy/idle/utilisation over the run's full window.

    Invariant (tested): ``busy + idle == makespan`` for every lane, and
    ``utilization`` lies in ``[0, 1]``.
    """
    makespan = trace.makespan()
    out: dict[str, dict] = {}
    for lane in trace.lanes():
        merged = merge_intervals(_spans_by(trace, lane=lane))
        busy = interval_length(merged)
        bubbles = detect_bubbles(trace, lane)
        out[lane] = {
            "busy_s": busy,
            "idle_s": makespan - busy,
            "utilization": (busy / makespan) if makespan > 0 else 0.0,
            "spans": sum(1 for s in trace.spans if s.lane == lane),
            "bubbles": len(bubbles),
            "bubble_s": interval_length(bubbles),
            "largest_bubble_s": max((e - s for s, e in bubbles),
                                    default=0.0),
        }
    return out


# ---------------------------------------------------------------------------
# Category overlap
# ---------------------------------------------------------------------------

def category_overlap_matrix(trace: Trace,
                            categories: _t.Sequence[str] | None = None
                            ) -> dict[str, dict[str, float]]:
    """Pairwise concurrency matrix over span categories.

    ``matrix[a][b]`` = seconds during which work of category ``a`` and
    work of category ``b`` were simultaneously in flight (interval
    unions intersected).  Symmetric; the diagonal is each category's
    collapsed busy time.  Invariant (tested):
    ``matrix[a][b] <= min(matrix[a][a], matrix[b][b])``.
    """
    if categories is None:
        seen: dict[str, None] = {}
        for s in trace.spans:
            seen.setdefault(s.category, None)
        categories = list(seen)
    merged = {c: merge_intervals(_spans_by(trace, category=c))
              for c in categories}
    matrix: dict[str, dict[str, float]] = {}
    for a in categories:
        row: dict[str, float] = {}
        for b in categories:
            if b in matrix:        # symmetry: reuse the transposed entry
                row[b] = matrix[b][a]
            elif a == b:
                row[b] = interval_length(merged[a])
            else:
                row[b] = interval_length(
                    intersect_intervals(merged[a], merged[b]))
        matrix[a] = row
    return matrix


# ---------------------------------------------------------------------------
# Makespan vs. critical path
# ---------------------------------------------------------------------------

def critical_path_lower_bound(trace: Trace) -> float:
    """Busy time of the busiest lane -- no schedule finishes earlier.

    This is the per-resource half of the Sec. IV-G lower-bound argument:
    the makespan is at least the work bound to any single serial
    resource (one PCIe direction, one GPU's sort engine, the merge
    thread pool's critical run).
    """
    return max((interval_length(merge_intervals(_spans_by(trace, lane=ln)))
                for ln in trace.lanes()), default=0.0)


def overlap_efficiency(trace: Trace) -> float:
    """``critical_path / makespan`` in ``(0, 1]`` (1.0 when empty).

    1.0 = perfect pipelining: everything off the critical lane is fully
    hidden.  The reciprocal is the stretch over the trace-derived lower
    bound.
    """
    makespan = trace.makespan()
    if makespan <= 0:
        return 1.0
    return critical_path_lower_bound(trace) / makespan


# ---------------------------------------------------------------------------
# Links
# ---------------------------------------------------------------------------

#: Categories that move payload over a measurable link.
LINK_CATEGORIES = (CAT.HTOD, CAT.DTOH, CAT.MCPY)


def link_throughput(trace: Trace) -> dict[str, dict[str, float]]:
    """Achieved bytes/second per transfer category (HtoD, DtoH, MCpy).

    ``busy_s`` collapses overlap (two concurrent HtoD streams count
    once), so ``bytes_per_s`` is the *link-level* goodput the run
    achieved, directly comparable to the platform's peak bandwidth.
    """
    out: dict[str, dict[str, float]] = {}
    for cat in LINK_CATEGORIES:
        nbytes = trace.bytes_moved(cat)
        if not nbytes and not trace.count(cat):
            continue
        busy = interval_length(
            merge_intervals(_spans_by(trace, category=cat)))
        out[cat] = {
            "bytes": nbytes,
            "busy_s": busy,
            "bytes_per_s": (nbytes / busy) if busy > 0 else 0.0,
        }
    return out


# ---------------------------------------------------------------------------
# The full metrics dict
# ---------------------------------------------------------------------------

def compute_metrics(trace: Trace, elapsed: float | None = None,
                    counters: "dict | None" = None) -> dict:
    """Assemble the complete metrics dictionary for one run.

    ``elapsed`` is the run's end-to-end response time (defaults to the
    trace makespan); ``counters`` is an optional summary produced by
    :meth:`repro.obs.counters.MetricsRecorder.summary`.

    Keys (all derived, all deterministic):

    * ``makespan_s``, ``elapsed_s``
    * ``components`` -- per-category summed durations (== ``Trace.total``)
    * ``component_busy`` -- per-category collapsed busy time
    * ``overlap_matrix`` -- :func:`category_overlap_matrix`
    * ``related_work_end_to_end_s`` / ``missing_overhead_s`` -- Fig. 8
    * ``lanes`` -- :func:`lane_metrics`
    * ``links`` -- :func:`link_throughput`
    * ``critical_path_s``, ``overlap_efficiency``, ``stretch``
    * ``counters`` -- live counter summaries (when recorded)
    """
    # One pass over the trace groups everything the sections below need;
    # each helper's algorithm is then applied to the grouped data, so the
    # resulting floats are identical to calling the public functions
    # individually (same multisets through the same operations) -- this
    # just avoids ~15 full re-scans of a large trace.
    spans = trace.spans
    cat_ivs: dict[str, list[Interval]] = {}
    lane_ivs: dict[str, list[Interval]] = {}
    lane_count: dict[str, int] = {}
    cat_dur: dict[str, float] = {}
    cat_bytes: dict[str, float] = {}
    cat_count: dict[str, int] = {}
    min_start = float("inf")
    max_end = float("-inf")
    for s in spans:
        iv = (s.start, s.end)
        cat, lane = s.category, s.lane
        bucket = cat_ivs.get(cat)
        if bucket is None:
            bucket = cat_ivs[cat] = []
            cat_dur[cat] = 0.0
            cat_bytes[cat] = 0.0
            cat_count[cat] = 0
        bucket.append(iv)
        cat_dur[cat] += s.end - s.start
        cat_bytes[cat] += s.nbytes
        cat_count[cat] += 1
        bucket = lane_ivs.get(lane)
        if bucket is None:
            bucket = lane_ivs[lane] = []
            lane_count[lane] = 0
        bucket.append(iv)
        lane_count[lane] += 1
        if s.start < min_start:
            min_start = s.start
        if s.end > max_end:
            max_end = s.end

    makespan = (max_end - min_start) if spans else 0.0
    elapsed = makespan if elapsed is None else float(elapsed)

    merged_cat = {c: merge_intervals(ivs) for c, ivs in cat_ivs.items()}
    merged_lane = {ln: merge_intervals(ivs) for ln, ivs in lane_ivs.items()}

    categories = list(merged_cat)
    matrix: dict[str, dict[str, float]] = {}
    for a in categories:
        row: dict[str, float] = {}
        for b in categories:
            if b in matrix:        # symmetry: reuse the transposed entry
                row[b] = matrix[b][a]
            elif a == b:
                row[b] = interval_length(merged_cat[a])
            else:
                row[b] = interval_length(
                    intersect_intervals(merged_cat[a], merged_cat[b]))
        matrix[a] = row
    related = sum(matrix.get(c, {}).get(c, 0.0) for c in CAT.RELATED_WORK)

    lanes: dict[str, dict] = {}
    for lane, merged in merged_lane.items():
        busy = interval_length(merged)
        bubbles = [(pe, ns) for (_, pe), (ns, _) in zip(merged, merged[1:])
                   if ns - pe > 0.0]
        lanes[lane] = {
            "busy_s": busy,
            "idle_s": makespan - busy,
            "utilization": (busy / makespan) if makespan > 0 else 0.0,
            "spans": lane_count[lane],
            "bubbles": len(bubbles),
            "bubble_s": interval_length(bubbles),
            "largest_bubble_s": max((e - s for s, e in bubbles),
                                    default=0.0),
        }

    links: dict[str, dict[str, float]] = {}
    for cat in LINK_CATEGORIES:
        nbytes = cat_bytes.get(cat, 0.0)
        if not nbytes and not cat_count.get(cat, 0):
            continue
        busy = interval_length(merged_cat.get(cat, []))
        links[cat] = {
            "bytes": nbytes,
            "busy_s": busy,
            "bytes_per_s": (nbytes / busy) if busy > 0 else 0.0,
        }

    critical = max((interval_length(m) for m in merged_lane.values()),
                   default=0.0)
    metrics = {
        "makespan_s": makespan,
        "elapsed_s": elapsed,
        "components": dict(sorted(cat_dur.items(), key=lambda kv: -kv[1])),
        "component_busy": {c: matrix[c][c] for c in matrix},
        "overlap_matrix": matrix,
        "related_work_end_to_end_s": related,
        "missing_overhead_s": max(0.0, elapsed - related),
        "lanes": lanes,
        "links": links,
        "critical_path_s": critical,
        "overlap_efficiency": (critical / makespan) if makespan > 0
        else 1.0,
        "stretch": (makespan / critical) if critical > 0 else 1.0,
    }
    if counters:
        metrics["counters"] = counters
    return metrics
