"""Live counters and gauges sampled while a simulation runs.

A :class:`MetricsRecorder` holds named :class:`CounterSeries`; probes
inside the simulation (resource queues, pinned-memory accounting, the
PCIe copy paths, the approach runners) push ``(time, value)`` samples as
state changes.  Recording never schedules events or consumes simulated
time, so an attached recorder cannot perturb the timeline -- the
determinism tests pin this.

Series are exported as Perfetto/Chrome counter tracks by
:func:`repro.reporting.chrometrace.to_chrome_trace` and summarised into
``SortResult.metrics["counters"]``.
"""

from __future__ import annotations

import typing as _t

__all__ = ["CounterSeries", "MetricsRecorder"]


class CounterSeries:
    """One named time series of ``(time, value)`` samples."""

    __slots__ = ("name", "unit", "times", "values")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.times: list[float] = []
        self.values: list[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def add(self, t: float, value: float) -> None:
        """Append a sample; repeated samples at one instant keep the
        latest value (state changes within a zero-width event cascade)."""
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"counter {self.name!r}: sample at {t} before {self.times[-1]}")
        if self.times and t == self.times[-1]:
            self.values[-1] = value
        else:
            self.times.append(t)
            self.values.append(value)

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    def time_weighted_mean(self, t_end: float | None = None) -> float:
        """Average value weighted by how long each value was held.

        The last value is held until ``t_end`` (default: the last sample
        time, i.e. zero weight for the final sample).
        """
        if not self.times:
            return 0.0
        t_end = self.times[-1] if t_end is None else t_end
        total = 0.0
        span = t_end - self.times[0]
        if span <= 0:
            return self.values[-1]
        for i, v in enumerate(self.values):
            nxt = self.times[i + 1] if i + 1 < len(self.times) else t_end
            total += v * max(0.0, nxt - self.times[i])
        return total / span

    def samples(self) -> _t.Iterator[tuple[float, float]]:
        return zip(self.times, self.values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CounterSeries {self.name!r} n={len(self)} "
                f"last={self.last:g}>")


class MetricsRecorder:
    """Registry of counter series, bound to a simulation clock.

    ``clock`` is any zero-argument callable returning the current
    simulated time (normally ``lambda: env.now``).
    """

    def __init__(self, clock: _t.Callable[[], float] | None = None) -> None:
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.series: dict[str, CounterSeries] = {}
        self._totals: dict[str, float] = {}
        #: Streaming telemetry: optional
        #: :class:`~repro.obs.events.EventBus` that every recorded
        #: sample is also published to as a ``counter`` event (so the
        #: JSONL event log can reconstruct the series exactly).
        self.bus = None

    def series_for(self, name: str, unit: str = "") -> CounterSeries:
        """The series called ``name``, created on first use."""
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = CounterSeries(name, unit=unit)
        return s

    # -- recording -----------------------------------------------------------

    def sample(self, name: str, value: float, unit: str = "") -> None:
        """Record a gauge sample at the current simulated time."""
        self.series_for(name, unit=unit).add(self.clock(), float(value))
        if self.bus is not None:
            self.bus.counter(name, float(value), unit=unit)

    def incr(self, name: str, delta: float = 1.0, unit: str = "") -> None:
        """Advance a monotonically accumulating counter by ``delta``."""
        total = self._totals.get(name, 0.0) + delta
        self._totals[name] = total
        self.series_for(name, unit=unit).add(self.clock(), total)
        if self.bus is not None:
            self.bus.counter(name, total, unit=unit)

    def probe(self, name: str, getter: _t.Callable[[_t.Any], float]
              ) -> _t.Callable[[_t.Any], None]:
        """A callback sampling ``getter(obj)`` into ``name`` -- the shape
        :class:`~repro.sim.resources.Resource` probes expect."""
        def _cb(obj) -> None:
            self.sample(name, getter(obj))
        return _cb

    # -- export --------------------------------------------------------------

    def summary(self, t_end: float | None = None) -> dict[str, dict]:
        """Per-series scalar summary for ``SortResult.metrics``."""
        out: dict[str, dict] = {}
        for name in sorted(self.series):
            s = self.series[name]
            out[name] = {
                "samples": len(s),
                "last": s.last,
                "max": s.max(),
                "mean": s.time_weighted_mean(t_end),
            }
        return out
