"""The shipped :class:`~repro.obs.events.Sink` implementations.

* :class:`JsonlSink` -- a byte-stable ``repro.events/v1`` structured
  log: one canonical-JSON line per event, replayable back into a
  :class:`~repro.sim.trace.Trace` and counter series with
  :func:`replay_events` (exactness pinned by tests);
* :class:`LiveAggregator` -- rolling per-lane throughput, per-category
  progress fractions and an ETA derived from the Sec. IV-G lower-bound
  model (falling back to progress extrapolation);
* :class:`TtySink` -- a throttled terminal renderer (per-lane progress
  bars, utilization, ETA) that degrades to periodic plain lines when
  stdout is not a TTY -- the ``repro run --live`` / ``repro watch``
  view;
* :class:`WatchdogSink` -- publishes ``warning`` events for stalls (no
  span recorded for N engine steps, a queue pinned at capacity with
  waiters) and simulated-deadline overruns.

All sinks obey the neutrality invariant of :mod:`repro.obs.events`:
they observe, they never touch the simulation.
"""

from __future__ import annotations

import json
import sys
import time
import typing as _t
from collections import deque

from repro.errors import EventLogError
from repro.obs.counters import MetricsRecorder
from repro.obs.diff import canonical_json
from repro.obs.events import EV, EVENTS_SCHEMA, EventBus, Sink, TelemetryEvent
from repro.sim.trace import CAT, Trace

__all__ = [
    "JsonlSink", "LiveAggregator", "TtySink", "WatchdogSink",
    "read_events", "replay_events", "validate_events", "validate_event_log",
]


# ---------------------------------------------------------------------------
# JSONL structured log
# ---------------------------------------------------------------------------

class JsonlSink(Sink):
    """Write every event as one compact canonical-JSON line.

    The first line is the schema header
    (``{"schema": "repro.events/v1"}``); each following line is one
    :meth:`TelemetryEvent.to_dict`.  Because event times are simulated
    and sequence numbers deterministic, a same-seed run writes
    byte-identical logs -- the property the CI smoke job and the
    acceptance tests pin.

    ``target`` may be a path (opened and owned by the sink) or any
    file-like object (flushed but left open on :meth:`close`).
    """

    def __init__(self, target) -> None:
        if hasattr(target, "write"):
            self._fh = target
            self._owns = False
        else:
            self._fh = open(target, "w")
            self._owns = True
        self._fh.write(canonical_json({"schema": EVENTS_SCHEMA},
                                      indent=None) + "\n")

    def emit(self, event: TelemetryEvent) -> None:
        self._fh.write(canonical_json(event.to_dict(), indent=None) + "\n")

    def close(self) -> None:
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()


def read_events(path) -> tuple[dict, list[TelemetryEvent]]:
    """Read a ``repro.events/v1`` JSONL log; returns ``(header,
    events)``.  Raises :class:`~repro.errors.EventLogError` on a missing
    or foreign schema header or unparsable lines."""
    header: dict | None = None
    events: list[TelemetryEvent] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EventLogError(
                    f"{path}:{lineno}: not valid JSON ({exc})") from exc
            if header is None:
                if doc.get("schema") != EVENTS_SCHEMA:
                    raise EventLogError(
                        f"{path}:{lineno}: unknown event-log schema "
                        f"{doc.get('schema')!r} (expected {EVENTS_SCHEMA})")
                header = doc
                continue
            try:
                events.append(TelemetryEvent.from_dict(doc))
            except KeyError as exc:
                raise EventLogError(
                    f"{path}:{lineno}: event line missing {exc}") from exc
    if header is None:
        raise EventLogError(f"{path}: empty event log (no schema header)")
    return header, events


_SPAN_FIELDS = ("id", "category", "label", "start", "end", "lane",
                "nbytes", "elements", "meta", "deps")


def validate_events(events: _t.Sequence[TelemetryEvent]) -> dict:
    """Validate an in-memory event stream against the ``repro.events/v1``
    contract; returns a per-kind count summary.

    Checks: known kinds; a gapless monotonic ``seq``; non-decreasing
    event times; complete span records whose ids form the gapless
    recording order with backward-pointing deps; ``run.start`` (if
    present) first and ``run.end`` (if present) last.  Violations raise
    :class:`~repro.errors.EventLogError`.
    """
    counts: dict[str, int] = {k: 0 for k in EV.ALL}
    n_spans = 0
    last_t = 0.0
    for i, ev in enumerate(events):
        if ev.kind not in counts:
            raise EventLogError(f"event {i}: unknown kind {ev.kind!r}")
        if ev.seq != i:
            raise EventLogError(
                f"event {i}: sequence {ev.seq} breaks the gapless order")
        if ev.t < last_t:
            raise EventLogError(
                f"event {i}: time {ev.t} precedes {last_t}")
        last_t = ev.t
        counts[ev.kind] += 1
        if ev.kind == EV.RUN_START and i != 0:
            raise EventLogError(f"event {i}: run.start is not first")
        if ev.kind == EV.RUN_END and i != len(events) - 1:
            raise EventLogError(f"event {i}: run.end is not last")
        if ev.kind == EV.SPAN:
            missing = [f for f in _SPAN_FIELDS if f not in ev.data]
            if missing:
                raise EventLogError(
                    f"event {i}: span record missing {missing}")
            if ev.data["id"] != n_spans:
                raise EventLogError(
                    f"event {i}: span id {ev.data['id']} breaks recording "
                    f"order (expected {n_spans}); the log is not a "
                    "complete span stream")
            if any(not 0 <= d < n_spans for d in ev.data["deps"]):
                raise EventLogError(
                    f"event {i}: span {n_spans} has a forward/invalid dep")
            if ev.data["end"] < ev.data["start"]:
                raise EventLogError(
                    f"event {i}: span ends before it starts")
            n_spans += 1
        elif ev.kind == EV.COUNTER:
            if "name" not in ev.data or "value" not in ev.data:
                raise EventLogError(f"event {i}: counter without name/value")
        elif ev.kind == EV.QUEUE:
            if "name" not in ev.data or "depth" not in ev.data:
                raise EventLogError(f"event {i}: queue without name/depth")
        elif ev.kind == EV.PHASE:
            if "name" not in ev.data:
                raise EventLogError(f"event {i}: phase without name")
        elif ev.kind == EV.FAULT:
            if "kind" not in ev.data:
                raise EventLogError(f"event {i}: fault without kind")
        elif ev.kind == EV.RETRY:
            if "what" not in ev.data or "attempt" not in ev.data:
                raise EventLogError(
                    f"event {i}: retry without what/attempt")
        elif ev.kind == EV.DEGRADE:
            if "reason" not in ev.data:
                raise EventLogError(f"event {i}: degrade without reason")
        elif ev.kind in (EV.MEM_ALLOC, EV.MEM_FREE):
            missing = [f for f in ("pool", "name", "nbytes", "balance")
                       if f not in ev.data]
            if missing:
                raise EventLogError(
                    f"event {i}: {ev.kind} record missing {missing}")
            if ev.data["balance"] < 0:
                raise EventLogError(
                    f"event {i}: {ev.kind} drove pool "
                    f"{ev.data['pool']!r} balance negative")
        elif ev.kind == EV.MEM_WATERMARK:
            if "pool" not in ev.data or "peak_bytes" not in ev.data:
                raise EventLogError(
                    f"event {i}: mem.watermark without pool/peak_bytes")
        elif ev.kind == EV.FLOW_START:
            missing = [f for f in ("id", "nbytes", "links")
                       if f not in ev.data]
            if missing:
                raise EventLogError(
                    f"event {i}: flow.start record missing {missing}")
        elif ev.kind == EV.FLOW_RATE:
            if "id" not in ev.data or "rate" not in ev.data:
                raise EventLogError(f"event {i}: flow.rate without id/rate")
            if ev.data["rate"] < 0:
                raise EventLogError(
                    f"event {i}: flow.rate granted a negative rate")
        elif ev.kind == EV.FLOW_END:
            if "id" not in ev.data:
                raise EventLogError(f"event {i}: flow.end without id")
    return {"schema": EVENTS_SCHEMA, "n_events": len(events),
            "t_end": last_t, "counts": counts}


def validate_event_log(path) -> dict:
    """Read and validate a JSONL event log file (see
    :func:`validate_events`)."""
    _, events = read_events(path)
    return validate_events(events)


def replay_events(events: _t.Sequence[TelemetryEvent]
                  ) -> tuple[Trace, MetricsRecorder]:
    """Reconstruct the run's :class:`~repro.sim.trace.Trace` (span ids,
    deps, metadata) and counter series from its event stream.

    For a log written by :class:`JsonlSink` during a run the
    reconstruction is *exact*: span ids/deps match the original trace
    and every counter series has identical ``(time, value)`` samples
    (the round-trip tests pin this).
    """
    trace = Trace()
    recorder = MetricsRecorder()
    for ev in events:
        if ev.kind == EV.SPAN:
            d = ev.data
            span = trace.record(
                d["category"], d["label"], d["start"], d["end"],
                lane=d["lane"], nbytes=d["nbytes"],
                elements=d["elements"],
                meta=[tuple(kv) for kv in d["meta"]], deps=d["deps"])
            if span.id != d["id"]:
                raise EventLogError(
                    f"span id mismatch on replay: recorded {span.id}, "
                    f"logged {d['id']} (incomplete span stream?)")
        elif ev.kind == EV.COUNTER:
            d = ev.data
            recorder.series_for(d["name"], unit=d.get("unit", "")) \
                .add(ev.t, d["value"])
    return trace, recorder


# ---------------------------------------------------------------------------
# Rolling aggregation
# ---------------------------------------------------------------------------

#: Per-category "bytes expected end to end" factors relative to ``n *
#: 8`` bytes (one full pass HtoD, one DtoH, staging touches the data
#: twice).  Progress fractions are estimates -- approaches that move
#: extra data (GPUMERGE's merge tree) simply saturate at 1.0.
_EXPECTED_BYTE_PASSES = {CAT.HTOD: 1.0, CAT.DTOH: 1.0, CAT.MCPY: 2.0}


class LiveAggregator(Sink):
    """Fold the event stream into a live snapshot: rolling per-lane
    throughput, per-category progress fractions, batch progress and an
    ETA.

    ``model_slope`` (seconds per element, e.g. from
    :func:`repro.model.lowerbound.measure_bline_throughput`) grounds
    the ETA in the Sec. IV-G lower-bound model; once enough batches
    completed the extrapolated progress ETA takes over (the model is a
    *lower* bound, so it systematically undershoots for the blocking
    approaches).  ``window_s`` is the rolling-throughput window in
    simulated seconds.
    """

    def __init__(self, window_s: float = 0.5,
                 model_slope: float | None = None) -> None:
        self.window_s = float(window_s)
        self.model_slope = model_slope
        self.t = 0.0
        self.run: dict = {}
        self.ended = False
        self.elapsed_s: float | None = None
        self.batches_completed = 0
        self.merge_started = False
        self.warnings: list[dict] = []
        self.queues: dict[str, int] = {}
        self.counters: dict[str, float] = {}
        self.memory: dict[str, dict] = {}
        self.flows_in_flight = 0
        self.flows_completed = 0
        self._lanes: dict[str, dict] = {}
        self._cats: dict[str, dict] = {}

    # -- event folding -------------------------------------------------------

    def emit(self, event: TelemetryEvent) -> None:
        self.t = max(self.t, event.t)
        d = event.data
        if event.kind == EV.SPAN:
            lane = self._lanes.setdefault(
                d["lane"], {"busy_s": 0.0, "bytes": 0.0, "spans": 0,
                            "window": deque()})
            dur = d["end"] - d["start"]
            lane["busy_s"] += dur
            lane["bytes"] += d["nbytes"]
            lane["spans"] += 1
            lane["window"].append((d["end"], d["nbytes"]))
            cat = self._cats.setdefault(
                d["category"], {"busy_s": 0.0, "bytes": 0.0, "elements": 0})
            cat["busy_s"] += dur
            cat["bytes"] += d["nbytes"]
            cat["elements"] += d["elements"]
        elif event.kind == EV.QUEUE:
            self.queues[d["name"]] = d["depth"]
        elif event.kind == EV.COUNTER:
            self.counters[d["name"]] = d["value"]
        elif event.kind == EV.PHASE:
            if d["name"] == "run.sorted":
                self.batches_completed += 1
            elif d["name"] == "merge.started":
                self.merge_started = True
        elif event.kind == EV.RUN_START:
            self.run = dict(d)
        elif event.kind == EV.RUN_END:
            self.ended = True
            self.elapsed_s = d.get("elapsed_s")
        elif event.kind == EV.WARNING:
            self.warnings.append(dict(d))
        elif event.kind in (EV.MEM_ALLOC, EV.MEM_FREE):
            pool = self.memory.setdefault(
                d["pool"], {"bytes": 0, "peak_bytes": 0,
                            "capacity_bytes": None})
            pool["bytes"] = d["balance"]
            if d["balance"] > pool["peak_bytes"]:
                pool["peak_bytes"] = d["balance"]
        elif event.kind == EV.MEM_WATERMARK:
            pool = self.memory.setdefault(
                d["pool"], {"bytes": 0, "peak_bytes": 0,
                            "capacity_bytes": None})
            pool["peak_bytes"] = d["peak_bytes"]
            if d.get("capacity_bytes") is not None:
                pool["capacity_bytes"] = d["capacity_bytes"]
        elif event.kind == EV.FLOW_START:
            self.flows_in_flight += 1
        elif event.kind == EV.FLOW_END:
            self.flows_in_flight -= 1
            self.flows_completed += 1

    # -- derived views -------------------------------------------------------

    def progress_fraction(self) -> float | None:
        """Completed batches / planned batches (None before run.start)."""
        n_batches = self.run.get("n_batches")
        if not n_batches:
            return None
        return min(1.0, self.batches_completed / n_batches)

    def eta_s(self) -> float | None:
        """Estimated remaining simulated seconds (None when unknowable).

        Progress extrapolation once >= 10% of batches completed;
        otherwise the lower-bound model's ``slope * n - t``.
        """
        frac = self.progress_fraction()
        n = self.run.get("n")
        if frac is not None and frac >= 0.1 and self.t > 0:
            return self.t * (1.0 - frac) / frac
        if self.model_slope is not None and n:
            remaining = self.model_slope * n - self.t
            # The model is a *lower* bound; once the run outlives it the
            # estimate carries no information -- report unknown.
            return remaining if remaining > 0 else None
        return None

    def snapshot(self) -> dict:
        """The current aggregate view (plain JSON-serialisable dict)."""
        lanes = {}
        for name, lane in sorted(self._lanes.items()):
            window = lane["window"]
            horizon = self.t - self.window_s
            while window and window[0][0] < horizon:
                window.popleft()
            lanes[name] = {
                "busy_s": lane["busy_s"],
                "utilization": (lane["busy_s"] / self.t
                                if self.t > 0 else 0.0),
                "throughput_B_s": (sum(b for _, b in window) / self.window_s
                                   if self.window_s > 0 else 0.0),
                "spans": lane["spans"],
            }
        n = self.run.get("n") or 0
        cats = {}
        for name, cat in sorted(self._cats.items()):
            passes = _EXPECTED_BYTE_PASSES.get(name)
            frac = None
            if passes and n:
                frac = min(1.0, cat["bytes"] / (passes * n * 8.0))
            elif name == CAT.GPUSORT and n:
                frac = min(1.0, cat["elements"] / n)
            cats[name] = {"busy_s": cat["busy_s"], "bytes": cat["bytes"],
                          "fraction": frac}
        return {
            "t": self.t,
            "run": dict(self.run),
            "progress": {
                "batches_completed": self.batches_completed,
                "n_batches": self.run.get("n_batches"),
                "fraction": self.progress_fraction(),
                "merge_started": self.merge_started,
            },
            "eta_s": self.eta_s(),
            "lanes": lanes,
            "categories": cats,
            "queues": dict(sorted(self.queues.items())),
            "counters": dict(sorted(self.counters.items())),
            "memory": {name: dict(pool) for name, pool in
                       sorted(self.memory.items(),
                              key=lambda kv: (kv[0] == "pinned", kv[0]))},
            "warnings": len(self.warnings),
            "last_warning": (self.warnings[-1].get("message")
                             if self.warnings else None),
            "ended": self.ended,
            "elapsed_s": self.elapsed_s,
        }


# ---------------------------------------------------------------------------
# Terminal renderer
# ---------------------------------------------------------------------------

class TtySink(Sink):
    """Render the aggregated view to a terminal while the run executes.

    On a TTY the view is redrawn in place (ANSI cursor movement),
    throttled to ``refresh_wall_s`` *wall-clock* seconds so rendering
    never slows a fast simulation down.  When ``out`` is not a TTY the
    sink degrades to one plain progress line every
    ``plain_interval_s`` *simulated* seconds (CI-friendly).  A final
    frame is always rendered on ``run.end`` / :meth:`close`.
    """

    def __init__(self, out=None, aggregator: LiveAggregator | None = None,
                 model_slope: float | None = None,
                 refresh_wall_s: float = 0.2,
                 plain_interval_s: float = 0.25, width: int = 72) -> None:
        self.out = out if out is not None else sys.stdout
        self.agg = aggregator if aggregator is not None else \
            LiveAggregator(model_slope=model_slope)
        self.width = width
        self.refresh_wall_s = refresh_wall_s
        self.plain_interval_s = plain_interval_s
        self._is_tty = bool(getattr(self.out, "isatty", lambda: False)())
        self._last_wall = 0.0
        self._next_plain_t = plain_interval_s
        self._block_lines = 0
        self._closed = False

    def emit(self, event: TelemetryEvent) -> None:
        self.agg.emit(event)
        if event.kind == EV.WARNING and not self._is_tty:
            self.out.write(f"WARNING [{event.data.get('code')}] "
                           f"t={event.t:.4f}s: "
                           f"{event.data.get('message')}\n")
        elif event.kind == EV.RUN_END:
            self._render_final()

    def on_step(self, bus: EventBus) -> None:
        if self._is_tty:
            wall = time.monotonic()
            if wall - self._last_wall >= self.refresh_wall_s:
                self._last_wall = wall
                self._render_block()
        else:
            t = bus.clock()
            if t >= self._next_plain_t:
                from repro.reporting.live import render_plain_line
                self.out.write(render_plain_line(self.agg.snapshot()) + "\n")
                while self._next_plain_t <= t:
                    self._next_plain_t += self.plain_interval_s

    def close(self) -> None:
        if not self._closed and not self.agg.ended:
            self._render_final()
        self._closed = True

    # -- rendering -----------------------------------------------------------

    def _render_block(self) -> None:
        from repro.reporting.live import render_snapshot
        text = render_snapshot(self.agg.snapshot(), width=self.width)
        lines = text.count("\n") + 1
        if self._block_lines:
            # Rewind over the previous frame and clear to screen end.
            self.out.write(f"\x1b[{self._block_lines}F\x1b[J")
        self.out.write(text + "\n")
        self._block_lines = lines
        if hasattr(self.out, "flush"):
            self.out.flush()

    def _render_final(self) -> None:
        from repro.reporting.live import render_snapshot
        if self._block_lines:
            self.out.write(f"\x1b[{self._block_lines}F\x1b[J")
            self._block_lines = 0
        self.out.write(render_snapshot(self.agg.snapshot(),
                                       width=self.width) + "\n")
        if hasattr(self.out, "flush"):
            self.out.flush()


# ---------------------------------------------------------------------------
# Watchdog
# ---------------------------------------------------------------------------

class WatchdogSink(Sink):
    """Publish ``warning`` events for stalls and deadline overruns.

    * **span stall** -- no span recorded for ``stall_steps`` engine
      steps (the pipeline is churning through events without finishing
      any timed operation);
    * **pinned queue** -- a resource stayed fully occupied with waiters
      queued, or a store's getters stayed blocked, for
      ``queue_wait_steps`` consecutive engine steps (head-of-line
      blocking);
    * **deadline** -- simulated time passed ``deadline_s``.

    One warning is published per episode (re-armed when the condition
    clears).  Thresholds are engine *steps*, not seconds, so verdicts
    are deterministic and byte-stable in the JSONL log (see
    EXPERIMENTS.md for how the defaults were chosen).  Warnings are
    diagnostics only -- the run itself is never altered.
    """

    def __init__(self, stall_steps: int = 2000,
                 queue_wait_steps: int = 2000,
                 deadline_s: float | None = None) -> None:
        self.stall_steps = int(stall_steps)
        self.queue_wait_steps = int(queue_wait_steps)
        self.deadline_s = deadline_s
        self._steps_since_span = 0
        self._stalled = False
        self._deadline_warned = False
        self._pinned: dict[str, int] = {}      # queue name -> steps pinned
        self._pinned_warned: set[str] = set()
        self._ended = False

    def emit(self, event: TelemetryEvent) -> None:
        if event.kind == EV.SPAN:
            self._steps_since_span = 0
            self._stalled = False
        elif event.kind == EV.QUEUE:
            d = event.data
            # Only capacity-limited resources can be "pinned": full with
            # waiters queued.  Stores' blocked getters are normal
            # consumer idling, not head-of-line blocking.
            pinned = ("capacity" in d and d["depth"] > 0
                      and d.get("in_use", 0) >= d["capacity"])
            name = d["name"]
            if pinned:
                self._pinned.setdefault(name, 0)
            else:
                self._pinned.pop(name, None)
                self._pinned_warned.discard(name)
        elif event.kind == EV.RUN_END:
            self._ended = True

    def on_step(self, bus: EventBus) -> None:
        if self._ended:
            return
        self._steps_since_span += 1
        if self._steps_since_span > self.stall_steps and not self._stalled:
            self._stalled = True
            bus.warning(
                "stall", f"no span recorded for {self._steps_since_span} "
                         "engine steps", steps=self._steps_since_span)
        for name in list(self._pinned):
            self._pinned[name] += 1
            if self._pinned[name] > self.queue_wait_steps \
                    and name not in self._pinned_warned:
                self._pinned_warned.add(name)
                bus.warning(
                    "queue.pinned",
                    f"queue {name!r} pinned at capacity with waiters for "
                    f"{self._pinned[name]} engine steps",
                    queue=name, steps=self._pinned[name])
        if self.deadline_s is not None and not self._deadline_warned:
            now = bus.clock()
            if now > self.deadline_s:
                self._deadline_warned = True
                bus.warning(
                    "deadline",
                    f"run passed its {self.deadline_s:g} s deadline at "
                    f"t={now:.6f} s",
                    deadline_s=self.deadline_s, t=now)
