"""Cross-run performance archive: a content-addressed, append-only
record of every measured run.

One run in exquisite detail is what the rest of :mod:`repro.obs`
provides; the archive is the repo's *memory across runs*.  Every entry
point -- ``repro run/sweep/chaos``, ``benchmarks/regression_gate.py``,
``benchmarks/conformance_gate.py`` and the engine gate -- can append a
compact ``repro.archive/v1`` record per run: workload/config
fingerprint, headline measurements (makespan, events/sec, throughput),
per-lane utilization, the canonical run report (critical-path
composition included), conformance residuals, gate verdicts and an
optional :mod:`repro.obs.profile` snapshot.  The trend observatory
(:mod:`repro.obs.trends`) reads the archive back as per-metric time
series keyed by fingerprint.

Three properties make the archive trustworthy:

* **content-addressed** -- each entry carries ``entry``, the SHA-256 (16
  hex chars) of its own canonical-JSON body, and ``fingerprint``, the
  SHA-256 of the workload/config point.  A corrupted or hand-edited line
  no longer matches its hash and :func:`validate_archive` rejects it;
* **append-only and idempotent** -- :func:`append_entries` never
  rewrites existing lines and skips entries whose id is already present,
  so re-archiving the same deterministic run is a byte-level no-op;
* **byte-stable** -- entries are serialized with
  :func:`repro.obs.diff.canonical_json` in compact form, so the same run
  always produces the identical line.

Alongside ``<name>.jsonl`` lives ``<name>.manifest.json``
(``repro.archive_manifest/v1``): the entry-id order, per-fingerprint and
per-source counts.  :func:`validate_archive` cross-checks both files,
analogous to :func:`repro.obs.sinks.validate_event_log`.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import typing as _t

from repro.errors import ArchiveError
from repro.obs.diff import canonical_json, run_report

__all__ = [
    "ARCHIVE_SCHEMA", "MANIFEST_SCHEMA", "fingerprint", "entry_id",
    "make_entry", "entry_from_result", "entry_from_ledger",
    "load_archive", "append_entries", "manifest_path", "build_manifest",
    "validate_archive", "archive_summary",
]

ARCHIVE_SCHEMA = "repro.archive/v1"
MANIFEST_SCHEMA = "repro.archive_manifest/v1"

#: Hex digits kept from the SHA-256 of a fingerprint / entry id.  64
#: bits of content address: ample for archives of thousands of entries,
#: short enough to read in a table.
_HASH_CHARS = 16

#: Entry keys every record must carry (``report``/``residuals``/
#: ``profile`` may be None, ``verdicts`` may be empty).
_REQUIRED_KEYS = ("schema", "entry", "fingerprint", "source", "label",
                  "point", "metrics", "lanes", "report", "residuals",
                  "verdicts", "profile")


def _sha(doc) -> str:
    payload = canonical_json(doc, indent=None).encode()
    return hashlib.sha256(payload).hexdigest()[:_HASH_CHARS]


def fingerprint(point: _t.Mapping) -> str:
    """Content address of one workload/config point.

    The fingerprint is what keys a time series in the trend observatory:
    two runs with the identical point dict (platform, approach, n,
    streams, ...) are measurements *of the same thing* and land on the
    same series, whatever their label or source.
    """
    return _sha(dict(point))


def entry_id(entry: _t.Mapping) -> str:
    """Content address of one archive entry (its body sans ``entry``)."""
    body = {k: v for k, v in entry.items() if k != "entry"}
    return _sha(body)


def _check_metrics(metrics: _t.Mapping) -> dict:
    out = {}
    for k, v in metrics.items():
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise ArchiveError(
                f"metric {k!r} must be a number, got {type(v).__name__}")
        if isinstance(v, float) and not math.isfinite(v):
            raise ArchiveError(f"metric {k!r} is not finite ({v!r})")
        out[str(k)] = v
    return out


def make_entry(*, source: str, label: str, point: _t.Mapping,
               metrics: _t.Mapping, lanes: _t.Mapping | None = None,
               report: dict | None = None,
               residuals: _t.Mapping | None = None,
               verdicts: _t.Sequence[dict] = (),
               profile: _t.Mapping | None = None) -> dict:
    """Assemble one ``repro.archive/v1`` entry.

    ``point`` is the workload/config dict the fingerprint hashes;
    ``metrics`` a flat name -> finite number mapping; ``lanes`` the
    per-lane utilization fractions; ``report`` the canonical
    :func:`~repro.obs.diff.run_report` (kept whole so any two entries
    can be diffed with the critical-path composition intact);
    ``residuals`` the conformance gap attribution; ``verdicts`` a list
    of gate verdict dicts (``{"gate", "ok", "failures"}``); ``profile``
    a serialized :func:`repro.obs.profile.snapshot`.
    """
    entry = {
        "schema": ARCHIVE_SCHEMA,
        "fingerprint": fingerprint(point),
        "source": str(source),
        "label": str(label),
        "point": dict(point),
        "metrics": _check_metrics(metrics),
        "lanes": dict(lanes or {}),
        "report": report,
        "residuals": dict(residuals) if residuals is not None else None,
        "verdicts": [dict(v) for v in verdicts],
        "profile": ({k: dict(v) for k, v in profile.items()}
                    if profile is not None else None),
    }
    entry["entry"] = entry_id(entry)
    return entry


def _lane_utilization(report: dict) -> dict[str, float]:
    makespan = report.get("makespan_s", 0.0)
    if makespan <= 0:
        return {ln: 0.0 for ln in report.get("lanes", {})}
    return {ln: busy / makespan
            for ln, busy in report.get("lanes", {}).items()}


def entry_from_result(result, *, source: str = "run", label: str = "",
                      point: _t.Mapping | None = None,
                      report: dict | None = None,
                      verdicts: _t.Sequence[dict] = (),
                      profile: _t.Mapping | None = None) -> dict:
    """Archive entry for a finished
    :class:`~repro.hetsort.result.SortResult`.

    ``point`` defaults to the run's own configuration (platform,
    approach, plan geometry) so same-config runs share a fingerprint.
    """
    if report is None:
        report = run_report(result, label=label or result.approach)
    if point is None:
        point = {
            "platform": result.platform_name,
            "approach": result.approach,
            "n_streams": result.config.n_streams,
            "pinned_elements": result.config.pinned_elements,
            "memcpy_threads": result.config.memcpy_threads,
        }
        if result.plan is not None:
            point.update(n=result.plan.n, n_gpus=result.plan.n_gpus,
                         batch_size=result.plan.batch_size)
    metrics = {
        "makespan_s": report["makespan_s"],
        "elapsed_s": result.elapsed,
        "throughput_el_per_s": result.throughput,
        "related_work_s": result.related_work_end_to_end,
        "missing_overhead_s": result.missing_overhead,
    }
    if "overlap_efficiency" in result.metrics:
        metrics["overlap_efficiency"] = \
            result.metrics["overlap_efficiency"]
    memory = result.metrics.get("memory")
    if memory is not None:
        metrics["peak_pinned_bytes"] = memory.get("peak_pinned_bytes", 0)
        for pool, peak in sorted(
                memory.get("peak_device_bytes", {}).items()):
            metrics[f"peak_device_bytes.{pool}"] = peak
    flows = result.metrics.get("flows")
    if flows is not None:
        metrics["link_peak_utilization"] = \
            flows.get("link_peak_utilization", 0.0)
        metrics["transfer_contention_s"] = \
            flows.get("transfer_contention_s", 0.0)
    conf = result.metrics.get("conformance")
    residuals = None
    if conf is not None:
        metrics["model_gap_s"] = conf["gap_s"]
        residuals = conf["residuals"]
    return make_entry(source=source, label=label or result.approach,
                      point=point, metrics=metrics,
                      lanes=_lane_utilization(report), report=report,
                      residuals=residuals, verdicts=verdicts,
                      profile=profile)


def entry_from_ledger(record: dict, *, source: str = "sweep",
                      verdicts: _t.Sequence[dict] = ()) -> dict:
    """Archive entry for one ``repro.sweep/v1`` ledger record."""
    measured = record["measured"]
    conf = record.get("conformance") or {}
    metrics = {
        "makespan_s": measured["makespan_s"],
        "elapsed_s": measured["elapsed_s"],
        "throughput_el_per_s": measured["throughput_el_per_s"],
        "related_work_s": measured["related_work_s"],
        "missing_overhead_s": measured["missing_overhead_s"],
    }
    if conf:
        metrics["model_gap_s"] = conf["gap_s"]
    report = record.get("report")
    return make_entry(source=source, label=record["run_id"],
                      point=record["point"], metrics=metrics,
                      lanes=_lane_utilization(report or {}),
                      report=report,
                      residuals=conf.get("residuals"),
                      verdicts=verdicts)


# ---------------------------------------------------------------------------
# Archive IO
# ---------------------------------------------------------------------------

def manifest_path(path) -> str:
    """``foo.jsonl`` -> ``foo.manifest.json`` (sibling sidecar)."""
    path = os.fspath(path)
    root = path[:-len(".jsonl")] if path.endswith(".jsonl") else path
    return root + ".manifest.json"


def load_archive(path) -> list[dict]:
    """Read archive entries back; raises :class:`ArchiveError` on
    malformed lines or unknown schemas (integrity hashes are checked by
    :func:`validate_archive`, not here)."""
    entries = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ArchiveError(
                    f"{path}:{lineno}: not valid JSON ({exc})") from exc
            if entry.get("schema") != ARCHIVE_SCHEMA:
                raise ArchiveError(
                    f"{path}:{lineno}: unknown archive schema "
                    f"{entry.get('schema')!r} (expected {ARCHIVE_SCHEMA})")
            entries.append(entry)
    return entries


def build_manifest(entries: _t.Sequence[dict]) -> dict:
    """The manifest document for an entry sequence (in file order)."""
    fps: dict[str, int] = {}
    sources: dict[str, int] = {}
    labels: dict[str, str] = {}
    for e in entries:
        fps[e["fingerprint"]] = fps.get(e["fingerprint"], 0) + 1
        sources[e["source"]] = sources.get(e["source"], 0) + 1
        labels[e["fingerprint"]] = e["label"]
    return {
        "schema": MANIFEST_SCHEMA,
        "n_entries": len(entries),
        "entries": [e["entry"] for e in entries],
        "fingerprints": dict(sorted(fps.items())),
        "labels": dict(sorted(labels.items())),
        "sources": dict(sorted(sources.items())),
    }


def append_entries(path, entries: _t.Sequence[dict]) -> list[dict]:
    """Append entries not already present; returns those written.

    The JSONL file is only ever opened in append mode -- existing bytes
    are never rewritten -- and the manifest sidecar is regenerated to
    match.  Appending an entry whose content hash is already archived
    is a no-op, so re-archiving the same deterministic run leaves both
    files bit-identical (the idempotency the acceptance tests pin).
    """
    existing = load_archive(path) if os.path.exists(path) else []
    seen = {e["entry"] for e in existing}
    fresh: list[dict] = []
    for entry in entries:
        eid = entry_id(entry)
        if entry.get("entry") != eid:
            raise ArchiveError(
                f"entry {entry.get('entry')!r} does not match its "
                f"content hash {eid} (was the record edited?)")
        if eid in seen:
            continue
        seen.add(eid)
        fresh.append(entry)
    parent = os.path.dirname(os.path.abspath(os.fspath(path)))
    os.makedirs(parent, exist_ok=True)
    if fresh:
        with open(path, "a") as fh:
            for entry in fresh:
                fh.write(canonical_json(entry, indent=None))
                fh.write("\n")
    manifest = build_manifest(existing + fresh)
    mpath = manifest_path(path)
    if fresh or not os.path.exists(mpath):
        with open(mpath, "w") as fh:
            fh.write(canonical_json(manifest))
            fh.write("\n")
    return fresh


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def archive_summary(entries: _t.Sequence[dict]) -> dict:
    """Counts + metric coverage for an entry list (pure function)."""
    manifest = build_manifest(entries)
    metrics = sorted({m for e in entries for m in e["metrics"]})
    return {
        "schema": MANIFEST_SCHEMA,
        "n_entries": manifest["n_entries"],
        "n_fingerprints": len(manifest["fingerprints"]),
        "fingerprints": manifest["fingerprints"],
        "labels": manifest["labels"],
        "sources": manifest["sources"],
        "metrics": metrics,
    }


def validate_archive(path) -> dict:
    """Read and validate an archive (and its manifest); returns the
    :func:`archive_summary`.

    Checks, in order: every line parses with the ``repro.archive/v1``
    schema; every entry carries the full key set; every ``entry`` id
    matches the recomputed content hash of its body and every
    ``fingerprint`` the recomputed hash of its point; ids are unique;
    metrics are finite numbers; the manifest sidecar exists and agrees
    (schema, count, id order, fingerprint/source counts).  Violations
    raise :class:`~repro.errors.ArchiveError`.
    """
    entries = load_archive(path)
    seen: set[str] = set()
    for i, entry in enumerate(entries):
        missing = [k for k in _REQUIRED_KEYS if k not in entry]
        if missing:
            raise ArchiveError(
                f"entry {i}: missing keys {missing}")
        if entry["entry"] != entry_id(entry):
            raise ArchiveError(
                f"entry {i} ({entry['entry']}): content hash mismatch "
                f"(body hashes to {entry_id(entry)})")
        if entry["fingerprint"] != fingerprint(entry["point"]):
            raise ArchiveError(
                f"entry {i} ({entry['entry']}): fingerprint "
                f"{entry['fingerprint']} does not match its point "
                f"(expected {fingerprint(entry['point'])})")
        if entry["entry"] in seen:
            raise ArchiveError(
                f"entry {i}: duplicate entry id {entry['entry']} "
                "(append-only archives never repeat a record)")
        seen.add(entry["entry"])
        _check_metrics(entry["metrics"])
    mpath = manifest_path(path)
    if not os.path.exists(mpath):
        raise ArchiveError(f"manifest missing: {mpath}")
    with open(mpath) as fh:
        try:
            manifest = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ArchiveError(
                f"{mpath}: not valid JSON ({exc})") from exc
    expected = build_manifest(entries)
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ArchiveError(
            f"{mpath}: unknown manifest schema {manifest.get('schema')!r}"
            f" (expected {MANIFEST_SCHEMA})")
    for key in ("n_entries", "entries", "fingerprints", "sources"):
        if manifest.get(key) != expected[key]:
            raise ArchiveError(
                f"{mpath}: manifest {key} disagrees with the archive "
                "(regenerate by appending)")
    return archive_summary(entries)
