"""Memory observatory: the byte-exact allocation ledger, occupancy
watermarks, leak detection, and the analytic capacity planner.

The paper's entire design is driven by scarce GPU memory -- batch sizes,
stream counts and pinned staging buffers all exist to sort datasets
larger than device memory (Sec. III-B/III-C) -- yet the earlier
observability layers watch *time* only.  This module watches *space*:

* :class:`MemoryLedger` (``repro.memory/v1``) -- every ``cudaMalloc`` /
  ``cudaFree`` / ``cudaMallocHost`` / pinned release becomes one
  timestamped ledger entry with the pool's running balance.  The ledger
  is wired through :class:`repro.cuda.runtime.Runtime` and
  :class:`repro.hw.machine.Machine`'s pinned pool by
  :class:`~repro.hetsort.sorter.HeterogeneousSorter`, and publishes
  ``mem.alloc`` / ``mem.free`` / ``mem.watermark`` events onto the PR-4
  :class:`~repro.obs.events.EventBus` behind the same
  zero-overhead-when-disabled single ``is None`` check every other
  emission point uses.  Recording is strictly passive -- the ledger
  never schedules simulation events, so attaching it never perturbs the
  simulated timeline or the canonical run report;

* **leak detection** -- :meth:`MemoryLedger.check_balanced` requires
  every pool's balance to return to zero by ``run.end``, *including*
  degraded and fault-injected runs (``free_surviving`` releases a dead
  worker's buffers; :meth:`SimGPU.free <repro.hw.gpu.SimGPU.free>`
  deliberately works on lost devices so their ledgers still balance);

* :func:`plan_memory` -- the analytic capacity planner behind ``repro
  plan-mem``: given (platform, n, approach, batch size, streams),
  predict peak device and pinned occupancy *from the plan alone* and
  check it against the machine's capacities before any simulation runs.
  The worker geometry is exact: every worker holds ``2 b_s`` elements
  of device memory (Thrust sorts out of place, Sec. III-B) and -- when
  staging through pinned buffers -- ``2 p_s`` elements of pinned host
  memory, for its whole lifetime.  Workers allocate up front and free at
  the end, so on a healthy run the measured peak *equals* the
  prediction;

* :func:`memory_conformance` -- predicted-vs-measured peak residuals in
  the PR-3 conformance shape (per-pool residual, relative error, a
  pinned tolerance band).
"""

from __future__ import annotations

import typing as _t

from repro.errors import MemoryLedgerError

__all__ = [
    "MEMORY_SCHEMA", "MEMPLAN_SCHEMA", "MEMORY_CONFORMANCE_SCHEMA",
    "PLAN_TOLERANCE", "MemoryLedger", "plan_memory", "measured_peaks",
    "memory_conformance",
]

MEMORY_SCHEMA = "repro.memory/v1"
MEMPLAN_SCHEMA = "repro.memplan/v1"
MEMORY_CONFORMANCE_SCHEMA = "repro.memory_conformance/v1"

#: Pinned tolerance band for predicted-vs-measured peak occupancy.  The
#: planner's geometry is exact on healthy runs, so the band exists only
#: to absorb intentional future model refinements -- the tiny/ci grids
#: must stay at zero residual.
PLAN_TOLERANCE = 0.01


class MemoryLedger:
    """A byte-exact, timestamped allocation ledger over named pools.

    Pools are ``"gpu<i>"`` (device global memory) and ``"pinned"``
    (the host's pinned staging pool).  ``clock`` is a zero-argument
    callable returning simulated seconds (normally ``lambda:
    env.now``); ``capacities`` maps pool names to their byte capacity
    (used for headroom and the ``mem.watermark`` events' context).

    The ledger is an observer: it records what the runtime already did
    and never raises on *capacity* (the runtime's own OOM checks own
    that) -- only on impossible accounting (a pool balance going
    negative), which would mean the instrumentation itself is wrong.
    """

    def __init__(self, clock: _t.Callable[[], float] | None = None,
                 capacities: _t.Mapping[str, int] | None = None) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.capacities: dict[str, int] = dict(capacities or {})
        #: Ledger entries in record order:
        #: ``{"t", "op", "pool", "name", "nbytes", "balance"}`` (+ the
        #: allocation span id for pinned allocations).
        self.entries: list[dict] = []
        self.balances: dict[str, int] = {}
        self.peaks: dict[str, int] = {}
        self.n_allocs = 0
        self.n_frees = 0
        #: Optional :class:`~repro.obs.events.EventBus` (wired by
        #: :func:`repro.obs.events.connect_machine`); ``None`` costs one
        #: ``is None`` check per recorded operation.
        self.bus = None

    # -- recording -----------------------------------------------------------

    def _record(self, op: str, pool: str, nbytes: int, name: str,
                span: int | None) -> None:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise MemoryLedgerError(
                f"{op} of negative size {nbytes} B in pool {pool!r}")
        balance = self.balances.get(pool, 0)
        balance += nbytes if op == "alloc" else -nbytes
        if balance < 0:
            raise MemoryLedgerError(
                f"pool {pool!r} balance went negative ({balance} B) "
                f"freeing {nbytes} B ({name!r}): the instrumentation "
                "recorded a free it never saw allocated")
        self.balances[pool] = balance
        entry = {"t": self._clock(), "op": op, "pool": pool,
                 "name": name, "nbytes": nbytes, "balance": balance}
        if span is not None:
            entry["span"] = span
        self.entries.append(entry)
        if op == "alloc":
            self.n_allocs += 1
            if self.bus is not None:
                self.bus.mem_alloc(pool=pool, name=name, nbytes=nbytes,
                                   balance=balance)
            if balance > self.peaks.get(pool, 0):
                self.peaks[pool] = balance
                if self.bus is not None:
                    self.bus.mem_watermark(
                        pool=pool, peak_bytes=balance,
                        capacity_bytes=self.capacities.get(pool))
        else:
            self.n_frees += 1
            if self.bus is not None:
                self.bus.mem_free(pool=pool, name=name, nbytes=nbytes,
                                  balance=balance)

    def device_alloc(self, gpu: int, nbytes: int, name: str = "") -> None:
        """Record a successful ``cudaMalloc`` on ``gpu``."""
        self._record("alloc", f"gpu{gpu}", nbytes, name, None)

    def device_free(self, gpu: int, nbytes: int, name: str = "") -> None:
        """Record a ``cudaFree`` on ``gpu``."""
        self._record("free", f"gpu{gpu}", nbytes, name, None)

    def pinned_alloc(self, nbytes: int, name: str = "",
                     span: int | None = None) -> None:
        """Record a successful ``cudaMallocHost`` (``span`` is the
        allocation's trace span id, the ledger's causal attribution)."""
        self._record("alloc", "pinned", nbytes, name, span)

    def pinned_free(self, nbytes: int, name: str = "") -> None:
        """Record a ``cudaFreeHost``."""
        self._record("free", "pinned", nbytes, name, None)

    # -- derived views -------------------------------------------------------

    def pools(self) -> list[str]:
        """Every pool the ledger or its capacities know, sorted with
        ``pinned`` last (display order)."""
        names = set(self.balances) | set(self.capacities)
        return sorted(names, key=lambda p: (p == "pinned", p))

    def timeline(self, pool: str) -> list[tuple[float, int]]:
        """The pool's occupancy as a step series ``[(t, balance)]``
        starting at ``(0.0, 0)``."""
        out: list[tuple[float, int]] = [(0.0, 0)]
        for e in self.entries:
            if e["pool"] == pool:
                out.append((e["t"], e["balance"]))
        return out

    def leaks(self) -> dict[str, int]:
        """Pools whose balance is not zero (leaked bytes)."""
        return {p: b for p, b in sorted(self.balances.items()) if b != 0}

    def check_balanced(self) -> None:
        """Raise :class:`~repro.errors.MemoryLedgerError` unless every
        pool balanced back to zero (the leak detector)."""
        leaks = self.leaks()
        if leaks:
            detail = ", ".join(f"{p}={b} B" for p, b in leaks.items())
            raise MemoryLedgerError(
                f"memory ledger did not balance to zero at run end: "
                f"{detail} ({self.n_allocs} allocs, {self.n_frees} frees)")

    def headroom(self, pool: str) -> int | None:
        """Fragmentation-free headroom: capacity minus peak occupancy
        (the simulated allocator is exact, so every unoccupied byte is
        usable).  None for pools of unknown capacity."""
        cap = self.capacities.get(pool)
        if cap is None:
            return None
        return cap - self.peaks.get(pool, 0)

    def summary(self) -> dict:
        """The compact block exported as ``result.metrics["memory"]``."""
        return {
            "peak_device_bytes": {p: self.peaks.get(p, 0)
                                  for p in self.pools() if p != "pinned"},
            "peak_pinned_bytes": self.peaks.get("pinned", 0),
            "n_allocs": self.n_allocs,
            "n_frees": self.n_frees,
            "balanced": not self.leaks(),
        }

    def to_dict(self) -> dict:
        """The full ``repro.memory/v1`` ledger document."""
        pools = {}
        for p in self.pools():
            pools[p] = {
                "capacity_bytes": self.capacities.get(p),
                "peak_bytes": self.peaks.get(p, 0),
                "balance_bytes": self.balances.get(p, 0),
                "headroom_bytes": self.headroom(p),
                "n_allocs": sum(1 for e in self.entries
                                if e["pool"] == p and e["op"] == "alloc"),
                "n_frees": sum(1 for e in self.entries
                               if e["pool"] == p and e["op"] == "free"),
            }
        return {
            "schema": MEMORY_SCHEMA,
            "pools": pools,
            "balanced": not self.leaks(),
            "entries": [dict(e) for e in self.entries],
        }


# ---------------------------------------------------------------------------
# Analytic capacity planner
# ---------------------------------------------------------------------------

def plan_memory(platform, n: int, config=None, n_gpus: int = 1,
                **config_kw) -> dict:
    """Predict peak device/pinned occupancy for a sort *before running
    it* and check the prediction against the platform's capacities.

    Accepts either a :class:`~repro.hetsort.config.SortConfig` or the
    same keywords the sorter takes.  Raises
    :class:`~repro.errors.PlanError` exactly where the simulation would
    (a single batch that cannot fit on a device) -- that is the
    planner's cheapest rejection.  Beyond it, the planner also rejects
    *aggregate* oversubscription the per-batch check cannot see: the
    sum of every concurrent worker's pinned staging buffers against
    what host DRAM leaves after the pageable working set (A + W + B =
    3n, Sec. III-C).

    Returns a ``repro.memplan/v1`` document (``ok``, per-pool
    prediction/capacity/headroom, and human-readable ``violations``).
    """
    # Lazy imports: repro.obs must stay importable without dragging the
    # sorter stack in (hetsort imports repro.obs.counters).
    from repro.cuda.buffers import ELEM
    from repro.errors import PlanError
    from repro.hetsort.config import Approach, SortConfig, Staging
    from repro.hetsort.plan import make_plan

    if config is not None and config_kw:
        raise PlanError("pass either a SortConfig or keywords, not both")
    cfg = config if config is not None else SortConfig(**config_kw)
    plan = make_plan(int(n), platform, cfg, n_gpus=n_gpus)

    # Concurrent workers, straight from the plan's batch assignment:
    # blocking approaches run one host thread per GPU with work; the
    # pipelined ones run one per (gpu, stream) pair with work (workers
    # with an empty queue return before allocating anything).
    if cfg.approach in (Approach.BLINE, Approach.BLINEMULTI):
        device_workers = {g: 1 for g in
                          sorted({b.gpu for b in plan.batches})}
    else:
        device_workers: dict[int, int] = {}
        for g, s in sorted({(b.gpu, b.stream_slot) for b in plan.batches}):
            device_workers[g] = device_workers.get(g, 0) + 1
    n_workers = sum(device_workers.values())

    staged = (cfg.approach in Approach.PIPELINED
              or cfg.staging == Staging.PINNED)
    device_per_worker = 2 * plan.batch_size * ELEM
    pinned_per_worker = 2 * plan.pinned_elements * ELEM if staged else 0

    predicted = {f"gpu{g}": device_workers.get(g, 0) * device_per_worker
                 for g in range(n_gpus)}
    predicted["pinned"] = n_workers * pinned_per_worker

    capacities = {f"gpu{g}": platform.gpus[g].mem_bytes
                  for g in range(n_gpus)}
    capacities["pinned"] = (platform.hostmem.capacity_bytes
                            - plan.host_bytes)

    pools = {}
    violations = []
    for pool in sorted(predicted, key=lambda p: (p == "pinned", p)):
        need, have = predicted[pool], capacities[pool]
        ok = need <= have
        pools[pool] = {"predicted_bytes": need, "capacity_bytes": have,
                       "headroom_bytes": have - need, "ok": ok}
        if not ok:
            what = ("pinned staging buffers" if pool == "pinned"
                    else "worker device buffers")
            violations.append(
                f"{pool}: {what} need {need} B but only {have} B are "
                f"available" + (" after the 3n pageable working set"
                                if pool == "pinned" else ""))
    return {
        "schema": MEMPLAN_SCHEMA,
        "point": {
            "platform": platform.name, "approach": cfg.approach,
            "n": plan.n, "n_gpus": n_gpus, "n_streams": plan.n_streams,
            "batch_size": plan.batch_size,
            "pinned_elements": plan.pinned_elements,
        },
        "per_worker": {"device_bytes": device_per_worker,
                       "pinned_bytes": pinned_per_worker},
        "workers": {f"gpu{g}": c for g, c in sorted(device_workers.items())},
        "predicted": predicted,
        "pools": pools,
        "ok": not violations,
        "violations": violations,
    }


def measured_peaks(result) -> dict[str, int]:
    """The measured per-pool peaks of a finished run, in the planner's
    pool naming (from ``result.metrics["memory"]``)."""
    mem = result.metrics.get("memory")
    if mem is None:
        raise MemoryLedgerError(
            "result carries no memory ledger (metrics['memory'] absent)")
    peaks = dict(mem.get("peak_device_bytes", {}))
    peaks["pinned"] = mem.get("peak_pinned_bytes", 0)
    return peaks


def memory_conformance(memplan: dict, measured: _t.Mapping[str, int],
                       tolerance: float = PLAN_TOLERANCE) -> dict:
    """Predicted-vs-measured peak-occupancy residuals, per pool.

    ``memplan`` is a :func:`plan_memory` document; ``measured`` maps
    pool names to measured peak bytes (see :func:`measured_peaks`).
    A pool conforms when ``|measured - predicted| <= tolerance *
    predicted`` (a zero prediction requires a zero measurement).
    """
    predicted = memplan["predicted"]
    pools = {}
    ok = True
    for pool in sorted(set(predicted) | set(measured),
                       key=lambda p: (p == "pinned", p)):
        pred = int(predicted.get(pool, 0))
        meas = int(measured.get(pool, 0))
        residual = meas - pred
        rel = residual / pred if pred else (0.0 if meas == 0 else None)
        pool_ok = (abs(residual) <= tolerance * pred if pred
                   else meas == 0)
        pools[pool] = {"predicted_bytes": pred, "measured_bytes": meas,
                       "residual_bytes": residual, "rel": rel,
                       "ok": pool_ok}
        ok = ok and pool_ok
    return {
        "schema": MEMORY_CONFORMANCE_SCHEMA,
        "point": dict(memplan["point"]),
        "tolerance": tolerance,
        "pools": pools,
        "ok": ok,
    }
