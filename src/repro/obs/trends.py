"""Trend observatory: per-metric time series over the run archive.

The archive (:mod:`repro.obs.archive`) remembers every measured run;
this module turns that memory into judgements:

* :func:`metric_series` / :func:`trend_summary` -- per-metric history
  keyed by workload fingerprint, in archive (append) order;
* :func:`ewma` -- exponentially-weighted smoothing of a noisy series;
* :func:`detect_changepoints` -- robust step detection by binary
  segmentation: split a segment where the difference of the side
  medians is largest, flag the split when it dwarfs the MAD-estimated
  noise *and* clears a relative floor, recurse into both sides.
  Medians and MAD (not means and stddev) keep a single flaky run from
  masquerading as -- or masking -- a genuine step such as the PR-6
  engine overhaul's 9.5x events/sec jump;
* :func:`ratchet_proposal` -- "the committed baseline is now 1.4x
  stale" logic: when the current regime (after the last changepoint)
  has sustainably drifted from a reference value, propose re-freezing;
* :func:`classify_miss` -- the trend-aware gate verdict: a measurement
  beyond tolerance is a different failure when the last three archived
  runs already sat beyond it (*sustained regression*) than when the
  history is clean (*one-off miss*);
* :func:`compare_entries` -- cross-run span aggregation: diff the
  canonical run reports embedded in any two archive entries
  (:func:`repro.obs.diff.diff_reports`), showing which critical-path
  phases grew or shrank between them.

Everything is a pure function of the entry list -- no wall clock, no
randomness -- so a trend document over a byte-stable archive is itself
byte-stable.
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import ArchiveError
from repro.obs.diff import diff_reports

__all__ = [
    "TRENDS_SCHEMA", "DEFAULT_METRICS", "ewma", "median", "mad",
    "detect_changepoints", "series_trend", "ratchet_proposal",
    "classify_miss", "metric_series", "trend_summary", "compare_entries",
]

TRENDS_SCHEMA = "repro.trends/v1"

#: Metrics the trend CLI and dashboard track by default, in display
#: order (a series only exists where its entries recorded the metric).
DEFAULT_METRICS = ("makespan_s", "elapsed_s", "throughput_el_per_s",
                   "missing_overhead_s", "model_gap_s", "events_per_s",
                   "peak_pinned_bytes", "peak_device_bytes.gpu0",
                   "peak_device_bytes.gpu1", "link_peak_utilization",
                   "transfer_contention_s")

#: Consistency constant: MAD of a normal sample times 1.4826 estimates
#: its standard deviation.
_MAD_SCALE = 1.4826

#: Default changepoint sensitivity: the side-median step must exceed
#: ``K_THRESHOLD`` noise sigmas *and* ``MIN_REL`` of the before-median.
K_THRESHOLD = 4.0
MIN_REL = 0.05

#: Consecutive beyond-tolerance runs (archive history + the current
#: measurement) from which a gate miss counts as sustained.
SUSTAIN_RUNS = 3

#: Current-regime drift past which :func:`ratchet_proposal` calls the
#: reference stale (1.25 = a quarter off either way).
STALE_FACTOR = 1.25


def median(values: _t.Sequence[float]) -> float:
    """Plain median (average of the middle pair for even lengths)."""
    if not values:
        raise ValueError("median of an empty series")
    s = sorted(values)
    mid = len(s) // 2
    return s[mid] if len(s) % 2 else (s[mid - 1] + s[mid]) / 2.0


def mad(values: _t.Sequence[float],
        center: float | None = None) -> float:
    """Median absolute deviation around ``center`` (default: the
    median).  Zero for constant or single-point series."""
    if not values:
        raise ValueError("MAD of an empty series")
    c = median(values) if center is None else center
    return median([abs(v - c) for v in values])


def ewma(values: _t.Sequence[float], alpha: float = 0.3) -> list[float]:
    """Exponentially-weighted moving average (same length as input).

    ``alpha`` is the weight of the newest observation; the first output
    equals the first input.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    out: list[float] = []
    acc = 0.0
    for i, v in enumerate(values):
        acc = v if i == 0 else alpha * v + (1.0 - alpha) * acc
        out.append(acc)
    return out


# ---------------------------------------------------------------------------
# Changepoint / step detection
# ---------------------------------------------------------------------------

def _l1_cost(seg: _t.Sequence[float]) -> float:
    med = median(seg)
    return sum(abs(v - med) for v in seg)


def _best_split(values: _t.Sequence[float], lo: int, hi: int,
                min_size: int) -> int | None:
    """The split index in ``[lo+min_size, hi-min_size]`` minimising the
    summed L1 cost (absolute deviation around each side's median) of
    the two sides -- the split that localises a level shift exactly,
    where a raw side-median delta ties across neighbouring indices.
    Ties break to the earliest index; None when the segment is too
    short."""
    best_i: int | None = None
    best_cost = math.inf
    for i in range(lo + min_size, hi - min_size + 1):
        cost = _l1_cost(values[lo:i]) + _l1_cost(values[i:hi])
        if cost < best_cost:
            best_i, best_cost = i, cost
    return best_i


def detect_changepoints(values: _t.Sequence[float],
                        k: float = K_THRESHOLD,
                        min_rel: float = MIN_REL,
                        min_size: int = 2) -> list[dict]:
    """Robust step detection; returns one dict per changepoint, sorted
    by index.

    A changepoint at index ``i`` means the regime changed *between*
    ``values[i - 1]`` and ``values[i]`` (``i`` is the first point of
    the new regime).  Each dict carries ``index``, the ``before`` /
    ``after`` side medians, their ``ratio`` (after/before) and the
    noise-normalised ``score``.

    Binary segmentation: the best split of a segment is kept when its
    side-median step exceeds ``k`` times the MAD-estimated noise sigma
    *and* ``min_rel`` of the before-median (the relative floor keeps
    near-zero-noise series from flagging float dust), then both sides
    are searched recursively.  Segments shorter than ``2 * min_size``
    are left alone, so a single outlier cannot be a "step" on its own
    when ``min_size >= 2``.
    """
    vals = [float(v) for v in values]
    found: list[dict] = []
    # One global noise scale, estimated from first differences: most
    # consecutive pairs sit inside a regime, so the MAD of the diffs is
    # robust both to the (few) step jumps and to any step inside a
    # recursion side -- per-segment MADs are not, a side containing a
    # further step would inflate its own noise and mask the split.
    # sqrt(2) converts a difference sigma back to a point sigma.
    diffs = [b - a for a, b in zip(vals, vals[1:])]
    sigma = (_MAD_SCALE * mad(diffs) / math.sqrt(2.0)) if diffs else 0.0

    def _segment(lo: int, hi: int) -> None:
        if hi - lo < 2 * min_size:
            return
        i = _best_split(vals, lo, hi, min_size)
        if i is None:
            return
        left, right = vals[lo:i], vals[i:hi]
        med_l, med_r = median(left), median(right)
        delta = abs(med_r - med_l)
        # Noise floor: constant regimes have MAD 0; a relative epsilon
        # keeps the score finite (and strict-JSON) without ever masking
        # a real step.
        floor = max(abs(med_l), abs(med_r), 1.0) * 1e-12
        score = delta / max(sigma, floor)
        rel = delta / abs(med_l) if med_l else \
            (math.inf if delta > 0 else 0.0)
        if score > k and rel > min_rel:
            found.append({
                "index": i,
                "before": med_l,
                "after": med_r,
                "ratio": (med_r / med_l) if med_l else 0.0,
                "score": score,
            })
            _segment(lo, i)
            _segment(i, hi)

    _segment(0, len(vals))
    return sorted(found, key=lambda c: c["index"])


def _segments(n: int, changepoints: _t.Sequence[dict]
              ) -> list[tuple[int, int]]:
    bounds = [0] + [c["index"] for c in changepoints] + [n]
    return [(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)
            if bounds[i] < bounds[i + 1]]


def _anomalies(values: _t.Sequence[float],
               changepoints: _t.Sequence[dict],
               z_threshold: float = 3.5) -> list[int]:
    """Indices whose modified z-score *within their regime segment*
    exceeds ``z_threshold`` (0.6745 * |x - med| / MAD; Iglewicz-Hoaglin
    convention).  Regime-local so a step never floods the flag list."""
    out: list[int] = []
    for lo, hi in _segments(len(values), changepoints):
        seg = list(values[lo:hi])
        med = median(seg)
        spread = mad(seg, med)
        if spread <= 0:
            continue
        for j, v in enumerate(seg):
            if 0.6745 * abs(v - med) / spread > z_threshold:
                out.append(lo + j)
    return sorted(out)


def ratchet_proposal(values: _t.Sequence[float], reference: float,
                     changepoints: _t.Sequence[dict] = (),
                     stale_factor: float = STALE_FACTOR,
                     sustain: int = SUSTAIN_RUNS) -> dict | None:
    """Propose re-baselining when the current regime left ``reference``
    behind.

    The current regime is everything after the last changepoint (the
    whole series when there is none).  When it holds at least
    ``sustain`` points and its median-to-reference ratio is beyond
    ``stale_factor`` either way, returns a proposal dict with the
    ``ratio`` and a human-readable ``message``; otherwise None.  Gates
    print the message instead of silently ratcheting: re-freezing a
    baseline is a human decision, the archive only argues for it.
    """
    if reference <= 0 or not values:
        return None
    start = changepoints[-1]["index"] if changepoints else 0
    regime = list(values[start:])
    if len(regime) < sustain:
        return None
    ratio = median(regime) / reference
    if 1.0 / stale_factor <= ratio <= stale_factor:
        return None
    return {
        "ratio": ratio,
        "regime_runs": len(regime),
        "reference": reference,
        "message": (f"baseline is now {ratio:.2f}x stale over the last "
                    f"{len(regime)} archived run(s) -- propose "
                    "re-baseline"),
    }


def classify_miss(history_beyond: _t.Sequence[bool],
                  sustain: int = SUSTAIN_RUNS) -> dict:
    """Classify a failing gate measurement against archive history.

    ``history_beyond`` says, oldest first, whether each previously
    archived run of the same fingerprint already sat beyond the gate's
    tolerance.  The current (failing) measurement counts implicitly, so
    a clean history yields ``consecutive == 1``.  ``sustained`` becomes
    True at ``sustain`` consecutive beyond-tolerance runs.
    """
    consecutive = 1
    for beyond in reversed(list(history_beyond)):
        if not beyond:
            break
        consecutive += 1
    sustained = consecutive >= sustain
    if sustained:
        message = (f"sustained regression: {consecutive} consecutive "
                   "archived runs beyond tolerance (drift, not noise)")
    elif consecutive == 1:
        message = ("one-off miss: every previously archived run was "
                   "within tolerance")
    else:
        message = (f"not yet sustained: {consecutive} beyond-tolerance "
                   f"run(s) in a row incl. this one (sustained at "
                   f"{sustain})")
    return {"consecutive": consecutive, "sustained": sustained,
            "message": message}


# ---------------------------------------------------------------------------
# Archive-level series
# ---------------------------------------------------------------------------

def metric_series(entries: _t.Sequence[dict], metric: str,
                  fingerprint: str | None = None
                  ) -> dict[str, list[tuple[str, float]]]:
    """Per-fingerprint history of one metric, in archive order.

    Returns ``{fingerprint: [(entry_id, value), ...]}``, restricted to
    one fingerprint when given; entries that never recorded the metric
    simply do not contribute a point.
    """
    out: dict[str, list[tuple[str, float]]] = {}
    for e in entries:
        if fingerprint is not None and e["fingerprint"] != fingerprint:
            continue
        if metric in e["metrics"]:
            out.setdefault(e["fingerprint"], []).append(
                (e["entry"], e["metrics"][metric]))
    return out


def series_trend(values: _t.Sequence[float], *, alpha: float = 0.3,
                 k: float = K_THRESHOLD, min_rel: float = MIN_REL,
                 reference: float | None = None) -> dict:
    """The full trend analysis of one numeric series."""
    vals = [float(v) for v in values]
    cps = detect_changepoints(vals, k=k, min_rel=min_rel)
    med = median(vals) if vals else 0.0
    ref = reference if reference is not None else \
        (median(vals[:cps[0]["index"]]) if cps else med)
    return {
        "n": len(vals),
        "values": vals,
        "ewma": ewma(vals, alpha=alpha) if vals else [],
        "median": med,
        "mad": mad(vals, med) if vals else 0.0,
        "last": vals[-1] if vals else None,
        "changepoints": cps,
        "anomalies": _anomalies(vals, cps),
        "ratchet": ratchet_proposal(vals, ref, cps),
    }


def trend_summary(entries: _t.Sequence[dict],
                  metrics: _t.Sequence[str] | None = None, *,
                  alpha: float = 0.3, k: float = K_THRESHOLD,
                  min_rel: float = MIN_REL,
                  fingerprint: str | None = None) -> dict:
    """The whole-archive trend document (``repro.trends/v1``).

    One block per fingerprint, one series per tracked metric (the
    defaults plus anything passed in ``metrics``), each with values,
    EWMA smoothing, changepoints, regime-local anomaly indices and a
    ratchet proposal where the current regime left the first one.
    """
    wanted = tuple(metrics) if metrics is not None else DEFAULT_METRICS
    blocks: dict[str, dict] = {}
    for e in entries:
        fp = e["fingerprint"]
        if fingerprint is not None and fp != fingerprint:
            continue
        blk = blocks.setdefault(fp, {
            "label": e["label"], "point": e["point"],
            "n_entries": 0, "entries": [], "metrics": {}})
        blk["label"] = e["label"]        # latest label wins
        blk["n_entries"] += 1
        blk["entries"].append(e["entry"])
        for m in wanted:
            if m in e["metrics"]:
                blk["metrics"].setdefault(m, []).append(e["metrics"][m])
    n_series = n_cps = n_proposals = 0
    for blk in blocks.values():
        analysed = {}
        for m, vals in blk["metrics"].items():
            t = series_trend(vals, alpha=alpha, k=k, min_rel=min_rel)
            analysed[m] = t
            n_series += 1
            n_cps += len(t["changepoints"])
            n_proposals += 1 if t["ratchet"] else 0
        blk["metrics"] = analysed
    return {
        "schema": TRENDS_SCHEMA,
        "n_fingerprints": len(blocks),
        "n_series": n_series,
        "n_changepoints": n_cps,
        "n_proposals": n_proposals,
        "params": {"ewma_alpha": alpha, "k": k, "min_rel": min_rel},
        "fingerprints": {fp: blocks[fp] for fp in sorted(blocks)},
    }


def compare_entries(a: dict, b: dict, tolerance: float = 0.0) -> dict:
    """Cross-run span aggregation: diff the canonical run reports of
    two archive entries (which critical-path phases / categories /
    lanes grew or shrank between them), via
    :func:`repro.obs.diff.diff_reports`."""
    for name, entry in (("a", a), ("b", b)):
        if not entry.get("report"):
            raise ArchiveError(
                f"entry {name} ({entry.get('entry')}) carries no run "
                "report; span aggregation needs archived reports")
    ra = dict(a["report"], label=f"{a['label']}@{a['entry']}")
    rb = dict(b["report"], label=f"{b['label']}@{b['entry']}")
    return diff_reports(ra, rb, tolerance=tolerance)
