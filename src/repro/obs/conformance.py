"""Model-conformance records: confront analytical predictions with traces.

The paper's lower-bound model (Sec. IV-G, Fig. 11) predicts a makespan
``T(n) = slope * n`` per (platform, GPU count).  This module closes the
loop between that prediction and the measured, causally-traced runs a
sweep produces:

* :func:`conformance_record` -- one run's predicted vs. measured
  makespan, with the model-vs-measured gap attributed to span categories
  (HtoD/DtoH/MCpy/GPUSort/Sync/PinnedAlloc/wait) along the causal
  critical path.  The attribution is *exact by construction*: the
  per-category residuals sum (in the record's own key order) to the gap,
  bit for bit, so nothing is lost or invented.
* :func:`fit_slope` / :func:`group_conformance` -- a least-squares line
  through the origin per (platform, n_gpus, approach) group with its R²,
  compared against :func:`repro.model.paper_slopes` where the paper
  reports one, plus **anomaly flags** for runs that deviate from the
  fitted line beyond a z-score or relative tolerance.
* :func:`conformance_summary` -- the whole-ledger document the
  ``repro conformance`` subcommand prints, the CI gate checks, and the
  HTML dashboard renders.

Everything is a pure function of deterministic inputs; serialized with
:func:`repro.obs.diff.canonical_json` the records are byte-stable across
same-seed runs.
"""

from __future__ import annotations

import math
import typing as _t

from repro.obs.causal import WAIT

if _t.TYPE_CHECKING:  # repro.model imports the sorter; keep obs import-light
    from repro.model.lowerbound import LowerBoundModel

__all__ = [
    "PAPER_BANDS", "residual_attribution", "conformance_record",
    "attach_conformance", "fit_line", "group_key", "group_conformance",
    "conformance_summary",
]

CONFORMANCE_SCHEMA = "repro.conformance/v1"
SUMMARY_SCHEMA = "repro.conformance_summary/v1"

#: Documented tolerance bands around the paper's reported numbers.  The
#: differential tests (``tests/model/test_paper_band.py``) assert the
#: simulation stays inside them, and the dashboard prints them so a
#: reader can see how much slack the reproduction claims.
PAPER_BANDS = {
    # Fig. 7 pinned-transfer seconds (PAPER_FIG7_SECONDS), relative.
    "fig7_transfer_rel": {"HtoD_ours": 0.10, "DtoH_ours": 0.12},
    # Fig. 11 lower-bound slopes (paper_slopes()), relative, by n_gpus.
    "fig11_slope_rel": {1: 0.08, 2: 0.15},
}

#: Default anomaly thresholds (see :func:`group_conformance`).
Z_THRESHOLD = 3.0
REL_TOLERANCE = 0.5


# ---------------------------------------------------------------------------
# Per-run records
# ---------------------------------------------------------------------------

def residual_attribution(report: dict, predicted_s: float
                         ) -> dict[str, float]:
    """Split ``measured - predicted`` over span categories, exactly.

    The causal critical path tiles the makespan: every second is either
    a path span's duration (by category) or a wait gap (:data:`WAIT`),
    plus the lead-in before the chain's first span (also attributed to
    :data:`WAIT`).  Each category receives the share of the gap
    proportional to its share of the critical path, and the last-summed
    category absorbs the floating-point remainder so that summing the
    returned values in sorted key order reproduces the gap *bit for
    bit* -- the invariant the dashboard's stacked residual bars and the
    acceptance tests rely on.
    """
    measured = report["makespan_s"]
    gap = measured - predicted_s
    cp = report.get("critical_path", {})
    shares = dict(cp.get("by_category", {}))
    lead_in = measured - cp.get("duration", measured)
    if lead_in > 0:
        shares[WAIT] = shares.get(WAIT, 0.0) + lead_in
    total = sum(shares.values())
    if total <= 0 or not shares:
        return {WAIT: gap}
    cats = sorted(shares)
    out = {c: gap * (shares[c] / total) for c in cats}
    # Force the exact-sum invariant against plain left-to-right addition
    # in key order (what sum(record.values()) does after a JSON round
    # trip, since canonical JSON preserves the sorted key order).  The
    # last-summed category absorbs the remainder: with ``prefix`` the
    # rounded sum of everything before it, setting it to ``gap - prefix``
    # leaves only ONE rounding between the running sum and the gap, so
    # the final addition reproduces the gap exactly -- except when the
    # exact sum lands on a round-to-even tie around a gap with an odd
    # mantissa, where no absorber value can round to the gap at all.
    # The last-summed category absorbs: ``gap - prefix`` leaves one
    # rounding, which a short directional walk of the absorber fixes --
    # except on a round-to-even tie.  When the exact sum sits half an
    # ulp from a gap with an odd mantissa, *every* absorber candidate
    # rounds to one of the even neighbours and the gap is unreachable;
    # the prefix's sub-ulp residue must change instead.  Whole-ulp
    # steps of a prefix element can hop tie to tie forever (the rounded
    # prefix then only ever moves in even ulp counts), so the elements
    # are stepped by *half* a prefix ulp: a half step turns an exact
    # tie into an exactly representable value, forcing an odd move that
    # flips the residue and opens the gap's rounding basin.
    last = cats[-1]

    def _accumulate() -> float:
        p = 0.0
        for c in cats[:-1]:
            p += out[c]
        return p

    def _settle(p: float) -> bool:
        out[last] = gap - p
        s = p + out[last]
        for _ in range(4):
            if s == gap:
                return True
            out[last] = math.nextafter(out[last],
                                       math.inf if gap > s else -math.inf)
            s = p + out[last]
        return s == gap

    prefix = _accumulate()
    if not _settle(prefix):
        half = math.ulp(prefix) / 2.0
        for j in range(len(cats) - 2, -1, -1):
            step = max(half, math.ulp(out[cats[j]]))
            landed = False
            for _ in range(8):
                out[cats[j]] += step
                if _settle(_accumulate()):
                    landed = True
                    break
            if landed:
                break
    return out


def conformance_record(report: dict, model: "LowerBoundModel") -> dict:
    """Predicted vs. measured for one run report (see module docstring).

    ``slowdown`` is the paper's Fig. 11 metric ``model / measured``
    (< 1 means the run is slower than the analytical limit; PIPEDATA
    reaches 0.88--0.93x at n = 4.9e9 in the paper)."""
    ctx = report.get("context", {})
    n = int(ctx["n"])
    measured = report["makespan_s"]
    predicted = model.seconds(n)
    residuals = residual_attribution(report, predicted)
    return {
        "schema": CONFORMANCE_SCHEMA,
        "n": n,
        "measured_s": measured,
        "predicted_s": predicted,
        "gap_s": measured - predicted,
        "slowdown": (predicted / measured) if measured > 0 else math.inf,
        "residuals": residuals,
        "model": {
            "platform": model.platform_name,
            "n_gpus": model.n_gpus,
            "slope": model.slope,
            "calibration_n": model.calibration_n,
        },
    }


def attach_conformance(result, model: "LowerBoundModel",
                       report: dict | None = None) -> dict:
    """Compute a conformance record for a finished
    :class:`~repro.hetsort.result.SortResult` and export it onto
    ``result.metrics["conformance"]`` (also returned).

    ``report`` optionally supplies the run report when the caller has
    already built one (building it walks the whole span DAG, so sharing
    matters on large traces); only its measured/critical-path fields are
    read, never the label.
    """
    if report is None:
        from repro.obs.diff import run_report
        report = run_report(result)
    record = conformance_record(report, model)
    result.metrics["conformance"] = record
    return record


# ---------------------------------------------------------------------------
# Group fits and anomaly flags
# ---------------------------------------------------------------------------

def fit_line(points: _t.Sequence[tuple[float, float]]
             ) -> tuple[float, float, float]:
    """Least-squares affine fit ``t = intercept + slope * n`` with R².

    ``points`` are ``(n, seconds)`` pairs.  The *slope* is the quantity
    comparable to the paper's Fig. 11 models (``T = slope * n``): the
    intercept soaks up the size-independent overheads (pinned
    allocation, per-batch fixed costs) that dominate small-n sweeps and
    would otherwise wreck a through-origin fit.  R² is 1.0 for a perfect
    line and, by convention, for degenerate (< 3 point or zero-spread)
    groups."""
    pts = [(float(n), float(t)) for n, t in points]
    if not pts:
        return 0.0, 0.0, 1.0
    if len(pts) == 1:
        n, t = pts[0]
        return 0.0, (t / n) if n > 0 else 0.0, 1.0
    k = len(pts)
    mean_n = sum(n for n, _ in pts) / k
    mean_t = sum(t for _, t in pts) / k
    sxx = sum((n - mean_n) ** 2 for n, _ in pts)
    if sxx <= 0:
        return mean_t, 0.0, 1.0
    slope = sum((n - mean_n) * (t - mean_t) for n, t in pts) / sxx
    intercept = mean_t - slope * mean_n
    ss_tot = sum((t - mean_t) ** 2 for _, t in pts)
    ss_res = sum((t - intercept - slope * n) ** 2 for n, t in pts)
    if ss_tot <= 0:
        return intercept, slope, 1.0
    return intercept, slope, 1.0 - ss_res / ss_tot


def group_key(record: dict) -> str:
    """The fit group of one ledger record: platform, GPUs, approach."""
    pt = record["point"]
    return f"{pt['platform']}|g{pt['n_gpus']}|{pt['approach']}"


def group_conformance(records: _t.Sequence[dict],
                      z_threshold: float = Z_THRESHOLD,
                      rel_tolerance: float = REL_TOLERANCE) -> dict:
    """Fit one line per (platform, n_gpus, approach) group and flag
    anomalous runs.

    A run is anomalous when its deviation from the group's fitted line
    exceeds ``rel_tolerance`` relative to the fitted prediction
    (``"relative"`` flag), or -- for groups of at least three runs with
    non-degenerate spread -- when its z-score among the group's
    residuals exceeds ``z_threshold`` (``"zscore"`` flag)."""
    from repro.model.lowerbound import paper_slopes
    groups: dict[str, list[dict]] = {}
    for rec in records:
        groups.setdefault(group_key(rec), []).append(rec)
    paper = paper_slopes()
    out: dict[str, dict] = {}
    for key in sorted(groups):
        recs = sorted(groups[key], key=lambda r: r["conformance"]["n"])
        pts = [(r["conformance"]["n"], r["conformance"]["measured_s"])
               for r in recs]
        intercept, slope, r2 = fit_line(pts)
        platform = recs[0]["point"]["platform"]
        n_gpus = recs[0]["point"]["n_gpus"]
        paper_slope = paper.get(n_gpus) if platform == "PLATFORM2" else None
        errors = [t - (intercept + slope * n) for n, t in pts]
        mean_e = sum(errors) / len(errors)
        var = sum((e - mean_e) ** 2 for e in errors) / len(errors)
        std = math.sqrt(var)
        anomalies = []
        for rec, (n, t), e in zip(recs, pts, errors):
            expected = intercept + slope * n
            flags = []
            rel = abs(e) / expected if expected > 0 else math.inf
            if rel > rel_tolerance:
                flags.append("relative")
            z = (e - mean_e) / std if std > 0 else 0.0
            if len(recs) >= 3 and std > 0 and abs(z) > z_threshold:
                flags.append("zscore")
            if flags:
                anomalies.append({
                    "run_id": rec["run_id"],
                    "n": n,
                    "measured_s": t,
                    "expected_s": expected,
                    "deviation_s": e,
                    "rel": rel,
                    "z": z,
                    "flags": flags,
                })
        model_slope = recs[0]["conformance"]["model"]["slope"]
        out[key] = {
            "platform": platform,
            "n_gpus": n_gpus,
            "approach": recs[0]["point"]["approach"],
            "n_runs": len(recs),
            "fitted_intercept": intercept,
            "fitted_slope": slope,
            "r2": r2,
            "model_slope": model_slope,
            "paper_slope": paper_slope,
            "fitted_vs_paper": (slope / paper_slope) if paper_slope
            else None,
            "model_vs_paper": (model_slope / paper_slope) if paper_slope
            else None,
            "anomalies": anomalies,
        }
    return out


def conformance_summary(records: _t.Sequence[dict],
                        z_threshold: float = Z_THRESHOLD,
                        rel_tolerance: float = REL_TOLERANCE) -> dict:
    """The whole-ledger conformance document (groups + flat anomaly
    list + the documented paper bands)."""
    groups = group_conformance(records, z_threshold=z_threshold,
                               rel_tolerance=rel_tolerance)
    anomalies = [dict(a, group=key)
                 for key, g in groups.items() for a in g["anomalies"]]
    slowdowns = [r["conformance"]["slowdown"] for r in records
                 if r["conformance"]["measured_s"] > 0]
    return {
        "schema": SUMMARY_SCHEMA,
        "n_runs": len(records),
        "n_groups": len(groups),
        "n_anomalies": len(anomalies),
        "mean_slowdown": (sum(slowdowns) / len(slowdowns))
        if slowdowns else 0.0,
        "z_threshold": z_threshold,
        "rel_tolerance": rel_tolerance,
        "groups": groups,
        "anomalies": anomalies,
        "paper_bands": PAPER_BANDS,
    }
