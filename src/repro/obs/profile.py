"""Wall-clock profiling of the *real* numpy kernels.

The simulation's timeline is analytic; the functional layer nevertheless
executes genuine numpy kernels (LSD radix, multiway merge, sample sort)
whose real cost is worth measuring when calibrating or optimising them.
:func:`profiled` wraps a kernel so that, **only while profiling is
enabled**, each call's ``time.perf_counter`` duration is accumulated into
a per-kernel :class:`KernelStats`.

Disabled (the default) the wrapper is a single falsy branch -- no timer
reads, no allocation -- and enabling it can never change the kernel's
return value, the sorted output, or the simulated timeline (wall-clock
measurements never touch the :class:`~repro.sim.engine.Environment`).
"""

from __future__ import annotations

import dataclasses
import functools
import json
import time
import typing as _t
from dataclasses import dataclass

__all__ = [
    "KernelStats", "profiled", "enable_profiling", "disable_profiling",
    "profiling_enabled", "profiling_stats", "reset_profiling", "snapshot",
    "merge_snapshots", "snapshot_to_jsonl",
]

_ENABLED = False
_STATS: dict[str, "KernelStats"] = {}


@dataclass
class KernelStats:
    """Accumulated wall-clock statistics for one kernel name.

    Every field is strict JSON: ``min_s`` of an empty accumulator is
    ``0.0``, never ``inf`` (which :func:`json.dumps` would serialize as
    the non-standard ``Infinity`` literal).
    """

    name: str
    calls: int = 0
    total_s: float = 0.0
    min_s: float = 0.0
    max_s: float = 0.0
    elements: int = 0

    def record(self, seconds: float, elements: int = 0) -> None:
        self.calls += 1
        self.min_s = (seconds if self.calls == 1
                      else min(self.min_s, seconds))
        self.total_s += seconds
        self.max_s = max(self.max_s, seconds)
        self.elements += elements

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    @property
    def elements_per_s(self) -> float:
        return self.elements / self.total_s if self.total_s > 0 else 0.0

    def to_dict(self) -> dict:
        """Strict-JSON form (derived rates included)."""
        return {
            "name": self.name, "calls": self.calls,
            "total_s": self.total_s, "min_s": self.min_s,
            "max_s": self.max_s, "mean_s": self.mean_s,
            "elements": self.elements,
            "elements_per_s": self.elements_per_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KernelStats":
        """Rebuild an accumulator from :meth:`to_dict` output (derived
        fields ``mean_s`` / ``elements_per_s`` are recomputed, not
        trusted)."""
        return cls(name=str(data["name"]), calls=int(data["calls"]),
                   total_s=float(data["total_s"]),
                   min_s=float(data["min_s"]), max_s=float(data["max_s"]),
                   elements=int(data.get("elements", 0)))

    def merge(self, other: "KernelStats") -> "KernelStats":
        """Combine two accumulators for the same kernel name.

        Returns a new :class:`KernelStats`; neither operand is mutated.
        Merging is exact for ``calls``/``total_s``/``elements`` and for
        the extrema (an empty side contributes nothing, so its sentinel
        ``min_s == 0.0`` never pollutes the other side's minimum).
        """
        if self.name != other.name:
            raise ValueError(
                "cannot merge stats for different kernels: "
                f"{self.name!r} vs {other.name!r}")
        if not self.calls:
            return dataclasses.replace(other)
        if not other.calls:
            return dataclasses.replace(self)
        return KernelStats(
            name=self.name, calls=self.calls + other.calls,
            total_s=self.total_s + other.total_s,
            min_s=min(self.min_s, other.min_s),
            max_s=max(self.max_s, other.max_s),
            elements=self.elements + other.elements)


def enable_profiling() -> None:
    """Turn kernel wall-clocking on (stats accumulate until reset)."""
    global _ENABLED
    _ENABLED = True


def disable_profiling() -> None:
    """Turn kernel wall-clocking off (stats are kept, not cleared)."""
    global _ENABLED
    _ENABLED = False


def profiling_enabled() -> bool:
    return _ENABLED


def reset_profiling() -> None:
    """Drop all accumulated statistics."""
    _STATS.clear()


def profiling_stats() -> dict[str, KernelStats]:
    """Accumulated stats by kernel name (live view; see :func:`snapshot`
    for a frozen copy)."""
    return _STATS


def snapshot() -> dict[str, KernelStats]:
    """A frozen, name-sorted copy of the accumulated stats.

    Each entry is an independent :class:`KernelStats` copy: later kernel
    calls (or :func:`reset_profiling`) never mutate a snapshot, so it is
    safe to diff two snapshots or serialize one
    (``{k: s.to_dict() for k, s in snapshot().items()}``) while
    profiling continues.
    """
    return {name: dataclasses.replace(_STATS[name])
            for name in sorted(_STATS)}


def merge_snapshots(*snaps: dict[str, KernelStats]
                    ) -> dict[str, KernelStats]:
    """Merge any number of :func:`snapshot` dicts into one (name-sorted;
    per-name stats combined with :meth:`KernelStats.merge`)."""
    merged: dict[str, KernelStats] = {}
    for snap in snaps:
        for name, stats in snap.items():
            prev = merged.get(name)
            merged[name] = (dataclasses.replace(stats) if prev is None
                            else prev.merge(stats))
    return {name: merged[name] for name in sorted(merged)}


def snapshot_to_jsonl(snap: dict[str, KernelStats]) -> str:
    """Serialize a snapshot as byte-stable JSONL, one kernel per line
    (name-sorted, canonical key order, compact separators).  Ends with a
    trailing newline unless the snapshot is empty."""
    lines = [json.dumps(snap[name].to_dict(), sort_keys=True,
                        separators=(",", ":"))
             for name in sorted(snap)]
    return "".join(line + "\n" for line in lines)


def _record(name: str, seconds: float, elements: int) -> None:
    stats = _STATS.get(name)
    if stats is None:
        stats = _STATS[name] = KernelStats(name)
    stats.record(seconds, elements)


def profiled(name: str,
             size_of: _t.Callable[..., int] | None = None):
    """Decorator: wall-clock calls to a kernel under ``name``.

    ``size_of(*args, **kwargs)`` may report the element count processed
    (for throughput stats).  When profiling is disabled the only cost is
    one module-global truthiness check per call.
    """
    def deco(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _ENABLED:
                return fn(*args, **kwargs)
            t0 = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                elapsed = time.perf_counter() - t0
                n = 0
                if size_of is not None:
                    try:
                        n = int(size_of(*args, **kwargs))
                    except Exception:  # noqa: BLE001 - stats must not raise
                        n = 0
                _record(name, elapsed, n)
        wrapper.__profiled_name__ = name
        return wrapper
    return deco
