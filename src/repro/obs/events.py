"""The streaming telemetry bus: typed publish/subscribe events emitted
*while* a heterogeneous sort runs.

Everything built by the earlier observability layers (metrics, causal
tracing, conformance) is post-hoc -- nothing is visible until the run
finishes.  The :class:`EventBus` closes that blind spot: instrumented
emission points inside the simulator publish typed
:class:`TelemetryEvent` s as they happen --

* ``span``    -- every :meth:`repro.sim.trace.Trace.record` call;
* ``queue``   -- every :class:`~repro.sim.resources.Resource` /
  :class:`~repro.sim.resources.Store` state change (queue depths,
  units in use);
* ``counter`` -- every :class:`~repro.obs.counters.MetricsRecorder`
  sample;
* ``phase``   -- pipeline phase transitions published by the approach
  runners (batch staged, chunk HtoD'd, run sorted, merge started);
* ``run.start`` / ``run.end`` -- run lifecycle with the plan context;
* ``warning`` -- stall / deadline diagnostics published by the
  :class:`~repro.obs.sinks.WatchdogSink`;
* ``fault.injected`` / ``retry.attempt`` / ``degrade.replan`` -- the
  chaos layer (:mod:`repro.sim.faults` scheduling faults,
  :mod:`repro.hetsort.resilience` recovering from them).

Subscribers implement the :class:`Sink` protocol
(:mod:`repro.obs.sinks` ships a byte-stable JSONL structured log, a
rolling aggregator with ETA, a throttled TTY renderer and a stall /
deadline watchdog).

**The neutrality invariant.**  Emission is strictly passive: no bus or
sink may schedule simulation events, request resources, or otherwise
touch the :class:`~repro.sim.engine.Environment`.  Attaching or
detaching any sink therefore never perturbs the simulated timeline or
the canonical run report -- the determinism tests pin this byte for
byte.  With no bus attached every emission point is a single ``is
None`` check (the same zero-overhead-when-disabled contract the
counter probes and kernel profiler follow).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

__all__ = ["EV", "TelemetryEvent", "Sink", "EventBus",
           "connect_machine", "connect_context"]

#: Schema identifier of the serialized event stream (see
#: :class:`repro.obs.sinks.JsonlSink`).
EVENTS_SCHEMA = "repro.events/v1"


class EV:
    """Canonical telemetry event kinds."""

    RUN_START = "run.start"   #: run lifecycle: plan + config context
    RUN_END = "run.end"       #: run lifecycle: elapsed / makespan
    SPAN = "span"             #: a trace span was recorded
    QUEUE = "queue"           #: a resource/store queue changed state
    COUNTER = "counter"       #: a counter/gauge sample was recorded
    PHASE = "phase"           #: a pipeline phase transition
    WARNING = "warning"       #: watchdog diagnostics (stall, deadline)
    FAULT = "fault.injected"  #: a scheduled fault fired (chaos plans)
    RETRY = "retry.attempt"   #: a faulted operation backed off to retry
    DEGRADE = "degrade.replan"  #: graceful degradation (fallback/replan)
    MEM_ALLOC = "mem.alloc"     #: a device/pinned allocation was recorded
    MEM_FREE = "mem.free"       #: a device/pinned release was recorded
    MEM_WATERMARK = "mem.watermark"  #: a pool reached a new peak occupancy
    FLOW_START = "flow.start"   #: a bandwidth flow joined the network
    FLOW_RATE = "flow.rate"     #: the allocator changed a flow's rate
    FLOW_END = "flow.end"       #: a bandwidth flow completed
    JOB_SUBMIT = "service.job.submit"  #: a sort job entered the service
    JOB_START = "service.job.start"    #: a job was admitted and started
    JOB_END = "service.job.end"        #: a job completed (latency known)
    EPOCH = "service.epoch"     #: an adaptive-controller control epoch

    ALL = (RUN_START, RUN_END, SPAN, QUEUE, COUNTER, PHASE, WARNING,
           FAULT, RETRY, DEGRADE, MEM_ALLOC, MEM_FREE, MEM_WATERMARK,
           FLOW_START, FLOW_RATE, FLOW_END,
           JOB_SUBMIT, JOB_START, JOB_END, EPOCH)


@dataclass(frozen=True)
class TelemetryEvent:
    """One published telemetry event.

    ``t`` is *simulated* seconds (the bus clock), ``seq`` the bus-wide
    monotonic sequence number; together they give every event a stable,
    deterministic identity -- the property the byte-stable JSONL log
    relies on.
    """

    kind: str
    t: float
    seq: int
    data: dict

    def to_dict(self) -> dict:
        """JSON-serialisable form (one ``repro.events/v1`` line)."""
        return {"kind": self.kind, "t": self.t, "seq": self.seq,
                "data": self.data}

    @classmethod
    def from_dict(cls, doc: dict) -> "TelemetryEvent":
        return cls(kind=doc["kind"], t=doc["t"], seq=doc["seq"],
                   data=dict(doc.get("data", {})))


class Sink:
    """Base class for event-bus subscribers.

    Subclasses override :meth:`emit`; the other hooks are optional.
    Sinks are observers only -- they must never schedule simulation
    events or mutate simulation state (the neutrality invariant).
    """

    def emit(self, event: TelemetryEvent) -> None:
        """Receive one published event."""

    def on_step(self, bus: "EventBus") -> None:
        """Called after every engine step (``bus.steps`` counts them).

        Engine steps are deliberately *not* published as events -- they
        would dominate the log -- but step granularity is what the
        watchdog's stall detection and the TTY renderer's refresh need.
        """

    def close(self) -> None:
        """Flush and release any resources (end of run / end of watch)."""


class EventBus:
    """Typed publish/subscribe fan-out for telemetry events.

    ``clock`` is a zero-argument callable returning the current
    simulated time (normally ``lambda: env.now``); every published
    event is stamped with it plus a monotonic sequence number.
    """

    def __init__(self, clock: _t.Callable[[], float] | None = None) -> None:
        self.clock = clock if clock is not None else (lambda: 0.0)
        self._sinks: list[Sink] = []
        self._seq = 0
        #: Engine steps observed so far (driven by the engine hook).
        self.steps = 0

    # -- subscription --------------------------------------------------------

    def attach(self, sink: Sink) -> Sink:
        """Subscribe ``sink``; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def detach(self, sink: Sink) -> None:
        """Unsubscribe a sink added with :meth:`attach`."""
        self._sinks.remove(sink)

    @property
    def sinks(self) -> tuple[Sink, ...]:
        return tuple(self._sinks)

    def close(self) -> None:
        """Close every attached sink (in attachment order)."""
        for sink in self._sinks:
            sink.close()

    # -- publishing ----------------------------------------------------------

    def emit(self, kind: str, /, **data) -> TelemetryEvent:
        """Publish one event to every sink; returns it."""
        event = TelemetryEvent(kind=kind, t=self.clock(), seq=self._seq,
                               data=data)
        self._seq += 1
        for sink in self._sinks:
            sink.emit(event)
        return event

    # Typed emission helpers -- one per instrumented emission point.

    def span(self, span) -> None:
        """A :class:`~repro.sim.trace.Span` was recorded (full record:
        the JSONL log can be replayed back into a ``Trace``)."""
        self.emit(EV.SPAN, id=span.id, category=span.category,
                  label=span.label, start=span.start, end=span.end,
                  lane=span.lane, nbytes=span.nbytes,
                  elements=span.elements,
                  meta=[list(kv) for kv in span.meta],
                  deps=list(span.deps))

    def queue(self, name: str, depth: int, **state) -> None:
        """A resource/store queue changed (``depth`` = waiters/items)."""
        self.emit(EV.QUEUE, name=name, depth=depth, **state)

    def counter(self, name: str, value: float, unit: str = "") -> None:
        """A counter/gauge sample was recorded."""
        self.emit(EV.COUNTER, name=name, value=value, unit=unit)

    def phase(self, name: str, **data) -> None:
        """A pipeline phase transition (published by approach runners)."""
        self.emit(EV.PHASE, name=name, **data)

    def warning(self, code: str, message: str, **data) -> None:
        """A watchdog diagnostic (stall, deadline overrun)."""
        self.emit(EV.WARNING, code=code, message=message, **data)

    def fault(self, kind: str, **data) -> None:
        """A scheduled fault fired (published by the
        :class:`~repro.sim.faults.FaultInjector`)."""
        self.emit(EV.FAULT, kind=kind, **data)

    def retry(self, what: str, attempt: int, **data) -> None:
        """A faulted operation backed off before retrying."""
        self.emit(EV.RETRY, what=what, attempt=attempt, **data)

    def degrade(self, reason: str, **data) -> None:
        """A graceful-degradation decision (CPU fallback, replan)."""
        self.emit(EV.DEGRADE, reason=reason, **data)

    def mem_alloc(self, pool: str, name: str, nbytes: int,
                  balance: int) -> None:
        """The :class:`~repro.obs.memory.MemoryLedger` recorded an
        allocation (``balance`` = the pool's occupancy after it)."""
        self.emit(EV.MEM_ALLOC, pool=pool, name=name, nbytes=nbytes,
                  balance=balance)

    def mem_free(self, pool: str, name: str, nbytes: int,
                 balance: int) -> None:
        """The ledger recorded a release."""
        self.emit(EV.MEM_FREE, pool=pool, name=name, nbytes=nbytes,
                  balance=balance)

    def mem_watermark(self, pool: str, peak_bytes: int,
                      capacity_bytes: int | None = None) -> None:
        """A pool reached a new high-watermark occupancy."""
        self.emit(EV.MEM_WATERMARK, pool=pool, peak_bytes=peak_bytes,
                  capacity_bytes=capacity_bytes)

    def flow_start(self, fid: int, nbytes: float, links: list,
                   label: str = "flow") -> None:
        """The :class:`~repro.obs.flows.FlowLedger` recorded a flow
        joining the network (``links`` = ``[[name, weight], ...]``)."""
        self.emit(EV.FLOW_START, id=fid, nbytes=nbytes, links=links,
                  label=label)

    def flow_rate(self, fid: int, rate: float) -> None:
        """The water-filling allocator granted a flow a new rate."""
        self.emit(EV.FLOW_RATE, id=fid, rate=rate)

    def flow_end(self, fid: int, moved: float) -> None:
        """A flow completed after moving ``moved`` bytes."""
        self.emit(EV.FLOW_END, id=fid, moved=moved)

    def job_submit(self, job: str, tenant: str, n: int, **data) -> None:
        """A sort job entered the service's admission queue."""
        self.emit(EV.JOB_SUBMIT, job=job, tenant=tenant, n=n, **data)

    def job_start(self, job: str, tenant: str, queued_s: float,
                  **data) -> None:
        """A job was admitted (memory + concurrency gates passed) and its
        runner process started."""
        self.emit(EV.JOB_START, job=job, tenant=tenant, queued_s=queued_s,
                  **data)

    def job_end(self, job: str, tenant: str, latency_s: float,
                **data) -> None:
        """A job completed; ``latency_s`` is submit-to-completion."""
        self.emit(EV.JOB_END, job=job, tenant=tenant, latency_s=latency_s,
                  **data)

    def epoch(self, index: int, **data) -> None:
        """The adaptive controller finished a control epoch (per-tenant
        utilization observed, level map possibly re-drawn)."""
        self.emit(EV.EPOCH, index=index, **data)

    # -- engine hook ---------------------------------------------------------

    def _on_step(self, env) -> None:
        """Called by :meth:`repro.sim.engine.Environment.step` after each
        processed event; fans out to the sinks' ``on_step`` hooks."""
        self.steps += 1
        for sink in self._sinks:
            sink.on_step(self)


# ---------------------------------------------------------------------------
# Wiring
# ---------------------------------------------------------------------------

def connect_machine(bus: EventBus, machine) -> None:
    """Wire ``bus`` into every emission point of a
    :class:`~repro.hw.machine.Machine`: the engine step hook, the trace,
    the core pool and each GPU's kernel/copy engines."""
    machine.env.bus = bus
    machine.trace.bus = bus
    machine.cores.bus = bus
    machine.bus = bus
    for gpu in machine.gpus:
        gpu.kernel_engine.bus = bus
        for engine in gpu.copy_engines.values():
            engine.bus = bus
    if machine.recorder is not None:
        machine.recorder.bus = bus
    if machine.faults is not None:
        machine.faults.bus = bus
    if machine.memory is not None:
        machine.memory.bus = bus
    if machine.net.ledger is not None:
        machine.net.ledger.bus = bus


def connect_context(bus: EventBus, ctx) -> None:
    """Wire ``bus`` into a :class:`~repro.hetsort.context.RunContext`:
    the machine (see :func:`connect_machine`), the run's counter
    recorder, and the sorted-run hand-off queue."""
    connect_machine(bus, ctx.machine)
    ctx.obs.bus = bus
    ctx.sorted_runs.bus = bus
    ctx.bus = bus
