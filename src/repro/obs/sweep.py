"""Sweep harness: run an (approach x n x streams x platform) grid and
persist every run as one canonical JSONL line -- the **sweep ledger**.

A ledger line is a pure function of the deterministic simulation: the
run's grid point, its headline measurements, its canonical
:func:`repro.obs.diff.run_report` (critical path included), and its
:func:`repro.obs.conformance.conformance_record` against the Sec. IV-G
lower-bound model for that (platform, n_gpus).  Serialized with
:func:`repro.obs.diff.canonical_json` in compact form, a same-seed sweep
writes byte-identical ledgers -- the property the CI conformance gate
and the acceptance tests rely on.

The named grids:

``tiny``
    Two PLATFORM1 runs; exists for fast CLI tests.
``ci``
    The pinned mini-sweep the CI benchmark job replays and the
    conformance gate freezes (BLINE + PIPEDATA on PLATFORM1, three
    sizes each).
``small``
    ``ci`` plus a PLATFORM2 2-GPU PIPEDATA column -- the smallest grid
    that exercises every dashboard panel (multi-platform scatter,
    missing-overhead growth, residual stacks).
``fig8`` / ``fig11``
    Paper-scale grids reproducing Fig. 8's missing-overhead growth and
    Fig. 11's measured-vs-model scatter (minutes, not CI material).
"""

from __future__ import annotations

import typing as _t

from repro.errors import LedgerError
from repro.obs.conformance import attach_conformance
from repro.obs.diff import canonical_json, run_report

if _t.TYPE_CHECKING:  # repro.model imports the sorter; keep obs import-light
    from repro.model.lowerbound import LowerBoundModel

__all__ = ["GRIDS", "sweep_points", "run_point", "ledger_record",
           "run_sweep", "write_ledger", "load_ledger"]

LEDGER_SCHEMA = "repro.sweep/v1"

#: Keys a grid point may carry (everything but platform/n/n_gpus is
#: forwarded to :class:`~repro.hetsort.config.SortConfig`).
_CONFIG_KEYS = ("approach", "n_streams", "batch_size", "pinned_elements",
                "memcpy_threads")


def _point(platform: str, approach: str, n: int, *, n_gpus: int = 1,
           n_streams: int = 1, batch_size: int | None = None,
           pinned_elements: int = 50_000,
           memcpy_threads: int = 1) -> dict:
    return {
        "platform": platform, "approach": approach, "n": int(n),
        "n_gpus": n_gpus, "n_streams": n_streams,
        "batch_size": batch_size, "pinned_elements": pinned_elements,
        "memcpy_threads": memcpy_threads,
    }


def _grid_tiny() -> list[dict]:
    return [
        _point("PLATFORM1", "bline", 1_000_000),
        _point("PLATFORM1", "pipedata", 2_000_000, n_streams=2,
               batch_size=500_000),
    ]


def _grid_ci() -> list[dict]:
    pts = [_point("PLATFORM1", "bline", n)
           for n in (1_000_000, 2_000_000, 4_000_000)]
    pts += [_point("PLATFORM1", "pipedata", n, n_streams=2,
                   batch_size=n // 4)
            for n in (1_000_000, 2_000_000, 4_000_000)]
    return pts


def _grid_small() -> list[dict]:
    pts = _grid_ci()
    pts += [_point("PLATFORM2", "pipedata", n, n_gpus=2, n_streams=2,
                   batch_size=n // 4)
            for n in (2_000_000, 4_000_000, 8_000_000)]
    return pts


def _grid_fig8() -> list[dict]:
    return [_point("PLATFORM1", "bline", n, pinned_elements=10 ** 6)
            for n in (200_000_000, 400_000_000, 800_000_000,
                      1_000_000_000)]


def _grid_fig11() -> list[dict]:
    bs = int(3.5e8)
    pts = []
    for g in (1, 2):
        pts += [_point("PLATFORM2", "pipedata", k * bs, n_gpus=g,
                       n_streams=2, batch_size=bs,
                       pinned_elements=10 ** 6)
                for k in (4, 8, 11, 14)]
    return pts


#: name -> (point builder, lower-bound calibration n override).  A
#: ``model_n`` of None derives the model at near-capacity n exactly as
#: the paper does; the small CI-able grids use a modest calibration size
#: so a sweep stays fast.
GRIDS: dict[str, tuple[_t.Callable[[], list[dict]], int | None]] = {
    "tiny": (_grid_tiny, 4_000_000),
    "ci": (_grid_ci, 20_000_000),
    "small": (_grid_small, 20_000_000),
    "fig8": (_grid_fig8, None),
    "fig11": (_grid_fig11, None),
}


def _run_id(pt: dict) -> str:
    return (f"{pt['platform']}-{pt['approach']}-g{pt['n_gpus']}"
            f"-s{pt['n_streams']}-n{pt['n']}")


def sweep_points(grid: str) -> list[dict]:
    """The expanded, deterministic point list of a named grid, each
    point carrying its stable ``run_id``."""
    try:
        build, _ = GRIDS[grid]
    except KeyError:
        raise LedgerError(f"unknown sweep grid {grid!r}; "
                          f"choose from {sorted(GRIDS)}") from None
    return [dict(pt, run_id=_run_id(pt)) for pt in build()]


def run_point(pt: dict, sinks: _t.Sequence = ()):
    """Run one grid point; returns its SortResult.

    ``sinks`` optionally attaches streaming-telemetry subscribers
    (:class:`~repro.obs.events.Sink`) -- passive by contract, so a
    sweep's ledger bytes are identical with or without them."""
    from repro.hetsort.sorter import HeterogeneousSorter
    from repro.hw.platforms import get_platform
    platform = get_platform(pt["platform"])
    config_kw = {k: pt[k] for k in _CONFIG_KEYS if pt.get(k) is not None}
    sorter = HeterogeneousSorter(platform, n_gpus=pt["n_gpus"],
                                 **config_kw)
    return sorter.sort(n=pt["n"], sinks=sinks)


def ledger_record(result, pt: dict, model: "LowerBoundModel") -> dict:
    """One canonical ledger line: point + measurements + report +
    conformance (also exported onto ``result.metrics``)."""
    run_id = pt.get("run_id") or _run_id(pt)
    report = run_report(result, label=run_id)
    conf = attach_conformance(result, model, report=report)
    return {
        "schema": LEDGER_SCHEMA,
        "run_id": run_id,
        "point": {k: pt[k] for k in
                  ("platform", "approach", "n", "n_gpus", "n_streams",
                   "batch_size", "pinned_elements", "memcpy_threads")},
        "measured": {
            "makespan_s": result.trace.makespan(),
            "elapsed_s": result.elapsed,
            "related_work_s": result.related_work_end_to_end,
            "missing_overhead_s": result.missing_overhead,
            "throughput_el_per_s": result.throughput,
        },
        "report": report,
        "conformance": conf,
    }


def run_sweep(points: _t.Sequence[dict], model_n: int | None = None,
              progress: _t.Callable[[str], None] | None = None
              ) -> list[dict]:
    """Run every point and return its ledger records, deriving (and
    caching) one lower-bound model per (platform, n_gpus).

    ``model_n`` overrides the model's calibration size (None = the
    paper's near-capacity derivation); ``progress`` is called with one
    line per finished run."""
    from repro.hw.platforms import get_platform
    from repro.model.lowerbound import measure_bline_throughput
    models: dict[tuple[str, int], "LowerBoundModel"] = {}
    records = []
    for pt in points:
        key = (pt["platform"], pt["n_gpus"])
        if key not in models:
            models[key] = measure_bline_throughput(
                get_platform(pt["platform"]), n_gpus=pt["n_gpus"],
                n=model_n)
        res = run_point(pt)
        rec = ledger_record(res, pt, models[key])
        records.append(rec)
        if progress is not None:
            c = rec["conformance"]
            progress(f"{rec['run_id']}: measured {c['measured_s']:.4f} s  "
                     f"model {c['predicted_s']:.4f} s  "
                     f"gap {c['gap_s']:+.4f} s")
    return records


def write_ledger(records: _t.Sequence[dict], path) -> None:
    """Write the ledger as canonical JSONL (one compact line per run;
    byte-stable for a deterministic sweep)."""
    with open(path, "w") as fh:
        for rec in records:
            fh.write(canonical_json(rec, indent=None))
            fh.write("\n")


def load_ledger(path) -> list[dict]:
    """Read a JSONL ledger back; raises :class:`LedgerError` on
    malformed lines or unknown schemas."""
    import json
    records = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise LedgerError(
                    f"{path}:{lineno}: not valid JSON ({exc})") from exc
            if rec.get("schema") != LEDGER_SCHEMA:
                raise LedgerError(
                    f"{path}:{lineno}: unknown ledger schema "
                    f"{rec.get('schema')!r} (expected {LEDGER_SCHEMA})")
            records.append(rec)
    return records
