"""Host-side library facades: CPU sorts (Fig. 4), merges (Fig. 6) and
staged copies, each coupling a functional implementation with its
calibrated cost model."""

from repro.cpu.memcpy import memcpy_seconds, staged_copy
from repro.cpu.merge import (multiway_merge_arrays, multiway_merge_seconds,
                             pairwise_merge, pairwise_merge_seconds)
from repro.cpu.parallel_sort import LIBRARIES, SortLibrary, get_library

__all__ = [
    "SortLibrary", "get_library", "LIBRARIES",
    "pairwise_merge", "pairwise_merge_seconds",
    "multiway_merge_arrays", "multiway_merge_seconds",
    "staged_copy", "memcpy_seconds",
]
