"""Host merging facades (the Fig. 6 primitives).

Pairs the functional Merge-Path / multiway implementations with the
platform merge cost model.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.hw.spec import PlatformSpec
from repro.kernels.mergepath import parallel_merge
from repro.kernels.multiway import multiway_merge

__all__ = ["pairwise_merge", "pairwise_merge_seconds",
           "multiway_merge_arrays", "multiway_merge_seconds"]


def pairwise_merge(a: np.ndarray, b: np.ndarray,
                   threads: int = 1) -> np.ndarray:
    """Really merge two sorted arrays (Merge-Path partitioned)."""
    return parallel_merge(a, b, threads=threads)


def pairwise_merge_seconds(platform: PlatformSpec, n_total: int,
                           threads: int = 1) -> float:
    """Modelled pair-wise merge time for ``n_total`` output elements."""
    return platform.merge.seconds(n_total, threads=threads, k=2)


def multiway_merge_arrays(runs: _t.Sequence[np.ndarray]) -> np.ndarray:
    """Really merge k sorted runs."""
    return multiway_merge(runs)


def multiway_merge_seconds(platform: PlatformSpec, n_total: int, k: int,
                           threads: int = 1) -> float:
    """Modelled k-way multiway merge time."""
    return platform.merge.seconds(n_total, threads=threads, k=k)
