"""Host sorting-library facades (the Fig. 4 contenders).

Couples each library's *functional* implementation (a real algorithm from
:mod:`repro.kernels`) with its *cost model* (from the platform spec), so
the same object answers both "sort this array" and "how long would this
take with t threads on PLATFORM1".

Libraries (Sec. IV-C):

* ``gnu``   -- GNU libstdc++ parallel mode (the reference implementation);
* ``tbb``   -- Intel TBB ``parallel_sort``;
* ``std``   -- sequential ``std::sort`` (introsort);
* ``qsort`` -- C ``qsort`` with comparator callbacks.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

from repro.hw.spec import PlatformSpec, SortCostModel
from repro.kernels.quicksort import introsort
from repro.kernels.samplesort import sample_sort

__all__ = ["SortLibrary", "get_library", "LIBRARIES"]


def _gnu_impl(a: np.ndarray, threads: int) -> np.ndarray:
    return sample_sort(a, threads=threads)


def _tbb_impl(a: np.ndarray, threads: int) -> np.ndarray:
    # TBB's parallel_sort is a task-stealing quicksort; sample sort with a
    # different seed stands in for its (different) partitioning choices.
    return sample_sort(a, threads=threads, seed=0x7BB)


def _std_impl(a: np.ndarray, threads: int) -> np.ndarray:
    return introsort(a)


def _qsort_impl(a: np.ndarray, threads: int) -> np.ndarray:
    return introsort(a)


@dataclass(frozen=True)
class SortLibrary:
    """One CPU sorting library: functional implementation + cost model."""

    name: str
    impl: _t.Callable[[np.ndarray, int], np.ndarray]
    parallel: bool

    def sort(self, a: np.ndarray, threads: int = 1) -> np.ndarray:
        """Really sort ``a`` (sorted copy)."""
        return self.impl(np.asarray(a, dtype=np.float64),
                         threads if self.parallel else 1)

    def model(self, platform: PlatformSpec) -> SortCostModel:
        """This library's calibrated cost model on ``platform``."""
        return platform.sort_model(self.name)

    def seconds(self, platform: PlatformSpec, n: int,
                threads: int = 1) -> float:
        """Modelled response time."""
        return self.model(platform).seconds(n, threads)


LIBRARIES: dict[str, SortLibrary] = {
    "gnu": SortLibrary("gnu", _gnu_impl, parallel=True),
    "tbb": SortLibrary("tbb", _tbb_impl, parallel=True),
    "std": SortLibrary("std", _std_impl, parallel=False),
    "qsort": SortLibrary("qsort", _qsort_impl, parallel=False),
}


def get_library(name: str) -> SortLibrary:
    """Look a sort library up by name."""
    try:
        return LIBRARIES[name]
    except KeyError:
        raise KeyError(f"unknown sort library {name!r}; "
                       f"available: {sorted(LIBRARIES)}") from None
