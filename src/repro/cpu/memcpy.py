"""Staged host-copy facades (``std::memcpy`` vs. PARMEMCPY).

Functional chunked copies plus the cost model for single- and
multi-threaded staging copies between pageable and pinned buffers.
"""

from __future__ import annotations

import numpy as np

from repro.hw.spec import PlatformSpec

__all__ = ["staged_copy", "memcpy_seconds"]


def staged_copy(dst: np.ndarray, src: np.ndarray,
                chunk_elements: int) -> int:
    """Copy ``src`` into ``dst`` through fixed-size chunks (the staging
    access pattern); returns the number of chunks used."""
    if dst.shape != src.shape:
        raise ValueError("shape mismatch")
    n = len(src)
    chunks = 0
    for off in range(0, n, chunk_elements):
        end = min(off + chunk_elements, n)
        np.copyto(dst[off:end], src[off:end])
        chunks += 1
    return chunks


def memcpy_seconds(platform: PlatformSpec, nbytes: float,
                   threads: int = 1) -> float:
    """Modelled host-to-host copy time, uncontended.

    Rate = ``min(threads * per-core bandwidth, copy-bus bandwidth)`` --
    the reason a single core cannot saturate the bus (Sec. IV-F) and
    PARMEMCPY helps.
    """
    hm = platform.hostmem
    rate = min(threads * hm.per_core_copy_bw, hm.copy_bus_bw)
    return nbytes / rate
