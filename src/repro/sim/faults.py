"""Deterministic, seed-driven fault injection for the simulator.

The paper's pipelines assume PCIe transfers, pinned allocations and GPU
sorts never fail; at datacentre scale transient device faults and memory
pressure are the common case.  This module supplies the *scheduling* half
of the resilience story (recovery policies live in
:mod:`repro.hetsort.resilience`):

* :class:`FaultSpec` / :class:`FaultPlan` -- pure data, JSON-serialisable
  and byte-stable (like the sweep ledger), describing typed faults:

  ========================  =================================================
  kind                      effect
  ========================  =================================================
  ``pcie.transient``        a matching DMA transfer fails before the engine
                            engages (retryable)
  ``alloc.pinned``          a ``cudaMallocHost`` call fails (retryable)
  ``alloc.device``          a ``cudaMalloc`` call fails (retryable)
  ``gpu.lost``              the device dies permanently at ``at_s``
  ``bandwidth.degrade``     a link's capacity is scaled by ``factor`` over
                            ``[at_s, at_s + duration_s]``
  ========================  =================================================

* :class:`FaultInjector` -- the stateful runtime: op-ordinal matching for
  the transient kinds (hooks called from
  :meth:`repro.hw.machine.Machine.pcie_transfer` /
  :meth:`~repro.hw.machine.Machine.pinned_alloc` /
  :meth:`repro.cuda.runtime.Runtime.malloc`) and timed processes for
  device loss and bandwidth windows.  Every fired fault is published as a
  ``fault.injected`` event when a telemetry bus is attached.

**Determinism.**  A plan is pure data; the injector's matching counters
and timed processes are driven entirely by the deterministic simulation,
so the same plan over the same run produces byte-identical traces and
event logs.  An *empty* plan schedules nothing and matches nothing: runs
with one attached are byte-identical to runs without.
"""

from __future__ import annotations

import json
import typing as _t
from dataclasses import dataclass, fields

from repro.errors import FaultPlanError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "FaultInjector",
           "FAULTS_SCHEMA"]

#: Schema identifier of serialised fault plans.
FAULTS_SCHEMA = "repro.faults/v1"


class FaultKind:
    """Canonical fault kinds."""

    TRANSFER = "pcie.transient"       #: transient DMA transfer failure
    PINNED_ALLOC = "alloc.pinned"     #: transient cudaMallocHost failure
    DEVICE_ALLOC = "alloc.device"     #: transient cudaMalloc failure
    GPU_LOST = "gpu.lost"             #: permanent device loss at ``at_s``
    BANDWIDTH = "bandwidth.degrade"   #: link capacity window

    ALL = (TRANSFER, PINNED_ALLOC, DEVICE_ALLOC, GPU_LOST, BANDWIDTH)
    #: Kinds matched against operation ordinals (the ``after`` / ``times``
    #: counters); the rest are scheduled at a simulated time.
    COUNTED = (TRANSFER, PINNED_ALLOC, DEVICE_ALLOC)
    #: Link names a bandwidth window may target.
    LINKS = ("host_bus", "pcie.htod", "pcie.dtoh")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault (pure data).

    For the counted kinds, ``after`` matching operations pass unharmed,
    then the next ``times`` matching operations -- retried attempts
    included -- each draw a failure.  ``gpu`` / ``direction`` narrow the
    match (``None`` matches any).  ``gpu.lost`` kills device ``gpu`` at
    ``at_s``; ``bandwidth.degrade`` scales ``link``'s capacity by
    ``factor`` for ``duration_s`` seconds starting at ``at_s``.
    """

    kind: str
    gpu: int | None = None
    direction: str | None = None
    after: int = 0
    times: int = 1
    at_s: float = 0.0
    duration_s: float = 0.0
    link: str | None = None
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}")
        if self.direction is not None and self.direction not in ("HtoD",
                                                                 "DtoH"):
            raise FaultPlanError(f"bad direction {self.direction!r}")
        if self.after < 0 or self.times < 1:
            raise FaultPlanError(
                f"need after >= 0 and times >= 1 "
                f"(got after={self.after}, times={self.times})")
        if self.at_s < 0 or self.duration_s < 0:
            raise FaultPlanError("fault times must be >= 0")
        if self.kind == FaultKind.GPU_LOST and self.gpu is None:
            raise FaultPlanError("gpu.lost needs an explicit gpu index")
        if self.kind == FaultKind.BANDWIDTH:
            if self.link not in FaultKind.LINKS:
                raise FaultPlanError(
                    f"bandwidth.degrade needs link in {FaultKind.LINKS}, "
                    f"got {self.link!r}")
            if not 0 < self.factor <= 1:
                raise FaultPlanError(
                    f"bandwidth factor must be in (0, 1], got {self.factor}")
            if self.duration_s <= 0:
                raise FaultPlanError("bandwidth window needs duration_s > 0")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise FaultPlanError(
                f"unknown FaultSpec field(s) {sorted(unknown)}")
        if "kind" not in doc:
            raise FaultPlanError("FaultSpec needs a 'kind'")
        return cls(**doc)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` s (pure data).

    Byte-stable: :meth:`to_json` emits canonical JSON (sorted keys,
    fixed separators), so equal plans serialise identically.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int | None = None

    @property
    def empty(self) -> bool:
        return not self.faults

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict:
        doc: dict = {"schema": FAULTS_SCHEMA,
                     "faults": [f.to_dict() for f in self.faults]}
        if self.seed is not None:
            doc["seed"] = self.seed
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise FaultPlanError(f"fault plan must be an object, "
                                 f"got {type(doc).__name__}")
        schema = doc.get("schema")
        if schema != FAULTS_SCHEMA:
            raise FaultPlanError(
                f"unknown fault-plan schema {schema!r} "
                f"(expected {FAULTS_SCHEMA!r})")
        raw = doc.get("faults", [])
        if not isinstance(raw, list):
            raise FaultPlanError("'faults' must be a list")
        faults = tuple(FaultSpec.from_dict(f) for f in raw)
        seed = doc.get("seed")
        return cls(faults=faults, seed=seed)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise FaultPlanError(
                f"fault plan {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)

    # -- generation ---------------------------------------------------------

    @classmethod
    def random(cls, seed: int, *, n_gpus: int = 1, horizon_s: float = 0.05,
               max_faults: int = 4, allow_gpu_loss: bool = True,
               allow_bandwidth: bool = True) -> "FaultPlan":
        """A deterministic, seed-driven random plan (the chaos battery).

        ``horizon_s`` bounds the timed faults: device deaths land in the
        first half of the horizon (so they hit mid-run), bandwidth
        windows anywhere inside it.  Transfer faults dominate the mix --
        the staging path is the fragile, bandwidth-bound one.
        """
        import numpy as np

        if max_faults < 1:
            raise FaultPlanError(f"max_faults must be >= 1, got {max_faults}")
        if horizon_s <= 0:
            raise FaultPlanError(f"horizon_s must be > 0, got {horizon_s}")
        rng = np.random.default_rng(seed)
        kinds = [FaultKind.TRANSFER, FaultKind.PINNED_ALLOC,
                 FaultKind.DEVICE_ALLOC]
        weights = [0.5, 0.15, 0.1]
        if allow_gpu_loss and n_gpus > 1:
            # Only kill a device when survivors exist to replan onto.
            kinds.append(FaultKind.GPU_LOST)
            weights.append(0.1)
        if allow_bandwidth:
            kinds.append(FaultKind.BANDWIDTH)
            weights.append(0.15)
        p = np.asarray(weights) / sum(weights)

        specs: list[FaultSpec] = []
        for _ in range(int(rng.integers(1, max_faults + 1))):
            kind = kinds[int(rng.choice(len(kinds), p=p))]
            if kind == FaultKind.GPU_LOST:
                specs.append(FaultSpec(
                    kind=kind, gpu=int(rng.integers(0, n_gpus)),
                    at_s=round(float(rng.uniform(0, horizon_s / 2)), 9)))
            elif kind == FaultKind.BANDWIDTH:
                specs.append(FaultSpec(
                    kind=kind,
                    link=FaultKind.LINKS[int(rng.integers(0, 3))],
                    at_s=round(float(rng.uniform(0, horizon_s)), 9),
                    duration_s=round(
                        float(rng.uniform(horizon_s / 10, horizon_s / 2)), 9),
                    factor=round(float(rng.uniform(0.05, 0.6)), 9)))
            else:
                gpu = (int(rng.integers(0, n_gpus))
                       if rng.random() < 0.5 else None)
                direction = None
                if kind == FaultKind.TRANSFER and rng.random() < 0.67:
                    direction = ("HtoD", "DtoH")[int(rng.integers(0, 2))]
                specs.append(FaultSpec(
                    kind=kind, gpu=gpu, direction=direction,
                    after=int(rng.integers(0, 8)),
                    times=int(rng.integers(1, 6))))
        return cls(faults=tuple(specs), seed=int(seed))


class _Counter:
    """Match state of one counted spec: ops seen, failures delivered."""

    __slots__ = ("spec", "seen", "used")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.seen = 0
        self.used = 0


class FaultInjector:
    """Stateful runtime of one :class:`FaultPlan` over one machine.

    Hooks (``on_transfer`` / ``on_pinned_alloc`` / ``on_device_alloc``)
    are called by the instrumented operations and return the spec whose
    failure the operation must observe, or ``None``.  :meth:`start`
    schedules the timed kinds (device loss, bandwidth windows) as
    simulation processes -- an empty plan schedules nothing, which is
    what keeps no-fault runs byte-identical.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.machine = None
        #: Optional telemetry bus (wired by
        #: :func:`repro.obs.events.connect_machine`); fired faults are
        #: published as ``fault.injected`` events.
        self.bus = None
        self.counts: dict[str, int] = {}
        self.fired: list[dict] = []
        self._counters = [_Counter(s) for s in plan.faults
                          if s.kind in FaultKind.COUNTED]

    # -- lifecycle -----------------------------------------------------------

    def attach(self, machine) -> "FaultInjector":
        """Bind to a machine: the machine's instrumented primitives will
        call this injector's hooks.  Returns ``self`` for chaining."""
        self.machine = machine
        machine.faults = self
        return self

    def start(self, env: "Environment") -> None:
        """Schedule the timed faults (no-op for plans without any)."""
        if self.machine is None:
            raise FaultPlanError("attach() the injector before start()")
        n_gpus = len(self.machine.gpus)
        for spec in self.plan.faults:
            if spec.kind == FaultKind.GPU_LOST:
                if spec.gpu < n_gpus:
                    env.process(self._gpu_loss(env, spec),
                                name=f"fault.gpu_lost.{spec.gpu}")
            elif spec.kind == FaultKind.BANDWIDTH:
                env.process(self._bandwidth_window(env, spec),
                            name=f"fault.bandwidth.{spec.link}")

    # -- hooks (counted kinds) ----------------------------------------------

    def on_transfer(self, gpu_index: int, direction: str
                    ) -> FaultSpec | None:
        """One DMA transfer attempt on ``gpu_index`` in ``direction``."""
        return self._match(FaultKind.TRANSFER, gpu_index, direction)

    def on_pinned_alloc(self) -> FaultSpec | None:
        """One ``cudaMallocHost`` attempt."""
        return self._match(FaultKind.PINNED_ALLOC, None, None)

    def on_device_alloc(self, gpu_index: int) -> FaultSpec | None:
        """One ``cudaMalloc`` attempt on ``gpu_index``."""
        return self._match(FaultKind.DEVICE_ALLOC, gpu_index, None)

    def _match(self, kind: str, gpu_index: int | None,
               direction: str | None) -> FaultSpec | None:
        for counter in self._counters:
            spec = counter.spec
            if spec.kind != kind:
                continue
            if spec.gpu is not None and spec.gpu != gpu_index:
                continue
            if spec.direction is not None and spec.direction != direction:
                continue
            counter.seen += 1
            if counter.seen > spec.after and counter.used < spec.times:
                counter.used += 1
                self._fire(spec, gpu=gpu_index, direction=direction,
                           op=counter.seen)
                return spec
        return None

    # -- timed kinds ---------------------------------------------------------

    def _gpu_loss(self, env: "Environment", spec: FaultSpec):
        if spec.at_s > 0:
            yield env.timeout(spec.at_s)
        gpu = self.machine.gpus[spec.gpu]
        if not gpu.lost:
            gpu.mark_lost()
            self._fire(spec, gpu=spec.gpu, at_s=spec.at_s)

    def _bandwidth_window(self, env: "Environment", spec: FaultSpec):
        links = {"host_bus": self.machine.host_bus,
                 "pcie.htod": self.machine.pcie["HtoD"],
                 "pcie.dtoh": self.machine.pcie["DtoH"]}
        link = links[spec.link]
        if spec.at_s > 0:
            yield env.timeout(spec.at_s)
        original = link.capacity
        self.machine.net.set_capacity(link, original * spec.factor)
        self._fire(spec, link=spec.link, factor=spec.factor,
                   duration_s=spec.duration_s)
        yield env.timeout(spec.duration_s)
        # Overlapping windows on one link are last-writer-wins.
        self.machine.net.set_capacity(link, original)

    # -- accounting ----------------------------------------------------------

    def _fire(self, spec: FaultSpec, **data) -> None:
        self.counts[spec.kind] = self.counts.get(spec.kind, 0) + 1
        record = {"kind": spec.kind}
        record.update((k, v) for k, v in data.items() if v is not None)
        self.fired.append(record)
        if self.bus is not None:
            self.bus.fault(spec.kind, **{k: v for k, v in record.items()
                                         if k != "kind"})

    @property
    def fired_total(self) -> int:
        return len(self.fired)

    def summary(self) -> dict:
        """Deterministic counts of fired faults (for run metadata)."""
        return {"fired": self.fired_total,
                "by_kind": {k: self.counts[k] for k in sorted(self.counts)}}
