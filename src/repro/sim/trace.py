"""Timeline tracing and per-component time accounting.

Every simulated operation records a :class:`Span` (category, label, start,
end, bytes/elements, lane).  The paper's figures are all derived from such
spans:

* Fig. 7 / Fig. 8 -- per-component totals (``HtoD``, ``DtoH``, ``GPUSort``,
  ``MCpy``, ``PinnedAlloc``, ``Sync``) and the related-work "end-to-end"
  that omits the host-side categories;
* Fig. 9 / Fig. 10 -- makespans;
* the Gantt-style ASCII timelines in the examples.

Categories follow Table I of the paper.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

__all__ = ["Span", "Trace", "CAT"]


class CAT:
    """Canonical span category names (Table I of the paper)."""

    HTOD = "HtoD"            #: host-to-device PCIe transfer
    DTOH = "DtoH"            #: device-to-host PCIe transfer
    GPUSORT = "GPUSort"      #: on-GPU sort kernel
    MCPY = "MCpy"            #: host-to-host copy to/from pinned staging
    MERGE = "Merge"          #: final multiway merge on the CPU
    PAIRMERGE = "PairMerge"  #: pipelined pair-wise merge (PIPEMERGE)
    PINNED_ALLOC = "PinnedAlloc"  #: cudaMallocHost cost
    SYNC = "Sync"            #: per-chunk asynchronous-copy synchronisation
    CPUSORT = "CPUSort"      #: CPU-only sort (reference implementation)
    OTHER = "Other"

    #: Components counted by the related-work end-to-end time (Sec. IV-E).
    RELATED_WORK = (HTOD, DTOH, GPUSORT)
    #: Host-side overheads the related work omits.
    OMITTED = (MCPY, PINNED_ALLOC, SYNC)


@dataclass(frozen=True)
class Span:
    """One timed operation on the simulated timeline."""

    category: str
    label: str
    start: float
    end: float
    lane: str = ""          #: e.g. "gpu0", "stream1", "cpu"
    nbytes: float = 0.0
    elements: int = 0
    meta: tuple = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Collects spans and computes aggregates."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def record(self, category: str, label: str, start: float, end: float,
               lane: str = "", nbytes: float = 0.0, elements: int = 0,
               meta: tuple = ()) -> Span:
        """Append a span (``end`` must be >= ``start``)."""
        if end < start:
            raise ValueError(f"span ends before it starts: {label!r}")
        span = Span(category, label, start, end, lane, nbytes, elements, meta)
        self.spans.append(span)
        return span

    # -- aggregation ---------------------------------------------------------

    def total(self, category: str) -> float:
        """Sum of span durations in ``category`` (wall-clock overlap NOT
        collapsed -- matches how the paper reports per-component times)."""
        return sum(s.duration for s in self.spans if s.category == category)

    def busy_time(self, categories: _t.Iterable[str] | None = None,
                  lane: str | None = None) -> float:
        """Union length of span intervals (overlaps collapsed), optionally
        restricted to ``categories`` and/or a ``lane``."""
        cats = set(categories) if categories is not None else None
        ivs = sorted(
            (s.start, s.end) for s in self.spans
            if (cats is None or s.category in cats)
            and (lane is None or s.lane == lane))
        total = 0.0
        cur_s: float | None = None
        cur_e = 0.0
        for s, e in ivs:
            if cur_s is None:
                cur_s, cur_e = s, e
            elif s <= cur_e:
                cur_e = max(cur_e, e)
            else:
                total += cur_e - cur_s
                cur_s, cur_e = s, e
        if cur_s is not None:
            total += cur_e - cur_s
        return total

    def breakdown(self) -> dict[str, float]:
        """Per-category total durations, sorted descending."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.category] = out.get(s.category, 0.0) + s.duration
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def count(self, category: str) -> int:
        """Number of spans in ``category``."""
        return sum(1 for s in self.spans if s.category == category)

    def bytes_moved(self, category: str) -> float:
        """Total payload bytes across spans of ``category``."""
        return sum(s.nbytes for s in self.spans if s.category == category)

    def makespan(self) -> float:
        """End of the last span minus start of the first."""
        if not self.spans:
            return 0.0
        return (max(s.end for s in self.spans)
                - min(s.start for s in self.spans))

    def window(self) -> tuple[float, float]:
        """``(earliest start, latest end)`` across all spans
        (``(0.0, 0.0)`` when empty)."""
        if not self.spans:
            return 0.0, 0.0
        return (min(s.start for s in self.spans),
                max(s.end for s in self.spans))

    def categories(self) -> list[str]:
        """Distinct categories in first-seen order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.category, None)
        return list(seen)

    def lanes(self) -> list[str]:
        """Distinct lanes in first-seen order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.lane, None)
        return list(seen)

    def filter(self, category: str | None = None,
               lane: str | None = None) -> list[Span]:
        """Spans matching the given category and/or lane."""
        return [s for s in self.spans
                if (category is None or s.category == category)
                and (lane is None or s.lane == lane)]
