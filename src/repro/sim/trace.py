"""Timeline tracing and per-component time accounting.

Every simulated operation records a :class:`Span` (category, label, start,
end, bytes/elements, lane).  The paper's figures are all derived from such
spans:

* Fig. 7 / Fig. 8 -- per-component totals (``HtoD``, ``DtoH``, ``GPUSort``,
  ``MCpy``, ``PinnedAlloc``, ``Sync``) and the related-work "end-to-end"
  that omits the host-side categories;
* Fig. 9 / Fig. 10 -- makespans;
* the Gantt-style ASCII timelines in the examples.

Categories follow Table I of the paper.

Beyond the flat span list, a trace records *causal edges*: every span has
a stable ``id`` (its index in recording order) and a ``deps`` tuple of
earlier span ids that had to finish before it could run -- buffer
handoffs (a staging copy feeding the HtoD that reads it), stream order
(ops on one CUDA stream execute in submission order), engine order (two
sorts serialising on a device's kernel engine), synchronisation waits and
host-worker program order.  Because a span can only depend on spans that
already completed, ``deps`` ids are always smaller than the span's own id
and the span graph is acyclic by construction.  :mod:`repro.obs.causal`
turns this DAG into critical-path attribution and what-if predictions.
"""

from __future__ import annotations

import typing as _t
from collections.abc import Mapping
from dataclasses import dataclass, field

__all__ = ["Span", "Trace", "CAT"]


class CAT:
    """Canonical span category names (Table I of the paper)."""

    HTOD = "HtoD"            #: host-to-device PCIe transfer
    DTOH = "DtoH"            #: device-to-host PCIe transfer
    GPUSORT = "GPUSort"      #: on-GPU sort kernel
    MCPY = "MCpy"            #: host-to-host copy to/from pinned staging
    MERGE = "Merge"          #: final multiway merge on the CPU
    PAIRMERGE = "PairMerge"  #: pipelined pair-wise merge (PIPEMERGE)
    PINNED_ALLOC = "PinnedAlloc"  #: cudaMallocHost cost
    SYNC = "Sync"            #: per-chunk asynchronous-copy synchronisation
    CPUSORT = "CPUSort"      #: CPU-only sort (reference implementation)
    RETRY = "Retry"          #: simulated backoff before retrying a faulted op
    OTHER = "Other"

    #: Components counted by the related-work end-to-end time (Sec. IV-E).
    RELATED_WORK = (HTOD, DTOH, GPUSORT)
    #: Host-side overheads the related work omits.
    OMITTED = (MCPY, PINNED_ALLOC, SYNC)


def _normalize_meta(meta) -> tuple:
    """Normalize span metadata to a sorted tuple of ``(key, value)`` pairs.

    Accepts a mapping, an iterable of pairs, or an already-normalized
    tuple; always returns a canonical (sorted-by-key) tuple so two spans
    with equal metadata compare equal regardless of how the metadata was
    passed.
    """
    if not meta:
        return ()
    items = meta.items() if isinstance(meta, Mapping) else meta
    return tuple(sorted((str(k), v) for k, v in items))


@dataclass(frozen=True, slots=True)
class Span:
    """One timed operation on the simulated timeline."""

    category: str
    label: str
    start: float
    end: float
    lane: str = ""          #: e.g. "gpu0", "stream1", "cpu"
    nbytes: float = 0.0
    elements: int = 0
    meta: tuple = ()        #: sorted tuple of (key, value) pairs
    id: int = -1            #: index in the trace's recording order
    deps: tuple = ()        #: ids of spans this one causally waited for

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def meta_dict(self) -> dict:
        """Metadata as a plain dict."""
        return dict(self.meta)


class Trace:
    """Collects spans and computes aggregates."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        #: Streaming telemetry: an optional
        #: :class:`~repro.obs.events.EventBus` that every recorded span
        #: is published to as a ``span`` event.  ``None`` (the default)
        #: costs a single truthiness check per record; publication is
        #: passive and never alters the trace.
        self.bus = None

    def record(self, category: str, label: str, start: float, end: float,
               lane: str = "", nbytes: float = 0.0, elements: int = 0,
               meta: _t.Mapping | tuple = (),
               deps: _t.Iterable["Span | int | None"] = ()) -> Span:
        """Append a span (``end`` must be >= ``start``).

        ``meta`` may be a mapping or an iterable of pairs; it is stored as
        a sorted tuple of pairs.  ``deps`` lists causal predecessors as
        :class:`Span` objects or span ids (``None`` entries are ignored);
        every dependency must already be recorded in this trace.
        """
        if end < start:
            raise ValueError(f"span ends before it starts: {label!r}")
        sid = len(self.spans)
        dep_ids: list[int] = []
        for d in deps:
            if d is None:
                continue
            i = d.id if isinstance(d, Span) else int(d)
            if not 0 <= i < sid:
                raise ValueError(
                    f"span {label!r} depends on unrecorded span id {i}")
            if i not in dep_ids:
                dep_ids.append(i)
        span = Span(category, label, start, end, lane, nbytes, elements,
                    _normalize_meta(meta), id=sid,
                    deps=tuple(sorted(dep_ids)))
        self.spans.append(span)
        if self.bus is not None:
            self.bus.span(span)
        return span

    def span_by_id(self, span_id: int) -> Span:
        """The span with the given id (ids are list indices)."""
        return self.spans[span_id]

    def edges(self) -> _t.Iterator[tuple[int, int]]:
        """All causal edges as ``(parent_id, child_id)`` pairs, in
        deterministic (child, then parent) order."""
        for s in self.spans:
            for d in s.deps:
                yield d, s.id

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable form (spans with ids, deps and meta)."""
        return {"spans": [
            {"id": s.id, "category": s.category, "label": s.label,
             "start": s.start, "end": s.end, "lane": s.lane,
             "nbytes": s.nbytes, "elements": s.elements,
             "meta": [list(kv) for kv in s.meta], "deps": list(s.deps)}
            for s in self.spans]}

    @classmethod
    def from_dict(cls, doc: dict) -> "Trace":
        """Rebuild a trace written by :meth:`to_dict`."""
        trace = cls()
        for rec in doc["spans"]:
            trace.record(rec["category"], rec["label"], rec["start"],
                         rec["end"], lane=rec.get("lane", ""),
                         nbytes=rec.get("nbytes", 0.0),
                         elements=rec.get("elements", 0),
                         meta=[tuple(kv) for kv in rec.get("meta", ())],
                         deps=rec.get("deps", ()))
        return trace

    # -- aggregation ---------------------------------------------------------

    def total(self, category: str) -> float:
        """Sum of span durations in ``category`` (wall-clock overlap NOT
        collapsed -- matches how the paper reports per-component times)."""
        return sum(s.duration for s in self.spans if s.category == category)

    def busy_time(self, categories: _t.Iterable[str] | None = None,
                  lane: str | None = None) -> float:
        """Union length of span intervals (overlaps collapsed), optionally
        restricted to ``categories`` and/or a ``lane``."""
        cats = set(categories) if categories is not None else None
        ivs = sorted(
            (s.start, s.end) for s in self.spans
            if (cats is None or s.category in cats)
            and (lane is None or s.lane == lane))
        total = 0.0
        cur_s: float | None = None
        cur_e = 0.0
        for s, e in ivs:
            if cur_s is None:
                cur_s, cur_e = s, e
            elif s <= cur_e:
                cur_e = max(cur_e, e)
            else:
                total += cur_e - cur_s
                cur_s, cur_e = s, e
        if cur_s is not None:
            total += cur_e - cur_s
        return total

    def breakdown(self) -> dict[str, float]:
        """Per-category total durations, sorted descending."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.category] = out.get(s.category, 0.0) + s.duration
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def count(self, category: str) -> int:
        """Number of spans in ``category``."""
        return sum(1 for s in self.spans if s.category == category)

    def bytes_moved(self, category: str) -> float:
        """Total payload bytes across spans of ``category``."""
        return sum(s.nbytes for s in self.spans if s.category == category)

    def makespan(self) -> float:
        """End of the last span minus start of the first."""
        if not self.spans:
            return 0.0
        return (max(s.end for s in self.spans)
                - min(s.start for s in self.spans))

    def window(self) -> tuple[float, float]:
        """``(earliest start, latest end)`` across all spans
        (``(0.0, 0.0)`` when empty)."""
        if not self.spans:
            return 0.0, 0.0
        return (min(s.start for s in self.spans),
                max(s.end for s in self.spans))

    def categories(self) -> list[str]:
        """Distinct categories in first-seen order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.category, None)
        return list(seen)

    def lanes(self) -> list[str]:
        """Distinct lanes in first-seen order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.lane, None)
        return list(seen)

    def filter(self, category: str | None = None,
               lane: str | None = None) -> list[Span]:
        """Spans matching the given category and/or lane."""
        return [s for s in self.spans
                if (category is None or s.category == category)
                and (lane is None or s.lane == lane)]
