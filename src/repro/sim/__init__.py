"""A small, deterministic discrete-event simulation engine.

Written from scratch for this reproduction (SimPy-style process
interaction), it provides:

* :class:`~repro.sim.engine.Environment` and generator-based processes,
* :class:`~repro.sim.events.Event` / timeouts / all_of / any_of,
* :class:`~repro.sim.resources.Resource` (FIFO counting semaphore) and
  :class:`~repro.sim.resources.Store`,
* :class:`~repro.sim.bandwidth.FlowNetwork` -- fluid bandwidth sharing used
  for PCIe and the host memory bus, with per-link policies drawn from the
  :mod:`repro.sim.allocators` family (fair-share, max-min, fixed-levels,
  strict-priority),
* :class:`~repro.sim.trace.Trace` -- span timelines and component accounting.
"""

from repro.sim.allocators import (ALLOCATORS, BandwidthAllocator, FairShare,
                                  FixedLevels, MaxMinFair, QosTag,
                                  StrictPriority, make_allocator)
from repro.sim.bandwidth import Flow, FlowNetwork, Link
from repro.sim.engine import Environment, Process
from repro.sim.events import Condition, Event, Timeout
from repro.sim.faults import (FAULTS_SCHEMA, FaultInjector, FaultKind,
                              FaultPlan, FaultSpec)
from repro.sim.resources import Resource, Store
from repro.sim.trace import CAT, Span, Trace

__all__ = [
    "Environment", "Process", "Event", "Timeout", "Condition",
    "Resource", "Store", "FlowNetwork", "Link", "Flow",
    "Trace", "Span", "CAT",
    "FaultKind", "FaultSpec", "FaultPlan", "FaultInjector", "FAULTS_SCHEMA",
    "BandwidthAllocator", "FairShare", "MaxMinFair", "FixedLevels",
    "StrictPriority", "QosTag", "ALLOCATORS", "make_allocator",
]
