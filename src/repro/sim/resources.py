"""Shared-resource primitives for simulation processes.

* :class:`Resource` -- a counting semaphore with strict FIFO granting.  Used
  for CPU core pools (a k-thread task acquires k units) and GPU engines
  (kernel engine, per-direction copy engines have capacity 1).
* :class:`Store` -- an unbounded FIFO item queue with blocking ``get``.
  Used to hand sorted batches from the GPU pipeline to the CPU merge
  scheduler.

Granting is strictly FIFO (no bypass): a large request at the head of the
queue blocks later, smaller requests.  That mirrors a non-work-stealing
OpenMP-style scheduler and keeps simulations deterministic.
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.events import Event

__all__ = ["Resource", "Store"]


class Resource:
    """A counting semaphore with FIFO queueing.

    >>> env = Environment()
    >>> cores = Resource(env, capacity=4)
    >>> def task(env, cores):
    ...     yield cores.request(2)
    ...     yield env.timeout(1.0)
    ...     cores.release(2)
    """

    __slots__ = ("env", "capacity", "name", "_available", "_waiting",
                 "_busy_units_time", "_last_change", "probe", "bus",
                 "last_release_span")

    def __init__(self, env: Environment, capacity: int,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = int(capacity)
        self.name = name
        self._available = int(capacity)
        self._waiting: deque[tuple[Event, int]] = deque()
        # Utilisation accounting (for reports / tests).
        self._busy_units_time = 0.0
        self._last_change = env.now
        #: Observability probe: called as ``probe(self)`` after every
        #: state change (request queued, units granted, units released).
        #: Must not schedule events; ``None`` costs nothing.
        self.probe: _t.Callable[["Resource"], None] | None = None
        #: Streaming telemetry: an optional
        #: :class:`~repro.obs.events.EventBus` that queue-depth changes
        #: are published to as ``queue`` events.  Like :attr:`probe`,
        #: ``None`` costs nothing and publication is passive.
        self.bus = None
        #: Causal tracing: the trace span (or span id) of the operation
        #: whose :meth:`release` most recently returned units.  A request
        #: that had to *wait* was unblocked by that release, so the waiter
        #: records a causal edge from this span to its own (see
        #: :mod:`repro.sim.trace`).  Updated by ``release(units, span=...)``.
        self.last_release_span: _t.Any = None

    # -- accounting ----------------------------------------------------------

    @property
    def available(self) -> int:
        """Units currently free."""
        return self._available

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self.capacity - self._available

    @property
    def queue_length(self) -> int:
        """Number of requests waiting."""
        return len(self._waiting)

    def _account(self) -> None:
        now = self.env.now
        self._busy_units_time += self.in_use * (now - self._last_change)
        self._last_change = now

    def busy_unit_seconds(self) -> float:
        """Integral of units-in-use over time (updated to "now")."""
        self._account()
        return self._busy_units_time

    # -- acquire / release ---------------------------------------------------

    def request(self, units: int = 1) -> Event:
        """Return an event that fires once ``units`` units are granted."""
        if units < 1 or units > self.capacity:
            raise SimulationError(
                f"cannot request {units} units of {self.name!r} "
                f"(capacity {self.capacity})")
        ev = Event(self.env)
        self._waiting.append((ev, units))
        self._grant()
        if self.probe is not None:
            self.probe(self)
        if self.bus is not None:
            self._publish()
        return ev

    def release(self, units: int = 1, span: _t.Any = None) -> None:
        """Return ``units`` units to the pool and wake waiters.

        ``span`` optionally names the trace span of the operation that
        held the units; it is exposed as :attr:`last_release_span` so a
        request that was blocked can attribute its wait causally.
        """
        if units < 1:
            raise SimulationError(f"cannot release {units} units")
        if span is not None:
            self.last_release_span = span
        self._account()
        self._available += units
        if self._available > self.capacity:
            raise SimulationError(
                f"{self.name!r}: released more units than acquired")
        self._grant()
        if self.probe is not None:
            self.probe(self)
        if self.bus is not None:
            self._publish()

    def fail_waiters(self, exc: BaseException) -> None:
        """Fail every *queued* request with ``exc``.

        Used by fault injection when a device is lost: processes waiting
        on one of its engines must receive the failure instead of
        blocking forever.  Units already granted are unaffected (their
        holders observe the failure through other channels).
        """
        if not self._waiting:
            return
        waiting, self._waiting = list(self._waiting), deque()
        self._account()
        for ev, _units in waiting:
            ev.fail(exc)
        if self.probe is not None:
            self.probe(self)
        if self.bus is not None:
            self._publish()

    def _publish(self) -> None:
        self.bus.queue(self.name, depth=len(self._waiting),
                       in_use=self.in_use, capacity=self.capacity)

    def _grant(self) -> None:
        while self._waiting:
            ev, units = self._waiting[0]
            if units > self._available:
                return  # strict FIFO: head of line blocks
            self._waiting.popleft()
            self._account()
            self._available -= units
            ev.succeed(units)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Resource {self.name!r} {self.in_use}/{self.capacity} "
                f"in use, {self.queue_length} waiting>")


class Store:
    """An unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that fires with the next
    item (items are matched to getters in FIFO order).
    """

    __slots__ = ("env", "name", "_items", "_getters", "probe", "bus")

    def __init__(self, env: Environment, name: str = "store") -> None:
        self.env = env
        self.name = name
        self._items: deque[_t.Any] = deque()
        self._getters: deque[Event] = deque()
        #: Observability probe: called as ``probe(self)`` after every put
        #: or (successful) get.  Must not schedule events.
        self.probe: _t.Callable[["Store"], None] | None = None
        #: Streaming telemetry: optional
        #: :class:`~repro.obs.events.EventBus` for ``queue`` events
        #: (item depth and blocked getters after each put/get).
        self.bus = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def getters_waiting(self) -> int:
        """Number of blocked ``get`` calls."""
        return len(self._getters)

    def put(self, item: _t.Any) -> None:
        """Add ``item``; wakes the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
        if self.probe is not None:
            self.probe(self)
        if self.bus is not None:
            self._publish()

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        if self.probe is not None:
            self.probe(self)
        if self.bus is not None:
            self._publish()
        return ev

    def try_get(self) -> tuple[bool, _t.Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._items.popleft()
            if self.probe is not None:
                self.probe(self)
            if self.bus is not None:
                self._publish()
            return True, item
        return False, None

    def _publish(self) -> None:
        self.bus.queue(self.name, depth=len(self._items),
                       getters=len(self._getters))
