"""Pluggable per-link bandwidth-allocation policies.

:mod:`repro.sim.bandwidth` historically implemented exactly one sharing
discipline: pure processor-sharing (every flow crossing a bottleneck gets
an equal rate, i.e. max-min fairness with unit weights).  The multi-tenant
service needs per-tenant QoS, so the discipline becomes a per-link
*policy* drawn from a small allocator family modeled after psim's
``BandwidthAllocator`` hierarchy:

:class:`FairShare`
    The historical behaviour, **bit-identical**: flow priorities and
    shares are ignored and the network runs the exact pre-existing
    water-filling code path (including the incremental component refill
    and the cap-load fast path).  This is the default policy of every
    link (``policy is None`` means FairShare).
:class:`MaxMinFair`
    Weighted max-min fairness: progressive filling where each flow's rate
    rises proportionally to its ``share`` weight, so a tenant with share
    2.0 receives twice the bottleneck bandwidth of a share-1.0 tenant.
:class:`FixedLevels`
    Hard partitioning: each priority class is confined to a fixed
    fraction of the link's capacity (its *level*).  Levels are floors
    **and** ceilings -- unused level capacity is NOT spilled to other
    classes, which is what makes the adaptive controller's job
    meaningful: it re-draws the level map each control epoch to hand
    idle capacity to backlogged classes.
:class:`StrictPriority`
    Strict layering: higher-priority flows are filled first and lower
    classes receive only the leftovers -- a starved class gets exactly
    zero (the starvation-ordering property the allocator battery pins).

Policies only *parameterise* the fill; the fill itself
(:func:`fill_component`) remains a pure function of the component's flows
(in insertion order) and its links, so the incremental/full recompute
equivalence of :mod:`repro.sim.bandwidth` carries over unchanged.

Mixed-policy components are resolved conservatively: the component is
layered by priority if *any* of its links is layered
(:class:`StrictPriority`/:class:`FixedLevels`), and weighted by flow
shares if *any* link is weighted.  Per-layer budgets are still computed
per link from that link's own policy.

:class:`QosTag` is the glue to the engine: the service stamps a tag on
each job's root process, :class:`~repro.sim.engine.Process` propagates it
to child processes, and :meth:`~repro.sim.bandwidth.FlowNetwork.transfer`
reads it off :attr:`~repro.sim.engine.Environment.active_process` so
every flow a job starts -- however deep inside machine primitives --
carries the tenant's priority and share without plumbing QoS arguments
through every runner.
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import SimulationError

__all__ = [
    "BandwidthAllocator", "FairShare", "MaxMinFair", "FixedLevels",
    "StrictPriority", "QosTag", "ALLOCATORS", "make_allocator",
    "fill_component",
]

_INF = math.inf
#: Rate slack for freezing decisions (bytes/second); matches
#: ``repro.sim.bandwidth._EPS_RATE``.
_EPS_RATE = 1e-9


class QosTag(_t.NamedTuple):
    """Per-process QoS metadata inherited by child processes and stamped
    onto every flow the process starts."""

    tenant: str | None = None
    priority: int = 0
    share: float = 1.0


class BandwidthAllocator:
    """Base class for per-link allocation policies.

    Two class flags drive the fill dispatch:

    ``weighted``
        flow ``share`` weights matter on this link;
    ``layered``
        flow ``priority`` classes matter on this link (the component is
        filled top priority first).

    A policy with neither flag set (FairShare) keeps the component on the
    bit-identical historical code path.
    """

    name: str = "base"
    weighted: bool = False
    layered: bool = False

    def layer_budget(self, link: "_t.Any", priority: int,
                     headroom: float) -> float:
        """Capacity this link offers to priority class ``priority`` given
        ``headroom`` (capacity not consumed by higher classes)."""
        return headroom

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__}>"


class FairShare(BandwidthAllocator):
    """Pure processor-sharing -- the historical discipline, bit-identical.

    Ignores both flow priorities and shares; a link with this policy (or
    with no policy at all) participates in the exact pre-existing
    water-filling code path.
    """

    name = "fair-share"


class MaxMinFair(BandwidthAllocator):
    """Weighted max-min fairness: rates rise in proportion to each flow's
    ``share`` weight during progressive filling."""

    name = "max-min"
    weighted = True


class StrictPriority(BandwidthAllocator):
    """Strict priority layering: class ``p`` flows see only the capacity
    left over by every class above ``p``.  Within a class, filling is
    weighted max-min by ``share``."""

    name = "strict-priority"
    weighted = True
    layered = True


class FixedLevels(BandwidthAllocator):
    """Hard capacity partitioning by priority class.

    ``levels`` maps a priority class to the fraction of link capacity
    reserved for it; fractions must be positive and sum to at most 1.
    A class appearing in the map is guaranteed its fraction (the *floor*
    property the allocator battery pins) and also confined to it (no
    spillover) -- reclaiming unused level capacity is the adaptive
    controller's job, which rewrites :attr:`levels` between control
    epochs.  Flows whose priority is not in the map share the residual
    fraction ``1 - sum(levels.values())``.
    """

    name = "fixed-levels"
    weighted = True
    layered = True

    def __init__(self, levels: _t.Mapping[int, float]) -> None:
        if not levels:
            raise SimulationError("FixedLevels needs at least one level")
        total = 0.0
        for prio, frac in levels.items():
            if not (0.0 < frac <= 1.0):
                raise SimulationError(
                    f"level fraction for class {prio} must be in (0, 1], "
                    f"got {frac!r}")
            total += frac
        if total > 1.0 + 1e-12:
            raise SimulationError(
                f"level fractions sum to {total:.6g} > 1")
        self.levels: dict[int, float] = {int(p): float(f)
                                         for p, f in levels.items()}

    def fraction(self, priority: int) -> float:
        """The capacity fraction available to ``priority`` (residual for
        unmapped classes)."""
        frac = self.levels.get(priority)
        if frac is not None:
            return frac
        residual = 1.0 - sum(self.levels.values())
        return residual if residual > 0.0 else 0.0

    def layer_budget(self, link: _t.Any, priority: int,
                     headroom: float) -> float:
        budget = link.capacity * self.fraction(priority)
        return budget if budget < headroom else headroom

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{p}:{f:g}" for p, f in sorted(self.levels.items()))
        return f"<FixedLevels {inner}>"


#: Registry: CLI/service-facing allocator names -> factory.  ``FixedLevels``
#: requires a level map, supplied by the caller (the service builds one
#: from its tenants' shares).
ALLOCATORS: dict[str, type[BandwidthAllocator]] = {
    FairShare.name: FairShare,
    MaxMinFair.name: MaxMinFair,
    FixedLevels.name: FixedLevels,
    StrictPriority.name: StrictPriority,
}


def make_allocator(name: str,
                   levels: _t.Mapping[int, float] | None = None,
                   ) -> BandwidthAllocator:
    """Instantiate an allocator by registry name.

    ``levels`` is required for ``fixed-levels`` and ignored otherwise.
    """
    try:
        cls = ALLOCATORS[name]
    except KeyError:
        raise SimulationError(
            f"unknown allocator {name!r}; choose from "
            f"{sorted(ALLOCATORS)}") from None
    if cls is FixedLevels:
        if levels is None:
            raise SimulationError(
                "allocator 'fixed-levels' needs a level map")
        return FixedLevels(levels)
    return cls()


# -- the generalised fill -----------------------------------------------------

def _fill_layer(flows: list, links: list, weighted: bool) -> None:
    """Weighted progressive filling of one priority layer.

    Mirrors the historical slow path of ``FlowNetwork._fill`` with two
    generalisations: per-flow weights (a flow's payload rate rises by
    ``delta * share`` per round, consuming ``delta * share * link_weight``
    on each link) and per-link *budgets* (``link._budget``, set by the
    caller from the link policies) instead of raw capacity headroom.

    Flows crossing a link whose budget is already exhausted are frozen at
    exactly rate 0 before any round runs -- that exactness is the
    starvation-ordering guarantee for :class:`StrictPriority` and the
    confinement guarantee for :class:`FixedLevels`.
    """
    for f in flows:
        f.rate = 0.0
    unfrozen = []
    for f in flows:
        starved = False
        for l, _w in f.links:
            if l._budget <= _EPS_RATE * l.capacity:
                starved = True
                break
        if not starved:
            unfrozen.append(f)
    while unfrozen:
        delta = _INF
        for f in unfrozen:
            w = f.share if weighted else 1.0
            d = (f.cap - f.rate) / w
            if d < delta:
                delta = d
        for l in links:
            l._wsum = 0.0
        for f in unfrozen:
            fw = f.share if weighted else 1.0
            for l, w in f.links:
                l._wsum += fw * w
        for l in links:
            if l._wsum > 0.0:
                d = l._budget / l._wsum
                if d < delta:
                    delta = d
        if delta < 0:
            delta = 0.0
        if delta == _INF:  # pragma: no cover - guarded at transfer()
            raise SimulationError("unbounded flow rate")
        for f in unfrozen:
            fw = f.share if weighted else 1.0
            f.rate += delta * fw
            for l, w in f.links:
                used = delta * fw * w
                l._budget -= used
                l._left -= used
        still = []
        for f in unfrozen:
            if f.rate >= f.cap - _EPS_RATE:
                # Snap-to-cap, exactly as the historical fill.
                f.rate = f.cap
                continue
            saturated = False
            for l, _w in f.links:
                if l._budget <= _EPS_RATE * l.capacity:
                    saturated = True
                    break
            if saturated:
                continue
            still.append(f)
        if len(still) == len(unfrozen):  # pragma: no cover - defensive
            break
        unfrozen = still


def fill_component(flows: list, links: list) -> None:
    """Fill ONE connected component under its links' policies.

    Called by ``FlowNetwork._fill`` only when at least one link carries a
    weighted or layered policy; pure-FairShare components never reach
    this function.  Like the historical fill, this is a pure function of
    the component's flows (insertion order) and links, so incremental and
    from-scratch recomputes stay bit-identical.
    """
    weighted = False
    layered = False
    for l in links:
        pol = l.policy
        if pol is not None:
            if pol.weighted:
                weighted = True
            if pol.layered:
                layered = True

    for l in links:
        l._left = l.capacity

    if not layered:
        for l in links:
            l._budget = l._left
        _fill_layer(flows, links, weighted)
        return

    classes: list[int] = sorted({f.priority for f in flows}, reverse=True)
    for prio in classes:
        layer = [f for f in flows if f.priority == prio]
        for l in links:
            pol = l.policy
            headroom = l._left
            if headroom < 0.0:
                headroom = 0.0
            l._budget = (pol.layer_budget(l, prio, headroom)
                         if pol is not None else headroom)
        _fill_layer(layer, links, weighted)
