"""Fluid-flow bandwidth sharing with max-min fairness.

This module models contended interconnects -- the per-direction PCIe links
and the host memory bus -- as a :class:`FlowNetwork` of capacity-limited
:class:`Link` s.  A *flow* (one data transfer or memory copy) traverses one
or more links, optionally has its own rate cap (e.g. "k memcpy threads can
move at most k * per-core-bandwidth"), and receives a rate according to
**max-min fairness with progressive filling**:

    All unfrozen flows' rates rise in lockstep until either a flow reaches
    its cap or a link saturates; affected flows freeze; repeat.

Whenever a flow starts or finishes, every active flow's progress is advanced
and the allocation is recomputed, so contention effects (two GPUs sharing a
PCIe root complex, parallel memcpy competing with merges for the memory bus)
emerge from the model rather than being hand-coded per experiment.

This is the standard fluid approximation used in network simulators; the
paper's phenomena that it captures directly:

* PCIe bandwidth shared between GPUs (Sec. IV-F, Experiment 2),
* host-to-host copies limited by a single core but able to exploit spare
  memory bandwidth when parallelised (PARMEMCPY, Sec. IV-F),
* bidirectional HtoD/DtoH overlap (PIPEDATA, Sec. III-D2).
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.events import Event

__all__ = ["Link", "Flow", "FlowNetwork"]

#: Completion slack, in bytes.  Flows whose remaining volume falls below
#: this are considered finished (guards against float round-off).
_EPS_BYTES = 1e-6
#: Rate slack for freezing decisions, in bytes/second.
_EPS_RATE = 1e-9


class Link:
    """A capacity-limited pipe (bytes/second)."""

    __slots__ = ("name", "capacity", "_busy_byte_time", "_last_update",
                 "_current_rate")

    def __init__(self, name: str, capacity: float) -> None:
        if not (capacity > 0):
            raise SimulationError(f"link {name!r} capacity must be > 0")
        self.name = name
        self.capacity = float(capacity)
        self._busy_byte_time = 0.0   # integral of allocated rate over time
        self._last_update = 0.0
        self._current_rate = 0.0

    def _account(self, now: float) -> None:
        self._busy_byte_time += self._current_rate * (now - self._last_update)
        self._last_update = now

    def utilisation_seconds(self, now: float) -> float:
        """Equivalent full-capacity busy seconds so far."""
        self._account(now)
        return self._busy_byte_time / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Link {self.name!r} {self.capacity:.3g} B/s>"


class Flow:
    """One in-flight transfer across a set of links.

    ``links`` is a tuple of ``(link, weight)`` pairs: a flow progressing at
    payload rate ``r`` consumes ``r * weight`` capacity on each link.  A
    weight > 1 models amplification (e.g. a pageable CUDA copy is staged by
    the driver and touches host DRAM twice per payload byte).
    """

    __slots__ = ("nbytes", "remaining", "cap", "links", "rate", "event",
                 "label", "start_time")

    def __init__(self, nbytes: float, links: tuple[tuple[Link, float], ...],
                 cap: float, event: Event, label: str,
                 start_time: float) -> None:
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.cap = float(cap)
        self.links = links
        self.rate = 0.0
        self.event = event
        self.label = label
        self.start_time = start_time


class FlowNetwork:
    """Tracks all active flows and keeps their rates max-min fair."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._links: list[Link] = []
        self._flows: list[Flow] = []
        self._last_update = env.now
        self._wakeup: Event | None = None
        self.completed_flows = 0

    # -- construction ---------------------------------------------------------

    def add_link(self, name: str, capacity: float) -> Link:
        """Create and register a link."""
        link = Link(name, capacity)
        link._last_update = self.env.now
        self._links.append(link)
        return link

    # -- public API -------------------------------------------------------------

    def transfer(self, nbytes: float,
                 links: _t.Sequence[Link | tuple[Link, float]],
                 cap: float = math.inf, label: str = "flow") -> Event:
        """Start a flow of ``nbytes`` across ``links``; returns its
        completion event (value = the :class:`Flow`).

        Each entry of ``links`` is a :class:`Link` (weight 1.0) or a
        ``(link, weight)`` pair.  ``cap`` bounds the flow's own payload rate
        regardless of link headroom.  A zero-byte transfer completes
        immediately.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes!r}")
        weighted: list[tuple[Link, float]] = []
        for entry in links:
            link, weight = entry if isinstance(entry, tuple) else (entry, 1.0)
            if link not in self._links:
                raise SimulationError(f"{link!r} not part of this network")
            if weight <= 0:
                raise SimulationError(f"link weight must be > 0, got {weight}")
            weighted.append((link, float(weight)))
        if not weighted and not math.isfinite(cap):
            raise SimulationError(
                "a flow needs at least one link or a finite rate cap")
        if cap <= 0:
            raise SimulationError(f"flow rate cap must be > 0, got {cap!r}")

        ev = Event(self.env)
        if nbytes <= _EPS_BYTES:
            flow = Flow(nbytes, tuple(weighted), cap, ev, label, self.env.now)
            self.completed_flows += 1
            ev.succeed(flow)
            return ev

        self._advance()
        flow = Flow(nbytes, tuple(weighted), cap, ev, label, self.env.now)
        self._flows.append(flow)
        self._reallocate()
        return ev

    def set_capacity(self, link: Link, capacity: float) -> None:
        """Change a link's capacity mid-run (fault injection: a degraded
        PCIe link or host bus during a bandwidth-degradation window).

        Active flows are first advanced at their old rates, then every
        rate is recomputed max-min fair under the new capacity and the
        next completion is rescheduled.
        """
        if link not in self._links:
            raise SimulationError(f"{link!r} not part of this network")
        if not (capacity > 0):
            raise SimulationError(
                f"link {link.name!r} capacity must be > 0, got {capacity!r}")
        self._advance()
        link.capacity = float(capacity)
        self._reallocate()

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def instantaneous_rate(self, link: Link) -> float:
        """Current aggregate allocated rate on ``link`` (bytes/s),
        including link weights."""
        return sum(f.rate * w for f in self._flows
                   for l, w in f.links if l is link)

    # -- internals --------------------------------------------------------------

    def _advance(self) -> None:
        """Progress every active flow to the current time."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
            for link in self._links:
                link._account(now)
        self._last_update = now

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and reschedule the next completion."""
        flows = self._flows
        # Progressive filling.
        for f in flows:
            f.rate = 0.0
        left = {id(l): l.capacity for l in self._links}
        unfrozen = list(flows)
        while unfrozen:
            delta = math.inf
            for f in unfrozen:
                delta = min(delta, f.cap - f.rate)
            # Weighted progressive filling: raising every unfrozen flow's
            # payload rate by d consumes d * sum(weights) on each link.
            wsum: dict[int, float] = {}
            for f in unfrozen:
                for l, w in f.links:
                    wsum[id(l)] = wsum.get(id(l), 0.0) + w
            for lid, ws in wsum.items():
                delta = min(delta, left[lid] / ws)
            if delta < 0:
                delta = 0.0
            if math.isinf(delta):  # pragma: no cover - guarded at transfer()
                raise SimulationError("unbounded flow rate")
            for f in unfrozen:
                f.rate += delta
                for l, w in f.links:
                    left[id(l)] -= delta * w
            still = []
            for f in unfrozen:
                saturated_link = any(
                    left[id(l)] <= _EPS_RATE * l.capacity
                    for l, _w in f.links)
                if f.rate >= f.cap - _EPS_RATE or saturated_link:
                    continue  # frozen
                still.append(f)
            if len(still) == len(unfrozen):  # pragma: no cover - defensive
                break
            unfrozen = still

        for link in self._links:
            link._current_rate = self.instantaneous_rate(link)

        # Schedule a wake-up at the earliest completion.
        if self._wakeup is not None:
            self.env.unschedule(self._wakeup)
            self._wakeup = None
        if not flows:
            return
        horizon = math.inf
        for f in flows:
            if f.rate > 0:
                horizon = min(horizon, f.remaining / f.rate)
        if math.isinf(horizon):  # pragma: no cover - all rates zero
            raise SimulationError("flows present but no bandwidth allocated")
        wake = Event(self.env)
        wake._ok = True
        wake._value = None
        wake.callbacks.append(self._on_wakeup)  # type: ignore[union-attr]
        self.env.schedule(wake, delay=horizon)
        self._wakeup = wake

    def _on_wakeup(self, _event: Event) -> None:
        self._wakeup = None
        self._advance()
        # Completion tolerance: a flow whose remaining volume would drain
        # within float round-off of the current instant *is* done.  The
        # time-relative term matters: at simulated time T the granularity
        # of the event clock is ~ulp(T), so up to rate * ulp(T) bytes of
        # residue is pure round-off; without this the network can spiral
        # through infinitely many zero-length wakeups.
        now = self.env.now
        time_eps = 1e-12 * (1.0 + now)
        finished = [f for f in self._flows
                    if f.remaining <= _EPS_BYTES
                    or f.remaining <= 1e-12 * f.nbytes
                    or (f.rate > 0 and f.remaining <= f.rate * time_eps)]
        if finished:
            done = set(map(id, finished))
            self._flows = [f for f in self._flows if id(f) not in done]
            self.completed_flows += len(finished)
        self._reallocate()
        for f in finished:
            f.remaining = 0.0
            f.event.succeed(f)
