"""Fluid-flow bandwidth sharing with max-min fairness.

This module models contended interconnects -- the per-direction PCIe links
and the host memory bus -- as a :class:`FlowNetwork` of capacity-limited
:class:`Link` s.  A *flow* (one data transfer or memory copy) traverses one
or more links, optionally has its own rate cap (e.g. "k memcpy threads can
move at most k * per-core-bandwidth"), and receives a rate according to
**max-min fairness with progressive filling**:

    All unfrozen flows' rates rise in lockstep until either a flow reaches
    its cap or a link saturates; affected flows freeze; repeat.

Whenever a flow starts or finishes, every active flow's progress is advanced
and the allocation is recomputed, so contention effects (two GPUs sharing a
PCIe root complex, parallel memcpy competing with merges for the memory bus)
emerge from the model rather than being hand-coded per experiment.

The recompute is *incremental*: flows are partitioned into link-connected
components (two flows are connected when they share a link, transitively),
and a join/leave/:meth:`FlowNetwork.set_capacity` only refills the
components its links can reach -- flows in untouched components keep their
rates bit-for-bit.  Filling is canonically **per component** so the
incremental result is exactly (to the last ulp) what a from-scratch
recompute produces; ``tests/sim/test_bandwidth_incremental_property.py``
pins that equality against the :meth:`FlowNetwork._recompute_full`
reference.  Two further hot-path refinements, both behind the same
contract:

* a *cap-load fast path*: when every flow in a component has a finite rate
  cap and the summed cap-load leaves headroom on every link, all rates are
  exactly the caps -- no filling rounds at all (the common case for this
  repo's machine models, where every primitive is capped);
* *snap-to-cap*: a flow frozen because it reached its cap gets ``rate =
  cap`` exactly rather than ``cap - O(eps)`` of accumulated deltas, which
  keeps the fast and slow paths bit-identical.

This is the standard fluid approximation used in network simulators; the
paper's phenomena that it captures directly:

* PCIe bandwidth shared between GPUs (Sec. IV-F, Experiment 2),
* host-to-host copies limited by a single core but able to exploit spare
  memory bandwidth when parallelised (PARMEMCPY, Sec. IV-F),
* bidirectional HtoD/DtoH overlap (PIPEDATA, Sec. III-D2).
"""

from __future__ import annotations

import math
import typing as _t

from repro.errors import SimulationError
from repro.sim import allocators as _alloc
from repro.sim.engine import Environment
from repro.sim.events import Event

__all__ = ["Link", "Flow", "FlowNetwork", "FlowView", "LinkView"]

#: Completion slack, in bytes.  Flows whose remaining volume falls below
#: this are considered finished (guards against float round-off).
_EPS_BYTES = 1e-6
#: Rate slack for freezing decisions, in bytes/second.
_EPS_RATE = 1e-9

_INF = math.inf


class Link:
    """A capacity-limited pipe (bytes/second).

    :attr:`policy` selects the link's sharing discipline from the
    :mod:`repro.sim.allocators` family.  ``None`` (the default) means
    :class:`~repro.sim.allocators.FairShare` -- pure processor-sharing on
    the historical, bit-identical code path.
    """

    __slots__ = ("name", "capacity", "policy", "_busy_byte_time",
                 "_last_update", "_current_rate", "_left", "_wsum",
                 "_budget", "_mark", "_uf")

    def __init__(self, name: str, capacity: float) -> None:
        if not (capacity > 0):
            raise SimulationError(f"link {name!r} capacity must be > 0")
        self.name = name
        self.capacity = float(capacity)
        #: Per-link allocation policy (None = FairShare, bit-identical).
        self.policy: _alloc.BandwidthAllocator | None = None
        self._busy_byte_time = 0.0   # integral of allocated rate over time
        self._last_update = 0.0
        self._current_rate = 0.0
        # Scratch registers for the progressive-filling rounds (headroom
        # left / weight sum of unfrozen flows / per-layer budget); valid
        # only inside _fill() and allocators.fill_component().
        self._left = 0.0
        self._wsum = 0.0
        self._budget = 0.0
        # Component-discovery scratch: generation mark and union-find
        # parent; valid only inside _dirty_components().
        self._mark = 0
        self._uf: "Link" = self

    def _account(self, now: float) -> None:
        self._busy_byte_time += self._current_rate * (now - self._last_update)
        self._last_update = now

    def utilisation_seconds(self, now: float) -> float:
        """Equivalent full-capacity busy seconds so far."""
        self._account(now)
        return self._busy_byte_time / self.capacity

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Link {self.name!r} {self.capacity:.3g} B/s>"


class Flow:
    """One in-flight transfer across a set of links.

    ``links`` is a tuple of ``(link, weight)`` pairs: a flow progressing at
    payload rate ``r`` consumes ``r * weight`` capacity on each link.  A
    weight > 1 models amplification (e.g. a pageable CUDA copy is staged by
    the driver and touches host DRAM twice per payload byte).

    Progress is accumulated in one place -- :attr:`progressed`, the total
    bytes moved so far -- and :attr:`remaining` is always derived from it
    as ``max(0, nbytes - progressed)``.  A chain of per-interval
    subtractions (the previous scheme) let rounding drift accumulate across
    reallocation boundaries; a pathological capacity-flap sequence could
    strand a flow with a tiny negative residual.  One accumulator keeps
    ``progressed + remaining == nbytes`` exact and ``remaining``
    non-negative by construction.
    """

    __slots__ = ("nbytes", "progressed", "remaining", "cap", "links", "rate",
                 "event", "label", "start_time", "fid", "_mark",
                 "priority", "share", "tenant")

    def __init__(self, nbytes: float, links: tuple[tuple[Link, float], ...],
                 cap: float, event: Event, label: str,
                 start_time: float, priority: int = 0, share: float = 1.0,
                 tenant: str | None = None) -> None:
        self.nbytes = float(nbytes)
        self.progressed = 0.0
        self.remaining = float(nbytes)
        self.cap = float(cap)
        self.links = links
        self.rate = 0.0
        self.event = event
        self.label = label
        self.start_time = start_time
        self.fid = -1    # ledger-assigned flow id (-1 = not recorded)
        self._mark = 0   # component-discovery scratch
        # QoS attributes: consulted only by weighted/layered link
        # policies; FairShare links ignore them entirely.
        self.priority = priority
        self.share = share
        self.tenant = tenant


class FlowView(_t.NamedTuple):
    """Read-only snapshot of one active flow (the public tooling surface;
    link objects are reduced to their names)."""

    label: str
    nbytes: float
    progressed: float
    remaining: float
    rate: float
    cap: float
    links: tuple[tuple[str, float], ...]
    start_time: float
    tenant: str | None = None
    priority: int = 0
    share: float = 1.0


class LinkView(_t.NamedTuple):
    """Read-only snapshot of one link: capacity, aggregate allocated
    rate (including link weights), active-flow count, and utilization."""

    name: str
    capacity: float
    rate: float
    n_flows: int
    utilization: float


class FlowNetwork:
    """Tracks all active flows and keeps their rates max-min fair."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._links: list[Link] = []
        self._flows: list[Flow] = []
        self._last_update = env.now
        self._wakeup: Event | None = None
        self._gen = 0   # generation counter for component-discovery marks
        self.completed_flows = 0
        #: Optional :class:`repro.obs.flows.FlowLedger`.  When ``None``
        #: (the default) every instrumentation hook is a single ``is
        #: None`` check -- zero overhead when disabled.  The ledger never
        #: schedules simulation events (the bus neutrality invariant).
        self.ledger = None

    # -- construction ---------------------------------------------------------

    def add_link(self, name: str, capacity: float) -> Link:
        """Create and register a link."""
        link = Link(name, capacity)
        link._last_update = self.env.now
        self._links.append(link)
        return link

    # -- public API -------------------------------------------------------------

    def transfer(self, nbytes: float,
                 links: _t.Sequence[Link | tuple[Link, float]],
                 cap: float = _INF, label: str = "flow",
                 priority: int | None = None, share: float | None = None,
                 tenant: str | None = None) -> Event:
        """Start a flow of ``nbytes`` across ``links``; returns its
        completion event (value = the :class:`Flow`).

        Each entry of ``links`` is a :class:`Link` (weight 1.0) or a
        ``(link, weight)`` pair.  ``cap`` bounds the flow's own payload rate
        regardless of link headroom.  A zero-byte transfer completes
        immediately.

        ``priority``/``share``/``tenant`` are the flow's QoS attributes,
        consulted only by weighted/layered link policies.  When omitted
        they default from the calling process's
        :class:`~repro.sim.allocators.QosTag` (inherited from the process
        that spawned it), falling back to ``(0, 1.0, None)`` -- so
        existing single-run code, which never tags processes, is
        unaffected.
        """
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes!r}")
        if priority is None or share is None or tenant is None:
            proc = self.env._active
            tag = proc.tag if proc is not None else None
            if tag is not None:
                if priority is None:
                    priority = tag.priority
                if share is None:
                    share = tag.share
                if tenant is None:
                    tenant = tag.tenant
        if priority is None:
            priority = 0
        if share is None:
            share = 1.0
        elif not (share > 0):
            raise SimulationError(f"flow share must be > 0, got {share!r}")
        weighted: list[tuple[Link, float]] = []
        for entry in links:
            link, weight = entry if isinstance(entry, tuple) else (entry, 1.0)
            if link not in self._links:
                raise SimulationError(f"{link!r} not part of this network")
            if weight <= 0:
                raise SimulationError(f"link weight must be > 0, got {weight}")
            weighted.append((link, float(weight)))
        if not weighted and not math.isfinite(cap):
            raise SimulationError(
                "a flow needs at least one link or a finite rate cap")
        if cap <= 0:
            raise SimulationError(f"flow rate cap must be > 0, got {cap!r}")

        ev = Event(self.env)
        if nbytes <= _EPS_BYTES:
            flow = Flow(nbytes, tuple(weighted), cap, ev, label, self.env.now,
                        priority, share, tenant)
            self.completed_flows += 1
            if self.ledger is not None:
                self.ledger.on_start(flow, self.env.now)
                self.ledger.on_end(flow, self.env.now)
            ev.succeed(flow)
            return ev

        self._advance()
        flow = Flow(nbytes, tuple(weighted), cap, ev, label, self.env.now,
                    priority, share, tenant)
        self._flows.append(flow)
        if self.ledger is not None:
            self.ledger.on_start(flow, self.env.now)
        # Only the component the new flow joins needs refilling.
        self._update(seed_flows=(flow,))
        return ev

    def set_capacity(self, link: Link, capacity: float) -> None:
        """Change a link's capacity mid-run (fault injection: a degraded
        PCIe link or host bus during a bandwidth-degradation window).

        Active flows are first advanced at their old rates, then the rates
        of the link's connected component are recomputed max-min fair under
        the new capacity and the next completion is rescheduled.
        """
        if link not in self._links:
            raise SimulationError(f"{link!r} not part of this network")
        if not (capacity > 0):
            raise SimulationError(
                f"link {link.name!r} capacity must be > 0, got {capacity!r}")
        self._advance()
        link.capacity = float(capacity)
        if self.ledger is not None:
            self.ledger.on_capacity(link.name, link.capacity, self.env.now)
        self._update(seed_links=(link,))

    def set_policy(self, link: Link,
                   policy: "_alloc.BandwidthAllocator | None") -> None:
        """Install an allocation policy on ``link`` (``None`` restores the
        default FairShare behaviour).

        Active flows are advanced at their old rates first, then the
        link's connected component is refilled under the new policy.
        """
        if link not in self._links:
            raise SimulationError(f"{link!r} not part of this network")
        if policy is not None and not isinstance(
                policy, _alloc.BandwidthAllocator):
            raise SimulationError(
                f"policy must be a BandwidthAllocator, got {policy!r}")
        self._advance()
        link.policy = policy
        self._update(seed_links=(link,))

    def reallocate(self,
                   mutate: _t.Callable[[Flow], None] | None = None) -> None:
        """Advance every flow, optionally mutate QoS attributes
        (``mutate(flow)`` may rewrite ``priority``/``share``), and refill
        the whole network.

        This is the adaptive controller's knob: it lets a control epoch
        re-draw level maps or re-weight a tenant's in-flight transfers
        without restarting them.  Progress accounting stays exact -- the
        advance happens before any rate changes, so the ledger's
        rate-integral invariant is preserved.
        """
        self._advance()
        if mutate is not None:
            for f in self._flows:
                mutate(f)
        self._update(seed_flows=self._flows, seed_links=self._links)

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def instantaneous_rate(self, link: Link) -> float:
        """Current aggregate allocated rate on ``link`` (bytes/s),
        including link weights."""
        return sum(f.rate * w for f in self._flows
                   for l, w in f.links if l is link)

    def flow_snapshot(self) -> tuple[FlowView, ...]:
        """Read-only view of the currently active flows.

        Progress is projected to the current time as a pure read (the
        flows themselves only accumulate at allocator updates, in
        exactly one step per rate segment -- the ledger's bit-exact
        rate-integral invariant depends on that, so the view must not
        advance them)."""
        dt = self.env.now - self._last_update
        views = []
        for f in self._flows:
            progressed = f.progressed + (f.rate * dt if dt > 0.0 else 0.0)
            if progressed > f.nbytes:
                progressed = f.nbytes
            rem = f.nbytes - progressed
            views.append(FlowView(f.label, f.nbytes, progressed,
                                  rem if rem > 0.0 else 0.0,
                                  f.rate, f.cap,
                                  tuple((l.name, w) for l, w in f.links),
                                  f.start_time, f.tenant, f.priority,
                                  f.share))
        return tuple(views)

    def link_snapshot(self) -> tuple[LinkView, ...]:
        """Read-only view of every registered link's current state."""
        counts = {id(l): 0 for l in self._links}
        for f in self._flows:
            for l, _w in f.links:
                counts[id(l)] += 1
        return tuple(
            LinkView(l.name, l.capacity, l._current_rate, counts[id(l)],
                     l._current_rate / l.capacity if l.capacity else 0.0)
            for l in self._links)

    # -- internals --------------------------------------------------------------

    def _advance(self) -> None:
        """Progress every active flow to the current time."""
        now = self.env.now
        dt = now - self._last_update
        if dt > 0:
            for flow in self._flows:
                flow.progressed += flow.rate * dt
                rem = flow.nbytes - flow.progressed
                flow.remaining = rem if rem > 0.0 else 0.0
            for link in self._links:
                link._account(now)
        self._last_update = now

    @staticmethod
    def _find(link: Link) -> Link:
        """Union-find root of ``link`` (path-halving)."""
        while link._uf is not link:
            link._uf = link._uf._uf
            link = link._uf
        return link

    def _dirty_components(self, seed_flows: _t.Sequence[Flow],
                          seed_links: _t.Sequence[Link],
                          ) -> tuple[list[list[Flow]], list[Link]]:
        """The link-connected components reachable from the seeds.

        Returns ``(components, touched_links)`` where each component is a
        list of flows in insertion order (components ordered by their first
        flow) and ``touched_links`` lists every link in the closure,
        including seed links that currently carry no flow (their marks are
        left at ``self._gen`` for the caller).  The partition is a pure
        function of the current flow/link topology, so refilling a dirty
        component here yields bit-identical rates to a from-scratch
        recompute partitioning the whole network.

        Discovery state lives in ``_mark`` generation counters on the
        links and flows themselves -- no per-call sets or dicts, which
        keeps the common join/leave path at a few microseconds.
        """
        gen = self._gen + 1
        self._gen = gen
        touched: list[Link] = []
        for l in seed_links:
            if l._mark != gen:
                l._mark = gen
                touched.append(l)
        for f in seed_flows:
            f._mark = gen
            for l, _w in f.links:
                if l._mark != gen:
                    l._mark = gen
                    touched.append(l)
        # Fixpoint: grow the touched-link set through flows that straddle.
        flows = self._flows
        changed = True
        while changed:
            changed = False
            for f in flows:
                if f._mark == gen:
                    continue
                for l, _w in f.links:
                    if l._mark == gen:
                        f._mark = gen
                        for l2, _w2 in f.links:
                            if l2._mark != gen:
                                l2._mark = gen
                                touched.append(l2)
                                changed = True
                        break
        dirty = [f for f in flows if f._mark == gen]

        # Partition into actual components (the closure may span several
        # disconnected ones, e.g. after two unrelated flows finish in the
        # same wakeup).  Union-find over the touched links; linkless flows
        # are singletons.
        if len(dirty) <= 1:
            return ([dirty] if dirty else []), touched
        for l in touched:
            l._uf = l
        find = self._find
        for f in dirty:
            links = f.links
            if len(links) > 1:
                first = find(links[0][0])
                for l, _w in links[1:]:
                    root = find(l)
                    if root is not first:
                        root._uf = first
        groups: dict[int, list[Flow]] = {}
        components: list[list[Flow]] = []
        singleton_key = 0
        for f in dirty:
            if f.links:
                key = id(find(f.links[0][0]))
            else:
                singleton_key -= 1
                key = singleton_key
            bucket = groups.get(key)
            if bucket is None:
                bucket = groups[key] = []
                components.append(bucket)
            bucket.append(f)
        return components, touched

    @staticmethod
    def _fill(flows: list[Flow]) -> None:
        """Fill ONE connected component under its links' policies.

        A pure function of the component's flows (in insertion order) and
        its links' capacities/policies -- the incremental/full equivalence
        rests on that purity.

        Components whose links all run the default FairShare discipline
        (``policy is None`` or an unweighted, unlayered policy) take the
        historical max-min progressive-filling path below, bit-identical
        to the pre-allocator-family code; any weighted or layered policy
        routes the component to
        :func:`repro.sim.allocators.fill_component`.
        """
        if not flows:
            return
        links: list[Link] = []
        seen: set[int] = set()
        all_capped = True
        plain = True
        for f in flows:
            if f.cap == _INF:
                all_capped = False
            for l, _w in f.links:
                if id(l) not in seen:
                    seen.add(id(l))
                    links.append(l)
                    pol = l.policy
                    if pol is not None and (pol.weighted or pol.layered):
                        plain = False
        if not plain:
            _alloc.fill_component(flows, links)
            return

        if all_capped:
            # Fast path: if the summed cap-load leaves headroom on every
            # link, no link can freeze anybody and every rate is exactly
            # its cap (identical to what the rounds below would produce,
            # thanks to snap-to-cap).
            for l in links:
                l._left = l.capacity
            for f in flows:
                for l, w in f.links:
                    l._left -= f.cap * w
            if all(l._left > _EPS_RATE * l.capacity for l in links):
                for f in flows:
                    f.rate = f.cap
                return

        # Slow path: progressive filling rounds.
        for f in flows:
            f.rate = 0.0
        for l in links:
            l._left = l.capacity
        unfrozen = flows
        while unfrozen:
            delta = _INF
            for f in unfrozen:
                d = f.cap - f.rate
                if d < delta:
                    delta = d
            # Weighted progressive filling: raising every unfrozen flow's
            # payload rate by d consumes d * sum(weights) on each link.
            for l in links:
                l._wsum = 0.0
            for f in unfrozen:
                for l, w in f.links:
                    l._wsum += w
            for l in links:
                if l._wsum > 0.0:
                    d = l._left / l._wsum
                    if d < delta:
                        delta = d
            if delta < 0:
                delta = 0.0
            if delta == _INF:  # pragma: no cover - guarded at transfer()
                raise SimulationError("unbounded flow rate")
            for f in unfrozen:
                f.rate += delta
                for l, w in f.links:
                    l._left -= delta * w
            still = []
            for f in unfrozen:
                if f.rate >= f.cap - _EPS_RATE:
                    # Snap: a cap-frozen flow runs at its cap *exactly*,
                    # not at cap - (accumulated round-off of the deltas).
                    f.rate = f.cap
                    continue
                saturated = False
                for l, _w in f.links:
                    if l._left <= _EPS_RATE * l.capacity:
                        saturated = True
                        break
                if saturated:
                    continue  # frozen by a saturated link
                still.append(f)
            if len(still) == len(unfrozen):  # pragma: no cover - defensive
                break
            unfrozen = still

    def _update(self, seed_flows: _t.Sequence[Flow] = (),
                seed_links: _t.Sequence[Link] = ()) -> None:
        """Refill the components the seeds can reach, refresh the touched
        links' aggregate rates, and reschedule the completion wakeup."""
        components, touched = self._dirty_components(seed_flows, seed_links)
        fill = self._fill
        for component in components:
            fill(component)

        # Aggregate link rates, accumulated in global flow order so the
        # sum is bit-identical however many components were refilled.
        # (A clean flow can never touch a dirty link -- it would have been
        # pulled into the closure -- so summing dirty flows only is the
        # same sequence of float adds as the full version's.)
        gen = self._gen
        for link in touched:
            link._current_rate = 0.0
        for f in self._flows:
            rate = f.rate
            for l, w in f.links:
                if l._mark == gen:
                    l._current_rate += rate * w

        # Capture the granted rates *after* every refill, not just when a
        # flow's own rate changed: each _advance() accumulation step is
        # immediately followed by exactly one _update(), so consecutive
        # captures bracket exactly one `progressed += rate * dt` -- the
        # recorded rate integral reproduces the bytes moved bit for bit.
        if self.ledger is not None:
            self.ledger.on_update(self.env.now, self._flows)

        self._reschedule_wakeup()

    def _recompute_full(self) -> None:
        """From-scratch reference: refill *every* component and every
        link's aggregate rate.

        Semantically (and, by design, bit-for-bit) equivalent to the
        incremental :meth:`_update`; the hypothesis battery in
        ``tests/sim/test_bandwidth_incremental_property.py`` holds the two
        to ulp equality over random join/leave/degrade sequences.
        """
        components, _ = self._dirty_components(self._flows, self._links)
        for component in components:
            self._fill(component)
        for link in self._links:
            link._current_rate = 0.0
        for f in self._flows:
            rate = f.rate
            for l, w in f.links:
                l._current_rate += rate * w
        if self.ledger is not None:
            self.ledger.on_update(self.env.now, self._flows)
        self._reschedule_wakeup()

    def _reschedule_wakeup(self) -> None:
        """Point the single wakeup event at the earliest completion."""
        if self._wakeup is not None:
            self.env.unschedule(self._wakeup)
            self._wakeup = None
        flows = self._flows
        if not flows:
            return
        horizon = _INF
        for f in flows:
            if f.rate > 0:
                h = f.remaining / f.rate
                if h < horizon:
                    horizon = h
        if horizon == _INF:  # pragma: no cover - all rates zero
            raise SimulationError("flows present but no bandwidth allocated")
        wake = Event(self.env)
        wake._ok = True
        wake._value = None
        wake.callbacks.append(self._on_wakeup)  # type: ignore[union-attr]
        self.env.schedule(wake, delay=horizon)
        self._wakeup = wake

    def _on_wakeup(self, _event: Event) -> None:
        self._wakeup = None
        self._advance()
        # Completion tolerance: a flow whose remaining volume would drain
        # within float round-off of the current instant *is* done.  The
        # time-relative term matters: at simulated time T the granularity
        # of the event clock is ~ulp(T), so up to rate * ulp(T) bytes of
        # residue is pure round-off; without this the network can spiral
        # through infinitely many zero-length wakeups.
        now = self.env.now
        time_eps = 1e-12 * (1.0 + now)
        finished = [f for f in self._flows
                    if f.remaining <= _EPS_BYTES
                    or f.remaining <= 1e-12 * f.nbytes
                    or (f.rate > 0 and f.remaining <= f.rate * time_eps)]
        if finished:
            done = set(map(id, finished))
            self._flows = [f for f in self._flows if id(f) not in done]
            self.completed_flows += len(finished)
            if self.ledger is not None:
                for f in finished:
                    self.ledger.on_end(f, now)
        # Departures only perturb the components the finished flows were
        # in; seed with their links.
        self._update(seed_links=[l for f in finished for l, _w in f.links])
        for f in finished:
            f.remaining = 0.0
            f.event.succeed(f)
