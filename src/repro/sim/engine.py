"""The discrete-event simulation core: :class:`Environment` and
:class:`Process`.

Simulation logic is written as generator functions ("processes") that yield
:class:`~repro.sim.events.Event` objects.  The environment keeps triggered
events ordered by ``(time, priority, sequence)`` and processes them in that
order, resuming any process waiting on each event.  The ``sequence``
tiebreaker makes the whole simulation *deterministic*: two runs of the same
program produce identical timelines.

Two interchangeable schedulers implement that total order:

``heap``
    The reference scheduler: one binary heap of
    ``(when, priority, seq, event)`` records (the engine's historical
    behaviour).
``calendar``
    A calendar queue (timer wheel): future events hash into fixed-width
    time buckets that are sorted lazily when the clock reaches them, so
    pushes are O(1) instead of O(log n).  The default.

Both share a fast path for the dominant event class -- events scheduled at
the *current* instant (process inits, resource grants, flow completions):
those bypass the future-event structure entirely and live in two plain
FIFO deques (URGENT and NORMAL), which is correct because a record
appended at time ``t`` always carries a larger sequence number than
anything already queued at ``t``.  The pop order is therefore identical
across schedulers -- pinned by the engine-equivalence battery
(``tests/sim/test_engine_equivalence.py``) and the tie-break property
test.

Example
-------
>>> from repro.sim.engine import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import bisect
import heapq
import math
import os
import time as _time
import typing as _t
from collections import deque

from repro.errors import SimulationError
from repro.sim.events import Condition, Event, Timeout

__all__ = ["Environment", "Process", "URGENT", "NORMAL", "SCHEDULERS",
           "CalendarQueue", "HeapQueue"]

#: Scheduling priorities.  URGENT events at a given time are processed before
#: NORMAL events at the same time (used for immediately-resumable yields).
URGENT = 0
NORMAL = 1

_INF = float("inf")

#: Calendar-queue bucket indices are capped: any event beyond this many
#: bucket widths from t=0 lands in one shared far-future bucket.
_OVERFLOW_SCALE = float(1 << 53)
_OVERFLOW_IDX = 1 << 53


class Process(Event):
    """A running simulation process.

    Wraps a generator; each value the generator yields must be an
    :class:`Event`.  The process resumes when that event is processed,
    receiving the event's value as the result of the ``yield`` expression
    (or having the event's exception raised at the yield point if the event
    failed).

    A ``Process`` is itself an event: it succeeds with the generator's return
    value, or fails with any exception that escapes the generator.

    Every process carries an inheritable :attr:`tag`: opaque metadata that
    defaults to the spawning process's tag (``None`` at the top level).
    Subsystems that need to know *on whose behalf* a process is running --
    the multi-tenant service stamps a QoS tag so that flows started deep
    inside machine primitives inherit the tenant's priority and share --
    read it via :attr:`Environment.active_process`.  The engine itself
    never interprets tags.
    """

    __slots__ = ("generator", "_send", "_throw", "_target", "name", "tag")

    def __init__(self, env: "Environment",
                 generator: _t.Generator[Event, _t.Any, _t.Any],
                 name: str | None = None) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process() needs a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Inherit the spawner's tag: env.process() is always called
        # synchronously from within the spawning process's step (or from
        # outside any process, where _active is None).
        active = env._active
        self.tag = active.tag if active is not None else None
        # Kick the process off via an immediately-scheduled init event.
        init = Event(env)
        init.callbacks.append(self._resume)  # type: ignore[union-attr]
        init._ok = True
        init._value = None
        env.schedule(init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        send = self._send
        ok = event._ok
        payload = event._value
        if not ok:
            # The exception is delivered into the generator, therefore it
            # counts as handled.
            event._defused = True
        # Everything the generator does until its next yield runs on this
        # process's behalf (callbacks never nest: succeed()/fail() defer
        # through the queue), so flows/processes it creates can read the
        # tag via env._active.
        env._active = self
        while True:
            try:
                if ok:
                    target = send(payload)
                else:
                    target = self._throw(
                        _t.cast(BaseException, payload))
            except StopIteration as exc:
                env._active = None
                self.succeed(exc.value)
                return
            except BaseException as exc:  # noqa: BLE001 - escalate via event
                env._active = None
                self.fail(exc)
                return

            if type(target) is Timeout or isinstance(target, Event):
                if target.env is not env:
                    self.fail(SimulationError(
                        "yielded event belongs to a different environment"))
                    return
                if target.callbacks is None:
                    # Already processed: loop and advance again without a
                    # queue trip.
                    ok = target._ok
                    payload = target._value
                    if not ok:
                        target._defused = True
                    continue
                target.callbacks.append(self._resume)
                self._target = target
                env._active = None
                return
            # Non-event yield: throw into the generator so it can clean
            # up (or even catch and carry on).
            ok = False
            payload = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}")

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"


class HeapQueue:
    """The reference future-event scheduler: a binary heap of
    ``(when, priority, seq, event)`` records."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, record: tuple[float, int, int, Event]) -> None:
        heapq.heappush(self._heap, record)

    def head(self) -> tuple[float, int, int, Event] | None:
        """The smallest live record (cancelled records are discarded)."""
        heap = self._heap
        while heap:
            rec = heap[0]
            if rec[3]._cancelled:
                heapq.heappop(heap)
                continue
            return rec
        return None

    def pop(self) -> tuple[float, int, int, Event]:
        return heapq.heappop(self._heap)


class CalendarQueue:
    """A calendar queue (timer wheel) over future events.

    Records hash into fixed-width time buckets keyed by
    ``int(when / width)``; a bucket is sorted lazily the first time the
    clock reaches it, and same-bucket inserts that arrive while it is
    being drained are placed by binary insertion.  The bucket width is
    derived deterministically from the first future delay the simulation
    schedules (a power of two bracketing it), so identical programs
    build identical wheels.

    Pushes are O(1) amortised; pops sort each bucket once.  The pop
    order is the exact ``(when, priority, seq)`` total order of the
    reference heap -- the engine-equivalence battery pins this.
    """

    __slots__ = ("_buckets", "_order", "_width", "_inv_width", "_count",
                 "_cursor")

    def __init__(self) -> None:
        self._buckets: dict[int, list] = {}
        self._order: list[int] = []     # min-heap of live bucket indices
        self._width = 0.0               # 0 = not yet calibrated
        self._inv_width = 0.0
        self._count = 0
        self._cursor = -1               # bucket index currently draining

    def __len__(self) -> int:
        return self._count

    def _calibrate(self, when: float) -> None:
        """Pick the bucket width from the first scheduled instant: the
        power of two bracketing it, clamped to a sane range.  Purely a
        performance knob -- any width yields the same pop order."""
        scale = min(max(when, 1e-6), 1e12)
        width = 2.0 ** math.frexp(scale)[1]  # smallest 2**k > scale
        self._width = width / 64.0
        self._inv_width = 1.0 / self._width

    def push(self, record: tuple[float, int, int, Event]) -> None:
        if self._width == 0.0:
            self._calibrate(record[0])
        scaled = record[0] * self._inv_width
        # Times beyond the indexable range (or ever-growing timelines a
        # tiny first delay calibrated too finely for) share one catch-all
        # far-future bucket; it sorts lazily like any other, and its index
        # is larger than any regular bucket's so it drains last.
        idx = int(scaled) if scaled < _OVERFLOW_SCALE else _OVERFLOW_IDX
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [record]
            heapq.heappush(self._order, idx)
        elif idx == self._cursor:
            # The bucket is already sorted and draining: keep it sorted.
            bisect.insort(bucket, record)
        else:
            bucket.append(record)
            if len(bucket) > 2048 and len(self._buckets) < 16:
                # Everything clumps into a few buckets: narrow the wheel
                # so pops stop degenerating into big lazy sorts.
                self._resize(self._width / 64.0)
        self._count += 1
        if len(self._buckets) > 512 and self._count * 2 < len(self._buckets):
            # Mostly-empty wheel (initial width calibrated too fine for a
            # long-running timeline): widen so the bucket-index heap stops
            # shadowing the event count.
            self._resize(self._width * 64.0)

    def _resize(self, new_width: float) -> None:
        """Re-hash every live record onto a wheel of ``new_width`` buckets.

        Resizing never perturbs pop order -- records keep their
        ``(when, priority, seq)`` tuples and every bucket still sorts
        lazily -- it only re-balances bucket occupancy.
        """
        if not (new_width > 0.0) or new_width == self._width:
            return
        records = [r for b in self._buckets.values() for r in b
                   if not r[3]._cancelled]
        self._width = new_width
        self._inv_width = inv = 1.0 / new_width
        buckets: dict[int, list] = {}
        for rec in records:
            scaled = rec[0] * inv
            idx = int(scaled) if scaled < _OVERFLOW_SCALE else _OVERFLOW_IDX
            bucket = buckets.get(idx)
            if bucket is None:
                buckets[idx] = [rec]
            else:
                bucket.append(rec)
        self._buckets = buckets
        self._order = list(buckets)
        heapq.heapify(self._order)
        self._count = len(records)
        self._cursor = -1

    def head(self) -> tuple[float, int, int, Event] | None:
        """The smallest live record (cancelled records are discarded)."""
        order, buckets = self._order, self._buckets
        while order:
            idx = order[0]
            bucket = buckets.get(idx)
            if not bucket:
                heapq.heappop(order)
                if bucket is not None:
                    del buckets[idx]
                self._cursor = -1
                continue
            if idx != self._cursor:
                bucket.sort()
                self._cursor = idx
            rec = bucket[0]
            if rec[3]._cancelled:
                del bucket[0]
                self._count -= 1
                continue
            return rec
        return None

    def pop(self) -> tuple[float, int, int, Event]:
        rec = self.head()
        if rec is None:
            raise IndexError("pop from an empty calendar queue")
        del self._buckets[self._cursor][0]
        self._count -= 1
        return rec


#: Scheduler registry: name -> future-event queue class.
SCHEDULERS: dict[str, type] = {"heap": HeapQueue, "calendar": CalendarQueue}

#: Default scheduler (overridable via ``REPRO_SIM_SCHEDULER``).  The heap
#: is the default because CPython's C-implemented heapq outruns any
#: Python-level bucketing at this repo's typical queue depths (tens to a
#: few thousand pending events); the calendar queue is there for
#: workloads with very large pending sets, and the equivalence battery
#: keeps both honest.
_DEFAULT_SCHEDULER = os.environ.get("REPRO_SIM_SCHEDULER", "heap")

_profile_mod = None   # lazy import of repro.obs.profile (cycle-safe)


class Environment:
    """Coordinates events, time, and processes of one simulation run.

    ``scheduler`` picks the future-event queue implementation:
    ``"heap"`` (the default and reference) or ``"calendar"`` (timer
    wheel).  Both produce the identical deterministic
    ``(time, priority, seq)`` event order; the choice is purely a
    performance knob, and the engine-equivalence battery pins the
    identity.  The default can be overridden with the
    ``REPRO_SIM_SCHEDULER`` environment variable.
    """

    __slots__ = ("_now", "_future", "_now_urgent", "_now_normal", "_seq",
                 "_monitors", "bus", "processed_events", "scheduler",
                 "_active")

    def __init__(self, initial_time: float = 0.0,
                 scheduler: str | None = None) -> None:
        self._now = float(initial_time)
        #: The process currently executing a step, or None between steps.
        #: Maintained by Process._resume; read by tag-inheriting
        #: subsystems (process spawning, flow QoS stamping).
        self._active: Process | None = None
        name = scheduler or _DEFAULT_SCHEDULER
        try:
            queue_cls = SCHEDULERS[name]
        except KeyError:
            raise SimulationError(
                f"unknown scheduler {name!r}; choose from "
                f"{sorted(SCHEDULERS)}") from None
        #: Which scheduler this environment runs on ("heap"/"calendar").
        self.scheduler = name
        self._future = queue_cls()
        # Same-instant fast path: events scheduled at the current time
        # skip the future queue.  Appended records carry strictly
        # increasing seq, so each deque is FIFO-ordered by construction.
        self._now_urgent: deque = deque()
        self._now_normal: deque = deque()
        self._seq = 0
        #: Total events processed so far (the throughput gate's
        #: denominator; one increment per processed event).
        self.processed_events = 0
        self._monitors: list[_t.Callable[["Environment"], None]] = []
        #: Streaming telemetry: an optional
        #: :class:`~repro.obs.events.EventBus` notified after every
        #: processed event (its sinks' ``on_step`` hooks drive watchdog
        #: stall detection and display refresh).  ``None`` (the default)
        #: costs one truthiness check per step; the bus is an observer
        #: and must never schedule events.
        self.bus = None

    # -- observability -------------------------------------------------------

    def add_monitor(self, callback: _t.Callable[["Environment"], None]
                    ) -> None:
        """Register an observer invoked after every processed event.

        Monitors are passive: they may read simulation state (``now``,
        resource occupancy, ...) and record it, but must not schedule
        events or otherwise perturb the run.  With no monitors registered
        the per-step cost is a single truthiness check.
        """
        self._monitors.append(callback)

    def remove_monitor(self, callback: _t.Callable[["Environment"], None]
                       ) -> None:
        """Unregister a monitor added with :meth:`add_monitor`."""
        self._monitors.remove(callback)

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process whose generator is currently executing, or ``None``
        when control is not inside any process step (e.g. at module level
        or inside a plain event callback)."""
        return self._active

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: _t.Generator[Event, _t.Any, _t.Any],
                name: str | None = None) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Iterable[Event]) -> Condition:
        """An event firing when *all* of ``events`` have fired."""
        return Condition(self, Condition.all_events, events)

    def any_of(self, events: _t.Iterable[Event]) -> Condition:
        """An event firing when *any* of ``events`` has fired."""
        return Condition(self, Condition.any_event, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` seconds from now."""
        seq = self._seq
        self._seq = seq + 1
        if delay == 0.0:
            (self._now_urgent if priority == URGENT
             else self._now_normal).append((self._now, priority, seq, event))
            return
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay!r})")
        when = self._now + delay
        if when == self._now:
            # A positive delay that underflows to "now" (ulp-scale at
            # large t) must still respect seq order with other
            # now-records -- append, do not push.
            (self._now_urgent if priority == URGENT
             else self._now_normal).append((when, priority, seq, event))
            return
        self._future.push((when, priority, seq, event))

    def unschedule(self, event: Event) -> None:
        """Lazily cancel a scheduled event (it is skipped when popped).

        Used by the bandwidth links when a completion estimate is
        invalidated by a new flow.  The event object must not be reused.
        """
        event._cancelled = True
        event.callbacks = None

    def _head(self) -> tuple[float, int, int, Event] | None:
        """The next live record across the now-deques and the future
        queue, without removing it (cancelled records are discarded).

        All live deque records sit at the current instant (the clock only
        advances once both deques drain), so the urgent head -- when
        present -- beats the normal head by priority; the future head is
        compared by full ``(when, priority, seq)`` tuple to cover events
        scheduled at this same instant from an earlier one.
        """
        nu, nn = self._now_urgent, self._now_normal
        best = None
        while nu:
            rec = nu[0]
            if rec[3]._cancelled:
                nu.popleft()
                continue
            best = rec
            break
        if best is None:
            while nn:
                rec = nn[0]
                if rec[3]._cancelled:
                    nn.popleft()
                    continue
                best = rec
                break
        fut = self._future.head()
        if fut is not None and (best is None or fut < best):
            return fut
        return best

    def _pop(self) -> tuple[float, int, int, Event]:
        """Remove and return the next live record."""
        rec = self._head()
        if rec is None:
            raise SimulationError("step() on an empty queue")
        nu, nn = self._now_urgent, self._now_normal
        if nu and nu[0] is rec:
            nu.popleft()
        elif nn and nn[0] is rec:
            nn.popleft()
        else:
            self._future.pop()
        return rec

    # -- execution ----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        rec = self._head()
        return rec[0] if rec is not None else _INF

    def step(self) -> None:
        """Process the next event on the queue."""
        when, _, _, event = self._pop()
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks = event.callbacks or []
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            # An un-handled failure: abort the simulation loudly.
            raise _t.cast(BaseException, event._value)
        self.processed_events += 1
        if self._monitors:
            for monitor in self._monitors:
                monitor(self)
        if self.bus is not None:
            self.bus._on_step(self)

    def run(self, until: float | Event | None = None) -> _t.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` -- run until the event queue is exhausted.
            * a number -- run until simulated time reaches it.
            * an :class:`Event` -- run until that event is processed and
              return its value (raising its exception if it failed).

        When :mod:`repro.obs.profile` profiling is enabled, each call
        accumulates wall-clock seconds and processed-event counts under
        the ``sim.engine.run`` kernel (``elements_per_s`` is then the
        engine's events/sec -- the simulator-throughput gate's metric).
        """
        global _profile_mod
        if _profile_mod is None:
            from repro.obs import profile as _profile_mod  # noqa: PLW0603
        profiling = _profile_mod.profiling_enabled()
        if profiling:
            t0 = _time.perf_counter()
            events0 = self.processed_events
        try:
            return self._run(until)
        finally:
            if profiling:
                _profile_mod._record(
                    "sim.engine.run", _time.perf_counter() - t0,
                    self.processed_events - events0)

    def _run(self, until: float | Event | None) -> _t.Any:
        stop_event: Event | None = None
        stop_time = _INF
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError("run(until) lies in the past")

        # The hot loop: pop / advance clock / fire callbacks, with the
        # stop checks folded in.  Mirrors step() -- kept inline because
        # one Python call per event is measurable at fig11 scale.
        monitors = self._monitors
        while True:
            if stop_event is not None and stop_event.callbacks is None:
                break
            rec = self._head()
            if rec is None:
                break
            when = rec[0]
            if when > stop_time:
                self._now = stop_time
                return None
            event = rec[3]
            nu, nn = self._now_urgent, self._now_normal
            if nu and nu[0] is rec:
                nu.popleft()
            elif nn and nn[0] is rec:
                nn.popleft()
            else:
                self._future.pop()
            self._now = when
            callbacks = event.callbacks or ()
            event.callbacks = None
            for cb in callbacks:
                cb(event)
            if not event._ok and not event._defused:
                raise _t.cast(BaseException, event._value)
            self.processed_events += 1
            if monitors:
                for monitor in monitors:
                    monitor(self)
            if self.bus is not None:
                self.bus._on_step(self)

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    f"run() ran out of events before {stop_event!r} fired")
            if not stop_event._ok:
                stop_event.defuse()
                raise _t.cast(BaseException, stop_event._value)
            return stop_event._value
        if until is not None and stop_time != _INF:
            self._now = stop_time
        return None
