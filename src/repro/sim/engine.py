"""The discrete-event simulation core: :class:`Environment` and
:class:`Process`.

Simulation logic is written as generator functions ("processes") that yield
:class:`~repro.sim.events.Event` objects.  The environment maintains a
priority queue of triggered events keyed by ``(time, priority, sequence)``
and processes them in order, resuming any process waiting on each event.
The ``sequence`` tiebreaker makes the whole simulation *deterministic*:
two runs of the same program produce identical timelines.

Example
-------
>>> from repro.sim.engine import Environment
>>> env = Environment()
>>> log = []
>>> def worker(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(worker(env, "a", 2.0))
>>> _ = env.process(worker(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
import typing as _t
from itertools import count

from repro.errors import SimulationError
from repro.sim.events import Condition, Event, Timeout

__all__ = ["Environment", "Process", "URGENT", "NORMAL"]

#: Scheduling priorities.  URGENT events at a given time are processed before
#: NORMAL events at the same time (used for immediately-resumable yields).
URGENT = 0
NORMAL = 1


class Process(Event):
    """A running simulation process.

    Wraps a generator; each value the generator yields must be an
    :class:`Event`.  The process resumes when that event is processed,
    receiving the event's value as the result of the ``yield`` expression
    (or having the event's exception raised at the yield point if the event
    failed).

    A ``Process`` is itself an event: it succeeds with the generator's return
    value, or fails with any exception that escapes the generator.
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, env: "Environment",
                 generator: _t.Generator[Event, _t.Any, _t.Any],
                 name: str | None = None) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process() needs a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        # Kick the process off via an immediately-scheduled init event.
        init = Event(env)
        init.callbacks.append(self._resume)  # type: ignore[union-attr]
        init._ok = True
        init._value = None
        env.schedule(init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        while True:
            try:
                if event._ok:
                    target = self.generator.send(event._value)
                else:
                    # The exception was delivered into the generator,
                    # therefore it counts as handled.
                    event.defuse()
                    target = self.generator.throw(
                        _t.cast(BaseException, event._value))
            except StopIteration as exc:
                self.succeed(exc.value)
                return
            except BaseException as exc:  # noqa: BLE001 - escalate via event
                self.fail(exc)
                return

            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}")
                try:
                    self.generator.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except BaseException as exc2:  # noqa: BLE001
                    self.fail(exc2)
                return
            if target.env is not env:
                self.fail(SimulationError(
                    "yielded event belongs to a different environment"))
                return

            if target.processed:
                # Already done: loop and advance again without a queue trip.
                event = target
                continue
            target.callbacks.append(self._resume)  # type: ignore[union-attr]
            self._target = target
            return

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"


class Environment:
    """Coordinates events, time, and processes of one simulation run."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = count()
        self.active_processes = 0
        self._monitors: list[_t.Callable[["Environment"], None]] = []
        #: Streaming telemetry: an optional
        #: :class:`~repro.obs.events.EventBus` notified after every
        #: processed event (its sinks' ``on_step`` hooks drive watchdog
        #: stall detection and display refresh).  ``None`` (the default)
        #: costs one truthiness check per step; the bus is an observer
        #: and must never schedule events.
        self.bus = None

    # -- observability -------------------------------------------------------

    def add_monitor(self, callback: _t.Callable[["Environment"], None]
                    ) -> None:
        """Register an observer invoked after every processed event.

        Monitors are passive: they may read simulation state (``now``,
        resource occupancy, ...) and record it, but must not schedule
        events or otherwise perturb the run.  With no monitors registered
        the per-step cost is a single truthiness check.
        """
        self._monitors.append(callback)

    def remove_monitor(self, callback: _t.Callable[["Environment"], None]
                       ) -> None:
        """Unregister a monitor added with :meth:`add_monitor`."""
        self._monitors.remove(callback)

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event firing ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: _t.Generator[Event, _t.Any, _t.Any],
                name: str | None = None) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: _t.Iterable[Event]) -> Condition:
        """An event firing when *all* of ``events`` have fired."""
        return Condition(self, Condition.all_events, events)

    def any_of(self, events: _t.Iterable[Event]) -> Condition:
        """An event firing when *any* of ``events`` has fired."""
        return Condition(self, Condition.any_event, events)

    # -- scheduling ---------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past ({delay!r})")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), event))

    def unschedule(self, event: Event) -> None:
        """Lazily cancel a scheduled event (it is skipped when popped).

        Used by the bandwidth links when a completion estimate is
        invalidated by a new flow.  The event object must not be reused.
        """
        event._defused = True
        event.callbacks = None

    # -- execution ----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the queue is empty."""
        while self._queue:
            when, _, _, ev = self._queue[0]
            if ev.callbacks is None and not isinstance(ev, Process):
                heapq.heappop(self._queue)  # cancelled; discard
                continue
            return when
        return float("inf")

    def step(self) -> None:
        """Process the next event on the queue."""
        while True:
            try:
                when, _, _, event = heapq.heappop(self._queue)
            except IndexError:
                raise SimulationError("step() on an empty queue") from None
            if event.callbacks is None and not isinstance(event, Process):
                continue  # cancelled by unschedule()
            break
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when
        callbacks = event.callbacks or []
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            # An un-handled failure: abort the simulation loudly.
            raise _t.cast(BaseException, event._value)
        if self._monitors:
            for monitor in self._monitors:
                monitor(self)
        if self.bus is not None:
            self.bus._on_step(self)

    def run(self, until: float | Event | None = None) -> _t.Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` -- run until the event queue is exhausted.
            * a number -- run until simulated time reaches it.
            * an :class:`Event` -- run until that event is processed and
              return its value (raising its exception if it failed).
        """
        stop_event: Event | None = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError("run(until) lies in the past")

        while self._queue:
            if stop_event is not None and stop_event.processed:
                break
            nxt = self.peek()
            if nxt > stop_time:
                self._now = stop_time
                return None
            if nxt == float("inf"):
                break
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    f"run() ran out of events before {stop_event!r} fired")
            if not stop_event._ok:
                stop_event.defuse()
                raise _t.cast(BaseException, stop_event._value)
            return stop_event._value
        if until is not None and stop_time != float("inf"):
            self._now = stop_time
        return None
