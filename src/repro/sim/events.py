"""Event primitives for the discrete-event simulation engine.

The engine follows the classic process-interaction style popularised by
SimPy: simulation logic is written as Python generator functions that
``yield`` :class:`Event` objects, and the :class:`~repro.sim.engine.Environment`
resumes them when those events fire.

Only the subset of semantics this project needs is implemented, which keeps
the engine small, fully deterministic and easy to test:

* :class:`Event` -- a one-shot triggerable event carrying a value or an error.
* :class:`Timeout` -- an event that fires after a fixed simulated delay.
* :class:`Condition` -- composite events (:func:`all_of` / :func:`any_of`).
* :class:`Process` -- a running generator; itself an event that fires when
  the generator returns (see :mod:`repro.sim.engine`).

Events are single-shot: succeeding or failing an event twice raises
:class:`~repro.errors.SimulationError`.
"""

from __future__ import annotations

import typing as _t

from repro.errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.engine import Environment

__all__ = ["Event", "Timeout", "Condition", "PENDING"]


class _PendingType:
    """Sentinel for "event has no value yet"."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _PendingType()


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event goes through up to three states:

    1. *pending*  -- created, not yet triggered;
    2. *triggered* -- :meth:`succeed` or :meth:`fail` was called; the event is
       scheduled on the environment's queue;
    3. *processed* -- the environment has popped it and run its callbacks.

    Attributes
    ----------
    callbacks:
        List of ``callable(event)`` invoked when the event is processed.
        ``None`` once processed (appending afterwards is an error).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused",
                 "_cancelled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[_t.Callable[["Event"], None]] | None = []
        self._value: _t.Any = PENDING
        self._ok: bool | None = None
        # A failed event whose exception was delivered to (or inspected by)
        # someone does not crash the simulation; an un-handled failure does.
        self._defused = False
        # Set by Environment.unschedule(): the queue record referencing
        # this event is dead and will be discarded unprocessed.
        self._cancelled = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the environment has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> _t.Any:
        """The value passed to :meth:`succeed` (or the exception from
        :meth:`fail`).  Only valid once triggered."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: _t.Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on this
        event.  If nobody is waiting, the simulation aborts with the
        exception when the event is processed (unless :meth:`defuse` d).
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(
                f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failure as handled so it does not abort the simulation."""
        self._defused = True

    def __repr__(self) -> str:
        state = ("pending" if not self.triggered
                 else "processed" if self.processed else "triggered")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: _t.Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=self.delay)

    # Timeouts are triggered at construction; re-triggering is an error and
    # inherited succeed()/fail() already enforce that.


class Condition(Event):
    """Composite event over a fixed set of child events.

    ``evaluate`` receives ``(events, n_processed)`` and returns True once the
    condition holds.  Used through :meth:`Environment.all_of` and
    :meth:`Environment.any_of`.

    The condition's value is a dict mapping each *triggered* child event to
    its value at the time the condition fired.
    """

    __slots__ = ("events", "_evaluate", "_n_processed")

    def __init__(self, env: "Environment",
                 evaluate: _t.Callable[[tuple, int], bool],
                 events: _t.Iterable[Event]) -> None:
        super().__init__(env)
        self.events = tuple(events)
        self._evaluate = evaluate
        self._n_processed = 0

        for ev in self.events:
            if ev.env is not env:
                raise SimulationError(
                    "all events of a condition must share one environment")

        if not self.events:
            self.succeed({})
            return

        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)  # type: ignore[union-attr]

    @staticmethod
    def all_events(events: tuple, count: int) -> bool:
        """Evaluate function: fire once every child has been processed."""
        return len(events) == count

    @staticmethod
    def any_event(events: tuple, count: int) -> bool:
        """Evaluate function: fire as soon as one child has been processed."""
        return count > 0

    def _collect_values(self) -> dict:
        # Only *processed* children count as outcomes: a pending Timeout
        # is "triggered" from birth but has not happened yet.
        return {ev: ev._value for ev in self.events if ev.processed}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._n_processed += 1
        if not event._ok:
            # Propagate the first child failure immediately.
            event.defuse()
            self.fail(_t.cast(BaseException, event._value))
        elif self._evaluate(self.events, self._n_processed):
            self.succeed(self._collect_values())
