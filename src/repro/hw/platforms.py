"""Calibrated platform presets: PLATFORM1 and PLATFORM2 (Table II).

Every constant below is either taken directly from Table II or *calibrated*
against a number the paper reports.  The derivations are given inline; the
calibration is verified by ``tests/hw/test_platforms.py`` and the
paper-vs-measured comparison lives in EXPERIMENTS.md.

Anchor numbers used (all from the paper):

====================================================================  =======
Pinned HtoD of 5.96 GiB (Fig. 7)                                      0.536 s
Pinned DtoH of 5.96 GiB (Fig. 7)                                      0.484 s
Pinned transfers reach ~12 GB/s = 75% of PCIe v3 peak (Sec. V)        12 GB/s
Pinned vs pageable throughput ("up to ~2x", Sec. V)                   2x
Pinned alloc of p_s = 1e6 elements = 8 MB (Sec. IV-E1)                0.01 s
Pinned alloc of p_s = n = 8e8 elements = 6.4 GB (Sec. IV-E1)          2.2 s
GNU parallel sort speedup, 16 threads, n=1e5 (Fig. 4)                 3.17x
GNU parallel sort speedup, 16 threads, n=1e9 (Fig. 4)                 10.12x
std::qsort roughly half the speed of std::sort (Fig. 4)               2x
Pair-wise merge speedup, 16 threads, n=1e9 (Fig. 6)                   8.14x
BLINEMULTI at n=5e9 on PLATFORM1 (Sec. IV-F)                          31.2 s
PIPEDATA at n=5e9 on PLATFORM1 (22% faster)                           25.55 s
PARMEMCPY end-to-end improvement                                      13%
Fastest approach vs CPU reference, n=1e9 / n=5e9 (PLATFORM1)          3.47x / 3.21x
CPU/GPU response-time ratio for BLINE, n_b = 1 (Fig. 5, PLATFORM2)    1.22-1.32
Lower-bound model slopes (Fig. 11, PLATFORM2)                         6.278 / 3.706 ns/element
====================================================================  =======
"""

from __future__ import annotations

from repro.hw.spec import (GIB, CPUSpec, GPUSpec, HostMemSpec,
                           MergeCostModel, PCIeSpec, PlatformSpec,
                           RuntimeCosts, SortCostModel)

__all__ = ["PLATFORM1", "PLATFORM2", "get_platform", "PLATFORMS"]


def _cpu_sort_suite(c_gnu: float, cores: int) -> dict[str, SortCostModel]:
    """The four CPU sort libraries benchmarked in Fig. 4.

    * ``gnu`` -- GNU libstdc++ parallel mode (the reference implementation).
      Serial fraction 0.039 reproduces the 10.12x @ 16T large-n speedup;
      the 100 us/thread spawn overhead reproduces the 3.17x @ n=1e5 limit.
    * ``std`` -- sequential ``std::sort``; "std::sort and the GNU parallel
      sort with 1 thread yield nearly identical performance" (Sec. IV-C).
    * ``qsort`` -- ``std::qsort``; "slower than std::sort by roughly a
      factor of 2" (indirect comparator calls).
    * ``tbb`` -- Intel TBB ``parallel_sort``; "slower than the GNU parallel
      library for large input sizes" (Sec. IV-C): higher per-element
      constant, slightly cheaper task spawning.
    """
    return {
        "gnu": SortCostModel("gnu", c_nlogn=c_gnu, serial_fraction=0.039,
                             spawn_overhead_s=100e-6, max_threads=cores),
        "std": SortCostModel("std", c_nlogn=c_gnu, max_threads=1),
        "qsort": SortCostModel("qsort", c_nlogn=2.0 * c_gnu, max_threads=1),
        "tbb": SortCostModel("tbb", c_nlogn=1.22 * c_gnu,
                             serial_fraction=0.055,
                             spawn_overhead_s=60e-6, max_threads=cores),
    }


#: Shared pinned-allocation cost: affine fit through the paper's two
#: measurements -- 8 MB -> 0.01 s and 6.4 GB -> 2.2 s:
#: per-byte = (2.2 - 0.01) / (6.4e9 - 8e6) = 0.3427 ns/B;
#: fixed = 0.01 - 8e6 * per-byte = 7.26 ms.
_PINNED_ALLOC_PER_BYTE = (2.2 - 0.01) / (6.4e9 - 8e6)
_PINNED_ALLOC_FIXED = 0.01 - 8e6 * _PINNED_ALLOC_PER_BYTE

_RUNTIME = RuntimeCosts(
    kernel_launch_s=10e-6,
    memcpy_async_call_s=8e-6,
    memcpy_blocking_call_s=12e-6,
    stream_sync_s=20e-6,
    device_sync_s=30e-6,
)

# ---------------------------------------------------------------------------
# PLATFORM1: 2x Xeon E5-2620 v4 (2x8 @ 2.1 GHz), Quadro GP100 16 GiB, CUDA 9
# ---------------------------------------------------------------------------
#
# GNU sort constant: the reference implementation sorts n = 5e9 in ~71 s at
# 16 threads (Fig. 9: the fastest hybrid approach is 3.21x faster at 22.2 s);
# with serial fraction 0.039 the Amdahl speedup at 16T is 10.08, so
# c = 71 * 10.08 / (5e9 * log2(5e9)) = 4.45e-9 s per element-log2.
#
# GP100 Thrust f64 radix throughput: Fig. 7 shows GPUSort below the 0.536 s
# HtoD bar for n = 8e8, i.e. > 1.5e9 elements/s; we use 1.6e9.
#
# Host memcpy: a single std::memcpy thread sustains ~10 GB/s payload on this
# class of Xeon; copy-like flows (staging copies + DMA) share a ~20 GB/s
# payload bus -- roughly half the raw bandwidth of the GPU-side socket's
# DDR4 channels, since each payload byte is read and written.  These two
# constants are fitted jointly against the BLINEMULTI = 31.2 s and
# PIPEDATA = 25.55 s anchors: the per-core cap makes MCpy the bottleneck
# PARMEMCPY relieves, while the shared bus bounds how much pipelining and
# parallel copies can actually win (Sec. IV-F's observation that host-side
# bandwidth, not just PCIe, limits heterogeneous sorting).
#
# Merge: per-core rate 1.43e8 elements/s makes the sequential pair-wise
# merge of n=1e9 take 7.0 s (Fig. 6a); serial fraction 0.0644 gives exactly
# the observed 8.14x at 16 threads.  multiway_alpha tunes the k-way factor
# so that the final 10-way merge at n=5e9 costs what Fig. 9 implies.
PLATFORM1 = PlatformSpec(
    name="PLATFORM1",
    cpu=CPUSpec("2x Xeon E5-2620 v4", sockets=2, cores_per_socket=8,
                clock_ghz=2.1),
    gpus=(GPUSpec("Quadro GP100", cuda_cores=3584, mem_bytes=16 * GIB,
                  sort_rate_f64=1.6e9, sort_overhead_s=0.010),),
    pcie=PCIeSpec(peak_bw=16e9, pinned_efficiency=0.75,
                  pageable_efficiency=0.375),
    hostmem=HostMemSpec(
        capacity_bytes=128 * GIB,
        copy_bus_bw=20e9,
        per_core_copy_bw=10e9,
        pinned_alloc_fixed_s=_PINNED_ALLOC_FIXED,
        pinned_alloc_per_byte_s=_PINNED_ALLOC_PER_BYTE,
    ),
    runtime=_RUNTIME,
    cpu_sorts=_cpu_sort_suite(c_gnu=4.45e-9, cores=16),
    merge=MergeCostModel(per_core_rate=1.43e8, serial_fraction=0.0644,
                         spawn_overhead_s=50e-6, multiway_alpha=1.0,
                         bytes_per_element=16.0),
    reference_threads=16,
)

# ---------------------------------------------------------------------------
# PLATFORM2: 2x Xeon E5-2660 v3 (2x10 @ 2.6 GHz), 2x Tesla K40m 12 GiB, CUDA 7.5
# ---------------------------------------------------------------------------
#
# K40m Thrust f64 throughput: from the Fig. 11 lower-bound slope of
# 6.278 ns/element for BLINE (staged pinned, n_b = 1):
#   per-element = MCpy_in + HtoD + sort + DtoH + MCpy_out
#   6.278 = 0.8 + 0.667 + sort + 0.667 + 0.8  =>  sort ~ 3.3 ns/element,
# i.e. ~3.0e8 elements/s -- consistent with a Kepler-class device.
#
# GNU sort constant: Fig. 5 shows the CPU reference (20 threads) is 1.22x to
# 1.32x *slower* than BLINE, i.e. ~8.0 ns/element at n~7e8; the Amdahl
# speedup at 20T (serial fraction 0.039) is 11.5, so c ~ 3.2e-9.
#
# Merge per-core rate: calibrated so the 2-GPU lower-bound slope lands at
# ~3.7 ns/element: each GPU sorts n/2 concurrently (~3.14 ns/el aggregate,
# with PCIe contention) plus one pair-wise merge of n at 20 threads.
#
# Copy bus: PLATFORM2 drives its two K40m from the two sockets, so staging
# copies and DMA spread across more memory-controller bandwidth than
# PLATFORM1's single GPU socket (24 vs 20 GB/s payload).  The value is
# fitted jointly against three Fig. 10/11 anchors: the 2-GPU lower-bound
# slope, the ~2x speedup of the fastest 2-GPU configuration over the CPU
# reference, and BLINEMULTI still (barely) beating the reference at
# n = 4.9e9.
PLATFORM2 = PlatformSpec(
    name="PLATFORM2",
    cpu=CPUSpec("2x Xeon E5-2660 v3", sockets=2, cores_per_socket=10,
                clock_ghz=2.6),
    gpus=(GPUSpec("Tesla K40m", cuda_cores=2880, mem_bytes=12 * GIB,
                  sort_rate_f64=3.0e8, sort_overhead_s=0.012),
          GPUSpec("Tesla K40m", cuda_cores=2880, mem_bytes=12 * GIB,
                  sort_rate_f64=3.0e8, sort_overhead_s=0.012)),
    pcie=PCIeSpec(peak_bw=16e9, pinned_efficiency=0.75,
                  pageable_efficiency=0.375),
    hostmem=HostMemSpec(
        capacity_bytes=128 * GIB,
        copy_bus_bw=24e9,
        per_core_copy_bw=10e9,
        pinned_alloc_fixed_s=_PINNED_ALLOC_FIXED,
        pinned_alloc_per_byte_s=_PINNED_ALLOC_PER_BYTE,
    ),
    runtime=_RUNTIME,
    cpu_sorts=_cpu_sort_suite(c_gnu=3.2e-9, cores=20),
    merge=MergeCostModel(per_core_rate=2.0e8, serial_fraction=0.0644,
                         spawn_overhead_s=50e-6, multiway_alpha=1.0,
                         bytes_per_element=16.0),
    reference_threads=20,
)

PLATFORMS: dict[str, PlatformSpec] = {
    "PLATFORM1": PLATFORM1,
    "PLATFORM2": PLATFORM2,
}


def get_platform(name: str) -> PlatformSpec:
    """Look a platform preset up by name (case-insensitive)."""
    try:
        return PLATFORMS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None
