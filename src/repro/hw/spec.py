"""Hardware and cost-model specifications (Table II of the paper).

All timing behaviour of the simulated platform is parameterised here.  A
:class:`PlatformSpec` bundles:

* physical structure: CPU sockets/cores, GPUs with global-memory capacity,
  the PCIe interconnect, host memory;
* calibrated *cost models* for the software primitives the paper uses
  (GNU/TBB/std sorts, pair-wise and multiway merges);
* runtime-call overheads (kernel launch, async-copy synchronisation, ...).

Calibration values live in :mod:`repro.hw.platforms` together with their
derivations from the paper's reported anchor numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import CalibrationError
from repro.hw import scaling

__all__ = [
    "CPUSpec", "GPUSpec", "PCIeSpec", "HostMemSpec", "RuntimeCosts",
    "SortCostModel", "MergeCostModel", "PlatformSpec", "GIB", "GB",
]

GIB = 1024 ** 3
GB = 1000 ** 3


@dataclass(frozen=True)
class CPUSpec:
    """A multi-socket host CPU."""

    model: str
    sockets: int
    cores_per_socket: int
    clock_ghz: float

    @property
    def cores(self) -> int:
        """Total physical cores (the paper does not use hyperthreads)."""
        return self.sockets * self.cores_per_socket


@dataclass(frozen=True)
class GPUSpec:
    """One GPU device.

    ``sort_rate_f64`` is the sustained Thrust radix-sort throughput for
    64-bit keys (elements/second) once the kernel is running;
    ``sort_overhead_s`` covers kernel launch plus Thrust's temporary-buffer
    management per sort call.
    """

    model: str
    cuda_cores: int
    mem_bytes: int
    sort_rate_f64: float
    sort_overhead_s: float = 0.01

    def sort_seconds(self, n: int) -> float:
        """Device time to sort ``n`` 64-bit elements."""
        if n <= 0:
            return 0.0
        return self.sort_overhead_s + n / self.sort_rate_f64


@dataclass(frozen=True)
class PCIeSpec:
    """The host<->device interconnect.

    ``peak_bw`` is the physical per-direction bandwidth (16 GB/s for PCIe
    v3 x16).  Individual transfers reach only a fraction of it:
    ``pinned_efficiency`` (the paper measures ~12 GB/s = 75%, Sec. V) or
    ``pageable_efficiency`` (pinned gives "up to ~2x" over pageable).
    The link itself (and hence multi-GPU contention) is modelled at
    ``peak_bw``.
    """

    peak_bw: float
    pinned_efficiency: float = 0.75
    pageable_efficiency: float = 0.375
    #: Pageable copies are staged by the driver through internal pinned
    #: buffers, so they hit host memory twice per payload byte.
    pageable_hostmem_factor: float = 2.0

    def flow_cap(self, pinned: bool) -> float:
        """Max rate of a single transfer (bytes/s)."""
        eff = self.pinned_efficiency if pinned else self.pageable_efficiency
        return self.peak_bw * eff


@dataclass(frozen=True)
class HostMemSpec:
    """Host DRAM: capacity, copy bandwidths and pinned-allocation cost.

    ``copy_bus_bw`` is the aggregate *payload* bandwidth available to
    copy-like flows (each payload byte is read once and written once, so
    this is roughly half the raw DRAM bandwidth).  ``per_core_copy_bw`` is
    what a single ``std::memcpy`` thread sustains -- the reason PARMEMCPY
    helps (Sec. IV-F: "a single core cannot saturate the memory bandwidth").

    Pinned allocation cost is affine: the paper reports 0.01 s for an 8 MB
    buffer and 2.2 s for a 6.4 GB buffer (Sec. IV-E1).
    """

    capacity_bytes: int
    copy_bus_bw: float
    per_core_copy_bw: float
    pinned_alloc_fixed_s: float
    pinned_alloc_per_byte_s: float

    def pinned_alloc_seconds(self, nbytes: float) -> float:
        """Cost of ``cudaMallocHost(nbytes)``."""
        return self.pinned_alloc_fixed_s + self.pinned_alloc_per_byte_s * nbytes


@dataclass(frozen=True)
class RuntimeCosts:
    """Fixed per-call overheads of the (simulated) CUDA runtime."""

    kernel_launch_s: float = 10e-6
    memcpy_async_call_s: float = 8e-6
    memcpy_blocking_call_s: float = 12e-6
    stream_sync_s: float = 20e-6
    device_sync_s: float = 30e-6


@dataclass(frozen=True)
class SortCostModel:
    """Cost model for a comparison/radix CPU sort library.

    ``seq_time(n) = c_nlogn * n * log2(n)``; parallel time follows Amdahl's
    law with a per-thread spawn overhead (:mod:`repro.hw.scaling`), which is
    what produces the n-dependent scalability of Fig. 4 (3.17x at n=1e5 up
    to 10.12x at n=1e9 with 16 threads).
    """

    name: str
    c_nlogn: float
    serial_fraction: float = 0.0
    spawn_overhead_s: float = 0.0
    max_threads: int = 1

    def __post_init__(self) -> None:
        if self.c_nlogn <= 0:
            raise CalibrationError(f"{self.name}: c_nlogn must be > 0")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise CalibrationError(
                f"{self.name}: serial_fraction must be in [0, 1)")

    def seq_seconds(self, n: int) -> float:
        """Single-thread sort time."""
        if n <= 1:
            return 0.0
        return self.c_nlogn * n * math.log2(n)

    def seconds(self, n: int, threads: int = 1) -> float:
        """Sort time with ``threads`` OpenMP threads."""
        threads = min(threads, self.max_threads)
        return scaling.parallel_seconds(
            self.seq_seconds(n), threads,
            self.serial_fraction, self.spawn_overhead_s)


@dataclass(frozen=True)
class MergeCostModel:
    """Cost model for CPU merging (pair-wise and multiway).

    Merging is memory-bound (Fig. 6 shows only 8.14x at 16 threads), so the
    model is expressed as a per-core element rate plus an Amdahl-style
    efficiency cap.  A k-way multiway merge pays a cache-efficiency factor
    ``1 + multiway_alpha * log2(k)`` relative to the pair-wise merge --
    this is the O(n log k) work term of Sec. III-A.

    ``bytes_per_element`` is the memory-bus traffic per merged element
    (read input + write output), used when a merge runs as a flow on the
    shared host-memory bus so that it contends with staging copies.
    """

    per_core_rate: float
    serial_fraction: float
    spawn_overhead_s: float = 0.0
    multiway_alpha: float = 0.6
    bytes_per_element: float = 16.0

    def multiway_factor(self, k: int) -> float:
        """Per-element cost multiplier of a k-way merge vs. pair-wise."""
        if k < 2:
            return 1.0
        return 1.0 + self.multiway_alpha * (math.log2(k) - 1.0)

    def effective_threads(self, threads: int) -> float:
        """Amdahl-capped parallelism (the Fig. 6 speedup curve)."""
        return scaling.amdahl_speedup(threads, self.serial_fraction)

    def rate(self, threads: int, k: int = 2) -> float:
        """Merged elements/second with ``threads`` threads, k-way."""
        return (self.per_core_rate * self.effective_threads(threads)
                / self.multiway_factor(k))

    def seconds(self, n: int, threads: int = 1, k: int = 2) -> float:
        """Time to merge ``n`` total elements from ``k`` sorted runs."""
        if n <= 0:
            return 0.0
        return self.spawn_overhead_s * threads + n / self.rate(threads, k)

    def flow_bytes(self, n: int, k: int = 2) -> float:
        """Host-bus traffic of the merge (payload bytes)."""
        return n * self.bytes_per_element * self.multiway_factor(k)

    def flow_cap(self, threads: int, k: int = 2) -> float:
        """Max host-bus rate of the merge flow (bytes/s), chosen so that an
        uncontended flow reproduces :meth:`seconds`."""
        return self.rate(threads, k) * self.bytes_per_element \
            * self.multiway_factor(k)


@dataclass(frozen=True)
class PlatformSpec:
    """A complete heterogeneous platform (one row of Table II)."""

    name: str
    cpu: CPUSpec
    gpus: tuple[GPUSpec, ...]
    pcie: PCIeSpec
    hostmem: HostMemSpec
    runtime: RuntimeCosts
    cpu_sorts: dict[str, SortCostModel] = field(default_factory=dict)
    merge: MergeCostModel = None  # type: ignore[assignment]
    #: Threads used for the parallel reference sort (16 on PLATFORM1,
    #: 20 on PLATFORM2, Sec. IV-C).
    reference_threads: int = 16

    def __post_init__(self) -> None:
        if not self.gpus:
            raise CalibrationError(f"{self.name}: needs at least one GPU")
        if self.merge is None:
            raise CalibrationError(f"{self.name}: missing merge model")
        if self.reference_threads > self.cpu.cores:
            raise CalibrationError(
                f"{self.name}: reference_threads exceeds physical cores")

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)

    def sort_model(self, library: str = "gnu") -> SortCostModel:
        """The cost model of a named CPU sort library."""
        try:
            return self.cpu_sorts[library]
        except KeyError:
            raise CalibrationError(
                f"{self.name}: unknown CPU sort library {library!r} "
                f"(have {sorted(self.cpu_sorts)})") from None

    def reference_sort_seconds(self, n: int) -> float:
        """Response time of the parallel CPU reference implementation
        (GNU parallel-mode sort at ``reference_threads``, Sec. IV-C)."""
        return self.sort_model("gnu").seconds(n, self.reference_threads)
