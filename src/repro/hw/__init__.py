"""Simulated heterogeneous hardware (the paper's Table II platforms).

Exposes hardware specifications, calibrated platform presets, thread
scaling laws, and the :class:`~repro.hw.machine.Machine` runtime that the
simulated CUDA layer and the sorting approaches are built on.
"""

from repro.hw.gpu import Direction, SimGPU
from repro.hw.machine import Machine
from repro.hw.platforms import PLATFORM1, PLATFORM2, PLATFORMS, get_platform
from repro.hw.spec import (GB, GIB, CPUSpec, GPUSpec, HostMemSpec,
                           MergeCostModel, PCIeSpec, PlatformSpec,
                           RuntimeCosts, SortCostModel)

__all__ = [
    "Machine", "SimGPU", "Direction",
    "PLATFORM1", "PLATFORM2", "PLATFORMS", "get_platform",
    "CPUSpec", "GPUSpec", "PCIeSpec", "HostMemSpec", "RuntimeCosts",
    "SortCostModel", "MergeCostModel", "PlatformSpec", "GIB", "GB",
]
