"""The simulated GPU device.

Models the three properties of a GPU that the paper's evaluation depends on:

* **bounded global memory** -- allocations are tracked against
  :attr:`GPUSpec.mem_bytes`; exceeding it raises
  :class:`~repro.errors.CudaOutOfMemory` (this is what forces batching
  when n_b > 1);
* **one kernel at a time** -- Thrust sort kernels from different streams
  serialise on the device's compute engine;
* **dual copy engines** -- one DMA engine per direction, so an HtoD and a
  DtoH transfer overlap on one device, but two HtoD transfers queue.
"""

from __future__ import annotations

import typing as _t

from repro.errors import CudaInvalidValue, CudaOutOfMemory, GpuLostError
from repro.hw.spec import GPUSpec
from repro.sim import CAT, Resource, Trace
from repro.sim.engine import Environment

__all__ = ["SimGPU", "Direction"]


class Direction:
    """PCIe transfer directions (Table I: HtoD / DtoH)."""

    HTOD = "HtoD"
    DTOH = "DtoH"
    ALL = (HTOD, DTOH)


class SimGPU:
    """One GPU device on the simulated platform."""

    def __init__(self, env: Environment, spec: GPUSpec, index: int,
                 trace: Trace) -> None:
        self.env = env
        self.spec = spec
        self.index = index
        self.trace = trace
        self.kernel_engine = Resource(env, 1, name=f"gpu{index}.kernel")
        self.copy_engines = {
            d: Resource(env, 1, name=f"gpu{index}.copy.{d}")
            for d in Direction.ALL
        }
        self.mem_used = 0
        self.mem_high_water = 0
        #: Fault injection: True once the device suffered a fatal error
        #: (see :meth:`mark_lost`).  Never set on healthy runs.
        self.lost = False

    # -- fault injection --------------------------------------------------

    def mark_lost(self, exc: BaseException | None = None) -> None:
        """Simulate a fatal device failure (ECC error, driver death).

        Subsequent allocations and kernels on this device raise
        :class:`~repro.errors.GpuLostError`; requests already *queued* on
        its engines are failed immediately so nothing blocks forever on a
        dead device.  Operations holding an engine mid-flight complete:
        the loss takes effect at operation boundaries.
        """
        if self.lost:
            return
        self.lost = True
        if exc is None:
            exc = GpuLostError(
                f"gpu{self.index} ({self.spec.model}) was lost")
        self.kernel_engine.fail_waiters(exc)
        for engine in self.copy_engines.values():
            engine.fail_waiters(exc)

    def _check_alive(self, what: str) -> None:
        if self.lost:
            raise GpuLostError(
                f"gpu{self.index} ({self.spec.model}) is lost; "
                f"cannot {what}")

    # -- memory -----------------------------------------------------------

    @property
    def mem_free(self) -> int:
        """Unallocated global-memory bytes."""
        return self.spec.mem_bytes - self.mem_used

    def alloc(self, nbytes: int) -> None:
        """Account a device allocation (raises on OOM)."""
        self._check_alive("cudaMalloc")
        if nbytes < 0:
            raise CudaInvalidValue(f"negative allocation {nbytes}")
        if nbytes > self.mem_free:
            raise CudaOutOfMemory(
                f"gpu{self.index} ({self.spec.model}): requested {nbytes} B "
                f"with only {self.mem_free} B of {self.spec.mem_bytes} B free")
        self.mem_used += nbytes
        self.mem_high_water = max(self.mem_high_water, self.mem_used)

    def free(self, nbytes: int) -> None:
        """Release a device allocation."""
        if nbytes < 0 or nbytes > self.mem_used:
            raise CudaInvalidValue(
                f"gpu{self.index}: freeing {nbytes} B with "
                f"{self.mem_used} B allocated")
        self.mem_used -= nbytes

    # -- compute ------------------------------------------------------------

    def sort(self, n: int, label: str = "thrust::sort",
             work: _t.Callable[[], None] | None = None,
             deps: _t.Sequence = ()):
        """Process: run a Thrust-style sort of ``n`` 64-bit elements.

        Thrust sorts out of place, temporarily doubling the footprint of
        the input (Sec. III-B); the caller is responsible for having
        allocated that scratch space (the batch planner enforces it).

        ``work`` (functional layer) runs when the kernel completes.
        Returns the recorded span; serialisation of kernels from
        different streams on the single compute engine is recorded as a
        causal edge from the kernel that freed it.
        """
        self._check_alive("launch a sort kernel")
        grant = self.kernel_engine.request()
        waited = not grant.triggered
        yield grant
        start = self.env.now
        yield self.env.timeout(self.spec.sort_seconds(n))
        causal = [d for d in deps if d is not None]
        if waited and self.kernel_engine.last_release_span is not None:
            causal.append(self.kernel_engine.last_release_span)
        span = self.trace.record(CAT.GPUSORT, label, start, self.env.now,
                                 lane=f"gpu{self.index}", elements=n,
                                 nbytes=8.0 * n, deps=causal)
        self.kernel_engine.release(span=span)
        if work is not None:
            work()
        return span
