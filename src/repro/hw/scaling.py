"""Thread-scaling laws used by the CPU-side cost models.

The paper's CPU baselines scale sub-linearly in thread count, and the
shortfall depends on the input size (Fig. 4: 3.17x speedup at n=1e5 but
10.12x at n=1e9, both with 16 threads; Fig. 6: 8.14x for the memory-bound
merge).  Two ingredients reproduce that:

* **Amdahl's law** with a serial fraction ``s``:
  ``speedup(t) = 1 / (s + (1 - s) / t)``;
* a **per-thread spawn/orchestration overhead** that is independent of n,
  which dominates for small inputs and is negligible for large ones.
"""

from __future__ import annotations

import math

from repro.errors import CalibrationError

__all__ = [
    "amdahl_speedup", "parallel_seconds", "speedup",
    "fit_serial_fraction",
]


def amdahl_speedup(threads: int, serial_fraction: float) -> float:
    """Amdahl speedup of ``threads`` threads with the given serial fraction.

    >>> amdahl_speedup(16, 0.0)
    16.0
    >>> round(amdahl_speedup(16, 0.0644), 2)
    8.15
    """
    if threads < 1:
        raise CalibrationError(f"threads must be >= 1, got {threads}")
    if not 0.0 <= serial_fraction <= 1.0:
        raise CalibrationError(
            f"serial fraction must be in [0, 1], got {serial_fraction}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / threads)


def parallel_seconds(seq_seconds: float, threads: int,
                     serial_fraction: float,
                     spawn_overhead_s: float = 0.0) -> float:
    """Parallel run time: Amdahl-scaled work plus per-thread overhead.

    ``T(t) = T1 * (s + (1-s)/t) + t * c_spawn``

    The additive ``t * c_spawn`` term models OpenMP fork/join and
    work-partitioning cost; it is what bounds small-n scalability in Fig. 4.
    """
    if seq_seconds < 0:
        raise CalibrationError("negative sequential time")
    t = amdahl_speedup(threads, serial_fraction)
    return seq_seconds / t + threads * spawn_overhead_s


def speedup(seq_seconds: float, threads: int, serial_fraction: float,
            spawn_overhead_s: float = 0.0) -> float:
    """Observed speedup ``T1 / T(t)`` under the model above."""
    if seq_seconds <= 0:
        return 1.0
    return seq_seconds / parallel_seconds(
        seq_seconds, threads, serial_fraction, spawn_overhead_s)


def fit_serial_fraction(threads: int, observed_speedup: float) -> float:
    """Invert Amdahl's law: the serial fraction that yields
    ``observed_speedup`` at ``threads`` threads (spawn overhead ignored).

    >>> round(fit_serial_fraction(16, 8.14), 4)
    0.0644
    """
    if threads < 2:
        raise CalibrationError("need at least 2 threads to fit")
    if not 1.0 <= observed_speedup <= threads:
        raise CalibrationError(
            f"speedup {observed_speedup} not achievable with "
            f"{threads} threads")
    # 1/S = s + (1-s)/t  =>  s = (1/S - 1/t) / (1 - 1/t)
    inv_t = 1.0 / threads
    s = (1.0 / observed_speedup - inv_t) / (1.0 - inv_t)
    return max(0.0, min(1.0, s))
