"""The assembled simulated platform: CPU cores + GPUs + interconnects.

:class:`Machine` instantiates, for one :class:`~repro.hw.spec.PlatformSpec`:

* a FIFO core pool (:class:`~repro.sim.resources.Resource`) for host threads;
* a :class:`~repro.sim.bandwidth.FlowNetwork` with three links:
  ``host_bus`` (DRAM copy bandwidth), ``pcie_htod`` and ``pcie_dtoh``
  (per-direction PCIe at the root complex, shared by all GPUs);
* one :class:`~repro.hw.gpu.SimGPU` per device.

It exposes the primitive timed operations out of which the heterogeneous
sort approaches are composed.  Every primitive is a *process* (generator)
that can carry an optional ``work`` callable -- the functional layer -- so
identical control flow drives both timing-only and real-data runs.
"""

from __future__ import annotations

import typing as _t

from repro.errors import (CudaOutOfMemory, GpuLostError, PinnedAllocFault,
                          RetryExhaustedError, SimulationError,
                          TransferFaultError)
from repro.hw.gpu import Direction, SimGPU
from repro.hw.spec import PlatformSpec
from repro.sim import CAT, FlowNetwork, Resource, Trace
from repro.sim.engine import Environment

__all__ = ["Machine"]


class Machine:
    """A running simulated instance of a platform."""

    def __init__(self, env: Environment, platform: PlatformSpec,
                 n_gpus: int | None = None, trace: Trace | None = None
                 ) -> None:
        self.env = env
        self.platform = platform
        self.trace = trace if trace is not None else Trace()

        n_gpus = platform.n_gpus if n_gpus is None else n_gpus
        if not 1 <= n_gpus <= platform.n_gpus:
            raise SimulationError(
                f"{platform.name} has {platform.n_gpus} GPU(s); "
                f"requested {n_gpus}")

        self.cores = Resource(env, platform.cpu.cores, name="cpu.cores")
        self.net = FlowNetwork(env)
        self.host_bus = self.net.add_link(
            "host_bus", platform.hostmem.copy_bus_bw)
        self.pcie = {
            Direction.HTOD: self.net.add_link("pcie.htod",
                                              platform.pcie.peak_bw),
            Direction.DTOH: self.net.add_link("pcie.dtoh",
                                              platform.pcie.peak_bw),
        }
        self.gpus = [SimGPU(env, spec, i, self.trace)
                     for i, spec in enumerate(platform.gpus[:n_gpus])]
        self.pinned_bytes = 0
        #: Pageable working set (A + W + B) reserved by the run; pinned
        #: allocations must fit in what remains of host DRAM.
        self.host_reserved = 0
        #: Optional :class:`~repro.obs.counters.MetricsRecorder`; when
        #: attached, the machine samples pinned-buffer occupancy, in-flight
        #: DMA transfers and core-pool pressure as counter time series.
        self.recorder = None
        self._inflight = {Direction.HTOD: 0, Direction.DTOH: 0}
        #: Fault injection: an optional
        #: :class:`~repro.sim.faults.FaultInjector` whose hooks the
        #: instrumented primitives consult.  ``None`` (healthy runs)
        #: costs one ``is None`` check per operation.
        self.faults = None
        #: Recovery: an optional
        #: :class:`~repro.hetsort.resilience.RetryPolicy` (duck-typed:
        #: ``max_attempts`` + ``backoff_s(attempt)``) governing bounded
        #: retries of injected transient faults.
        self.retry = None
        #: Streaming telemetry: an optional
        #: :class:`~repro.obs.events.EventBus` for ``retry.attempt``
        #: events (wired by :func:`repro.obs.events.connect_machine`).
        self.bus = None
        #: Memory observatory: an optional
        #: :class:`~repro.obs.memory.MemoryLedger` the runtime's
        #: allocation/release paths record into.  ``None`` (bare
        #: machines) costs one ``is None`` check per operation.
        self.memory = None

    def attach_recorder(self, recorder) -> None:
        """Wire a :class:`~repro.obs.counters.MetricsRecorder` into the
        machine's probes (core pool, pinned memory, DMA engines)."""
        self.recorder = recorder

        def cores_probe(res) -> None:
            recorder.sample("cpu.cores.in_use", res.in_use)
            recorder.sample("cpu.cores.queue_depth", res.queue_length)

        self.cores.probe = cores_probe

    def _gauge(self, name: str, value: float) -> None:
        if self.recorder is not None:
            self.recorder.sample(name, value)

    def reserve_host(self, nbytes: int) -> None:
        """Account a pageable working-set reservation (free of charge in
        time; raises when host DRAM is exhausted)."""
        if nbytes < 0:
            raise SimulationError(f"negative reservation {nbytes}")
        if (self.host_reserved + self.pinned_bytes + nbytes
                > self.platform.hostmem.capacity_bytes):
            raise CudaOutOfMemory(
                f"host reservation of {nbytes} B exceeds capacity "
                f"({self.host_reserved} B already reserved)")
        self.host_reserved += nbytes

    def release_host(self, nbytes: int) -> None:
        """Return a pageable working-set reservation made with
        :meth:`reserve_host` (a finished service job hands its A/W/B
        arrays back to the pool).  Single runs never release -- their
        reservation lives for the whole simulation."""
        if nbytes < 0 or nbytes > self.host_reserved:
            raise SimulationError(
                f"releasing {nbytes} reserved bytes with "
                f"{self.host_reserved} reserved")
        self.host_reserved -= nbytes

    @staticmethod
    def _causal(deps, *extra) -> list:
        """Combine explicit causal deps with wait-derived ones (drops
        ``None`` entries; :meth:`Trace.record` dedupes)."""
        out = [d for d in deps if d is not None]
        out.extend(e for e in extra if e is not None)
        return out

    # ------------------------------------------------------------------
    # Host-side primitives
    # ------------------------------------------------------------------

    def host_memcpy(self, nbytes: float, threads: int = 1,
                    label: str = "memcpy", lane: str = "host",
                    work: _t.Callable[[], None] | None = None,
                    deps: _t.Sequence = ()):
        """Process: a host-to-host copy (pageable <-> pinned staging).

        With ``threads == 1`` this is ``std::memcpy`` (rate capped at the
        per-core copy bandwidth); with more threads it is the PARMEMCPY
        optimisation -- the rate cap scales linearly with threads but the
        flow then competes with DMA and merges on the shared host bus,
        which is exactly the effect discussed in Sec. IV-F.

        Returns the recorded :class:`~repro.sim.trace.Span`.
        """
        if threads < 1:
            raise SimulationError(f"memcpy threads must be >= 1: {threads}")
        threads = min(threads, self.platform.cpu.cores)
        # Only the orchestrating host thread occupies a core slot: OpenMP
        # copy helpers are short bursts that time-share with whatever else
        # runs (they are bounded by the rate cap and the shared bus, which
        # is where the real contention lives).
        grant = self.cores.request(1)
        waited = not grant.triggered
        yield grant
        start = self.env.now
        cap = threads * self.platform.hostmem.per_core_copy_bw
        flow = yield self.net.transfer(nbytes, [self.host_bus], cap=cap,
                                       label=label)
        span = self.trace.record(
            CAT.MCPY, label, start, self.env.now, lane=lane, nbytes=nbytes,
            meta={"threads": threads},
            deps=self._causal(
                deps, self.cores.last_release_span if waited else None))
        if self.net.ledger is not None:
            self.net.ledger.bind_span(flow, span.id)
        self.cores.release(1, span=span)
        if work is not None:
            work()
        return span

    def host_merge(self, n_elements: int, k: int, threads: int,
                   label: str = "merge", lane: str = "cpu",
                   category: str = CAT.MERGE,
                   work: _t.Callable[[], None] | None = None,
                   deps: _t.Sequence = ()):
        """Process: merge ``n_elements`` from ``k`` sorted runs on the CPU.

        Modelled as a memory-bus flow so that pipelined pair-wise merges
        (PIPEMERGE) contend with concurrent staging copies and DMA.
        Returns the recorded :class:`~repro.sim.trace.Span`.
        """
        model = self.platform.merge
        threads = min(threads, self.platform.cpu.cores)
        grant = self.cores.request(threads)
        waited = not grant.triggered
        yield grant
        start = self.env.now
        if model.spawn_overhead_s > 0:
            yield self.env.timeout(model.spawn_overhead_s * threads)
        flow = yield self.net.transfer(
            model.flow_bytes(n_elements, k), [self.host_bus],
            cap=model.flow_cap(threads, k), label=label)
        span = self.trace.record(
            category, label, start, self.env.now, lane=lane,
            elements=n_elements, nbytes=8.0 * n_elements,
            meta={"k": k, "threads": threads},
            deps=self._causal(
                deps, self.cores.last_release_span if waited else None))
        if self.net.ledger is not None:
            self.net.ledger.bind_span(flow, span.id)
        self.cores.release(threads, span=span)
        if work is not None:
            work()
        return span

    def cpu_sort(self, n: int, library: str = "gnu",
                 threads: int | None = None, label: str = "cpu_sort",
                 lane: str = "cpu",
                 work: _t.Callable[[], None] | None = None,
                 deps: _t.Sequence = ()):
        """Process: a CPU-only library sort (the reference implementation).

        Time-based (Amdahl + spawn overhead, Fig. 4 model); holds the
        requested cores for its duration.  Returns the recorded span.
        """
        model = self.platform.sort_model(library)
        threads = self.platform.reference_threads if threads is None \
            else threads
        threads = min(threads, self.platform.cpu.cores, model.max_threads)
        grant = self.cores.request(threads)
        waited = not grant.triggered
        yield grant
        start = self.env.now
        yield self.env.timeout(model.seconds(n, threads))
        span = self.trace.record(
            CAT.CPUSORT, label, start, self.env.now, lane=lane, elements=n,
            meta={"library": library, "threads": threads},
            deps=self._causal(
                deps, self.cores.last_release_span if waited else None))
        self.cores.release(threads, span=span)
        if work is not None:
            work()
        return span

    def pinned_alloc(self, nbytes: float, label: str = "cudaMallocHost",
                     deps: _t.Sequence = ()):
        """Process: allocate pinned host memory (cudaMallocHost).

        Costs the affine time of Sec. IV-E1 and counts against host DRAM.
        Returns the recorded span.

        Injected transient failures (``alloc.pinned`` faults) are retried
        here with the machine's retry policy -- each drawn fault charges
        a backoff to the sim clock; exhausting the budget raises
        :class:`~repro.errors.RetryExhaustedError`.  A genuine capacity
        exhaustion is never retried.
        """
        if nbytes < 0:
            raise SimulationError(f"negative pinned allocation {nbytes}")
        deps = tuple(deps)
        if self.faults is not None:
            attempt = 1
            while self.faults.on_pinned_alloc() is not None:
                exc = PinnedAllocFault(
                    f"injected cudaMallocHost failure ({label})")
                if self.retry is None or attempt >= self.retry.max_attempts:
                    raise RetryExhaustedError(
                        f"{label}: pinned allocation failed after "
                        f"{attempt} attempt(s)") from exc
                span = yield from self.retry_backoff(label, "host",
                                                      attempt, deps)
                deps = (span,)
                attempt += 1
        if (self.pinned_bytes + self.host_reserved + nbytes
                > self.platform.hostmem.capacity_bytes):
            raise CudaOutOfMemory(
                f"pinned allocation of {nbytes} B exceeds host capacity "
                f"({self.host_reserved} B reserved for A/W/B, "
                f"{self.pinned_bytes} B already pinned)")
        start = self.env.now
        yield self.env.timeout(
            self.platform.hostmem.pinned_alloc_seconds(nbytes))
        self.pinned_bytes += nbytes
        self._gauge("host.pinned_bytes", self.pinned_bytes)
        return self.trace.record(CAT.PINNED_ALLOC, label, start,
                                 self.env.now, lane="host", nbytes=nbytes,
                                 deps=self._causal(deps))

    def pinned_free(self, nbytes: float) -> None:
        """Release pinned host memory (modelled as free of charge)."""
        if nbytes < 0 or nbytes > self.pinned_bytes:
            raise SimulationError(
                f"freeing {nbytes} pinned bytes with {self.pinned_bytes} "
                "allocated")
        self.pinned_bytes -= nbytes
        self._gauge("host.pinned_bytes", self.pinned_bytes)

    def sync_overhead(self, label: str = "streamSync", lane: str = "host",
                      deps: _t.Sequence = ()):
        """Process: per-call synchronisation cost of an async copy
        (one of the overheads the related work omits, Sec. IV-E).
        Returns the recorded span."""
        cost = self.platform.runtime.stream_sync_s
        start = self.env.now
        yield self.env.timeout(cost)
        return self.trace.record(CAT.SYNC, label, start, self.env.now,
                                 lane=lane, deps=self._causal(deps))

    # ------------------------------------------------------------------
    # Fault injection / retries
    # ------------------------------------------------------------------

    def retry_backoff(self, what: str, lane: str, attempt: int,
                       deps: _t.Sequence = ()):
        """Process: one simulated exponential-backoff pause before a
        retry.  Charged to the sim clock, recorded as a ``Retry`` span
        (chained into the caller's causal deps) and published as a
        ``retry.attempt`` event.  Returns the span."""
        delay = self.retry.backoff_s(attempt)
        start = self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        span = self.trace.record(CAT.RETRY, f"backoff[{what}]", start,
                                 self.env.now, lane=lane,
                                 meta={"attempt": attempt},
                                 deps=self._causal(deps))
        if self.bus is not None:
            self.bus.retry(what=what, attempt=attempt, backoff_s=delay,
                           lane=lane)
        return span

    def _transfer_faults(self, gpu: SimGPU, direction: str, what: str,
                         lane: str, deps: tuple):
        """Process: consume injected faults for one DMA transfer.

        Each drawn transient fault fails the attempt *before* the copy
        engine engages and charges the policy's backoff; device loss is
        permanent and surfaces immediately.  Returns the (possibly
        retry-extended) causal deps of the eventual real attempt.
        """
        attempt = 1
        while True:
            if gpu.lost:
                raise GpuLostError(
                    f"gpu{gpu.index} is lost; cannot start {what}")
            spec = self.faults.on_transfer(gpu.index, direction)
            if spec is None:
                return deps
            exc = TransferFaultError(
                f"injected transient {direction} fault on gpu{gpu.index} "
                f"({what})")
            if self.retry is None or attempt >= self.retry.max_attempts:
                raise RetryExhaustedError(
                    f"{what} on gpu{gpu.index}: transfer failed after "
                    f"{attempt} attempt(s)") from exc
            span = yield from self.retry_backoff(what, lane, attempt, deps)
            deps = (span,)
            attempt += 1

    # ------------------------------------------------------------------
    # PCIe transfers
    # ------------------------------------------------------------------

    def pcie_transfer(self, gpu: SimGPU, nbytes: float, direction: str,
                      pinned: bool = True, label: str = "",
                      lane: str = "", work: _t.Callable[[], None] | None = None,
                      deps: _t.Sequence = ()):
        """Process: one DMA transfer between host and ``gpu``.

        Waits for the device's per-direction copy engine, then flows
        through the shared per-direction PCIe link *and* the host memory
        bus (DMA reads/writes host DRAM).  Pageable transfers are slower
        (driver staging) and touch host DRAM twice per byte.  Returns the
        recorded span; serialisation on the copy engine is recorded as a
        causal edge from the transfer that freed the engine.

        Injected transient faults (``pcie.transient``) fail the attempt
        before the DMA engages and are retried with the machine's retry
        policy; a lost device raises
        :class:`~repro.errors.GpuLostError` immediately.
        """
        if direction not in Direction.ALL:
            raise SimulationError(f"bad transfer direction {direction!r}")
        deps = tuple(deps)
        if self.faults is not None:
            deps = yield from self._transfer_faults(
                gpu, direction, label or direction,
                lane or f"gpu{gpu.index}.{direction}", deps)
        engine = gpu.copy_engines[direction]
        grant = engine.request()
        waited = not grant.triggered
        yield grant
        start = self.env.now
        self._inflight[direction] += 1
        self._gauge(f"pcie.{direction}.inflight", self._inflight[direction])
        hostmem_weight = (1.0 if pinned
                          else self.platform.pcie.pageable_hostmem_factor)
        cap = self.platform.pcie.flow_cap(pinned)
        flow = yield self.net.transfer(
            nbytes,
            [self.pcie[direction], (self.host_bus, hostmem_weight)],
            cap=cap, label=label or f"{direction}@gpu{gpu.index}")
        self._inflight[direction] -= 1
        self._gauge(f"pcie.{direction}.inflight", self._inflight[direction])
        category = CAT.HTOD if direction == Direction.HTOD else CAT.DTOH
        span = self.trace.record(
            category, label or direction, start, self.env.now,
            lane=lane or f"gpu{gpu.index}.{direction}", nbytes=nbytes,
            deps=self._causal(
                deps, engine.last_release_span if waited else None))
        if self.net.ledger is not None:
            self.net.ledger.bind_span(flow, span.id)
        engine.release(span=span)
        if work is not None:
            work()
        return span
