"""The public facade: :class:`HeterogeneousSorter` and the CPU reference.

>>> from repro import HeterogeneousSorter, PLATFORM1
>>> import numpy as np
>>> sorter = HeterogeneousSorter(PLATFORM1, batch_size=25_000)
>>> data = np.random.default_rng(0).uniform(size=100_000)
>>> res = sorter.sort(data, approach="pipemerge")
>>> bool(np.all(res.output[:-1] <= res.output[1:]))
True
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.cuda import Runtime
from repro.errors import PlanError
from repro.hetsort.bline import run_bline
from repro.hetsort.blinemulti import run_blinemulti
from repro.hetsort.config import Approach, SortConfig
from repro.hetsort.context import RunContext
from repro.hetsort.gpumerge import run_gpumerge
from repro.hetsort.pipedata import run_pipedata
from repro.hetsort.pipemerge import run_pipemerge
from repro.hetsort.plan import make_plan
from repro.hetsort.result import SortResult
from repro.hetsort.validate import check_sorted_permutation
from repro.hw.machine import Machine
from repro.hw.platforms import PLATFORM1
from repro.hw.spec import PlatformSpec
from repro.kernels.samplesort import sample_sort
from repro.obs.counters import MetricsRecorder
from repro.obs.flows import FlowLedger
from repro.obs.memory import MemoryLedger
from repro.obs.metrics import compute_metrics
from repro.sim.engine import Environment

__all__ = ["HeterogeneousSorter", "APPROACH_RUNNERS", "cpu_reference_sort"]

APPROACH_RUNNERS: dict[str, _t.Callable[[RunContext], _t.Generator]] = {
    Approach.BLINE: run_bline,
    Approach.BLINEMULTI: run_blinemulti,
    Approach.PIPEDATA: run_pipedata,
    Approach.PIPEMERGE: run_pipemerge,
    Approach.GPUMERGE: run_gpumerge,
}


class HeterogeneousSorter:
    """Hybrid CPU/GPU sorter for data larger than GPU global memory.

    Parameters mirror the paper's knobs (Table I); every keyword of
    :class:`~repro.hetsort.config.SortConfig` is accepted.

    Parameters
    ----------
    platform:
        A :class:`~repro.hw.spec.PlatformSpec` (default PLATFORM1).
    n_gpus:
        How many of the platform's GPUs to use.
    **config_kw:
        Forwarded to :class:`SortConfig` (``approach``, ``n_streams``,
        ``batch_size``, ``pinned_elements``, ``memcpy_threads``, ...).
    """

    def __init__(self, platform: PlatformSpec = PLATFORM1,
                 n_gpus: int = 1, config: SortConfig | None = None,
                 **config_kw) -> None:
        if config is not None and config_kw:
            raise PlanError("pass either a SortConfig or keywords, not both")
        self.platform = platform
        self.n_gpus = n_gpus
        self.config = config if config is not None else SortConfig(**config_kw)

    def sort(self, data: np.ndarray | None = None, n: int | None = None,
             approach: str | None = None, validate: bool = True,
             sinks: _t.Sequence = (), faults=None, retry=None,
             **overrides) -> SortResult:
        """Run one heterogeneous sort.

        Exactly one of ``data`` (functional mode: a float64 array that is
        really sorted) or ``n`` (timing-only mode: paper-scale inputs)
        must be given.  ``approach`` and any other config field may be
        overridden per call.

        ``sinks`` optionally attaches streaming-telemetry subscribers
        (:class:`~repro.obs.events.Sink`) for the run's event bus --
        spans, queue depths, counters and phase transitions are
        published live.  Sinks are passive observers: attaching any
        combination never changes the simulated timeline, the sorted
        output or the canonical run report (pinned by the determinism
        tests).

        ``faults`` optionally attaches a deterministic
        :class:`~repro.sim.faults.FaultPlan`; injected faults are
        retried, replanned or degraded to the CPU under ``retry`` (a
        :class:`~repro.hetsort.resilience.RetryPolicy`, defaulting to
        the standard one whenever a plan is attached).  An empty plan is
        exactly equivalent to no plan (pinned byte-for-byte by the
        fault-neutrality tests).
        """
        if (data is None) == (n is None):
            raise PlanError("pass exactly one of `data` or `n`")
        cfg = self.config
        if approach is not None:
            overrides = {**overrides, "approach": approach}
        if overrides:
            cfg = cfg.with_(**overrides)
        n_elems = int(n) if n is not None else len(data)

        env = Environment()
        machine = Machine(env, self.platform, n_gpus=self.n_gpus)
        rt = Runtime(machine)
        plan = make_plan(n_elems, self.platform, cfg, n_gpus=self.n_gpus)
        ctx = RunContext(env, machine, rt, plan, cfg, data=data)
        # The memory observatory: a passive, byte-exact allocation
        # ledger.  Pinned capacity is what host DRAM leaves after the
        # run's 3n pageable working set (reserved by the RunContext).
        capacities = {f"gpu{g.index}": g.spec.mem_bytes
                      for g in machine.gpus}
        capacities["pinned"] = (self.platform.hostmem.capacity_bytes
                                - machine.host_reserved)
        machine.memory = MemoryLedger(clock=lambda: env.now,
                                      capacities=capacities)
        # The interconnect observatory: a passive per-flow bandwidth
        # grant ledger on the fluid-flow network.
        machine.net.ledger = FlowLedger(
            clock=lambda: env.now,
            capacities={lv.name: lv.capacity
                        for lv in machine.net.link_snapshot()})

        injector = None
        if faults is not None:
            from repro.hetsort.resilience import RetryPolicy
            from repro.sim.faults import FaultInjector
            injector = FaultInjector(faults).attach(machine)
            machine.retry = retry if retry is not None else RetryPolicy()

        bus = None
        if sinks:
            from repro.obs.events import EV, EventBus, connect_context
            bus = EventBus(clock=lambda: env.now)
            for sink in sinks:
                bus.attach(sink)
            connect_context(bus, ctx)
            bus.emit(EV.RUN_START, platform=self.platform.name,
                     approach=cfg.approach, n=plan.n,
                     n_batches=plan.n_batches, batch_size=plan.batch_size,
                     n_gpus=plan.n_gpus, n_streams=plan.n_streams,
                     functional=ctx.functional)

        runner = APPROACH_RUNNERS[cfg.approach]
        if injector is not None:
            injector.start(env)
        proc = env.process(runner(ctx), name=cfg.approach)
        env.run(proc)

        if injector is not None and injector.fired_total:
            ctx.meta["faults"] = injector.summary()

        # Leak detection: every pool must balance back to zero by run
        # end, degraded runs included (free_surviving releases a dead
        # worker's buffers).
        machine.memory.check_balanced()

        if bus is not None:
            from repro.obs.events import EV
            bus.emit(EV.RUN_END, elapsed_s=env.now,
                     makespan_s=machine.trace.makespan(),
                     n_spans=len(machine.trace.spans))
            bus.close()

        output = ctx.B.data
        if validate and data is not None:
            check_sorted_permutation(np.asarray(data, dtype=np.float64),
                                     output)
        metrics = compute_metrics(machine.trace, elapsed=env.now,
                                  counters=ctx.obs.summary(env.now))
        metrics["memory"] = machine.memory.summary()
        metrics["flows"] = machine.net.ledger.summary()
        # Engine throughput, in simulated terms only (wall-clock events
        # per second would break run-to-run metric determinism).
        metrics["engine"] = {
            "processed_events": env.processed_events,
            "events_per_sim_s": (env.processed_events / env.now
                                 if env.now > 0 else 0.0),
        }
        return SortResult(
            platform_name=self.platform.name,
            approach=cfg.approach,
            config=cfg,
            plan=plan,
            elapsed=env.now,
            trace=machine.trace,
            output=output,
            meta=dict(ctx.meta),
            metrics=metrics,
            recorder=ctx.obs,
            memory_ledger=machine.memory,
            flow_ledger=machine.net.ledger,
        )


def cpu_reference_sort(platform: PlatformSpec = PLATFORM1,
                       data: np.ndarray | None = None,
                       n: int | None = None,
                       library: str = "gnu",
                       threads: int | None = None) -> SortResult:
    """The parallel CPU reference implementation (Sec. IV-C): the GNU
    parallel-mode sort at the platform's reference thread count.

    Functional mode really sorts ``data`` with the sample-sort stand-in.
    """
    if (data is None) == (n is None):
        raise PlanError("pass exactly one of `data` or `n`")
    n_elems = int(n) if n is not None else len(data)
    threads = platform.reference_threads if threads is None else threads

    env = Environment()
    machine = Machine(env, platform, n_gpus=1)
    machine.attach_recorder(MetricsRecorder(clock=lambda: env.now))
    out: dict = {}

    def work():
        if data is not None:
            out["output"] = sample_sort(
                np.asarray(data, dtype=np.float64), threads=threads)

    def runner():
        yield from machine.cpu_sort(n_elems, library=library,
                                    threads=threads,
                                    label=f"{library}::sort", work=work)

    proc = env.process(runner(), name="cpu_reference")
    env.run(proc)
    return SortResult(
        platform_name=platform.name,
        approach=f"cpu:{library}",
        config=SortConfig(sort_library=library),
        plan=None,
        elapsed=env.now,
        trace=machine.trace,
        output=out.get("output"),
        meta={"threads": threads, "n": n_elems},
        metrics=compute_metrics(
            machine.trace, elapsed=env.now,
            counters=machine.recorder.summary(env.now)),
        recorder=machine.recorder,
    )
