"""The paper's core contribution: heterogeneous CPU/GPU sorting of data
exceeding GPU global memory, with the BLINE / BLINEMULTI / PIPEDATA /
PIPEMERGE approaches and the PARMEMCPY optimisation (Sec. III)."""

from repro.hetsort.config import Approach, SortConfig, Staging
from repro.hetsort.plan import (Batch, SortPlan, make_plan, max_batch_size,
                                pairwise_quota)
from repro.hetsort.resilience import RetryPolicy
from repro.hetsort.result import SortResult
from repro.hetsort.sorter import (APPROACH_RUNNERS, HeterogeneousSorter,
                                  cpu_reference_sort)
from repro.hetsort.tuning import TuningResult, autotune
from repro.hetsort.validate import check_sorted_permutation

__all__ = [
    "HeterogeneousSorter", "cpu_reference_sort", "APPROACH_RUNNERS",
    "Approach", "SortConfig", "Staging",
    "SortPlan", "Batch", "make_plan", "max_batch_size", "pairwise_quota",
    "SortResult", "check_sorted_permutation",
    "autotune", "TuningResult", "RetryPolicy",
]
