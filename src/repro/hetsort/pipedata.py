"""PIPEDATA: pipelined data transfers (Sec. III-D2, Fig. 2).

``n_s`` CUDA streams per GPU, each with its own pinned staging buffers and
device buffers, process their share of the batches concurrently:

* HtoD of one stream overlaps DtoH of another (bidirectional PCIe);
* host-side ``MCpy`` staging copies of one stream overlap transfers of
  the others;
* sorts from different streams serialise on the device but overlap with
  every host-side activity.

The PARMEMCPY optimisation (Sec. III-D2) is the same control flow with
``config.memcpy_threads > 1`` parallelising each staging copy.
"""

from __future__ import annotations

from repro.errors import GpuLostError
from repro.hetsort.context import RunContext
from repro.hetsort.resilience import (DEGRADED, cpu_fallback_batch,
                                      drain_stream, free_surviving)
from repro.hetsort.workers import (alloc_worker_buffers, async_stream_batch,
                                   final_multiway)

__all__ = ["run_pipedata", "spawn_stream_workers"]


def _stream_worker(ctx: RunContext, gpu: int, slot: int):
    """Process: one (gpu, stream) pipeline worker.

    Batches whose GPU path is exhausted (retry budget spent, or the
    device died) degrade individually to the CPU samplesort fallback;
    the worker then continues with the next batch -- on the GPU if it is
    still alive, on the CPU otherwise."""
    batches = ctx.plan.batches_for(gpu, slot)
    if not batches:
        return
    ctx.obs.incr("workers.active")
    ctx.phase("worker.start", approach="pipedata", gpu=gpu, stream=slot,
              batches=len(batches))
    stream = ctx.rt.create_stream(gpu)
    pin_in = pin_out = dev = None
    prev: tuple = ()
    gpu_ok = True
    clean = True
    why = "GpuLostError"
    try:
        pin_in, pin_out, dev = yield from alloc_worker_buffers(
            ctx, gpu, tag=f"g{gpu}s{slot}")
        prev = (pin_in.alloc_span, pin_out.alloc_span)
    except DEGRADED as exc:
        gpu_ok = False
        clean = False
        why = type(exc).__name__
        ctx.degrade("worker.degraded", approach="pipedata", gpu=gpu,
                    stream=slot, error=why)
    for batch in batches:
        if gpu_ok:
            try:
                last = yield from async_stream_batch(
                    ctx, batch, pin_in, pin_out, dev, stream, deps=prev)
                prev = (last,)   # buffer reuse batch after batch
                continue
            except DEGRADED as exc:
                yield from drain_stream(stream)
                if isinstance(exc, GpuLostError):
                    gpu_ok = False
                clean = False
                why = type(exc).__name__
                prev = ()
                ctx.degrade("cpu.fallback", approach="pipedata",
                            batch=batch.index, gpu=gpu, stream=slot,
                            error=why)
        else:
            ctx.degrade("cpu.fallback", approach="pipedata",
                        batch=batch.index, gpu=gpu, stream=slot,
                        error=why)
        last = yield from cpu_fallback_batch(ctx, batch, ctx.W, reason=why,
                                             deps=prev, finish=True)
        prev = (last,)
    if clean:
        # Degraded workers skip the final sync: the tail op may hold the
        # already-handled failure (CUDA's sticky stream error).
        yield from stream.synchronize(deps=prev)
    free_surviving(ctx, pin_in, pin_out, dev)
    ctx.obs.incr("workers.active", -1)
    ctx.phase("worker.done", approach="pipedata", gpu=gpu, stream=slot)


def spawn_stream_workers(ctx: RunContext) -> list:
    """Start every (gpu, stream) worker; returns their processes."""
    return [
        ctx.env.process(_stream_worker(ctx, g, s), name=f"pipe.g{g}s{s}")
        for g in range(ctx.plan.n_gpus)
        for s in range(ctx.plan.n_streams)
    ]


def run_pipedata(ctx: RunContext):
    """Process: the PIPEDATA approach."""
    workers = spawn_stream_workers(ctx)
    yield ctx.env.all_of(workers)
    yield from final_multiway(ctx)
