"""Recovery policies over injected faults (graceful degradation).

The counterpart of :mod:`repro.sim.faults`: that module decides *when*
operations fail, this one decides *what the pipelines do about it*.

Three layers, all deterministic and all charged to the simulated clock:

1. **Bounded retries** -- :class:`RetryPolicy` governs how transient
   faults (PCIe transfer errors, pinned/device allocation failures) are
   re-attempted with exponential backoff.  Transfers and pinned
   allocations retry inside :class:`~repro.hw.machine.Machine`; the
   synchronous ``cudaMalloc`` retries here via :func:`retry_call`.
   Every backoff is a ``Retry`` span and a ``retry.attempt`` event.

2. **CPU fallback** -- when a batch's GPU path is exhausted
   (:class:`~repro.errors.RetryExhaustedError`) or its device died
   (:class:`~repro.errors.GpuLostError`), :func:`cpu_fallback_batch`
   sorts the batch's slice of ``A`` with the CPU samplesort instead, so
   the run still produces a verified sorted permutation.

3. **Replanning** -- BLINEMULTI redistributes a dead GPU's remaining
   batches round-robin onto surviving workers
   (:func:`replan_batches`, published as ``degrade.replan``); GPUMERGE
   routes merge pairs around dead devices.

Genuine capacity exhaustion (a real ``CudaOutOfMemory``) is *never*
retried or degraded -- the pipeline keeps failing loudly, exactly as the
pre-fault-injection tests pin.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.errors import (TRANSIENT_FAULTS, FaultPlanError, GpuLostError,
                          ReproError, RetryExhaustedError)
from repro.hetsort.context import RunContext
from repro.hetsort.plan import Batch
from repro.kernels.samplesort import sample_sort

__all__ = ["RetryPolicy", "DEGRADED", "retry_call", "cpu_fallback_batch",
           "drain_stream", "free_surviving", "replan_batches"]

#: Errors that mark a batch's GPU path as unrecoverable: the approaches
#: degrade to the CPU fallback (or replan) instead of crashing.
DEGRADED = (RetryExhaustedError, GpuLostError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with simulated exponential backoff.

    ``max_attempts`` counts total tries of one operation (so at most
    ``max_attempts - 1`` backoffs).  The ``attempt``-th backoff sleeps
    ``base_backoff_s * multiplier ** (attempt - 1)`` seconds, capped at
    ``max_backoff_s`` -- *simulated* seconds, charged to the sim clock
    and traced as ``Retry`` spans.
    """

    max_attempts: int = 4
    base_backoff_s: float = 100e-6
    multiplier: float = 2.0
    max_backoff_s: float = 10e-3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultPlanError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise FaultPlanError("backoff times must be >= 0")
        if self.multiplier < 1:
            raise FaultPlanError(
                f"backoff multiplier must be >= 1, got {self.multiplier}")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.max_backoff_s,
                   self.base_backoff_s * self.multiplier ** (attempt - 1))


def retry_call(machine, call: _t.Callable[[], _t.Any], what: str,
               lane: str, deps: _t.Sequence = ()):
    """Process: run a *synchronous* runtime call (e.g. ``cudaMalloc``),
    retrying injected transient faults under the machine's retry policy.
    The call itself is instantaneous; only the backoffs are charged.
    Returns the call's value."""
    attempt = 1
    deps = tuple(deps)
    while True:
        try:
            return call()
        except TRANSIENT_FAULTS as exc:
            policy = machine.retry
            if policy is None or attempt >= policy.max_attempts:
                raise RetryExhaustedError(
                    f"{what}: failed after {attempt} attempt(s)") from exc
            span = yield from machine.retry_backoff(what, lane, attempt,
                                                    deps)
            deps = (span,)
            attempt += 1


def cpu_fallback_batch(ctx: RunContext, batch: Batch, out, *, reason: str,
                       lane: str = "cpu.fallback", deps: _t.Sequence = (),
                       finish: bool = False):
    """Process: sort one batch on the CPU after its GPU path was
    exhausted.  Functionally a samplesort of the batch's slice of ``A``
    written straight into ``out`` (B or W); charged as a ``CPUSort`` at
    the platform's reference thread count.  With ``finish`` the batch is
    recorded as a sorted run (for pipelines whose GPU path would have
    done so itself).  Returns the recorded span."""
    threads = ctx.machine.platform.reference_threads

    def work():
        if ctx.functional:
            src = ctx.A.view(batch.offset_bytes, batch.nbytes)
            dst = out.view(batch.offset_bytes, batch.nbytes)
            dst[:] = sample_sort(src, threads=threads)

    span = yield from ctx.machine.cpu_sort(
        batch.size, threads=threads,
        label=f"fallback::samplesort[{batch.index}]", lane=lane,
        work=work, deps=deps)
    ctx.obs.incr("batches.degraded")
    if finish:
        ctx.finish_run(batch, producer=span)
    return span


def drain_stream(stream):
    """Process: settle the stream's in-flight tail op, swallowing its
    failure (the caller is already degrading).  Leaves the stream
    reusable for the next batch."""
    tail = stream._tail
    if tail is not None and not tail.processed:
        try:
            yield tail
        except ReproError:
            pass


def free_surviving(ctx: RunContext, pinned_in=None, pinned_out=None,
                   dev=None) -> None:
    """Release whichever worker buffers were actually allocated (a
    degraded worker may hold only a subset)."""
    for buf in (pinned_in, pinned_out):
        if buf is not None and not buf.freed:
            ctx.rt.free_host(buf)
    if dev is not None and not dev.freed:
        ctx.rt.free(dev)


def replan_batches(ctx: RunContext, approach: str, gpu: int,
                   queues: dict, active: dict) -> bool:
    """Redistribute a dead worker's remaining batches round-robin onto
    surviving active workers (published as ``degrade.replan``).

    Returns True when survivors took the work; False leaves the batches
    in the dead worker's queue for its own CPU fallback.  Synchronous
    (no yields), so the hand-off is atomic in the cooperative sim.
    """
    queue = queues[gpu]
    survivors = [g for g in sorted(queues) if g != gpu and active.get(g)]
    if not queue:
        return bool(survivors)
    if not survivors:
        ctx.degrade("replan.no_survivors", approach=approach, gpu=gpu,
                    batches=[b.index for b in queue])
        return False
    moved = []
    i = 0
    while queue:
        b = queue.popleft()
        queues[survivors[i % len(survivors)]].append(b)
        moved.append(b.index)
        i += 1
    ctx.degrade("replan", approach=approach, gpu=gpu, batches=moved,
                survivors=survivors)
    return True
