"""Shared run context for the sorting approaches.

A :class:`RunContext` carries the simulated machine, the CUDA runtime, the
plan and the three host buffers of Sec. III-C:

* ``A`` -- the unsorted input,
* ``W`` -- working memory that receives the sorted batches,
* ``B`` -- the final output.

In functional mode they are backed by real numpy arrays and the identical
approach code moves real data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cuda import ELEM, PageableBuffer, Runtime
from repro.hetsort.config import SortConfig
from repro.hetsort.plan import Batch, SortPlan
from repro.hw.machine import Machine
from repro.obs.counters import MetricsRecorder
from repro.sim import Store, Trace
from repro.sim.engine import Environment

__all__ = ["RunContext", "SortedRun"]


@dataclass
class SortedRun:
    """A sorted unit awaiting the final multiway merge: either a batch in
    ``W`` or the output of a pipelined pair-wise merge."""

    size: int                      #: elements
    w_offset: int | None = None    #: element offset in W (batch units)
    array: np.ndarray | None = None  #: merged-pair storage (functional)
    from_pair: bool = False        #: True for pair-merge outputs
    #: Trace span id of the operation that completed this run (the last
    #: staging copy / DtoH / pair merge).  Consumers of the run record it
    #: as a causal dependency -- the buffer-handoff edge of the span DAG.
    producer_id: int | None = None

    def data(self, ctx: "RunContext") -> np.ndarray | None:
        """Functional view of this run's elements."""
        if self.array is not None:
            return self.array
        if ctx.W.data is None or self.w_offset is None:
            return None
        return ctx.W.view(self.w_offset * ELEM, self.size * ELEM)


class RunContext:
    """Everything an approach needs while it executes."""

    def __init__(self, env: Environment, machine: Machine, rt: Runtime,
                 plan: SortPlan, config: SortConfig,
                 data: np.ndarray | None = None) -> None:
        self.env = env
        self.machine = machine
        self.rt = rt
        self.plan = plan
        self.config = config
        self.trace: Trace = machine.trace
        self.functional = data is not None

        n = plan.n
        # Reserve the ~3n pageable working set (A + W + B, Sec. III-C) so
        # pinned staging allocations are checked against what remains.
        machine.reserve_host(plan.host_bytes)
        if data is not None:
            if len(data) != n:
                raise ValueError(f"data has {len(data)} elements, plan {n}")
            self.A = PageableBuffer.for_elements(
                n, data=np.ascontiguousarray(data, dtype=np.float64),
                name="A")
            self.W = PageableBuffer.for_elements(
                n, data=np.empty(n, dtype=np.float64), name="W")
            self.B = PageableBuffer.for_elements(
                n, data=np.empty(n, dtype=np.float64), name="B")
        else:
            self.A = PageableBuffer.for_elements(n, name="A")
            self.W = PageableBuffer.for_elements(n, name="W")
            self.B = PageableBuffer.for_elements(n, name="B")

        #: Completed batches, fed to the PIPEMERGE scheduler / final merge.
        self.sorted_runs: Store = Store(env, name="sorted_runs")
        self.meta: dict = {}

        #: Live counters/gauges for this run (queue depths, in-flight
        #: transfers, batch progress).  Recording is passive -- it never
        #: schedules events -- so the timeline is identical with or
        #: without observers reading the series.
        self.obs: MetricsRecorder = MetricsRecorder(clock=lambda: env.now)
        machine.attach_recorder(self.obs)
        self.sorted_runs.probe = self.obs.probe(
            "sorted_runs.pending", lambda store: len(store))

        #: Streaming telemetry: an optional
        #: :class:`~repro.obs.events.EventBus` (wired by
        #: :func:`repro.obs.events.connect_context` when the caller
        #: passed sinks).  ``None`` keeps every :meth:`phase` call a
        #: single truthiness check.
        self.bus = None

    def phase(self, name: str, **data) -> None:
        """Publish a pipeline phase-transition event (no-op without a
        bus; never touches the simulated timeline)."""
        if self.bus is not None:
            self.bus.phase(name, **data)

    def degrade(self, reason: str, **data) -> None:
        """Record a graceful-degradation decision (CPU fallback, batch
        replan onto survivors).  Counted in ``meta`` for post-hoc
        assertions and published as a ``degrade.replan`` event when a
        bus is attached; never touches the simulated timeline."""
        self.meta.setdefault("degrades", []).append(
            {"reason": reason, **data})
        self.obs.incr("degrade.events")
        if self.bus is not None:
            self.bus.degrade(reason, **data)

    # -- derived knobs -------------------------------------------------------

    @property
    def total_streams(self) -> int:
        return self.plan.n_streams * self.plan.n_gpus

    @property
    def merge_threads(self) -> int:
        """Threads of the final multiway merge."""
        cfg = self.config.merge_threads
        return cfg if cfg is not None \
            else self.machine.platform.reference_threads

    @property
    def pipeline_merge_threads(self) -> int:
        """Threads of each pipelined pair-wise merge: by default all cores
        except one per stream worker (the staging threads).  PARMEMCPY's
        extra copy threads are short-lived bursts, so they time-share with
        the merge rather than reducing its thread count."""
        cfg = self.config.pipeline_merge_threads
        if cfg is not None:
            return max(1, cfg)
        return max(1, self.machine.platform.cpu.cores - self.total_streams)

    # -- functional-layer helpers ---------------------------------------------

    def finish_run(self, batch: Batch, producer=None) -> SortedRun:
        """Record a batch as sorted-and-landed-in-W.

        ``producer`` is the trace span (or span id) of the operation that
        completed the run; downstream merges depend on it causally.
        """
        pid = getattr(producer, "id", producer)
        run = SortedRun(size=batch.size, w_offset=batch.offset,
                        producer_id=pid)
        self.obs.incr("batches.completed")
        self.phase("run.sorted", batch=batch.index, gpu=batch.gpu,
                   elements=batch.size, producer=pid)
        self.sorted_runs.put(run)
        return run
