"""BLINE: the baseline for inputs that fit on the GPU(s) (Sec. III-D).

One batch per GPU, blocking transfers, default-stream semantics.  With a
single GPU no merging is needed and the sorted data lands directly in B;
with ``n_GPU >= 2`` (the Fig. 11 two-GPU lower-bound configuration) each
GPU sorts ``n / n_GPU`` and one multiway merge combines the halves.

Two data paths, selected by ``config.staging``:

* ``pinned``  -- chunked through a pinned staging buffer (the Sec. IV-E
  reproduction of the related work's naive approach, and the
  configuration the lower-bound model of Sec. IV-G is derived from);
* ``pageable`` -- plain blocking ``cudaMemcpy`` (Sec. III-D's literal
  description).
"""

from __future__ import annotations

import numpy as np

from repro.cuda import ELEM
from repro.hetsort.config import Staging
from repro.hetsort.context import RunContext
from repro.hetsort.resilience import (DEGRADED, cpu_fallback_batch,
                                      drain_stream, free_surviving,
                                      retry_call)
from repro.hetsort.workers import (alloc_worker_buffers, final_multiway,
                                   pageable_blocking_batch,
                                   staged_blocking_batch)

__all__ = ["run_bline"]


def _gpu_worker(ctx: RunContext, gpu: int):
    """Process: sort this GPU's single batch with blocking calls.

    If the batch's GPU path is exhausted (retries spent or device lost)
    the batch degrades to the CPU samplesort fallback; the run still
    completes sorted."""
    batches = [b for b in ctx.plan.batches if b.gpu == gpu]
    assert len(batches) == 1, "BLINE plans one batch per GPU"
    batch = batches[0]
    out = ctx.B if ctx.plan.n_gpus == 1 else ctx.W
    stream = ctx.rt.create_stream(gpu)
    lane = f"host.gpu{gpu}"
    ctx.obs.incr("workers.active")
    ctx.phase("worker.start", approach="bline", gpu=gpu, batches=1)
    pin_in = pin_out = dev = None
    try:
        if ctx.config.staging == Staging.PINNED:
            pin_in, pin_out, dev = yield from alloc_worker_buffers(
                ctx, gpu, tag=f"g{gpu}")
            last = yield from staged_blocking_batch(
                ctx, batch, pin_in, pin_out, dev, stream, out, lane,
                deps=(pin_in.alloc_span, pin_out.alloc_span))
        else:
            data = (np.empty(2 * batch.size, dtype=np.float64)
                    if ctx.functional else None)
            dev = yield from retry_call(
                ctx.machine,
                lambda: ctx.rt.malloc(2 * batch.size * ELEM, gpu_index=gpu,
                                      name=f"dev.g{gpu}", data=data),
                what=f"cudaMalloc[dev.g{gpu}]", lane=lane)
            last = yield from pageable_blocking_batch(ctx, batch, dev,
                                                      stream, out, lane)
    except DEGRADED as exc:
        yield from drain_stream(stream)
        ctx.degrade("cpu.fallback", approach="bline", batch=batch.index,
                    gpu=gpu, error=type(exc).__name__)
        last = yield from cpu_fallback_batch(ctx, batch, out,
                                             reason=type(exc).__name__)
    finally:
        free_surviving(ctx, pin_in, pin_out, dev)
    if ctx.plan.n_gpus > 1:
        ctx.finish_run(batch, producer=last)
    else:
        # Single GPU: the batch landed directly in B; count it anyway so
        # `batches.completed` reaches n_batches for every approach.
        ctx.obs.incr("batches.completed")
        ctx.phase("run.sorted", batch=batch.index, gpu=gpu,
                  elements=batch.size, producer=getattr(last, "id", None))
    ctx.obs.incr("workers.active", -1)
    ctx.phase("worker.done", approach="bline", gpu=gpu)


def run_bline(ctx: RunContext):
    """Process: the BLINE approach."""
    workers = [ctx.env.process(_gpu_worker(ctx, g), name=f"bline.gpu{g}")
               for g in range(ctx.plan.n_gpus)]
    yield ctx.env.all_of(workers)
    if ctx.plan.n_gpus > 1:
        yield from final_multiway(ctx)
    elif ctx.functional:
        # Single GPU: B was filled directly by the staging path.
        pass
