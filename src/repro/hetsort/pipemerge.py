"""PIPEMERGE: pipelined pair-wise merging on top of PIPEDATA
(Sec. III-D3, Fig. 3).

While the GPUs are still sorting batches, the CPU pair-merges completed
b_s-sized batches, shrinking the k of the final multiway merge.  The
number of pipelined merges follows the paper's heuristics (computed by
the plan), chosen so the pair merges finish by the time the last batch is
sorted and never delay the final multiway merge.  Outputs of pipelined
merges are never merged again before the multiway phase.
"""

from __future__ import annotations

from repro.hetsort.context import RunContext
from repro.hetsort.pipedata import spawn_stream_workers
from repro.hetsort.workers import final_multiway, pair_merge_scheduler

__all__ = ["run_pipemerge"]


def run_pipemerge(ctx: RunContext):
    """Process: the PIPEMERGE approach (includes PIPEDATA's transfer
    pipelining)."""
    workers = spawn_stream_workers(ctx)
    ctx.phase("scheduler.start", approach="pipemerge",
              quota=ctx.plan.pairwise_merges)
    scheduler = ctx.env.process(pair_merge_scheduler(ctx),
                                name="pipemerge.scheduler")
    yield ctx.env.all_of(workers)
    merged = yield scheduler   # scheduler returns the pair-merged runs
    ctx.meta["pairwise_merged"] = len(merged)
    ctx.obs.sample("pipeline.pair_merges", len(merged))
    ctx.phase("scheduler.done", approach="pipemerge", merged=len(merged))
    yield from final_multiway(ctx, extra_runs=merged)
