"""Output validation for functional-mode runs.

NaN handling is explicit: NaN compares False against everything, so a
NaN-laden output could slip through a naive elementwise ``<=`` check
(single-element arrays) or make the "first failing index" diagnostic lie
(``argmax`` over an all-False ``>`` mask reports index 0).  Validation
therefore rejects NaN up front, with positions, before any order check.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.kernels.utils import (first_unsorted_index, has_nan,
                                 same_multiset)

__all__ = ["check_sorted_permutation"]


def check_sorted_permutation(original: np.ndarray,
                             output: np.ndarray) -> None:
    """Raise :class:`ValidationError` unless ``output`` is a sorted
    permutation of ``original`` (NaN-free total order required)."""
    if output is None:
        raise ValidationError("no output produced (timing-only run?)")
    if has_nan(original):
        idx = int(np.isnan(original).argmax())
        raise ValidationError(
            f"input contains NaN (first at index {idx}, "
            f"{int(np.isnan(original).sum())} total); keys must be "
            "totally ordered")
    if has_nan(output):
        idx = int(np.isnan(output).argmax())
        raise ValidationError(
            f"output contains NaN (first at index {idx}, "
            f"{int(np.isnan(output).sum())} total) although the input "
            "had none")
    bad = first_unsorted_index(output)
    if bad is not None:
        raise ValidationError(
            f"output not sorted at index {bad}: "
            f"{output[bad]!r} followed by {output[bad + 1]!r}")
    if not same_multiset(original, output):
        raise ValidationError(
            "output is not a permutation of the input")
