"""Output validation for functional-mode runs."""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.kernels.utils import is_sorted, same_multiset

__all__ = ["check_sorted_permutation"]


def check_sorted_permutation(original: np.ndarray,
                             output: np.ndarray) -> None:
    """Raise :class:`ValidationError` unless ``output`` is a sorted
    permutation of ``original``."""
    if output is None:
        raise ValidationError("no output produced (timing-only run?)")
    if not is_sorted(output):
        bad = int(np.argmax(output[:-1] > output[1:]))
        raise ValidationError(
            f"output not sorted at index {bad}: "
            f"{output[bad]!r} > {output[bad + 1]!r}")
    if not same_multiset(original, output):
        raise ValidationError(
            "output is not a permutation of the input")
