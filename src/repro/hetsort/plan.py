"""The batch planner: how the input is cut into GPU-sized sublists.

Implements the memory reasoning of Sec. III-B/III-C and IV-F:

* Thrust sorts out of place, so each batch needs **2 b_s** elements of
  device memory;
* each of the ``n_s`` streams on a GPU owns its own buffers, so a GPU must
  hold ``2 * b_s * n_s`` elements;
* the host needs ~3n elements total (A + W + B);
* batches are dealt round-robin over the ``n_GPU * n_s`` (gpu, stream)
  pairs, giving each stream ``n_b / (n_s * n_GPU)`` batches.

The planner also computes the PIPEMERGE pair-wise quota heuristic of
Sec. III-D3:

* 1 GPU:   ``floor((n_b - 1) / 2)``;
* >= 2 GPUs: ``floor((n_b - 1) / (2 * n_GPU))`` (batches finish faster,
  leaving less host time before the final multiway merge).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.buffers import ELEM
from repro.errors import PlanError
from repro.hetsort.config import Approach, SortConfig
from repro.hw.spec import PlatformSpec

__all__ = ["Batch", "SortPlan", "make_plan", "max_batch_size",
           "pairwise_quota"]


@dataclass(frozen=True)
class Batch:
    """One sublist to be sorted on a GPU."""

    index: int        #: position in A (batches tile A in order)
    offset: int       #: first element in A
    size: int         #: elements
    gpu: int          #: device that sorts it
    stream_slot: int  #: stream index within that device

    @property
    def nbytes(self) -> int:
        return self.size * ELEM

    @property
    def offset_bytes(self) -> int:
        return self.offset * ELEM


def max_batch_size(platform: PlatformSpec, n_streams: int,
                   n_gpus: int = 1) -> int:
    """Largest b_s that fits ``2 * b_s * n_s`` elements on the smallest
    GPU used (Sec. IV-F: "b_s is selected to maximize usage of GPU global
    memory capacity")."""
    mem = min(g.mem_bytes for g in platform.gpus[:n_gpus])
    bs = mem // (2 * n_streams * ELEM)
    if bs < 1:
        raise PlanError("GPU memory cannot hold even a one-element batch")
    return int(bs)


def pairwise_quota(n_batches: int, n_gpus: int) -> int:
    """Number of pipelined pair-wise merges (Sec. III-D3 heuristics)."""
    if n_batches < 2:
        return 0
    if n_gpus <= 1:
        return (n_batches - 1) // 2
    return (n_batches - 1) // (2 * n_gpus)


@dataclass(frozen=True)
class SortPlan:
    """The complete decomposition of one sort run."""

    n: int
    batch_size: int
    pinned_elements: int
    n_streams: int
    n_gpus: int
    batches: tuple[Batch, ...]

    @property
    def n_batches(self) -> int:
        return len(self.batches)

    @property
    def pairwise_merges(self) -> int:
        """PIPEMERGE pair-wise merge quota for this plan."""
        return pairwise_quota(self.n_batches, self.n_gpus)

    @property
    def device_bytes_per_gpu(self) -> int:
        """Device memory each GPU must provide (2 b_s per stream)."""
        return 2 * self.batch_size * self.n_streams * ELEM

    @property
    def host_bytes(self) -> int:
        """Approximate host requirement: A + W + B = 3n (Sec. III-C)."""
        return 3 * self.n * ELEM

    def batches_for(self, gpu: int, stream_slot: int) -> list[Batch]:
        """The batches one (gpu, stream) worker processes, in order."""
        return [b for b in self.batches
                if b.gpu == gpu and b.stream_slot == stream_slot]

    def chunks(self, batch: Batch) -> list[tuple[int, int, int]]:
        """Chunking of a batch through the pinned staging buffer:
        ``(element_offset_in_A, element_offset_in_batch, elements)``."""
        out = []
        done = 0
        while done < batch.size:
            step = min(self.pinned_elements, batch.size - done)
            out.append((batch.offset + done, done, step))
            done += step
        return out

    def validate(self, platform: PlatformSpec) -> None:
        """Check the plan against the platform's memory capacities."""
        if self.n_gpus > platform.n_gpus:
            raise PlanError(
                f"plan wants {self.n_gpus} GPUs; {platform.name} has "
                f"{platform.n_gpus}")
        for g in range(self.n_gpus):
            need = self.device_bytes_per_gpu
            have = platform.gpus[g].mem_bytes
            if need > have:
                raise PlanError(
                    f"gpu{g}: 2 x b_s x n_s = {need} B exceeds "
                    f"{have} B of global memory "
                    f"(b_s={self.batch_size}, n_s={self.n_streams})")
        if self.host_bytes > platform.hostmem.capacity_bytes:
            raise PlanError(
                f"host needs ~3n = {self.host_bytes} B but has "
                f"{platform.hostmem.capacity_bytes} B (Sec. III-C limit)")
        if self.pinned_elements > self.batch_size:
            raise PlanError("pinned buffer larger than a batch is wasteful; "
                            "choose p_s <= b_s")
        covered = sum(b.size for b in self.batches)
        if covered != self.n:
            raise PlanError(
                f"batches cover {covered} of {self.n} elements")


def make_plan(n: int, platform: PlatformSpec, config: SortConfig,
              n_gpus: int = 1) -> SortPlan:
    """Build and validate a :class:`SortPlan`.

    BLINE forces one batch per GPU and a single stream; the other
    approaches batch by ``config.batch_size`` (defaulting to the largest
    size that fits).
    """
    if n < 1:
        raise PlanError(f"nothing to sort (n={n})")
    if not 1 <= n_gpus <= platform.n_gpus:
        raise PlanError(
            f"{platform.name} has {platform.n_gpus} GPU(s); "
            f"requested {n_gpus}")

    if config.approach == Approach.BLINE:
        n_streams = 1
        if n % n_gpus:
            raise PlanError(
                f"BLINE needs n divisible by n_gpus ({n} % {n_gpus})")
        bs = n // n_gpus
    else:
        n_streams = config.n_streams
        bs = config.batch_size or max_batch_size(platform, n_streams, n_gpus)
        bs = min(bs, n)

    batches = []
    pairs = [(g, s) for s in range(n_streams) for g in range(n_gpus)]
    offset = 0
    idx = 0
    while offset < n:
        size = min(bs, n - offset)
        gpu, slot = pairs[idx % len(pairs)]
        batches.append(Batch(idx, offset, size, gpu, slot))
        offset += size
        idx += 1

    plan = SortPlan(
        n=n, batch_size=bs,
        pinned_elements=min(config.pinned_elements, bs),
        n_streams=n_streams, n_gpus=n_gpus, batches=tuple(batches))
    plan.validate(platform)
    if config.approach == Approach.BLINE and plan.n_batches != n_gpus:
        raise PlanError(
            f"BLINE requires one batch per GPU; n={n} produced "
            f"{plan.n_batches} batches -- use BLINEMULTI or the pipelined "
            "approaches for inputs exceeding GPU memory")
    return plan
