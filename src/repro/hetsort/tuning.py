"""Configuration auto-tuning: search the paper's knob space for the
fastest configuration on a given (simulated) platform and input size.

The paper fixes its knobs by reasoning about the hardware (n_s = 2,
p_s = 1e6, maximal b_s); the simulator makes it cheap to *search* instead,
which is how a practitioner would deploy the sorter on a new machine.

>>> from repro.hetsort.tuning import autotune
>>> from repro.hw.platforms import PLATFORM1
>>> best = autotune(PLATFORM1, n=int(2e9), quick=True)
>>> best.config.approach
'pipemerge'
"""

from __future__ import annotations

import itertools
import typing as _t
from dataclasses import dataclass, field

from repro.hetsort.config import Approach, SortConfig
from repro.hetsort.plan import max_batch_size
from repro.hetsort.sorter import HeterogeneousSorter
from repro.hw.spec import PlatformSpec

__all__ = ["autotune", "TuningResult", "TrialOutcome"]


@dataclass(frozen=True)
class TrialOutcome:
    """One evaluated configuration."""

    config: SortConfig
    elapsed: float
    n_batches: int


@dataclass
class TuningResult:
    """The best configuration plus the whole explored grid."""

    platform_name: str
    n: int
    n_gpus: int
    trials: list[TrialOutcome] = field(default_factory=list)

    @property
    def best(self) -> TrialOutcome:
        return min(self.trials, key=lambda t: t.elapsed)

    @property
    def config(self) -> SortConfig:
        return self.best.config

    @property
    def elapsed(self) -> float:
        return self.best.elapsed

    def improvement_over_default(self) -> float:
        """Best time vs. the paper-default configuration's time."""
        defaults = [t for t in self.trials
                    if t.config.approach == Approach.PIPEMERGE
                    and t.config.n_streams == 2
                    and t.config.memcpy_threads == 1]
        if not defaults:
            return 1.0
        return defaults[0].elapsed / self.elapsed

    def table_rows(self) -> list[list]:
        """Rows for :func:`repro.reporting.render_table`, fastest first."""
        rows = []
        for t in sorted(self.trials, key=lambda t: t.elapsed):
            rows.append([t.config.approach, t.config.n_streams,
                         t.config.memcpy_threads,
                         f"{t.config.pinned_elements:.0e}",
                         t.n_batches, f"{t.elapsed:.3f}"])
        return rows


def autotune(platform: PlatformSpec, n: int, n_gpus: int = 1,
             approaches: _t.Sequence[str] = (Approach.PIPEDATA,
                                             Approach.PIPEMERGE),
             stream_counts: _t.Sequence[int] = (1, 2, 4),
             memcpy_threads: _t.Sequence[int] = (1, 8),
             pinned_elements: _t.Sequence[int] = (10 ** 5, 10 ** 6,
                                                  10 ** 7),
             quick: bool = False) -> TuningResult:
    """Grid-search the knob space with timing-only simulations.

    ``quick`` prunes the grid to the paper's defaults plus one
    alternative per knob (for tests and interactive use).
    """
    if quick:
        stream_counts = (1, 2)
        memcpy_threads = (1, 8)
        pinned_elements = (10 ** 6,)

    result = TuningResult(platform.name, n, n_gpus)
    for ap, ns, mt, ps in itertools.product(
            approaches, stream_counts, memcpy_threads, pinned_elements):
        bs = max_batch_size(platform, ns, n_gpus)
        cfg = SortConfig(approach=ap, n_streams=ns, memcpy_threads=mt,
                         pinned_elements=ps, batch_size=min(bs, n))
        sorter = HeterogeneousSorter(platform, n_gpus=n_gpus, config=cfg)
        res = sorter.sort(n=n)
        result.trials.append(
            TrialOutcome(cfg, res.elapsed, res.plan.n_batches))
    return result
