"""GPUMERGE: an experimental extension implementing the paper's Sec. V
outlook.

    "Sorting in the NVLink era using multi-GPU systems needs to address
    the problem of merging using the GPUs, such that the CPU does not
    need to carry out all merging tasks."

This approach runs the PIPEDATA batch-sorting phase unchanged, then
performs the merge *on the GPU*: a binary merge tree where each level
streams two sorted runs back to the device in pinned-staged chunks,
merges them with a device Merge-Path kernel, and streams the result out.
Every tree level therefore moves the full dataset across the
interconnect twice -- which is exactly why this loses on PCIe v3 and is
interesting on NVLink.  The ``benchmarks/test_ext_gpumerge_nvlink.py``
bench sweeps the interconnect bandwidth and locates the crossover.

Modelling notes: chunk-level buffer bookkeeping is abstracted (transfers
are issued per chunk against the device's copy engines and the shared
links, but device buffers are modelled as a fixed-size working set);
functionally each pair merge really merges the two runs.  The device
merge kernel is device-memory-bound: GP100-class HBM makes it far faster
than the interconnect, so GPU merging is transfer-bound by construction.
"""

from __future__ import annotations

from repro.cuda import ELEM
from repro.hetsort.context import RunContext, SortedRun
from repro.hetsort.pipedata import spawn_stream_workers
from repro.hetsort.resilience import DEGRADED
from repro.hw.gpu import Direction
from repro.kernels.mergepath import merge_two
from repro.sim import CAT

__all__ = ["run_gpumerge", "GPU_MERGE_RATE_F64"]

#: Device Merge-Path throughput for 64-bit keys (elements/second).
#: Memory-bound: ~24 B of HBM traffic per output element against
#: 500+ GB/s of device bandwidth.
GPU_MERGE_RATE_F64 = 2.0e10


def _gpu_pair_merge(ctx: RunContext, gpu_index: int, first: SortedRun,
                    second: SortedRun, out: SortedRun):
    """Process: merge two sorted runs on a GPU, chunk-streamed both ways."""
    machine = ctx.machine
    gpu = machine.gpus[gpu_index]
    total = first.size + second.size
    ps = ctx.plan.pinned_elements
    lane = f"gpumerge@gpu{gpu_index}"

    # Stream both inputs in, interleaved chunk by chunk (the kernel
    # consumes windows of each run); kernel time accrues per window; the
    # merged output streams straight back out.  The first staging copy
    # depends on both runs' producers (buffer handoff); the chunk chain is
    # then linked span to span, single-staging-buffer reuse included.
    done = 0
    prev: tuple = (first.producer_id, second.producer_id)
    last = None
    while done < total:
        step = min(ps, total - done)
        nbytes = step * ELEM
        staged = yield from machine.host_memcpy(
            nbytes, threads=ctx.config.memcpy_threads,
            label="W->Stage(gpumerge)", lane=lane, deps=prev)
        htod = yield from machine.pcie_transfer(
            gpu, nbytes, Direction.HTOD, pinned=True,
            label="gpumerge.in", lane=lane, deps=(staged,))
        start = machine.env.now
        yield machine.env.timeout(step / GPU_MERGE_RATE_F64)
        kern = machine.trace.record(CAT.GPUSORT, "mergepath<<<...>>>", start,
                                    machine.env.now, lane=f"gpu{gpu_index}",
                                    elements=step, deps=(htod,))
        dtoh = yield from machine.pcie_transfer(
            gpu, nbytes, Direction.DTOH, pinned=True,
            label="gpumerge.out", lane=lane, deps=(kern,))
        last = yield from machine.host_memcpy(
            nbytes, threads=ctx.config.memcpy_threads,
            label="Stage->W(gpumerge)", lane=lane, deps=(dtoh,))
        prev = (last,)
        done += step
    out.producer_id = last.id if last is not None else None

    if ctx.functional:
        out.array = merge_two(first.data(ctx), second.data(ctx))


def _resilient_pair_merge(ctx: RunContext, gpu_index: int | None,
                          first: SortedRun, second: SortedRun,
                          out: SortedRun, level: int, idx: int):
    """Process: one merge-tree pair, degrading to a CPU pair merge when
    no device can run it (``gpu_index is None``: every GPU already dead)
    or the chosen device's path is exhausted mid-merge."""
    if gpu_index is not None:
        try:
            yield from _gpu_pair_merge(ctx, gpu_index, first, second, out)
            return
        except DEGRADED as exc:
            ctx.degrade("cpu.fallback", approach="gpumerge", level=level,
                        pair=idx, gpu=gpu_index, error=type(exc).__name__)
    else:
        ctx.degrade("cpu.fallback", approach="gpumerge", level=level,
                    pair=idx, gpu=None, error="GpuLostError")

    def work():
        if ctx.functional:
            out.array = merge_two(first.data(ctx), second.data(ctx))

    span = yield from ctx.machine.host_merge(
        out.size, k=2, threads=ctx.pipeline_merge_threads,
        label=f"fallback::pairmerge[L{level}.{idx}]", lane="cpu.fallback",
        category=CAT.PAIRMERGE, work=work,
        deps=(first.producer_id, second.producer_id))
    out.producer_id = span.id
    ctx.obs.incr("pair_merges.degraded")


def run_gpumerge(ctx: RunContext):
    """Process: PIPEDATA batch sorting + a GPU-side binary merge tree."""
    workers = spawn_stream_workers(ctx)
    yield ctx.env.all_of(workers)

    runs: list[SortedRun] = []
    while True:
        ok, item = ctx.sorted_runs.try_get()
        if not ok:
            break
        runs.append(item)

    level = 0
    ctx.obs.sample("gpumerge.runs_remaining", len(runs))
    while len(runs) > 1:
        # Route each level's pairs over the devices still alive; with
        # every GPU healthy this is the identical round-robin mapping.
        alive = [g for g in range(ctx.plan.n_gpus)
                 if not ctx.machine.gpus[g].lost]
        if len(alive) < ctx.plan.n_gpus:
            ctx.degrade("replan", approach="gpumerge", level=level,
                        survivors=alive)
        ctx.phase("merge.started", kind="gpu", level=level,
                  runs=len(runs))
        nxt: list[SortedRun] = []
        procs = []
        for i in range(0, len(runs) - 1, 2):
            first, second = runs[i], runs[i + 1]
            out = SortedRun(size=first.size + second.size, from_pair=True)
            gpu_index = alive[(i // 2) % len(alive)] if alive else None
            procs.append(ctx.env.process(
                _resilient_pair_merge(ctx, gpu_index, first, second, out,
                                      level, i // 2),
                name=f"gpumerge.L{level}.{i // 2}"))
            nxt.append(out)
        if len(runs) % 2:
            nxt.append(runs[-1])
        yield ctx.env.all_of(procs)
        runs = nxt
        level += 1
        ctx.obs.sample("gpumerge.runs_remaining", len(runs))
        ctx.phase("merge.done", kind="gpu", level=level - 1,
                  runs=len(runs))
    ctx.meta["gpu_merge_levels"] = level

    # The single remaining run becomes B (a parallel host copy).
    final = runs[0]

    def copy_work():
        if ctx.functional:
            ctx.B.data[:] = final.data(ctx)

    yield from ctx.machine.host_memcpy(
        final.size * ELEM, threads=ctx.merge_threads, label="W->B",
        lane="cpu.merge", work=copy_work,
        deps=(final.producer_id,))
