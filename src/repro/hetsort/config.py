"""Configuration of a heterogeneous sort run (the paper's knobs, Table I)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import PlanError

__all__ = ["SortConfig", "Approach", "Staging"]


class Approach:
    """The approaches of Sec. III-D4."""

    BLINE = "bline"            #: single batch per GPU, blocking transfers
    BLINEMULTI = "blinemulti"  #: multiple batches, blocking, multiway merge
    PIPEDATA = "pipedata"      #: pinned staging + streams, overlapped copies
    PIPEMERGE = "pipemerge"    #: PIPEDATA + pipelined pair-wise merges
    #: Extension (Sec. V outlook): merge on the GPU instead of the CPU.
    GPUMERGE = "gpumerge"
    ALL = (BLINE, BLINEMULTI, PIPEDATA, PIPEMERGE, GPUMERGE)

    #: Which approaches use asynchronous, stream-based transfers.
    PIPELINED = (PIPEDATA, PIPEMERGE, GPUMERGE)


class Staging:
    """How blocking approaches move data (Sec. III-D / IV-E)."""

    PINNED = "pinned"      #: chunked through a pinned staging buffer
    PAGEABLE = "pageable"  #: plain cudaMemcpy from pageable memory
    ALL = (PINNED, PAGEABLE)


@dataclass(frozen=True)
class SortConfig:
    """All tunables of the hybrid sort.

    Attributes
    ----------
    approach:
        One of :class:`Approach`.
    n_streams:
        Streams per GPU (``n_s``).  The paper uses 2 so HtoD and DtoH
        overlap; more streams shrink the batch size (Sec. IV-F).
    batch_size:
        Elements per batch (``b_s``); ``None`` lets the planner maximise
        it subject to GPU memory (2 buffers per stream, Sec. IV-F).
    pinned_elements:
        Elements in each pinned staging buffer (``p_s``); the paper uses
        1e6 (Sec. IV-E1).
    memcpy_threads:
        Host threads per staging copy.  1 = ``std::memcpy``;
        > 1 = the PARMEMCPY optimisation.
    pipeline_merge_threads:
        Threads for each pipelined pair-wise merge (PIPEMERGE).  ``None``
        leaves one core per active staging thread and uses the rest.
    merge_threads:
        Threads for the final multiway merge.  ``None`` = the platform's
        reference thread count.
    staging:
        Data path of the *blocking* approaches (pinned staging is the
        Sec. IV-E reproduction; pageable is the plain cudaMemcpy path).
    sort_library:
        CPU library used for the reference comparisons.
    """

    approach: str = Approach.PIPEMERGE
    n_streams: int = 2
    batch_size: int | None = None
    pinned_elements: int = 10 ** 6
    memcpy_threads: int = 1
    pipeline_merge_threads: int | None = None
    merge_threads: int | None = None
    staging: str = Staging.PINNED
    sort_library: str = "gnu"

    def __post_init__(self) -> None:
        if self.approach not in Approach.ALL:
            raise PlanError(
                f"unknown approach {self.approach!r}; one of {Approach.ALL}")
        if self.staging not in Staging.ALL:
            raise PlanError(
                f"unknown staging {self.staging!r}; one of {Staging.ALL}")
        if self.n_streams < 1:
            raise PlanError(f"n_streams must be >= 1, got {self.n_streams}")
        if self.pinned_elements < 1:
            raise PlanError("pinned buffer must hold at least one element")
        if self.memcpy_threads < 1:
            raise PlanError("memcpy_threads must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise PlanError(f"batch_size must be >= 1, got {self.batch_size}")

    @property
    def parallel_memcpy(self) -> bool:
        """True when the PARMEMCPY optimisation is active."""
        return self.memcpy_threads > 1

    def with_(self, **kw) -> "SortConfig":
        """A copy with fields replaced (convenience for sweeps)."""
        return replace(self, **kw)
