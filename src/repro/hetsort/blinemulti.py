"""BLINEMULTI: the blocking baseline for inputs exceeding GPU memory
(Sec. III-D1).

Workflow: ``A -> [Stage ->] HtoD -> GPUSort -> DtoH -> [Stage ->] W ->
Merge -> B``.  Transfers block the host and no CPU/GPU or copy overlap
happens; merging starts only after *all* batches are sorted -- the load
imbalance of Fig. 1 that the pipelined approaches attack.

With multiple GPUs, one blocking host thread drives each GPU (its batches
still processed strictly serially within the thread).

Degraded modes (fault injection): each worker owns a deque of batches.
A transient-retry exhaustion degrades only the affected batch to the CPU
samplesort fallback; a lost GPU replans the worker's remaining batches
round-robin onto surviving workers (``degrade.replan``), or -- with no
survivors -- the dead worker CPU-sorts its own queue.
"""

from __future__ import annotations

from collections import deque

from repro.errors import GpuLostError, RetryExhaustedError
from repro.hetsort.config import Staging
from repro.hetsort.context import RunContext
from repro.hetsort.resilience import (DEGRADED, cpu_fallback_batch,
                                      drain_stream, free_surviving,
                                      replan_batches, retry_call)
from repro.hetsort.workers import (alloc_worker_buffers, final_multiway,
                                   pageable_blocking_batch,
                                   staged_blocking_batch)

__all__ = ["run_blinemulti"]


def _gpu_worker(ctx: RunContext, gpu: int, queues: dict, active: dict):
    """Process: serially sort every batch queued for this GPU."""
    queue = queues[gpu]
    stream = ctx.rt.create_stream(gpu)
    lane = f"host.gpu{gpu}"
    ctx.obs.incr("workers.active")
    ctx.phase("worker.start", approach="blinemulti", gpu=gpu,
              batches=len(queue))
    pinned = ctx.config.staging == Staging.PINNED
    pin_in = pin_out = dev = None
    prev: tuple = ()
    gpu_ok = True
    try:
        try:
            if pinned:
                pin_in, pin_out, dev = yield from alloc_worker_buffers(
                    ctx, gpu, tag=f"g{gpu}")
                prev = (pin_in.alloc_span, pin_out.alloc_span)
            else:
                import numpy as np

                from repro.cuda import ELEM
                data = (np.empty(2 * ctx.plan.batch_size, dtype=np.float64)
                        if ctx.functional else None)
                dev = yield from retry_call(
                    ctx.machine,
                    lambda: ctx.rt.malloc(
                        2 * ctx.plan.batch_size * ELEM, gpu_index=gpu,
                        name=f"dev.g{gpu}", data=data),
                    what=f"cudaMalloc[dev.g{gpu}]", lane=lane)
        except DEGRADED as exc:
            # Worker never got its buffers: hand the whole queue to the
            # survivors (or fall back to CPU below, batch by batch).
            gpu_ok = False
            active[gpu] = False
            ctx.degrade("worker.degraded", approach="blinemulti", gpu=gpu,
                        error=type(exc).__name__)
            replan_batches(ctx, "blinemulti", gpu, queues, active)

        while queue:
            batch = queue.popleft()
            if gpu_ok:
                try:
                    if pinned:
                        last = yield from staged_blocking_batch(
                            ctx, batch, pin_in, pin_out, dev, stream,
                            ctx.W, lane, deps=prev)
                    else:
                        last = yield from pageable_blocking_batch(
                            ctx, batch, dev, stream, ctx.W, lane,
                            deps=prev)
                    ctx.finish_run(batch, producer=last)
                    prev = (last,)
                    continue
                except GpuLostError:
                    # Device died: replan everything still queued here
                    # (including this batch) onto the survivors.
                    gpu_ok = False
                    active[gpu] = False
                    yield from drain_stream(stream)
                    queue.appendleft(batch)
                    replan_batches(ctx, "blinemulti", gpu, queues, active)
                    continue
                except RetryExhaustedError as exc:
                    # Transient budget spent on this batch only; the
                    # device is healthy, so just this batch degrades.
                    yield from drain_stream(stream)
                    ctx.degrade("cpu.fallback", approach="blinemulti",
                                batch=batch.index, gpu=gpu,
                                error=type(exc).__name__)
                    last = yield from cpu_fallback_batch(
                        ctx, batch, ctx.W, reason=type(exc).__name__,
                        deps=prev)
                    ctx.finish_run(batch, producer=last)
                    prev = (last,)
                    continue
            ctx.degrade("cpu.fallback", approach="blinemulti",
                        batch=batch.index, gpu=gpu, error="GpuLostError")
            last = yield from cpu_fallback_batch(ctx, batch, ctx.W,
                                                 reason="GpuLostError",
                                                 deps=prev)
            ctx.finish_run(batch, producer=last)
            prev = (last,)
    finally:
        free_surviving(ctx, pin_in, pin_out, dev)
        # No yields between the final `while queue` check and this flag:
        # a dying peer either replans onto us before we exit the loop or
        # sees us inactive -- never in between.
        active[gpu] = False
    ctx.obs.incr("workers.active", -1)
    ctx.phase("worker.done", approach="blinemulti", gpu=gpu)


def run_blinemulti(ctx: RunContext):
    """Process: the BLINEMULTI approach."""
    gpus_with_work = sorted({b.gpu for b in ctx.plan.batches})
    queues = {g: deque(b for b in ctx.plan.batches if b.gpu == g)
              for g in gpus_with_work}
    active = {g: True for g in gpus_with_work}
    workers = [ctx.env.process(_gpu_worker(ctx, g, queues, active),
                               name=f"blinemulti.gpu{g}")
               for g in gpus_with_work]
    yield ctx.env.all_of(workers)
    yield from final_multiway(ctx)
