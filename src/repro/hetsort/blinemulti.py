"""BLINEMULTI: the blocking baseline for inputs exceeding GPU memory
(Sec. III-D1).

Workflow: ``A -> [Stage ->] HtoD -> GPUSort -> DtoH -> [Stage ->] W ->
Merge -> B``.  Transfers block the host and no CPU/GPU or copy overlap
happens; merging starts only after *all* batches are sorted -- the load
imbalance of Fig. 1 that the pipelined approaches attack.

With multiple GPUs, one blocking host thread drives each GPU (its batches
still processed strictly serially within the thread).
"""

from __future__ import annotations

from repro.hetsort.config import Staging
from repro.hetsort.context import RunContext
from repro.hetsort.workers import (alloc_worker_buffers, final_multiway,
                                   free_worker_buffers,
                                   pageable_blocking_batch,
                                   staged_blocking_batch)

__all__ = ["run_blinemulti"]


def _gpu_worker(ctx: RunContext, gpu: int):
    """Process: serially sort every batch assigned to this GPU."""
    batches = [b for b in ctx.plan.batches if b.gpu == gpu]
    stream = ctx.rt.create_stream(gpu)
    lane = f"host.gpu{gpu}"
    ctx.obs.incr("workers.active")
    ctx.phase("worker.start", approach="blinemulti", gpu=gpu,
              batches=len(batches))
    if ctx.config.staging == Staging.PINNED:
        pin_in, pin_out, dev = yield from alloc_worker_buffers(
            ctx, gpu, tag=f"g{gpu}")
        prev: tuple = (pin_in.alloc_span, pin_out.alloc_span)
        for batch in batches:
            last = yield from staged_blocking_batch(
                ctx, batch, pin_in, pin_out, dev, stream, ctx.W, lane,
                deps=prev)
            ctx.finish_run(batch, producer=last)
            prev = (last,)   # this thread processes its batches serially
        free_worker_buffers(ctx, pin_in, pin_out, dev)
    else:
        import numpy as np

        from repro.cuda import ELEM
        data = (np.empty(2 * ctx.plan.batch_size, dtype=np.float64)
                if ctx.functional else None)
        dev = ctx.rt.malloc(2 * ctx.plan.batch_size * ELEM, gpu_index=gpu,
                            name=f"dev.g{gpu}", data=data)
        prev = ()
        for batch in batches:
            last = yield from pageable_blocking_batch(
                ctx, batch, dev, stream, ctx.W, lane, deps=prev)
            ctx.finish_run(batch, producer=last)
            prev = (last,)
        ctx.rt.free(dev)
    ctx.obs.incr("workers.active", -1)
    ctx.phase("worker.done", approach="blinemulti", gpu=gpu)


def run_blinemulti(ctx: RunContext):
    """Process: the BLINEMULTI approach."""
    gpus_with_work = sorted({b.gpu for b in ctx.plan.batches})
    workers = [ctx.env.process(_gpu_worker(ctx, g), name=f"blinemulti.gpu{g}")
               for g in gpus_with_work]
    yield ctx.env.all_of(workers)
    yield from final_multiway(ctx)
