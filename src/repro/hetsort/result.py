"""The result of a heterogeneous sort run."""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from repro.hetsort.config import SortConfig
from repro.hetsort.plan import SortPlan
from repro.sim import CAT, Trace

__all__ = ["SortResult"]


@dataclass
class SortResult:
    """Everything one run produced.

    ``elapsed`` is the true end-to-end response time *including every
    overhead* (pinned allocation, staging copies, synchronisation) -- the
    quantity the paper argues must be reported (Sec. IV-E).
    """

    platform_name: str
    approach: str
    config: SortConfig
    plan: SortPlan | None
    elapsed: float
    trace: Trace
    output: np.ndarray | None = None
    meta: dict = field(default_factory=dict)
    #: Derived observability metrics (see :mod:`repro.obs.metrics`):
    #: per-lane utilisation, the category-overlap matrix, overlap
    #: efficiency, link throughput and live counter summaries.
    metrics: dict = field(default_factory=dict)
    #: The run's :class:`~repro.obs.counters.MetricsRecorder` (full
    #: counter time series, for Perfetto counter-track export).
    recorder: _t.Any = None
    #: The run's :class:`~repro.obs.memory.MemoryLedger` (full
    #: allocation history, for ``repro mem`` timelines and the HTML
    #: memory panel).
    memory_ledger: _t.Any = None
    #: The run's :class:`~repro.obs.flows.FlowLedger` (per-flow granted
    #: bandwidth timelines, for ``repro flows`` and the HTML link
    #: panels).
    flow_ledger: _t.Any = None

    # -- component accounting ------------------------------------------------

    @property
    def breakdown(self) -> dict[str, float]:
        """Per-component total busy time (categories of Table I)."""
        return self.trace.breakdown()

    def component(self, category: str) -> float:
        """Total time of one span category."""
        return self.trace.total(category)

    @property
    def related_work_end_to_end(self) -> float:
        """The end-to-end time as computed by [Stehle & Jacobsen 2017]
        (Sec. IV-E): only HtoD + DtoH + GPUSort, with each component's
        wall-clock collapsed over overlaps; host-side staging, pinned
        allocation and synchronisation are *omitted*."""
        return sum(self.trace.busy_time([c]) for c in CAT.RELATED_WORK)

    @property
    def missing_overhead(self) -> float:
        """What the related-work accounting leaves out of this run."""
        return max(0.0, self.elapsed - self.related_work_end_to_end)

    def speedup_over(self, other: "SortResult | float") -> float:
        """Speedup of this run relative to another run (or a raw time)."""
        t = other.elapsed if isinstance(other, SortResult) else float(other)
        return t / self.elapsed

    # -- observability -------------------------------------------------------

    @property
    def lane_utilization(self) -> dict[str, float]:
        """Per-lane ``busy / makespan`` from the metrics dict."""
        return {lane: m["utilization"]
                for lane, m in self.metrics.get("lanes", {}).items()}

    @property
    def overlap_efficiency(self) -> float:
        """Critical-path lower bound / makespan (1.0 = perfectly
        overlapped; see :func:`repro.obs.metrics.overlap_efficiency`)."""
        return self.metrics.get("overlap_efficiency", 1.0)

    def overlap(self, cat_a: str, cat_b: str) -> float:
        """Seconds categories ``cat_a`` and ``cat_b`` ran concurrently."""
        return self.metrics.get("overlap_matrix", {}) \
            .get(cat_a, {}).get(cat_b, 0.0)

    def causal_graph(self):
        """The run's causal span DAG (validated on construction)."""
        from repro.obs.causal import SpanGraph
        return SpanGraph.from_trace(self.trace)

    def critical_path_report(self) -> dict:
        """Critical-path attribution (see
        :func:`repro.obs.causal.critical_path_report`)."""
        from repro.obs.causal import critical_path_report
        return critical_path_report(self.causal_graph())

    @property
    def conformance(self) -> dict | None:
        """The run's model-conformance record (predicted vs. measured
        makespan, critical-path residual attribution), if
        :func:`repro.obs.conformance.attach_conformance` has run --
        sweeps attach one to every run.  None otherwise."""
        return self.metrics.get("conformance")

    @property
    def memory(self) -> dict | None:
        """The run's memory summary (per-GPU/pinned peak occupancy,
        alloc/free counts, leak verdict) from the byte-exact allocation
        ledger (see :mod:`repro.obs.memory`).  None for runs without a
        ledger (e.g. the CPU reference)."""
        return self.metrics.get("memory")

    @property
    def flows(self) -> dict | None:
        """The run's interconnect summary (flow count, bytes moved,
        per-link peak utilization, total contention seconds) from the
        per-flow bandwidth ledger (see :mod:`repro.obs.flows`).  None
        for runs without a ledger (e.g. the CPU reference)."""
        return self.metrics.get("flows")

    @property
    def throughput(self) -> float:
        """Sorted elements per second, end to end."""
        if self.plan is not None:
            n = self.plan.n
        else:
            n = len(self.output) if self.output is not None else 0
        return n / self.elapsed if self.elapsed > 0 else float("inf")

    def to_dict(self) -> dict:
        """A JSON-serialisable record of this run (for sweep logs)."""
        out = {
            "platform": self.platform_name,
            "approach": self.approach,
            "elapsed_s": self.elapsed,
            "throughput_el_per_s": self.throughput,
            "related_work_end_to_end_s": self.related_work_end_to_end,
            "missing_overhead_s": self.missing_overhead,
            "breakdown_s": self.breakdown,
            "metrics": self.metrics,
            "config": {
                "n_streams": self.config.n_streams,
                "batch_size": self.config.batch_size,
                "pinned_elements": self.config.pinned_elements,
                "memcpy_threads": self.config.memcpy_threads,
                "staging": self.config.staging,
            },
        }
        if self.plan is not None:
            out["plan"] = {
                "n": self.plan.n,
                "n_batches": self.plan.n_batches,
                "batch_size": self.plan.batch_size,
                "n_gpus": self.plan.n_gpus,
                "pairwise_merges": self.plan.pairwise_merges,
            }
        return out

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        lines = [
            f"{self.approach} on {self.platform_name}: "
            f"{self.elapsed:.4f} s end-to-end",
        ]
        if self.plan is not None:
            lines.append(
                f"  n={self.plan.n:,}  n_b={self.plan.n_batches}  "
                f"b_s={self.plan.batch_size:,}  n_s={self.plan.n_streams}  "
                f"n_gpu={self.plan.n_gpus}")
        bd = self.breakdown
        if bd:
            parts = ", ".join(f"{k}={v:.4f}s" for k, v in bd.items())
            lines.append(f"  components: {parts}")
        return "\n".join(lines)
