"""Shared building blocks of the sorting approaches.

Each helper is a simulation process (generator) written against the
simulated CUDA runtime, mirroring the host code structure the paper
describes.  The same generators move real data in functional mode.
"""

from __future__ import annotations

import typing as _t

from repro.cuda import ELEM, MemcpyKind, copy_payload
from repro.cuda.buffers import Buffer, DeviceBuffer, PinnedBuffer
from repro.hetsort.context import RunContext, SortedRun
from repro.hetsort.plan import Batch
from repro.kernels.mergepath import merge_two
from repro.kernels.multiway import multiway_merge
from repro.sim import CAT

__all__ = [
    "alloc_worker_buffers", "free_worker_buffers",
    "staged_blocking_batch", "pageable_blocking_batch",
    "async_stream_batch", "final_multiway", "pair_merge_scheduler",
]


def alloc_worker_buffers(ctx: RunContext, gpu: int, tag: str):
    """Process: allocate one worker's staging and device buffers.

    Returns ``(pinned_in, pinned_out, dev)``.  The device buffer holds
    ``2 * b_s`` elements: the batch plus Thrust's out-of-place scratch
    (Sec. III-B).
    """
    import numpy as np

    ps = ctx.plan.pinned_elements
    bs = ctx.plan.batch_size
    mk = (lambda k: np.empty(k, dtype=np.float64)) if ctx.functional \
        else (lambda k: None)
    pinned_in = yield from ctx.rt.malloc_host(
        ps * ELEM, name=f"stage_in.{tag}", data=mk(ps))
    pinned_out = yield from ctx.rt.malloc_host(
        ps * ELEM, name=f"stage_out.{tag}", data=mk(ps))
    dev = ctx.rt.malloc(2 * bs * ELEM, gpu_index=gpu, name=f"dev.{tag}",
                        data=mk(2 * bs))
    return pinned_in, pinned_out, dev


def free_worker_buffers(ctx: RunContext, pinned_in: PinnedBuffer,
                        pinned_out: PinnedBuffer, dev: DeviceBuffer) -> None:
    """Release one worker's buffers."""
    ctx.rt.free_host(pinned_in)
    ctx.rt.free_host(pinned_out)
    ctx.rt.free(dev)


# ---------------------------------------------------------------------------
# Blocking data paths (BLINE / BLINEMULTI)
# ---------------------------------------------------------------------------

def staged_blocking_batch(ctx: RunContext, batch: Batch,
                          pinned_in: PinnedBuffer, pinned_out: PinnedBuffer,
                          dev: DeviceBuffer, stream, out: Buffer,
                          lane: str):
    """Process: one batch through the *blocking* pinned-staging path:

    ``A -> Stage -> HtoD -> GPUSort -> DtoH -> Stage -> out``
    (Sec. III-D2's n_b = 1 workflow; ``out`` is B for BLINE, W otherwise).
    """
    rt, machine, cfg = ctx.rt, ctx.machine, ctx.config
    for a_off, b_off, size in ctx.plan.chunks(batch):
        nb = size * ELEM

        def stage_in(a_off=a_off, nb=nb):
            copy_payload(pinned_in, 0, ctx.A, a_off * ELEM, nb)

        yield from machine.host_memcpy(
            nb, threads=cfg.memcpy_threads, label="A->Stage", lane=lane,
            work=stage_in)
        yield from rt.memcpy(dev, pinned_in, nb,
                             MemcpyKind.HOST_TO_DEVICE,
                             dst_off=b_off * ELEM, lane=lane)
    done = yield from rt.sort_async(dev, batch.size, stream)
    yield done  # blocking semantics: host waits for the sort
    for a_off, b_off, size in ctx.plan.chunks(batch):
        nb = size * ELEM
        yield from rt.memcpy(pinned_out, dev, nb,
                             MemcpyKind.DEVICE_TO_HOST,
                             src_off=b_off * ELEM, lane=lane)

        def stage_out(a_off=a_off, nb=nb):
            copy_payload(out, a_off * ELEM, pinned_out, 0, nb)

        yield from machine.host_memcpy(
            nb, threads=cfg.memcpy_threads, label="Stage->out", lane=lane,
            work=stage_out)


def pageable_blocking_batch(ctx: RunContext, batch: Batch,
                            dev: DeviceBuffer, stream, out: Buffer,
                            lane: str):
    """Process: one batch via plain blocking ``cudaMemcpy`` from pageable
    memory (no staging, no pinned buffers): ``A -> HtoD -> GPUSort ->
    DtoH -> out`` (Sec. III-D's literal BLINE)."""
    rt = ctx.rt
    yield from rt.memcpy(dev, ctx.A, batch.nbytes,
                         MemcpyKind.HOST_TO_DEVICE,
                         src_off=batch.offset_bytes, lane=lane)
    done = yield from rt.sort_async(dev, batch.size, stream)
    yield done
    yield from rt.memcpy(out, dev, batch.nbytes,
                         MemcpyKind.DEVICE_TO_HOST,
                         dst_off=batch.offset_bytes, lane=lane)


# ---------------------------------------------------------------------------
# Pipelined data path (PIPEDATA / PIPEMERGE)
# ---------------------------------------------------------------------------

def async_stream_batch(ctx: RunContext, batch: Batch,
                       pinned_in: PinnedBuffer, pinned_out: PinnedBuffer,
                       dev: DeviceBuffer, stream):
    """Process: one batch through the asynchronous pipelined path of
    Fig. 2: chunked ``MCpy``/``HtoD`` interleave into the device, an async
    sort, then chunked ``DtoH``/``MCpy`` out to W.

    Within the stream the per-chunk ``stream.synchronize()`` is required
    before reusing the single pinned buffer -- this is the per-copy
    synchronisation overhead the related work omits (Sec. IV-E).
    Across streams, everything overlaps.
    """
    rt, machine, cfg = ctx.rt, ctx.machine, ctx.config
    lane = stream.name
    for a_off, b_off, size in ctx.plan.chunks(batch):
        nb = size * ELEM

        def stage_in(a_off=a_off, nb=nb):
            copy_payload(pinned_in, 0, ctx.A, a_off * ELEM, nb)

        yield from machine.host_memcpy(
            nb, threads=cfg.memcpy_threads, label="A->Stage", lane=lane,
            work=stage_in)
        yield from rt.memcpy_async(dev, pinned_in, nb,
                                   MemcpyKind.HOST_TO_DEVICE, stream,
                                   dst_off=b_off * ELEM)
        yield from stream.synchronize()
    yield from rt.sort_async(dev, batch.size, stream)
    # No explicit sync: the DtoH below queues behind the sort in-stream.
    for a_off, b_off, size in ctx.plan.chunks(batch):
        nb = size * ELEM
        yield from rt.memcpy_async(pinned_out, dev, nb,
                                   MemcpyKind.DEVICE_TO_HOST, stream,
                                   src_off=b_off * ELEM)
        yield from stream.synchronize()

        def stage_out(a_off=a_off, nb=nb):
            copy_payload(ctx.W, a_off * ELEM, pinned_out, 0, nb)

        yield from machine.host_memcpy(
            nb, threads=cfg.memcpy_threads, label="Stage->W", lane=lane,
            work=stage_out)
    ctx.finish_run(batch)


# ---------------------------------------------------------------------------
# CPU-side merging
# ---------------------------------------------------------------------------

def pair_merge_scheduler(ctx: RunContext):
    """Process: PIPEMERGE's pipelined pair-wise merging (Sec. III-D3).

    Takes sorted, b_s-sized batches off the completion queue two at a
    time and pair-merges them while the GPUs keep sorting, up to the
    plan's quota; never merges the output of a previous merge.  Returns
    the list of merged :class:`SortedRun` s.
    """
    merged: list[SortedRun] = []
    quota = ctx.plan.pairwise_merges
    while len(merged) < quota:
        first = yield ctx.sorted_runs.get()
        second = yield ctx.sorted_runs.get()
        out = SortedRun(size=first.size + second.size, from_pair=True)

        def work(first=first, second=second, out=out):
            if ctx.functional:
                out.array = merge_two(first.data(ctx), second.data(ctx))

        yield from ctx.machine.host_merge(
            out.size, k=2, threads=ctx.pipeline_merge_threads,
            label=f"pairmerge[{len(merged)}]", lane="cpu.pipeline",
            category=CAT.PAIRMERGE, work=work)
        merged.append(out)
        ctx.obs.incr("pair_merges.completed")
    return merged


def final_multiway(ctx: RunContext, extra_runs: _t.Sequence[SortedRun] = ()):
    """Process: the final multiway merge of all remaining sorted runs
    from W (plus pair-merged runs) into B.

    With a single run this degenerates to a parallel copy W -> B.
    """
    runs: list[SortedRun] = list(extra_runs)
    while True:
        ok, item = ctx.sorted_runs.try_get()
        if not ok:
            break
        runs.append(item)
    if not runs:
        raise RuntimeError("final merge invoked with no sorted runs")
    total = sum(r.size for r in runs)
    if total != ctx.plan.n:
        raise RuntimeError(
            f"sorted runs cover {total} of {ctx.plan.n} elements")

    if len(runs) == 1:
        run = runs[0]

        def copy_work(run=run):
            if ctx.functional:
                ctx.B.data[:] = run.data(ctx)

        yield from ctx.machine.host_memcpy(
            total * ELEM, threads=ctx.merge_threads, label="W->B",
            lane="cpu.merge", work=copy_work)
        return

    def work():
        if ctx.functional:
            ctx.B.data[:] = multiway_merge([r.data(ctx) for r in runs])

    yield from ctx.machine.host_merge(
        total, k=len(runs), threads=ctx.merge_threads,
        label=f"multiway(k={len(runs)})", lane="cpu.merge",
        category=CAT.MERGE, work=work)
