"""Shared building blocks of the sorting approaches.

Each helper is a simulation process (generator) written against the
simulated CUDA runtime, mirroring the host code structure the paper
describes.  The same generators move real data in functional mode.
"""

from __future__ import annotations

import typing as _t

from repro.cuda import ELEM, MemcpyKind, copy_payload
from repro.cuda.buffers import Buffer, DeviceBuffer, PinnedBuffer
from repro.hetsort.context import RunContext, SortedRun
from repro.hetsort.plan import Batch
from repro.hetsort.resilience import retry_call
from repro.kernels.mergepath import merge_two
from repro.kernels.multiway import multiway_merge
from repro.sim import CAT

__all__ = [
    "alloc_worker_buffers", "free_worker_buffers",
    "staged_blocking_batch", "pageable_blocking_batch",
    "async_stream_batch", "final_multiway", "pair_merge_scheduler",
]


def alloc_worker_buffers(ctx: RunContext, gpu: int, tag: str):
    """Process: allocate one worker's staging and device buffers.

    Returns ``(pinned_in, pinned_out, dev)``.  The device buffer holds
    ``2 * b_s`` elements: the batch plus Thrust's out-of-place scratch
    (Sec. III-B).  The two pinned allocations are sequential on the host
    thread, so the second depends causally on the first; the first use of
    either buffer should depend on ``buf.alloc_span``.
    """
    import numpy as np

    ps = ctx.plan.pinned_elements
    bs = ctx.plan.batch_size
    mk = (lambda k: np.empty(k, dtype=np.float64)) if ctx.functional \
        else (lambda k: None)
    pinned_in = yield from ctx.rt.malloc_host(
        ps * ELEM, name=f"stage_in.{tag}", data=mk(ps))
    try:
        pinned_out = yield from ctx.rt.malloc_host(
            ps * ELEM, name=f"stage_out.{tag}", data=mk(ps),
            deps=(pinned_in.alloc_span,))
    except Exception:
        ctx.rt.free_host(pinned_in)
        raise
    try:
        dev = yield from retry_call(
            ctx.machine,
            lambda: ctx.rt.malloc(2 * bs * ELEM, gpu_index=gpu,
                                  name=f"dev.{tag}", data=mk(2 * bs)),
            what=f"cudaMalloc[dev.{tag}]", lane=f"host.gpu{gpu}",
            deps=(pinned_in.alloc_span, pinned_out.alloc_span))
    except Exception:
        # A partially-allocated worker must not leak its staging
        # buffers when the device path is exhausted (the caller only
        # sees None and cannot free them) -- the allocation ledger's
        # leak detector pins this.
        ctx.rt.free_host(pinned_in)
        ctx.rt.free_host(pinned_out)
        raise
    return pinned_in, pinned_out, dev


def free_worker_buffers(ctx: RunContext, pinned_in: PinnedBuffer,
                        pinned_out: PinnedBuffer, dev: DeviceBuffer) -> None:
    """Release one worker's buffers."""
    ctx.rt.free_host(pinned_in)
    ctx.rt.free_host(pinned_out)
    ctx.rt.free(dev)


# ---------------------------------------------------------------------------
# Blocking data paths (BLINE / BLINEMULTI)
# ---------------------------------------------------------------------------

def staged_blocking_batch(ctx: RunContext, batch: Batch,
                          pinned_in: PinnedBuffer, pinned_out: PinnedBuffer,
                          dev: DeviceBuffer, stream, out: Buffer,
                          lane: str, deps=()):
    """Process: one batch through the *blocking* pinned-staging path:

    ``A -> Stage -> HtoD -> GPUSort -> DtoH -> Stage -> out``
    (Sec. III-D2's n_b = 1 workflow; ``out`` is B for BLINE, W otherwise).

    ``deps`` seeds the first operation's causal parents (the pinned
    allocations / the previous batch on this worker); the chunk chain is
    linked span to span -- each HtoD depends on the staging copy that
    filled the pinned buffer, and the next staging copy depends on the
    HtoD that drained it (single-buffer reuse).  Returns the batch's last
    span (the final ``Stage->out`` copy).
    """
    rt, machine, cfg = ctx.rt, ctx.machine, ctx.config
    prev = tuple(deps)
    for a_off, b_off, size in ctx.plan.chunks(batch):
        nb = size * ELEM

        def stage_in(a_off=a_off, nb=nb):
            copy_payload(pinned_in, 0, ctx.A, a_off * ELEM, nb)

        staged = yield from machine.host_memcpy(
            nb, threads=cfg.memcpy_threads, label="A->Stage", lane=lane,
            work=stage_in, deps=prev)
        htod = yield from rt.memcpy(dev, pinned_in, nb,
                                    MemcpyKind.HOST_TO_DEVICE,
                                    dst_off=b_off * ELEM, lane=lane,
                                    deps=(staged,))
        ctx.phase("chunk.htod", batch=batch.index, gpu=batch.gpu,
                  elements=size)
        prev = (htod,)
    ctx.phase("batch.staged", batch=batch.index, gpu=batch.gpu,
              elements=batch.size)
    done = yield from rt.sort_async(dev, batch.size, stream, deps=prev)
    sort_span = yield done  # blocking semantics: host waits for the sort
    ctx.phase("batch.sorted", batch=batch.index, gpu=batch.gpu,
              elements=batch.size)
    prev = (sort_span,)
    last = sort_span
    for a_off, b_off, size in ctx.plan.chunks(batch):
        nb = size * ELEM
        dtoh = yield from rt.memcpy(pinned_out, dev, nb,
                                    MemcpyKind.DEVICE_TO_HOST,
                                    src_off=b_off * ELEM, lane=lane,
                                    deps=prev)

        def stage_out(a_off=a_off, nb=nb):
            copy_payload(out, a_off * ELEM, pinned_out, 0, nb)

        last = yield from machine.host_memcpy(
            nb, threads=cfg.memcpy_threads, label="Stage->out", lane=lane,
            work=stage_out, deps=(dtoh,))
        prev = (last,)   # pinned_out reuse: next DtoH waits for this copy
    return last


def pageable_blocking_batch(ctx: RunContext, batch: Batch,
                            dev: DeviceBuffer, stream, out: Buffer,
                            lane: str, deps=()):
    """Process: one batch via plain blocking ``cudaMemcpy`` from pageable
    memory (no staging, no pinned buffers): ``A -> HtoD -> GPUSort ->
    DtoH -> out`` (Sec. III-D's literal BLINE).  Returns the batch's last
    span (the DtoH)."""
    rt = ctx.rt
    htod = yield from rt.memcpy(dev, ctx.A, batch.nbytes,
                                MemcpyKind.HOST_TO_DEVICE,
                                src_off=batch.offset_bytes, lane=lane,
                                deps=deps)
    ctx.phase("chunk.htod", batch=batch.index, gpu=batch.gpu,
              elements=batch.size)
    done = yield from rt.sort_async(dev, batch.size, stream, deps=(htod,))
    sort_span = yield done
    ctx.phase("batch.sorted", batch=batch.index, gpu=batch.gpu,
              elements=batch.size)
    dtoh = yield from rt.memcpy(out, dev, batch.nbytes,
                                MemcpyKind.DEVICE_TO_HOST,
                                dst_off=batch.offset_bytes, lane=lane,
                                deps=(sort_span,))
    return dtoh


# ---------------------------------------------------------------------------
# Pipelined data path (PIPEDATA / PIPEMERGE)
# ---------------------------------------------------------------------------

def async_stream_batch(ctx: RunContext, batch: Batch,
                       pinned_in: PinnedBuffer, pinned_out: PinnedBuffer,
                       dev: DeviceBuffer, stream, deps=()):
    """Process: one batch through the asynchronous pipelined path of
    Fig. 2: chunked ``MCpy``/``HtoD`` interleave into the device, an async
    sort, then chunked ``DtoH``/``MCpy`` out to W.

    Within the stream the per-chunk ``stream.synchronize()`` is required
    before reusing the single pinned buffer -- this is the per-copy
    synchronisation overhead the related work omits (Sec. IV-E).
    Across streams, everything overlaps.

    Causal edges: each async copy depends on the staging copy that fed it
    (plus stream order, recorded by the stream itself); each ``Sync``
    span depends on the op it waited for; the host-side chain
    (``deps`` -> staging -> sync -> staging ...) captures worker program
    order and pinned-buffer reuse.  Returns the batch's last span.
    """
    rt, machine, cfg = ctx.rt, ctx.machine, ctx.config
    lane = stream.name
    prev = tuple(deps)
    for a_off, b_off, size in ctx.plan.chunks(batch):
        nb = size * ELEM

        def stage_in(a_off=a_off, nb=nb):
            copy_payload(pinned_in, 0, ctx.A, a_off * ELEM, nb)

        staged = yield from machine.host_memcpy(
            nb, threads=cfg.memcpy_threads, label="A->Stage", lane=lane,
            work=stage_in, deps=prev)
        ev = yield from rt.memcpy_async(dev, pinned_in, nb,
                                        MemcpyKind.HOST_TO_DEVICE, stream,
                                        dst_off=b_off * ELEM, deps=(staged,))
        sync = yield from stream.synchronize(deps=(staged,))
        ctx.phase("chunk.htod", batch=batch.index, gpu=batch.gpu,
                  elements=size)
        prev = (sync if sync is not None else ev.value,)
    ctx.phase("batch.staged", batch=batch.index, gpu=batch.gpu,
              elements=batch.size)
    yield from rt.sort_async(dev, batch.size, stream, deps=prev)
    # No explicit sync: the DtoH below queues behind the sort in-stream.
    last = prev[0]
    stage_prev: tuple = ()
    for a_off, b_off, size in ctx.plan.chunks(batch):
        nb = size * ELEM
        ev = yield from rt.memcpy_async(pinned_out, dev, nb,
                                        MemcpyKind.DEVICE_TO_HOST, stream,
                                        src_off=b_off * ELEM,
                                        deps=stage_prev)
        sync = yield from stream.synchronize()
        dtoh_done = sync if sync is not None else ev.value

        def stage_out(a_off=a_off, nb=nb):
            copy_payload(ctx.W, a_off * ELEM, pinned_out, 0, nb)

        last = yield from machine.host_memcpy(
            nb, threads=cfg.memcpy_threads, label="Stage->W", lane=lane,
            work=stage_out, deps=(dtoh_done,))
        stage_prev = (last,)  # pinned_out reuse: next DtoH waits for it
    ctx.finish_run(batch, producer=last)
    return last


# ---------------------------------------------------------------------------
# CPU-side merging
# ---------------------------------------------------------------------------

def pair_merge_scheduler(ctx: RunContext):
    """Process: PIPEMERGE's pipelined pair-wise merging (Sec. III-D3).

    Takes sorted, b_s-sized batches off the completion queue two at a
    time and pair-merges them while the GPUs keep sorting, up to the
    plan's quota; never merges the output of a previous merge.  Returns
    the list of merged :class:`SortedRun` s.
    """
    merged: list[SortedRun] = []
    quota = ctx.plan.pairwise_merges
    while len(merged) < quota:
        first = yield ctx.sorted_runs.get()
        second = yield ctx.sorted_runs.get()
        out = SortedRun(size=first.size + second.size, from_pair=True)
        ctx.phase("merge.started", kind="pair", index=len(merged),
                  elements=out.size)

        def work(first=first, second=second, out=out):
            if ctx.functional:
                out.array = merge_two(first.data(ctx), second.data(ctx))

        span = yield from ctx.machine.host_merge(
            out.size, k=2, threads=ctx.pipeline_merge_threads,
            label=f"pairmerge[{len(merged)}]", lane="cpu.pipeline",
            category=CAT.PAIRMERGE, work=work,
            deps=(first.producer_id, second.producer_id))
        out.producer_id = span.id
        merged.append(out)
        ctx.obs.incr("pair_merges.completed")
        ctx.phase("merge.done", kind="pair", index=len(merged) - 1,
                  elements=out.size)
    return merged


def final_multiway(ctx: RunContext, extra_runs: _t.Sequence[SortedRun] = ()):
    """Process: the final multiway merge of all remaining sorted runs
    from W (plus pair-merged runs) into B.

    With a single run this degenerates to a parallel copy W -> B.
    """
    runs: list[SortedRun] = list(extra_runs)
    while True:
        ok, item = ctx.sorted_runs.try_get()
        if not ok:
            break
        runs.append(item)
    if not runs:
        raise RuntimeError("final merge invoked with no sorted runs")
    total = sum(r.size for r in runs)
    if total != ctx.plan.n:
        raise RuntimeError(
            f"sorted runs cover {total} of {ctx.plan.n} elements")

    # The merge consumes every run, so it depends on every producer: the
    # buffer-handoff edges W -> merge of the span DAG.
    producers = tuple(r.producer_id for r in runs if r.producer_id is not None)

    ctx.phase("merge.started", kind="multiway", k=len(runs),
              elements=total)
    if len(runs) == 1:
        run = runs[0]

        def copy_work(run=run):
            if ctx.functional:
                ctx.B.data[:] = run.data(ctx)

        yield from ctx.machine.host_memcpy(
            total * ELEM, threads=ctx.merge_threads, label="W->B",
            lane="cpu.merge", work=copy_work, deps=producers)
        ctx.phase("merge.done", kind="multiway", k=1, elements=total)
        return

    def work():
        if ctx.functional:
            ctx.B.data[:] = multiway_merge([r.data(ctx) for r in runs])

    yield from ctx.machine.host_merge(
        total, k=len(runs), threads=ctx.merge_threads,
        label=f"multiway(k={len(runs)})", lane="cpu.merge",
        category=CAT.MERGE, work=work, deps=producers)
    ctx.phase("merge.done", kind="multiway", k=len(runs), elements=total)
