"""Dataset generators and size helpers for the evaluation workloads."""

from repro.workloads.generators import DISTRIBUTIONS, dataset_gib, generate

__all__ = ["generate", "DISTRIBUTIONS", "dataset_gib"]
