"""Input dataset generators.

The paper evaluates exclusively on **uniformly distributed 64-bit floats**
(Sec. IV-A), arguing that its hybrid sort is transfer-bound and therefore
distribution-insensitive.  We provide that workload plus the distributions
other sorting papers use (e.g. PARADIS [11], Polychroniou & Ross [10]) so
the distribution-insensitivity claim itself can be tested (an extension
experiment in ``benchmarks/test_ablations.py``).

All generators take an explicit seed and return float64 arrays.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.errors import ValidationError

__all__ = ["generate", "DISTRIBUTIONS", "dataset_gib"]


def _uniform(rng: np.random.Generator, n: int) -> np.ndarray:
    """Uniform in [0, 1) -- the paper's workload."""
    return rng.random(n)


def _gaussian(rng: np.random.Generator, n: int) -> np.ndarray:
    """Standard normal."""
    return rng.normal(size=n)


def _sorted_asc(rng: np.random.Generator, n: int) -> np.ndarray:
    """Already sorted (best case for adaptive sorts).

    Seeding contract: the draw is the *first* ``rng.random(n)`` from the
    generator, so for a given seed ``sorted`` and ``reverse`` order the
    exact same multiset of keys -- ``generate(n, "reverse", seed)`` is
    element-for-element ``generate(n, "sorted", seed)[::-1]`` (pinned by
    a regression test).
    """
    return np.sort(rng.random(n))


def _sorted_desc(rng: np.random.Generator, n: int) -> np.ndarray:
    """Reverse sorted (classic adversarial case).

    Implemented as the exact reversal of :func:`_sorted_asc` on the same
    generator state, making the shared-draw seeding contract structural
    rather than coincidental: both distributions consume one
    ``rng.random(n)`` call and nothing else.
    """
    return _sorted_asc(rng, n)[::-1].copy()


def _nearly_sorted(rng: np.random.Generator, n: int,
                   swap_fraction: float = 0.01) -> np.ndarray:
    """Sorted with a small fraction of random transpositions."""
    a = np.sort(rng.random(n))
    k = max(1, int(n * swap_fraction))
    i = rng.integers(0, n, size=k)
    j = rng.integers(0, n, size=k)
    a[i], a[j] = a[j], a[i].copy()
    return a


def _duplicates(rng: np.random.Generator, n: int,
                distinct: int = 16) -> np.ndarray:
    """Few distinct values (radix-friendly, comparator-hostile)."""
    vals = rng.random(distinct)
    return vals[rng.integers(0, distinct, size=n)]


def _zipf(rng: np.random.Generator, n: int, s: float = 1.3) -> np.ndarray:
    """Heavy-tailed duplicate skew."""
    return rng.zipf(s, size=n).astype(np.float64)


DISTRIBUTIONS: dict[str, _t.Callable[..., np.ndarray]] = {
    "uniform": _uniform,
    "gaussian": _gaussian,
    "sorted": _sorted_asc,
    "reverse": _sorted_desc,
    "nearly_sorted": _nearly_sorted,
    "duplicates": _duplicates,
    "zipf": _zipf,
}


def generate(n: int, distribution: str = "uniform", seed: int = 0,
             **kw) -> np.ndarray:
    """Generate ``n`` float64 keys from a named distribution.

    >>> a = generate(1000, "uniform", seed=1)
    >>> len(a), str(a.dtype)
    (1000, 'float64')
    """
    if n < 0:
        raise ValidationError(f"negative dataset size {n}")
    try:
        fn = DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValidationError(
            f"unknown distribution {distribution!r}; "
            f"available: {sorted(DISTRIBUTIONS)}") from None
    rng = np.random.default_rng(seed)
    return np.asarray(fn(rng, n, **kw), dtype=np.float64)


def dataset_gib(n: int) -> float:
    """Size of ``n`` 64-bit keys in GiB (the unit of the paper's x-axes)."""
    return n * 8 / 1024 ** 3
