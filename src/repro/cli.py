"""Command-line interface: run heterogeneous sorts from the shell.

Examples
--------
Paper-scale timing run (Fig. 9's fastest configuration)::

    python -m repro --n 5e9 --approach pipemerge --batch-size 5e8 \
        --memcpy-threads 8

Functional run with validation and a timeline::

    python -m repro --functional 200000 --batch-size 50000 --gantt

Compare every approach at one size::

    python -m repro --n 2e9 --batch-size 2e8 --compare

Observability report (utilization, overlap matrix, counters)::

    python -m repro metrics --n 2e9 --batch-size 2e8 --approach pipedata

Causal analysis -- where did the makespan go, and what would change::

    python -m repro critical-path --n 2e9 --batch-size 2e8 --gantt
    python -m repro whatif --n 2e9 --batch-size 2e8 --scale GPUSort=0.5

Regression workflow -- freeze a run, compare a later one against it::

    python -m repro --n 2e9 --batch-size 2e8 --report before.json
    ... change something ...
    python -m repro --n 2e9 --batch-size 2e8 --report after.json
    python -m repro diff before.json after.json --fail-on-regression

Conformance workflow -- sweep a grid, confront the lower-bound model::

    python -m repro sweep --grid small --ledger ledger.jsonl
    python -m repro conformance --ledger ledger.jsonl --html dash.html

Live telemetry -- watch a run as it executes, keep the event log::

    python -m repro --n 2e9 --batch-size 2e8 --live --events run.events.jsonl
    python -m repro watch run.events.jsonl

Chaos -- inject deterministic faults, verify the run still sorts::

    python -m repro chaos --fault-seed 7 --approach pipemerge \
        --plan-out plan.json --events chaos.events.jsonl
    python -m repro --functional 200000 --faults plan.json

Trend observatory -- archive every run, watch metrics drift over time::

    python -m repro --n 2e9 --batch-size 2e8 --archive runs.jsonl
    python -m repro archive runs.jsonl --list
    python -m repro trends runs.jsonl --html trends.html
    python -m repro archive runs.jsonl --diff 1a2b3c 4d5e6f

Memory observatory -- occupancy, watermarks, the capacity planner::

    python -m repro mem --n 2e9 --batch-size 2e8 --approach pipedata
    python -m repro plan-mem --platform PLATFORM2 --gpus 2 --n 4e9
    python -m repro plan-mem --n 1e6 --approach bline --verify

Interconnect observatory -- link saturation, contention attribution::

    python -m repro flows --n 2e9 --batch-size 2e8 --approach pipedata
    python -m repro flows --platform PLATFORM2 --gpus 2 --n 2e9 \
        --html flows.html

Multi-tenant service -- stream seeded sort jobs under a QoS bandwidth
allocator, compare per-tenant tail latencies::

    python -m repro serve --allocator strict-priority --json
    python -m repro serve --allocator max-min --html service.html \
        --tenant gold:2:2:40:3:200000:0.5 --tenant batch:0:0.5:20:3:400000
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys

from repro.hetsort import HeterogeneousSorter, cpu_reference_sort
from repro.hetsort.config import Approach
from repro.hw.platforms import get_platform
from repro.reporting import render_gantt, render_metrics_table, render_table
from repro.workloads import generate

__all__ = ["main", "build_parser", "build_metrics_parser",
           "build_critical_path_parser", "build_whatif_parser",
           "build_diff_parser", "build_sweep_parser",
           "build_conformance_parser", "build_watch_parser",
           "build_chaos_parser", "build_archive_parser",
           "build_trends_parser", "build_mem_parser",
           "build_plan_mem_parser", "build_flows_parser",
           "build_serve_parser"]


@contextlib.contextmanager
def _writes(path, label: str):
    """Guard one output-file write: create the parent directory first
    and turn any OSError into a clean one-line :class:`SystemExit`
    instead of a traceback.  Every subcommand that writes an output
    file wraps the write in this."""
    parent = os.path.dirname(os.path.abspath(os.fspath(path)))
    try:
        os.makedirs(parent, exist_ok=True)
        yield
    except OSError as exc:
        raise SystemExit(f"repro: cannot write {label} to {path!r}: "
                         f"{exc.strerror or exc}") from None


def _write_html(path, label: str, writer, out) -> None:
    """The shared ``--html`` exit ramp (``repro mem`` / ``repro trends``
    / ``repro flows``): parent-dir creation and the clean error path via
    :func:`_writes`, then one uniform confirmation line.  ``writer`` is
    called with the destination path; a falsy path is a no-op."""
    if not path:
        return
    with _writes(path, label):
        writer(path)
    out.write(f"wrote {label} to {path}\n")


def _add_run_options(p: argparse.ArgumentParser) -> None:
    """Options shared by the default run mode and `metrics`."""
    p.add_argument("--platform", default="PLATFORM1",
                   help="PLATFORM1 (GP100) or PLATFORM2 (2x K40m)")
    p.add_argument("--gpus", type=int, default=1, help="GPUs to use")
    p.add_argument("--approach", default="pipemerge",
                   choices=Approach.ALL)
    p.add_argument("--n", type=float, default=None,
                   help="timing-only input size (e.g. 5e9)")
    p.add_argument("--functional", type=int, default=None, metavar="N",
                   help="really sort N random doubles and validate")
    p.add_argument("--distribution", default="uniform",
                   help="input distribution for --functional")
    p.add_argument("--batch-size", type=float, default=None,
                   help="b_s elements per batch (default: maximal)")
    p.add_argument("--streams", type=int, default=2,
                   help="n_s streams per GPU")
    p.add_argument("--pinned", type=float, default=1e6,
                   help="p_s pinned staging elements")
    p.add_argument("--memcpy-threads", type=int, default=1,
                   help="> 1 enables PARMEMCPY")
    p.add_argument("--trace-json", metavar="PATH", default=None,
                   help="write a chrome://tracing / Perfetto JSON "
                        "(spans + counter tracks + causal flow arrows)")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the run report JSON (input to `repro diff` "
                        "and the regression gate)")
    p.add_argument("--faults", metavar="PATH", default=None,
                   help="attach a repro.faults/v1 fault plan (JSON, see "
                        "`repro chaos`); injected faults are retried / "
                        "degraded deterministically")
    p.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort",
        description="Hybrid CPU/GPU sorting on a simulated platform "
                    "(IPPS 2018 reproduction).")
    _add_run_options(p)
    p.add_argument("--compare", action="store_true",
                   help="run every approach plus the CPU reference")
    p.add_argument("--gantt", action="store_true",
                   help="print an ASCII timeline of the run")
    p.add_argument("--json", action="store_true",
                   help="print the run (or --compare table) as canonical "
                        "JSON instead of text")
    p.add_argument("--live", action="store_true",
                   help="render live progress while the run executes "
                        "(progress bars on a TTY, periodic plain lines "
                        "otherwise)")
    p.add_argument("--events", metavar="PATH", default=None,
                   help="write the run's repro.events/v1 JSONL event log "
                        "(replayable; input to `repro watch`)")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="emit a watchdog warning event if the simulated "
                        "run passes S seconds")
    p.add_argument("--archive", metavar="PATH", default=None,
                   help="append this run to a repro.archive/v1 archive "
                        "(content-addressed, idempotent; input to "
                        "`repro trends`)")
    return p


def build_metrics_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort metrics",
        description="Run one sort and report its observability metrics: "
                    "per-lane utilization, the category-overlap matrix, "
                    "overlap efficiency, link goodput and live counters.")
    _add_run_options(p)
    p.add_argument("--profile", action="store_true",
                   help="wall-clock the real numpy kernels "
                        "(functional runs; never changes the timeline)")
    p.add_argument("--json", action="store_true",
                   help="print the metrics document as canonical JSON "
                        "instead of tables")
    return p


def build_critical_path_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort critical-path",
        description="Run one sort and attribute its makespan along the "
                    "causal critical path: which dependency chain bound "
                    "the run, per category and per lane, with slack.")
    _add_run_options(p)
    p.add_argument("--gantt", action="store_true",
                   help="print the timeline with the critical path "
                        "highlighted and per-lane slack")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON instead of tables")
    p.add_argument("--limit", type=int, default=12,
                   help="path steps to show in the table (0 = all)")
    return p


def build_whatif_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort whatif",
        description="Run one sort, then predict the makespan if selected "
                    "span categories were k times their duration, by "
                    "re-scheduling the recorded causal DAG.  Without "
                    "--scale, prints a sensitivity sweep over every "
                    "category.")
    _add_run_options(p)
    p.add_argument("--scale", action="append", default=[],
                   metavar="CAT=K",
                   help="scale category CAT's durations by factor K "
                        "(repeatable; e.g. --scale GPUSort=0.5)")
    p.add_argument("--json", action="store_true",
                   help="print the prediction as JSON instead of a table")
    return p


def build_diff_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort diff",
        description="Structurally compare two run reports written with "
                    "--report: makespan / per-category / per-lane / "
                    "critical-path deltas plus span shapes added, removed "
                    "or recounted.")
    p.add_argument("report_a", help="baseline report JSON")
    p.add_argument("report_b", help="candidate report JSON")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="relative makespan growth to tolerate "
                        "(e.g. 0.02 = 2%%)")
    p.add_argument("--min-rel", type=float, default=0.0,
                   help="hide rows whose relative change is smaller")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable diff document")
    p.add_argument("--fail-on-regression", action="store_true",
                   help="exit 1 when the makespan regressed beyond "
                        "--tolerance or the trace structure changed")
    return p


def build_sweep_parser() -> argparse.ArgumentParser:
    from repro.obs.sweep import GRIDS
    p = argparse.ArgumentParser(
        prog="repro-hetsort sweep",
        description="Run a named (approach x n x streams x platform) "
                    "grid and persist every run as one canonical JSONL "
                    "line -- the sweep ledger (byte-stable: a same-seed "
                    "sweep writes identical bytes).")
    p.add_argument("--grid", default="small", choices=sorted(GRIDS),
                   help="named grid to run (default: small)")
    p.add_argument("--ledger", metavar="PATH",
                   default="sweep-ledger.jsonl",
                   help="JSONL ledger to write (default: "
                        "sweep-ledger.jsonl)")
    p.add_argument("--model-n", type=float, default=None,
                   help="override the lower-bound model's calibration "
                        "size (default: the grid's own)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the per-run progress lines")
    p.add_argument("--archive", metavar="PATH", default=None,
                   help="also append every run to a repro.archive/v1 "
                        "archive (content-addressed, idempotent)")
    return p


def build_conformance_parser() -> argparse.ArgumentParser:
    from repro.obs.conformance import REL_TOLERANCE, Z_THRESHOLD
    p = argparse.ArgumentParser(
        prog="repro-hetsort conformance",
        description="Confront a sweep ledger with the Sec. IV-G "
                    "lower-bound model: per-group fitted slopes with R2 "
                    "vs. the paper's, per-run residual attribution, and "
                    "anomaly flags.  Optionally renders the "
                    "self-contained HTML dashboard.")
    p.add_argument("--ledger", metavar="PATH", required=True,
                   help="JSONL sweep ledger written by `repro sweep`")
    p.add_argument("--html", metavar="PATH", default=None,
                   help="also write the self-contained HTML dashboard")
    p.add_argument("--json", action="store_true",
                   help="print the conformance summary as canonical JSON")
    p.add_argument("--z-threshold", type=float, default=Z_THRESHOLD,
                   help=f"anomaly z-score threshold (default "
                        f"{Z_THRESHOLD:g})")
    p.add_argument("--tolerance", type=float, default=REL_TOLERANCE,
                   help="anomaly relative-deviation threshold (default "
                        f"{REL_TOLERANCE:g})")
    p.add_argument("--fail-on-anomaly", action="store_true",
                   help="exit 1 when any run is flagged anomalous")
    return p


def build_watch_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort watch",
        description="Replay a repro.events/v1 JSONL event log (written "
                    "with `repro ... --events`): validate it, print "
                    "periodic progress lines in simulated time, and end "
                    "with the final aggregated snapshot.")
    p.add_argument("events", help="JSONL event log to watch")
    p.add_argument("--interval", type=float, default=0.25, metavar="S",
                   help="simulated seconds between progress lines "
                        "(default 0.25)")
    p.add_argument("--json", action="store_true",
                   help="print only the final aggregated snapshot as "
                        "canonical JSON")
    return p


def build_chaos_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort chaos",
        description="Run one *functional* sort under a deterministic "
                    "fault plan (transient PCIe faults, allocation "
                    "failures, device loss, bandwidth windows) and verify "
                    "the output is still a sorted permutation.  Exit 0: "
                    "survived (recovered/degraded); exit 3: the run "
                    "failed with a typed error.  Same seed, same bytes.")
    p.add_argument("--platform", default="PLATFORM1",
                   help="PLATFORM1 (GP100) or PLATFORM2 (2x K40m)")
    p.add_argument("--gpus", type=int, default=1, help="GPUs to use")
    p.add_argument("--approach", default="pipemerge",
                   choices=Approach.ALL)
    p.add_argument("--functional", type=int, default=100_000, metavar="N",
                   help="input elements to really sort (default 100000)")
    p.add_argument("--distribution", default="uniform")
    p.add_argument("--batch-size", type=float, default=None)
    p.add_argument("--streams", type=int, default=2)
    p.add_argument("--pinned", type=float, default=1e6)
    p.add_argument("--memcpy-threads", type=int, default=1)
    p.add_argument("--seed", type=int, default=0,
                   help="input-data seed")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="generate a random fault plan from this seed")
    p.add_argument("--plan", metavar="PATH", default=None,
                   help="load an explicit repro.faults/v1 plan instead")
    p.add_argument("--plan-out", metavar="PATH", default=None,
                   help="write the (generated) plan as canonical JSON")
    p.add_argument("--events", metavar="PATH", default=None,
                   help="write the run's JSONL event log")
    p.add_argument("--json", action="store_true",
                   help="print the chaos verdict as canonical JSON")
    p.add_argument("--archive", metavar="PATH", default=None,
                   help="append a surviving run to a repro.archive/v1 "
                        "archive (content-addressed, idempotent)")
    return p


def build_archive_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort archive",
        description="Inspect a repro.archive/v1 run archive: validate "
                    "its content hashes and manifest sidecar, list the "
                    "archived runs, or diff the canonical run reports of "
                    "two entries (cross-run span aggregation).")
    p.add_argument("archive", help="archive JSONL (written with "
                                   "--archive or appended by the gates)")
    p.add_argument("--list", action="store_true",
                   help="print one table row per archived entry")
    p.add_argument("--diff", nargs=2, metavar=("A", "B"), default=None,
                   help="diff two entries by (unique prefix of) entry id")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="relative makespan growth --diff tolerates")
    p.add_argument("--min-rel", type=float, default=0.0,
                   help="hide --diff rows with a smaller relative change")
    p.add_argument("--json", action="store_true",
                   help="print the summary / listing / diff as canonical "
                        "JSON")
    return p


def build_trends_parser() -> argparse.ArgumentParser:
    from repro.obs.trends import K_THRESHOLD, MIN_REL
    p = argparse.ArgumentParser(
        prog="repro-hetsort trends",
        description="The trend observatory: per-metric history over a "
                    "run archive, keyed by workload fingerprint, with "
                    "EWMA smoothing, robust (MAD-scored) changepoint "
                    "detection, regime-local anomaly flags and "
                    "re-baseline (ratchet) proposals.")
    p.add_argument("archive", help="archive JSONL to analyse")
    p.add_argument("--metric", action="append", default=[],
                   help="metric(s) to track (repeatable; default: the "
                        "standard set)")
    p.add_argument("--fingerprint", metavar="FP", default=None,
                   help="restrict to one workload fingerprint "
                        "(unique prefix accepted)")
    p.add_argument("--ewma", type=float, default=0.3, metavar="ALPHA",
                   help="EWMA smoothing weight (default 0.3)")
    p.add_argument("--k", type=float, default=K_THRESHOLD,
                   help="changepoint score threshold in noise sigmas "
                        f"(default {K_THRESHOLD:g})")
    p.add_argument("--min-rel", type=float, default=MIN_REL,
                   help="minimum relative step for a changepoint "
                        f"(default {MIN_REL:g})")
    p.add_argument("--json", action="store_true",
                   help="print the repro.trends/v1 document as canonical "
                        "JSON")
    p.add_argument("--html", metavar="PATH", default=None,
                   help="write the self-contained trend dashboard")
    return p


def build_mem_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort mem",
        description="Run one sort and report its repro.memory/v1 "
                    "allocation ledger: per-pool peak occupancy, "
                    "capacity headroom, the leak verdict, and a "
                    "peak-preserving ASCII occupancy timeline per pool.")
    _add_run_options(p)
    p.add_argument("--width", type=int, default=60,
                   help="timeline buckets per pool (default 60)")
    p.add_argument("--entries", action="store_true",
                   help="also print every ledger entry (alloc/free, "
                        "timestamp, running balance)")
    p.add_argument("--json", action="store_true",
                   help="print the full ledger document as canonical "
                        "JSON instead of tables")
    p.add_argument("--html", metavar="PATH", default=None,
                   help="write the self-contained memory dashboard "
                        "(stacked occupancy chart with watermark lines)")
    return p


def build_flows_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort flows",
        description="Run one sort and report its repro.flows/v1 "
                    "interconnect flow ledger: per-link peak "
                    "bandwidth/utilization, bucket-max link timelines, "
                    "flows-in-flight, and contention attribution (each "
                    "transfer's duration split into isolation time plus "
                    "slowdown charged to the concurrent flows sharing "
                    "its links -- charges sum to the duration bit for "
                    "bit).")
    _add_run_options(p)
    p.add_argument("--width", type=int, default=60,
                   help="timeline buckets per link (default 60)")
    p.add_argument("--top", type=int, default=10,
                   help="contended flows to list (default 10)")
    p.add_argument("--json", action="store_true",
                   help="print the full ledger document as canonical "
                        "JSON instead of tables")
    p.add_argument("--html", metavar="PATH", default=None,
                   help="write the self-contained interconnect dashboard "
                        "(per-link occupancy charts with capacity lines, "
                        "contention table)")
    return p


#: Default ``repro serve`` tenant specs (see ``_parse_tenant``): a
#: latency-sensitive gold tenant with an SLO, a mid-priority silver
#: tenant, and a low-priority bulk tenant with bigger jobs.
_SERVE_DEMO_TENANTS = ("gold:2:2:40:3:200000:0.5",
                       "silver:1:1:30:3:200000",
                       "batch:0:0.5:20:3:400000")


def build_serve_parser() -> argparse.ArgumentParser:
    from repro.sim.allocators import ALLOCATORS
    p = argparse.ArgumentParser(
        prog="repro-hetsort serve",
        description="Simulate a multi-tenant sort service: seeded "
                    "synthetic tenants submit open-loop job streams, a "
                    "shared machine admits and runs them under a "
                    "pluggable per-link bandwidth allocator, and the "
                    "outcome is a byte-stable repro.service/v1 verdict "
                    "(per-tenant latency percentiles, Jain fairness "
                    "index, SLO hit rate).")
    p.add_argument("--platform", default="PLATFORM1",
                   help="PLATFORM1 (GP100) or PLATFORM2 (2x K40m)")
    p.add_argument("--allocator", default="fair-share",
                   choices=sorted(ALLOCATORS),
                   help="per-link bandwidth policy (default fair-share)")
    p.add_argument("--seed", type=int, default=0,
                   help="arrival + dataset seed (default 0)")
    p.add_argument("--tenant", action="append", metavar="SPEC",
                   default=None,
                   help="add a tenant as name:priority:share:rate_hz:"
                        "n_jobs:n_elements[:slo_s]; repeatable "
                        "(default: a gold/silver/batch demo trio)")
    p.add_argument("--timing", action="store_true",
                   help="skip real data movement and output validation "
                        "(timing-only jobs; much faster)")
    p.add_argument("--batch-size", type=float, default=25_000,
                   help="per-job b_s elements per batch (default 25000)")
    p.add_argument("--streams", type=int, default=2,
                   help="per-job n_s streams per GPU (default 2)")
    p.add_argument("--pinned", type=float, default=25_000,
                   help="per-job p_s pinned staging elements "
                        "(default 25000)")
    p.add_argument("--gpus-per-job", type=int, default=1,
                   help="devices each job sorts across (default 1)")
    p.add_argument("--max-concurrent", type=int, default=8,
                   help="admission cap on running jobs (default 8)")
    p.add_argument("--no-controller", action="store_true",
                   help="disable the adaptive level controller "
                        "(fixed-levels only)")
    p.add_argument("--epoch", type=float, default=0.05, metavar="S",
                   help="controller period in simulated seconds "
                        "(default 0.05)")
    p.add_argument("--reclaim", type=float, default=0.9,
                   help="idle-level fraction loaned per epoch "
                        "(default 0.9)")
    p.add_argument("--json", action="store_true",
                   help="print the repro.service/v1 verdict as "
                        "canonical JSON instead of tables")
    p.add_argument("--html", metavar="PATH", default=None,
                   help="write the self-contained tenant-latency "
                        "dashboard")
    p.add_argument("--events", metavar="PATH", default=None,
                   help="write the run's repro.events/v1 JSONL event "
                        "log (service.job.* / service.epoch events)")
    p.add_argument("--archive", metavar="PATH", default=None,
                   help="append the verdict's trend-series entry to a "
                        "repro.archive/v1 archive")
    p.add_argument("--label", default="serve",
                   help="archive entry label (default 'serve')")
    return p


def _parse_tenant(spec: str):
    """``name:priority:share:rate_hz:n_jobs:n_elements[:slo_s]`` ->
    :class:`~repro.service.Tenant` (ValueError on a malformed spec)."""
    from repro.service import Tenant
    parts = spec.split(":")
    if not 6 <= len(parts) <= 7:
        raise ValueError(
            f"tenant spec {spec!r}: expected name:priority:share:"
            "rate_hz:n_jobs:n_elements[:slo_s]")
    name = parts[0]
    if not name:
        raise ValueError(f"tenant spec {spec!r}: empty name")
    return Tenant(name=name, priority=int(parts[1]),
                  share=float(parts[2]), rate_hz=float(parts[3]),
                  n_jobs=int(parts[4]), n_elements=int(float(parts[5])),
                  slo_s=float(parts[6]) if len(parts) == 7 else None)


def _run_serve(argv, out) -> int:
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    from repro.errors import SimulationError, ValidationError
    from repro.obs import canonical_json
    from repro.reporting import format_bytes
    from repro.service import (ServiceConfig, archive_entry, run_service)
    try:
        tenants = tuple(_parse_tenant(s) for s in
                        (args.tenant or _SERVE_DEMO_TENANTS))
    except (ValueError, ValidationError) as exc:
        parser.error(str(exc))
    cfg = ServiceConfig(allocator=args.allocator, seed=args.seed,
                        functional=not args.timing,
                        gpus_per_job=args.gpus_per_job,
                        max_concurrent=args.max_concurrent,
                        batch_size=int(args.batch_size),
                        n_streams=args.streams,
                        pinned_elements=int(args.pinned),
                        controller=not args.no_controller,
                        epoch_s=args.epoch, reclaim=args.reclaim)
    sinks: list = []
    if args.events:
        from repro.obs import JsonlSink
        with _writes(args.events, "event log"):
            sinks.append(JsonlSink(args.events))
    try:
        res = run_service(tenants, cfg,
                          platform=get_platform(args.platform),
                          sinks=sinks)
    except (SimulationError, ValidationError) as exc:
        out.write(f"repro serve: {exc}\n")
        return 2
    verdict = res.verdict
    if args.json:
        out.write(canonical_json(verdict) + "\n")
    else:
        out.write(f"{verdict['allocator']} on {verdict['platform']}: "
                  f"{verdict['n_jobs']} jobs from "
                  f"{verdict['n_tenants']} tenants in "
                  f"{verdict['elapsed_s']:.4f} s simulated\n\n")
        rows = []
        for name, t in verdict["tenants"].items():
            hit = t["slo_hit_rate"]
            rows.append([
                name, str(t["priority"]), f"{t['share']:g}",
                str(t["n_jobs"]),
                f"{t['p50_latency_s']:.4f}", f"{t['p99_latency_s']:.4f}",
                f"{t['mean_queued_s']:.4f}",
                "-" if hit is None else f"{hit:.0%} of {t['slo_jobs']}",
                format_bytes(t["bytes_moved"])])
        out.write(render_table(
            ["tenant", "prio", "share", "jobs", "p50 [s]", "p99 [s]",
             "queued [s]", "SLO hits", "moved"], rows,
            title="per-tenant QoS") + "\n")
        jain = verdict["fairness"]["jain_latency_index"]
        out.write(f"\nJain fairness index (per-element latency): "
                  f"{jain:.4f}\n")
        slo = verdict["slo"]
        if slo["jobs_with_slo"]:
            out.write(f"SLO: {slo['hits']}/{slo['jobs_with_slo']} jobs "
                      f"met their deadline "
                      f"({slo['hit_rate']:.0%})\n")
        ctl = verdict["controller"]
        if ctl is not None:
            out.write(f"controller: {ctl['n_epochs']} epochs, "
                      f"{ctl['epochs_reclaiming']} reclaiming, mean "
                      f"reclaimed fraction "
                      f"{ctl['mean_reclaimed_fraction']:.0%}\n")
    if args.html:
        from repro.reporting import write_service_dashboard
        _write_html(args.html, "service dashboard",
                    lambda path: write_service_dashboard(
                        verdict, path,
                        title=f"{verdict['allocator']} on "
                              f"{verdict['platform']}, seed "
                              f"{verdict['seed']}"),
                    out)
    if args.archive:
        _maybe_archive(args.archive,
                       [archive_entry(verdict, label=args.label)], out)
    return 0


def build_plan_mem_parser() -> argparse.ArgumentParser:
    from repro.obs.memory import PLAN_TOLERANCE
    p = argparse.ArgumentParser(
        prog="repro-hetsort plan-mem",
        description="Analytic capacity planner: predict peak device and "
                    "pinned occupancy from the batch plan alone -- no "
                    "simulation -- and check it against the platform's "
                    "capacities.  Exit 0: the configuration fits; "
                    "exit 1: predicted oversubscription (or a --verify "
                    "residual outside tolerance); exit 2: the planner "
                    "rejected the configuration outright.")
    p.add_argument("--platform", default="PLATFORM1",
                   help="PLATFORM1 (GP100) or PLATFORM2 (2x K40m)")
    p.add_argument("--gpus", type=int, default=1, help="GPUs to use")
    p.add_argument("--approach", default="pipemerge",
                   choices=Approach.ALL)
    p.add_argument("--n", type=float, required=True,
                   help="input size to plan for (e.g. 5e9)")
    p.add_argument("--batch-size", type=float, default=None,
                   help="b_s elements per batch (default: maximal)")
    p.add_argument("--streams", type=int, default=2,
                   help="n_s streams per GPU")
    p.add_argument("--pinned", type=float, default=1e6,
                   help="p_s pinned staging elements")
    p.add_argument("--verify", action="store_true",
                   help="also run the (timing) sort and confront the "
                        "prediction with the measured peaks")
    p.add_argument("--tolerance", type=float, default=PLAN_TOLERANCE,
                   help="--verify relative residual tolerance "
                        f"(default {PLAN_TOLERANCE:g})")
    p.add_argument("--json", action="store_true",
                   help="print the repro.memplan/v1 document (plus the "
                        "--verify conformance block) as canonical JSON")
    return p


def _sample_timeline(steps, t_end: float, width: int) -> list[float]:
    """Resample a ledger step series ``[(t, balance)]`` into ``width``
    buckets, keeping each bucket's *maximum* balance so narrow occupancy
    spikes (and therefore the watermark) survive the downsampling."""
    if t_end <= 0.0 or width <= 0:
        return [float(b) for _, b in steps] or [0.0]
    vals: list[float] = []
    cur = 0.0
    j = 0
    for i in range(width):
        hi = t_end * (i + 1) / width
        peak = cur
        while j < len(steps) and steps[j][0] <= hi:
            cur = float(steps[j][1])
            peak = max(peak, cur)
            j += 1
        vals.append(peak)
    return vals


def _run_mem(argv, out) -> int:
    parser = build_mem_parser()
    args = parser.parse_args(argv)
    if (args.n is None) == (args.functional is None):
        parser.error("pass exactly one of --n or --functional")
    _reject_json_report(parser, args)
    from repro.errors import FaultPlanError
    from repro.reporting import format_bytes, sparkline
    try:
        res = _run_sort(args)
    except FaultPlanError as exc:
        out.write(f"repro mem: {exc}\n")
        return 2
    ledger = res.memory_ledger
    if ledger is None:
        out.write("repro mem: this run recorded no memory ledger\n")
        return 2
    doc = ledger.to_dict()
    if args.json:
        from repro.obs import canonical_json
        out.write(canonical_json(doc) + "\n")
        _write_mem_dashboard(args, doc, res, out)
        _maybe_write_trace(args, res, out)
        return 0
    out.write(res.summary() + "\n\n")
    rows = []
    for pool, p in doc["pools"].items():
        cap, head = p["capacity_bytes"], p["headroom_bytes"]
        rows.append([
            pool, format_bytes(p["peak_bytes"]),
            format_bytes(cap) if cap is not None else "-",
            format_bytes(head) if head is not None else "-",
            p["n_allocs"], p["n_frees"],
            "ok" if p["balance_bytes"] == 0
            else f"LEAK {p['balance_bytes']} B"])
    verdict = "balanced" if doc["balanced"] else "LEAKED"
    out.write(render_table(
        ["pool", "peak", "capacity", "headroom", "allocs", "frees",
         "verdict"], rows,
        title=f"memory occupancy ({ledger.n_allocs} allocs, "
              f"{ledger.n_frees} frees, {verdict})") + "\n")
    out.write("\noccupancy timelines (0 .. makespan, bucket maxima):\n")
    for pool in ledger.pools():
        vals = _sample_timeline(ledger.timeline(pool), res.elapsed,
                                args.width)
        out.write(f"  {pool:<8} {sparkline(vals)}  "
                  f"peak {format_bytes(ledger.peaks.get(pool, 0))}\n")
    if args.entries:
        rows = [[f"{e['t']:.6f}", e["op"], e["pool"], e["name"],
                 format_bytes(e["nbytes"]), format_bytes(e["balance"])]
                for e in doc["entries"]]
        out.write("\n" + render_table(
            ["t [s]", "op", "pool", "name", "size", "balance"], rows,
            title=f"ledger entries ({len(rows)})") + "\n")
    _write_mem_dashboard(args, doc, res, out)
    _maybe_write_trace(args, res, out)
    return 0


def _write_mem_dashboard(args, doc, res, out) -> None:
    from repro.reporting import write_memory_dashboard
    _write_html(args.html, "memory dashboard",
                lambda path: write_memory_dashboard(
                    doc, path,
                    title=f"{res.approach} on {res.platform_name}"),
                out)


def _run_flows(argv, out) -> int:
    parser = build_flows_parser()
    args = parser.parse_args(argv)
    if (args.n is None) == (args.functional is None):
        parser.error("pass exactly one of --n or --functional")
    _reject_json_report(parser, args)
    from repro.errors import FaultPlanError
    from repro.obs.flows import (attribute_contention, concurrency_series,
                                 link_peaks, link_timelines)
    from repro.reporting import format_bytes, sparkline
    try:
        res = _run_sort(args)
    except FaultPlanError as exc:
        out.write(f"repro flows: {exc}\n")
        return 2
    ledger = res.flow_ledger
    if ledger is None:
        out.write("repro flows: this run recorded no flow ledger\n")
        return 2
    doc = ledger.to_dict()
    if args.json:
        from repro.obs import canonical_json
        out.write(canonical_json(doc) + "\n")
        _write_flows_dashboard(args, doc, res, out)
        _maybe_write_trace(args, res, out)
        return 0
    out.write(res.summary() + "\n\n")
    peaks = link_peaks(doc)
    rows = []
    for name in sorted(peaks):
        d = peaks[name]
        cap = d["capacity_bytes_per_s"]
        rows.append([
            name,
            format_bytes(cap) + "/s" if cap is not None else "-",
            format_bytes(d["peak_bytes_per_s"]) + "/s",
            f"{d['peak_utilization']:.0%}"])
    contention = attribute_contention(doc)
    out.write(render_table(
        ["link", "capacity", "peak rate", "peak util"], rows,
        title=f"interconnect ({ledger.n_flows} flows, "
              f"{format_bytes(ledger.bytes_moved)} moved, "
              f"{contention['total_contention_s']:.6f} s contention)")
        + "\n")
    out.write("\nlink bandwidth timelines (0 .. makespan, "
              "bucket maxima):\n")
    for name, pts in link_timelines(doc).items():
        vals = _sample_timeline(pts, res.elapsed, args.width)
        out.write(f"  {name:<10} {sparkline(vals)}  "
                  f"peak {format_bytes(peaks[name]['peak_bytes_per_s'])}"
                  "/s\n")
    conc = concurrency_series(doc)
    vals = _sample_timeline(conc, res.elapsed, args.width)
    out.write(f"  {'in flight':<10} {sparkline(vals)}  "
              f"peak {max((c for _, c in conc), default=0)} flows\n")
    contended = sorted(contention["flows"],
                       key=lambda f: (-f["slowdown_s"], f["id"]))
    rows = []
    for f in contended[:args.top]:
        charges = sorted(((k, v) for k, v in f["parts"].items()
                          if k != "isolation" and v > 0.0),
                         key=lambda kv: -kv[1])
        top = ", ".join(f"{k} {v:.6f}s" for k, v in charges[:3])
        rows.append([f["id"], f["label"],
                     "-" if f["span"] is None else f["span"],
                     f"{f['duration_s']:.6f}", f"{f['isolation_s']:.6f}",
                     f"{f['slowdown_s']:.6f}", top or "-"])
    out.write("\n" + render_table(
        ["id", "flow", "span", "duration [s]", "isolation [s]",
         "slowdown [s]", "charged to"], rows,
        title=f"top contended flows ({len(rows)} of "
              f"{contention['n_flows']})") + "\n")
    _write_flows_dashboard(args, doc, res, out)
    _maybe_write_trace(args, res, out)
    return 0


def _write_flows_dashboard(args, doc, res, out) -> None:
    from repro.reporting import write_flows_dashboard
    _write_html(args.html, "flows dashboard",
                lambda path: write_flows_dashboard(
                    doc, path,
                    title=f"{res.approach} on {res.platform_name}"),
                out)


def _run_plan_mem(argv, out) -> int:
    args = build_plan_mem_parser().parse_args(argv)
    from repro.errors import PlanError
    from repro.obs import canonical_json, plan_memory
    from repro.obs.memory import MEMPLAN_SCHEMA
    from repro.reporting import format_bytes
    platform = get_platform(args.platform)
    kw = dict(approach=args.approach, n_streams=args.streams,
              batch_size=int(args.batch_size) if args.batch_size else None,
              pinned_elements=int(args.pinned))
    try:
        memplan = plan_memory(platform, int(args.n), n_gpus=args.gpus,
                              **kw)
    except PlanError as exc:
        if args.json:
            out.write(canonical_json(
                {"schema": MEMPLAN_SCHEMA, "ok": False,
                 "rejected": str(exc)}) + "\n")
        else:
            out.write(f"repro plan-mem: REJECTED: {exc}\n")
        return 2
    conf = None
    if args.verify and memplan["ok"]:
        from repro.obs import measured_peaks, memory_conformance
        res = HeterogeneousSorter(platform, n_gpus=args.gpus,
                                  **kw).sort(n=int(args.n),
                                             approach=args.approach)
        conf = memory_conformance(memplan, measured_peaks(res),
                                  tolerance=args.tolerance)
    if args.json:
        doc = dict(memplan)
        if conf is not None:
            doc["conformance"] = conf
        out.write(canonical_json(doc) + "\n")
        return 0 if memplan["ok"] and (conf is None or conf["ok"]) else 1
    pt = memplan["point"]
    workers = ", ".join(f"gpu{g[3:]}x{c}" if g.startswith("gpu") else g
                        for g, c in memplan["workers"].items())
    out.write(f"plan: {pt['approach']} on {pt['platform']}, "
              f"n={pt['n']:.3g}, batch={pt['batch_size']:.3g}, "
              f"streams={pt['n_streams']}, "
              f"pinned={pt['pinned_elements']:.3g}\n"
              f"workers: {workers or 'none'} -- "
              f"{format_bytes(memplan['per_worker']['device_bytes'])} "
              f"device + "
              f"{format_bytes(memplan['per_worker']['pinned_bytes'])} "
              f"pinned each\n\n")
    rows = [[pool, format_bytes(p["predicted_bytes"]),
             format_bytes(p["capacity_bytes"]),
             format_bytes(p["headroom_bytes"]),
             "ok" if p["ok"] else "OVERSUBSCRIBED"]
            for pool, p in memplan["pools"].items()]
    out.write(render_table(
        ["pool", "predicted peak", "capacity", "headroom", "verdict"],
        rows, title="predicted peak occupancy") + "\n")
    for v in memplan["violations"]:
        out.write(f"  VIOLATION: {v}\n")
    if not memplan["ok"]:
        out.write("plan-mem: configuration does NOT fit\n")
        return 1
    if args.verify and conf is not None:
        rows = [[pool, format_bytes(p["predicted_bytes"]),
                 format_bytes(p["measured_bytes"]),
                 f"{p['residual_bytes']:+d} B",
                 f"{p['rel']:+.2%}" if p["rel"] is not None else "-",
                 "ok" if p["ok"] else "MISMATCH"]
                for pool, p in conf["pools"].items()]
        out.write("\n" + render_table(
            ["pool", "predicted", "measured", "residual", "rel",
             "verdict"], rows,
            title=f"predicted vs measured peaks "
                  f"(tolerance {conf['tolerance']:g})") + "\n")
        if not conf["ok"]:
            out.write("plan-mem: measured peaks deviate from the "
                      "prediction\n")
            return 1
        out.write("plan-mem: measured peaks match the prediction\n")
        return 0
    out.write("plan-mem: configuration fits\n")
    return 0


def _load_archive_or_exit(path, out, prog: str):
    from repro.errors import ArchiveError
    from repro.obs import load_archive
    try:
        return load_archive(path)
    except OSError as exc:
        out.write(f"{prog}: cannot read archive: {exc}\n")
    except ArchiveError as exc:
        out.write(f"{prog}: invalid archive: {exc}\n")
    return None


def _pick_entry(entries, token: str, out):
    """The unique entry whose id starts with ``token`` (or None + a
    message listing the ambiguity)."""
    hits = [e for e in entries if e["entry"].startswith(token)]
    if len(hits) == 1:
        return hits[0]
    if not hits:
        out.write(f"repro archive: no entry matches {token!r}\n")
    else:
        ids = ", ".join(e["entry"] for e in hits[:5])
        out.write(f"repro archive: {token!r} is ambiguous "
                  f"({len(hits)} entries: {ids}...)\n")
    return None


def _run_archive_cmd(argv, out) -> int:
    args = build_archive_parser().parse_args(argv)
    from repro.errors import ArchiveError
    from repro.obs import canonical_json, compare_entries, validate_archive
    entries = _load_archive_or_exit(args.archive, out, "repro archive")
    if entries is None:
        return 2
    if args.diff:
        a = _pick_entry(entries, args.diff[0], out)
        b = _pick_entry(entries, args.diff[1], out)
        if a is None or b is None:
            return 2
        try:
            diff = compare_entries(a, b, tolerance=args.tolerance)
        except ArchiveError as exc:
            out.write(f"repro archive: {exc}\n")
            return 2
        if args.json:
            out.write(canonical_json(diff) + "\n")
        else:
            from repro.obs import render_diff
            out.write(render_diff(diff, min_rel=args.min_rel) + "\n")
        return 0
    try:
        summary = validate_archive(args.archive)
    except ArchiveError as exc:
        out.write(f"repro archive: INVALID: {exc}\n")
        return 1
    if args.json:
        doc = dict(summary)
        if args.list:
            doc["entries"] = [
                {"entry": e["entry"], "fingerprint": e["fingerprint"],
                 "source": e["source"], "label": e["label"],
                 "metrics": e["metrics"]} for e in entries]
        out.write(canonical_json(doc) + "\n")
        return 0
    srcs = ", ".join(f"{s} x{c}" for s, c in summary["sources"].items())
    out.write(f"archive OK: {summary['n_entries']} entries, "
              f"{summary['n_fingerprints']} workload fingerprint(s) "
              f"[{srcs}]\n")
    if args.list:
        rows = []
        for e in entries:
            mk = e["metrics"].get("makespan_s")
            rows.append([e["entry"], e["fingerprint"][:8], e["source"],
                         e["label"],
                         f"{mk:.6f}" if mk is not None else "-",
                         len(e["verdicts"])])
        out.write(render_table(
            ["entry", "fingerprint", "source", "label", "makespan [s]",
             "verdicts"], rows, title="archived runs (append order)")
            + "\n")
    return 0


def _run_trends_cmd(argv, out) -> int:
    args = build_trends_parser().parse_args(argv)
    from repro.obs import canonical_json, trend_summary
    entries = _load_archive_or_exit(args.archive, out, "repro trends")
    if entries is None:
        return 2
    fp = args.fingerprint
    if fp is not None:
        full = sorted({e["fingerprint"] for e in entries
                       if e["fingerprint"].startswith(fp)})
        if len(full) != 1:
            out.write(f"repro trends: fingerprint {fp!r} matches "
                      f"{len(full)} workload(s)\n")
            return 2
        fp = full[0]
    trends = trend_summary(entries, args.metric or None,
                           alpha=args.ewma, k=args.k,
                           min_rel=args.min_rel, fingerprint=fp)
    if args.json:
        out.write(canonical_json(trends) + "\n")
    else:
        from repro.reporting import sparkline
        out.write(f"trends: {trends['n_fingerprints']} workload(s), "
                  f"{trends['n_series']} series, "
                  f"{trends['n_changepoints']} changepoint(s), "
                  f"{trends['n_proposals']} re-baseline proposal(s)\n")
        for fprint, blk in trends["fingerprints"].items():
            out.write(f"\n{blk['label'] or fprint}  "
                      f"[{fprint[:8]}] -- {blk['n_entries']} run(s)\n")
            for metric, tr in blk["metrics"].items():
                marks = [c["index"] for c in tr["changepoints"]]
                spark = sparkline(tr["values"], marks)
                out.write(f"  {metric:<22} {spark}  "
                          f"median {tr['median']:.6g}, "
                          f"last {tr['last']:.6g}\n")
                for c in tr["changepoints"]:
                    out.write(f"    changepoint at run {c['index'] + 1}: "
                              f"{c['before']:.6g} -> {c['after']:.6g} "
                              f"({c['ratio']:.2f}x, "
                              f"score {c['score']:.1f})\n")
                for i in tr["anomalies"]:
                    out.write(f"    anomaly at run {i + 1}: "
                              f"{tr['values'][i]:.6g}\n")
                if tr["ratchet"]:
                    out.write(f"    RATCHET: "
                              f"{tr['ratchet']['message']}\n")
    if args.html:
        from repro.reporting import write_trend_dashboard
        _write_html(args.html, "trend dashboard",
                    lambda path: write_trend_dashboard(trends, path), out)
    return 0


def _run_chaos(argv, out) -> int:
    parser = build_chaos_parser()
    args = parser.parse_args(argv)
    if (args.fault_seed is None) == (args.plan is None):
        parser.error("pass exactly one of --fault-seed or --plan")
    from repro.errors import FaultPlanError, ReproError
    from repro.sim.faults import FaultPlan
    if args.plan is not None:
        try:
            plan = FaultPlan.load(args.plan)
        except FaultPlanError as exc:
            out.write(f"repro chaos: {exc}\n")
            return 2
    else:
        plan = FaultPlan.random(args.fault_seed, n_gpus=args.gpus)
    if args.plan_out:
        with _writes(args.plan_out, "fault plan"):
            plan.save(args.plan_out)
        if not args.json:     # keep --json stdout pure JSON
            out.write(f"wrote fault plan to {args.plan_out}\n")

    sorter = _make_sorter(args)
    sinks: list = []
    if args.events:
        from repro.obs import JsonlSink
        with _writes(args.events, "event log"):
            sinks.append(JsonlSink(args.events))
    data = generate(args.functional, args.distribution, seed=args.seed)
    verdict = {"schema": "repro.chaos/v1", "plan": plan.to_dict(),
               "approach": args.approach, "platform": args.platform,
               "n": args.functional}
    try:
        res = sorter.sort(data, approach=args.approach, sinks=sinks,
                          faults=plan)
    except ReproError as exc:
        verdict.update(survived=False, error=type(exc).__name__,
                       message=str(exc))
        if args.json:
            from repro.obs import canonical_json
            out.write(canonical_json(verdict) + "\n")
        else:
            out.write(f"chaos: run FAILED with {type(exc).__name__}: "
                      f"{exc}\n")
        return 3
    verdict.update(survived=True, elapsed_s=res.elapsed,
                   faults=res.meta.get("faults", {"fired": 0}),
                   degrades=len(res.meta.get("degrades", [])))
    if args.json:
        from repro.obs import canonical_json
        out.write(canonical_json(verdict) + "\n")
    else:
        fired = verdict["faults"].get("fired", 0)
        out.write(f"chaos: survived -- output verified sorted "
                  f"({fired} fault(s) fired, "
                  f"{verdict['degrades']} degradation(s), "
                  f"elapsed {res.elapsed:.6f} s)\n")
        if args.events:
            out.write(f"wrote event log to {args.events}\n")
    if args.archive:
        from repro.obs import entry_from_result
        gate = {"gate": "chaos", "ok": True, "failures": []}
        entry = entry_from_result(
            res, source="chaos",
            label=f"chaos {args.approach} n={args.functional}",
            verdicts=[gate])
        _maybe_archive(args.archive, [entry], out)
    return 0


def _run_watch(argv, out) -> int:
    args = build_watch_parser().parse_args(argv)
    from repro.errors import EventLogError
    from repro.obs import (LiveAggregator, canonical_json, read_events,
                           validate_events)
    from repro.reporting import render_plain_line, render_snapshot
    try:
        _, events = read_events(args.events)
        validate_events(events)
    except OSError as exc:
        out.write(f"repro watch: cannot read event log: {exc}\n")
        return 2
    except EventLogError as exc:
        out.write(f"repro watch: invalid event log: {exc}\n")
        return 2
    agg = LiveAggregator()
    next_t = args.interval
    for ev in events:
        agg.emit(ev)
        if not args.json and ev.t >= next_t:
            out.write(render_plain_line(agg.snapshot()) + "\n")
            while next_t <= ev.t:
                next_t += args.interval
    if args.json:
        out.write(canonical_json(agg.snapshot()) + "\n")
    else:
        out.write(render_snapshot(agg.snapshot()) + "\n")
    return 0


def _build_sinks(args, out) -> list:
    """Streaming-telemetry sinks for the default run mode (--live /
    --events / --deadline); empty when none was requested."""
    if not (args.live or args.events or args.deadline is not None):
        return []
    from repro.obs import JsonlSink, TtySink, WatchdogSink
    sinks: list = [WatchdogSink(deadline_s=args.deadline)]
    if args.events:
        with _writes(args.events, "event log"):
            sinks.append(JsonlSink(args.events))
    if args.live:
        from repro.model.lowerbound import measure_bline_throughput
        model = measure_bline_throughput(get_platform(args.platform),
                                         n_gpus=args.gpus)
        # ~20 plain progress lines over the model-predicted duration, so
        # non-TTY output is useful at any run scale.
        n = int(args.n) if args.n is not None else args.functional
        sinks.append(TtySink(out=out, model_slope=model.slope,
                             plain_interval_s=model.seconds(n) / 20))
    return sinks


def _load_faults(args):
    """The --faults plan (or None).  A missing/foreign file raises
    :class:`~repro.errors.FaultPlanError` (exit 2 at the call sites)."""
    if getattr(args, "faults", None) is None:
        return None
    from repro.sim.faults import FaultPlan
    return FaultPlan.load(args.faults)


def _make_sorter(args) -> HeterogeneousSorter:
    platform = get_platform(args.platform)
    return HeterogeneousSorter(
        platform, n_gpus=args.gpus,
        approach=args.approach,
        n_streams=args.streams,
        batch_size=int(args.batch_size) if args.batch_size else None,
        pinned_elements=int(args.pinned),
        memcpy_threads=args.memcpy_threads)


def _run_one(args, out) -> int:
    sorter = _make_sorter(args)
    sinks = _build_sinks(args, out)
    from repro.errors import FaultPlanError
    try:
        faults = _load_faults(args)
    except FaultPlanError as exc:
        out.write(f"repro: {exc}\n")
        return 2
    if args.functional is not None:
        data = generate(args.functional, args.distribution,
                        seed=args.seed)
        res = sorter.sort(data, approach=args.approach, sinks=sinks,
                          faults=faults)
    else:
        res = sorter.sort(n=int(args.n), approach=args.approach,
                          sinks=sinks, faults=faults)
    if args.json:
        from repro.obs import canonical_json
        out.write(canonical_json(res.to_dict()) + "\n")
        _maybe_write_trace(args, res, out)
        if args.events:
            out.write(f"wrote event log to {args.events}\n")
        _archive_run(args, res, out)
        return 0
    if args.functional is not None:
        out.write("output validated: sorted permutation of the input\n")
    out.write(res.summary() + "\n")
    if args.gantt:
        out.write(render_gantt(res.trace) + "\n")
    _maybe_write_trace(args, res, out)
    if args.events:
        out.write(f"wrote event log to {args.events}\n")
    _archive_run(args, res, out)
    return 0


def _archive_run(args, res, out) -> None:
    if not getattr(args, "archive", None):
        return
    from repro.obs import entry_from_result
    entry = entry_from_result(res, source="run", label=args.approach)
    _maybe_archive(args.archive, [entry], out)


def _maybe_write_trace(args, res, out) -> None:
    if args.trace_json:
        from repro.reporting import write_chrome_trace
        counters = res.recorder
        ledger = getattr(res, "flow_ledger", None)
        if ledger is not None:
            # Merge the interconnect observatory's link-bandwidth step
            # series (`link.<name>.bw_bytes_per_s`) into the recorder's
            # counter tracks for the Perfetto export.
            from repro.obs.flows import flow_rate_counters
            series = dict(getattr(counters, "series", None) or {})
            series.update(flow_rate_counters(ledger.to_dict()))
            counters = series
        with _writes(args.trace_json, "trace JSON"):
            count = write_chrome_trace(res.trace, args.trace_json,
                                       counters=counters)
        out.write(f"wrote {count} trace events to {args.trace_json}\n")
    if args.report:
        from repro.obs import run_report, write_report
        with _writes(args.report, "run report"):
            write_report(run_report(res), args.report)
        out.write(f"wrote run report to {args.report}\n")


def _maybe_archive(path, entries, out) -> None:
    """Append run entries to a ``repro.archive/v1`` archive (+ manifest)
    and report what was new; the shared exit ramp of every --archive
    flag."""
    if not path:
        return
    from repro.errors import ArchiveError
    from repro.obs import append_entries
    with _writes(path, "archive"):
        try:
            fresh = append_entries(path, entries)
        except ArchiveError as exc:
            raise SystemExit(
                f"repro: cannot append to archive {path!r}: {exc}"
            ) from None
    skipped = len(entries) - len(fresh)
    note = f" ({skipped} already archived)" if skipped else ""
    out.write(f"archived {len(fresh)} entr"
              f"{'y' if len(fresh) == 1 else 'ies'} to {path}{note}\n")


def _run_sort(args):
    """Run one sort for the causal subcommands (timing or functional)."""
    sorter = _make_sorter(args)
    faults = _load_faults(args)
    if args.functional is not None:
        data = generate(args.functional, args.distribution, seed=args.seed)
        return sorter.sort(data, approach=args.approach, faults=faults)
    return sorter.sort(n=int(args.n), approach=args.approach, faults=faults)


def _run_critical_path(argv, out) -> int:
    parser = build_critical_path_parser()
    args = parser.parse_args(argv)
    if (args.n is None) == (args.functional is None):
        parser.error("pass exactly one of --n or --functional")
    _reject_json_report(parser, args)
    from repro.obs import critical_path_report
    res = _run_sort(args)
    graph = res.causal_graph()
    report = critical_path_report(graph)
    if args.json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        _maybe_write_trace(args, res, out)
        return 0
    out.write(res.summary() + "\n\n")
    makespan = report["makespan"] or 1.0
    out.write(render_table(
        ["category", "time [ms]", "% of makespan"],
        [[c, f"{v * 1e3:.4f}", f"{v / makespan:.1%}"]
         for c, v in report["by_category"].items()],
        title=f"critical path: {report['n_spans']} of "
              f"{report['n_trace_spans']} spans, "
              f"{report['duration'] * 1e3:.4f} ms "
              f"(= makespan), wait {report['wait'] * 1e3:.4f} ms") + "\n")
    out.write("\n" + render_table(
        ["lane", "time [ms]", "% of makespan"],
        [[l, f"{v * 1e3:.4f}", f"{v / makespan:.1%}"]
         for l, v in report["by_lane"].items()],
        title="critical path by lane") + "\n")
    steps = report["path"]
    shown = steps if args.limit <= 0 else steps[:args.limit]
    rows = [[s["id"], s["category"], s["label"], s["lane"],
             f"{s['start'] * 1e3:.4f}", f"{s['duration'] * 1e3:.4f}",
             f"{s['wait_before'] * 1e3:.4f}"] for s in shown]
    title = "path steps" if len(shown) == len(steps) else \
        f"path steps (first {len(shown)} of {len(steps)})"
    out.write("\n" + render_table(
        ["id", "category", "label", "lane", "start [ms]", "dur [ms]",
         "wait [ms]"], rows, title=title) + "\n")
    if args.gantt:
        out.write("\n" + render_gantt(res.trace,
                                      critical=graph.critical_path(),
                                      slack=graph.slack()) + "\n")
    _maybe_write_trace(args, res, out)
    return 0


def _parse_scales(pairs, error) -> dict[str, float]:
    scale: dict[str, float] = {}
    for item in pairs:
        cat, sep, k = item.partition("=")
        if not sep:
            error(f"--scale expects CAT=K, got {item!r}")
        try:
            scale[cat] = float(k)
        except ValueError:
            error(f"--scale factor must be a number, got {k!r}")
    return scale


def _run_whatif(argv, out) -> int:
    parser = build_whatif_parser()
    args = parser.parse_args(argv)
    if (args.n is None) == (args.functional is None):
        parser.error("pass exactly one of --n or --functional")
    _reject_json_report(parser, args)
    from repro.obs import sensitivity_report, whatif_report
    scale = _parse_scales(args.scale, parser.error)
    res = _run_sort(args)
    graph = res.causal_graph()
    if scale:
        report = whatif_report(graph, scale)
        if args.json:
            out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
            return 0
        out.write(res.summary() + "\n\n")
        # One combined prediction row labelled with every scaled category.
        label = " ".join(f"{c}x{k:g}" for c, k in report["scale"].items())
        rows = [[label, f"{report['measured_makespan'] * 1e3:.4f}",
                 f"{report['predicted_makespan'] * 1e3:.4f}",
                 f"{report['delta'] * 1e3:+.4f}",
                 f"{report['speedup']:.3f}"]]
        out.write(render_table(
            ["scenario", "measured [ms]", "predicted [ms]", "delta [ms]",
             "speedup"], rows, title="what-if prediction") + "\n")
        return 0
    report = sensitivity_report(graph)
    if args.json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        return 0
    out.write(res.summary() + "\n\n")
    rows = [[r["category"], f"{r['factor']:g}",
             f"{r['predicted_makespan'] * 1e3:.4f}",
             f"{r['delta'] * 1e3:+.4f}", f"{r['speedup']:.3f}"]
            for r in report["rows"]]
    out.write(render_table(
        ["category", "factor", "predicted [ms]", "delta [ms]", "speedup"],
        rows,
        title=f"what-if sensitivity (measured "
              f"{report['measured_makespan'] * 1e3:.4f} ms)") + "\n")
    return 0


def _run_diff(argv, out) -> int:
    parser = build_diff_parser()
    args = parser.parse_args(argv)
    from repro.obs import diff_reports, load_report, render_diff
    try:
        a = load_report(args.report_a)
        b = load_report(args.report_b)
    except OSError as exc:
        out.write(f"repro diff: cannot read report: {exc}\n")
        return 2
    except json.JSONDecodeError as exc:
        out.write(f"repro diff: report is not valid JSON: {exc}\n")
        return 2
    diff = diff_reports(a, b, tolerance=args.tolerance)
    if args.json:
        out.write(json.dumps(diff, indent=2, sort_keys=True) + "\n")
    else:
        out.write(render_diff(diff, min_rel=args.min_rel) + "\n")
    if args.fail_on_regression and (diff["regression"]
                                    or diff["structural_change"]):
        return 1
    return 0


def _run_sweep_cmd(argv, out) -> int:
    args = build_sweep_parser().parse_args(argv)
    from repro.obs.sweep import (GRIDS, run_sweep, sweep_points,
                                 write_ledger)
    points = sweep_points(args.grid)
    model_n = (int(args.model_n) if args.model_n is not None
               else GRIDS[args.grid][1])
    progress = None if args.quiet else \
        (lambda line: out.write(line + "\n"))
    records = run_sweep(points, model_n=model_n, progress=progress)
    with _writes(args.ledger, "sweep ledger"):
        write_ledger(records, args.ledger)
    out.write(f"wrote {len(records)} ledger lines to {args.ledger}\n")
    if args.archive:
        from repro.obs import entry_from_ledger
        _maybe_archive(args.archive,
                       [entry_from_ledger(r) for r in records], out)
    return 0


def _run_conformance_cmd(argv, out) -> int:
    args = build_conformance_parser().parse_args(argv)
    from repro.errors import LedgerError
    from repro.obs import canonical_json, conformance_summary, load_ledger
    try:
        records = load_ledger(args.ledger)
    except (OSError, LedgerError) as exc:
        out.write(f"repro conformance: cannot load ledger: {exc}\n")
        return 2
    summary = conformance_summary(records, z_threshold=args.z_threshold,
                                  rel_tolerance=args.tolerance)
    if args.json:
        out.write(canonical_json(summary) + "\n")
    else:
        rows = []
        for key, g in summary["groups"].items():
            paper = (f"{g['paper_slope'] * 1e9:.3f}"
                     if g["paper_slope"] else "-")
            rows.append([key, g["n_runs"],
                         f"{g['fitted_slope'] * 1e9:.3f}",
                         f"{g['fitted_intercept'] * 1e3:.2f}",
                         f"{g['r2']:.5f}",
                         f"{g['model_slope'] * 1e9:.3f}", paper,
                         len(g["anomalies"])])
        out.write(render_table(
            ["group", "runs", "fit [ns/el]", "icpt [ms]", "R^2",
             "model [ns/el]", "paper [ns/el]", "anomalies"], rows,
            title=f"conformance: {summary['n_runs']} runs, "
                  f"{summary['n_groups']} groups, mean model/measured "
                  f"{summary['mean_slowdown']:.3f}") + "\n")
        for a in summary["anomalies"]:
            out.write(f"  ANOMALY {a['run_id']} ({a['group']}): measured "
                      f"{a['measured_s']:.4f} s vs fit "
                      f"{a['expected_s']:.4f} s "
                      f"({a['deviation_s']:+.4f} s, z={a['z']:+.2f}, "
                      f"{'/'.join(a['flags'])})\n")
    if args.html:
        from repro.reporting import write_dashboard
        with _writes(args.html, "dashboard"):
            write_dashboard(records, summary, args.html)
        out.write(f"wrote dashboard to {args.html}\n")
    if args.fail_on_anomaly and summary["n_anomalies"] > 0:
        out.write(f"FAIL: {summary['n_anomalies']} anomalous run(s)\n")
        return 1
    return 0


def _reject_json_report(parser, args) -> None:
    """One-line, non-zero rejection of --json together with --report
    (one run, one machine-readable output -- they would race on who
    owns the canonical document)."""
    if getattr(args, "json", False) and getattr(args, "report", None):
        parser.error("--json and --report are mutually exclusive; "
                     "--json prints the document, --report writes it")


def _run_metrics(argv, out) -> int:
    parser = build_metrics_parser()
    args = parser.parse_args(argv)
    if (args.n is None) == (args.functional is None):
        parser.error("pass exactly one of --n or --functional")
    _reject_json_report(parser, args)
    sorter = _make_sorter(args)
    profiling = args.profile and args.functional is not None
    if profiling:
        from repro.obs import enable_profiling, reset_profiling
        reset_profiling()
        enable_profiling()
    try:
        if args.functional is not None:
            data = generate(args.functional, args.distribution,
                            seed=args.seed)
            res = sorter.sort(data, approach=args.approach)
        else:
            res = sorter.sort(n=int(args.n), approach=args.approach)
    finally:
        if profiling:
            from repro.obs import disable_profiling
            disable_profiling()
    if args.json:
        from repro.obs import canonical_json
        out.write(canonical_json(res.metrics) + "\n")
        return 0
    out.write(res.summary() + "\n\n")
    out.write(render_metrics_table(res.metrics) + "\n")
    if profiling:
        from repro.obs import profiling_stats
        rows = [[s.name, s.calls, f"{s.total_s * 1e3:.3f}",
                 f"{s.mean_s * 1e6:.1f}", f"{s.elements_per_s:.3g}"]
                for s in sorted(profiling_stats().values(),
                                key=lambda s: -s.total_s)]
        if rows:
            out.write("\n" + render_table(
                ["kernel", "calls", "total [ms]", "mean [us]", "elem/s"],
                rows, title="kernel wall-clock profile (real numpy)") + "\n")
    _maybe_write_trace(args, res, out)
    return 0


def _run_compare(args, out) -> int:
    platform = get_platform(args.platform)
    n = int(args.n)
    ref = cpu_reference_sort(platform, n=n)
    runs = [{"approach": "cpu reference", "elapsed_s": ref.elapsed,
             "speedup": 1.0}]
    for approach in ("blinemulti", "pipedata", "pipemerge"):
        for threads in ((1, args.memcpy_threads)
                        if args.memcpy_threads > 1 else (1,)):
            sorter = _make_sorter(args).config.with_(
                approach=approach, memcpy_threads=threads)
            res = HeterogeneousSorter(
                platform, n_gpus=args.gpus, config=sorter).sort(
                n=n, approach=approach)
            tag = approach + ("+parmemcpy" if threads > 1 else "")
            runs.append({"approach": tag, "elapsed_s": res.elapsed,
                         "speedup": ref.elapsed / res.elapsed})
    if args.json:
        from repro.obs import canonical_json
        doc = {"schema": "repro.compare/v1", "platform": platform.name,
               "n": n, "n_gpus": args.gpus, "runs": runs}
        out.write(canonical_json(doc) + "\n")
        return 0
    rows = [[r["approach"], f"{r['elapsed_s']:.3f}",
             f"{r['speedup']:.2f}"] for r in runs]
    out.write(render_table(["approach", "time [s]", "speedup"], rows,
                           title=f"{platform.name}, n={n:.2e}") + "\n")
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "metrics":
        return _run_metrics(argv[1:], out)
    if argv and argv[0] == "critical-path":
        return _run_critical_path(argv[1:], out)
    if argv and argv[0] == "whatif":
        return _run_whatif(argv[1:], out)
    if argv and argv[0] == "diff":
        return _run_diff(argv[1:], out)
    if argv and argv[0] == "sweep":
        return _run_sweep_cmd(argv[1:], out)
    if argv and argv[0] == "conformance":
        return _run_conformance_cmd(argv[1:], out)
    if argv and argv[0] == "watch":
        return _run_watch(argv[1:], out)
    if argv and argv[0] == "chaos":
        return _run_chaos(argv[1:], out)
    if argv and argv[0] == "archive":
        return _run_archive_cmd(argv[1:], out)
    if argv and argv[0] == "trends":
        return _run_trends_cmd(argv[1:], out)
    if argv and argv[0] == "mem":
        return _run_mem(argv[1:], out)
    if argv and argv[0] == "flows":
        return _run_flows(argv[1:], out)
    if argv and argv[0] == "plan-mem":
        return _run_plan_mem(argv[1:], out)
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:], out)
    parser = build_parser()
    args = parser.parse_args(argv)
    if (args.n is None) == (args.functional is None):
        parser.error("pass exactly one of --n or --functional")
    _reject_json_report(parser, args)
    if args.compare:
        if args.n is None:
            parser.error("--compare needs --n")
        return _run_compare(args, out)
    return _run_one(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
