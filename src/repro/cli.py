"""Command-line interface: run heterogeneous sorts from the shell.

Examples
--------
Paper-scale timing run (Fig. 9's fastest configuration)::

    python -m repro --n 5e9 --approach pipemerge --batch-size 5e8 \
        --memcpy-threads 8

Functional run with validation and a timeline::

    python -m repro --functional 200000 --batch-size 50000 --gantt

Compare every approach at one size::

    python -m repro --n 2e9 --batch-size 2e8 --compare

Observability report (utilization, overlap matrix, counters)::

    python -m repro metrics --n 2e9 --batch-size 2e8 --approach pipedata
"""

from __future__ import annotations

import argparse
import sys

from repro.hetsort import HeterogeneousSorter, cpu_reference_sort
from repro.hetsort.config import Approach
from repro.hw.platforms import get_platform
from repro.reporting import render_gantt, render_metrics_table, render_table
from repro.workloads import generate

__all__ = ["main", "build_parser", "build_metrics_parser"]


def _add_run_options(p: argparse.ArgumentParser) -> None:
    """Options shared by the default run mode and `metrics`."""
    p.add_argument("--platform", default="PLATFORM1",
                   help="PLATFORM1 (GP100) or PLATFORM2 (2x K40m)")
    p.add_argument("--gpus", type=int, default=1, help="GPUs to use")
    p.add_argument("--approach", default="pipemerge",
                   choices=Approach.ALL)
    p.add_argument("--n", type=float, default=None,
                   help="timing-only input size (e.g. 5e9)")
    p.add_argument("--functional", type=int, default=None, metavar="N",
                   help="really sort N random doubles and validate")
    p.add_argument("--distribution", default="uniform",
                   help="input distribution for --functional")
    p.add_argument("--batch-size", type=float, default=None,
                   help="b_s elements per batch (default: maximal)")
    p.add_argument("--streams", type=int, default=2,
                   help="n_s streams per GPU")
    p.add_argument("--pinned", type=float, default=1e6,
                   help="p_s pinned staging elements")
    p.add_argument("--memcpy-threads", type=int, default=1,
                   help="> 1 enables PARMEMCPY")
    p.add_argument("--trace-json", metavar="PATH", default=None,
                   help="write a chrome://tracing / Perfetto JSON "
                        "(spans + counter tracks)")
    p.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort",
        description="Hybrid CPU/GPU sorting on a simulated platform "
                    "(IPPS 2018 reproduction).")
    _add_run_options(p)
    p.add_argument("--compare", action="store_true",
                   help="run every approach plus the CPU reference")
    p.add_argument("--gantt", action="store_true",
                   help="print an ASCII timeline of the run")
    return p


def build_metrics_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort metrics",
        description="Run one sort and report its observability metrics: "
                    "per-lane utilization, the category-overlap matrix, "
                    "overlap efficiency, link goodput and live counters.")
    _add_run_options(p)
    p.add_argument("--profile", action="store_true",
                   help="wall-clock the real numpy kernels "
                        "(functional runs; never changes the timeline)")
    return p


def _make_sorter(args) -> HeterogeneousSorter:
    platform = get_platform(args.platform)
    return HeterogeneousSorter(
        platform, n_gpus=args.gpus,
        approach=args.approach,
        n_streams=args.streams,
        batch_size=int(args.batch_size) if args.batch_size else None,
        pinned_elements=int(args.pinned),
        memcpy_threads=args.memcpy_threads)


def _run_one(args, out) -> int:
    sorter = _make_sorter(args)
    if args.functional is not None:
        data = generate(args.functional, args.distribution,
                        seed=args.seed)
        res = sorter.sort(data, approach=args.approach)
        out.write("output validated: sorted permutation of the input\n")
    else:
        res = sorter.sort(n=int(args.n), approach=args.approach)
    out.write(res.summary() + "\n")
    if args.gantt:
        out.write(render_gantt(res.trace) + "\n")
    _maybe_write_trace(args, res, out)
    return 0


def _maybe_write_trace(args, res, out) -> None:
    if args.trace_json:
        from repro.reporting import write_chrome_trace
        count = write_chrome_trace(res.trace, args.trace_json,
                                   counters=res.recorder)
        out.write(f"wrote {count} trace events to {args.trace_json}\n")


def _run_metrics(argv, out) -> int:
    args = build_metrics_parser().parse_args(argv)
    if (args.n is None) == (args.functional is None):
        build_metrics_parser().error("pass exactly one of --n or "
                                     "--functional")
    sorter = _make_sorter(args)
    profiling = args.profile and args.functional is not None
    if profiling:
        from repro.obs import enable_profiling, reset_profiling
        reset_profiling()
        enable_profiling()
    try:
        if args.functional is not None:
            data = generate(args.functional, args.distribution,
                            seed=args.seed)
            res = sorter.sort(data, approach=args.approach)
        else:
            res = sorter.sort(n=int(args.n), approach=args.approach)
    finally:
        if profiling:
            from repro.obs import disable_profiling
            disable_profiling()
    out.write(res.summary() + "\n\n")
    out.write(render_metrics_table(res.metrics) + "\n")
    if profiling:
        from repro.obs import profiling_stats
        rows = [[s.name, s.calls, f"{s.total_s * 1e3:.3f}",
                 f"{s.mean_s * 1e6:.1f}", f"{s.elements_per_s:.3g}"]
                for s in sorted(profiling_stats().values(),
                                key=lambda s: -s.total_s)]
        if rows:
            out.write("\n" + render_table(
                ["kernel", "calls", "total [ms]", "mean [us]", "elem/s"],
                rows, title="kernel wall-clock profile (real numpy)") + "\n")
    _maybe_write_trace(args, res, out)
    return 0


def _run_compare(args, out) -> int:
    platform = get_platform(args.platform)
    n = int(args.n)
    ref = cpu_reference_sort(platform, n=n)
    rows = [["cpu reference", f"{ref.elapsed:.3f}", "1.00"]]
    for approach in ("blinemulti", "pipedata", "pipemerge"):
        for threads in ((1, args.memcpy_threads)
                        if args.memcpy_threads > 1 else (1,)):
            sorter = _make_sorter(args).config.with_(
                approach=approach, memcpy_threads=threads)
            res = HeterogeneousSorter(
                platform, n_gpus=args.gpus, config=sorter).sort(
                n=n, approach=approach)
            tag = approach + ("+parmemcpy" if threads > 1 else "")
            rows.append([tag, f"{res.elapsed:.3f}",
                         f"{ref.elapsed / res.elapsed:.2f}"])
    out.write(render_table(["approach", "time [s]", "speedup"], rows,
                           title=f"{platform.name}, n={n:.2e}") + "\n")
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "metrics":
        return _run_metrics(argv[1:], out)
    args = build_parser().parse_args(argv)
    if (args.n is None) == (args.functional is None):
        build_parser().error("pass exactly one of --n or --functional")
    if args.compare:
        if args.n is None:
            build_parser().error("--compare needs --n")
        return _run_compare(args, out)
    return _run_one(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
