"""Command-line interface: run heterogeneous sorts from the shell.

Examples
--------
Paper-scale timing run (Fig. 9's fastest configuration)::

    python -m repro --n 5e9 --approach pipemerge --batch-size 5e8 \
        --memcpy-threads 8

Functional run with validation and a timeline::

    python -m repro --functional 200000 --batch-size 50000 --gantt

Compare every approach at one size::

    python -m repro --n 2e9 --batch-size 2e8 --compare

Observability report (utilization, overlap matrix, counters)::

    python -m repro metrics --n 2e9 --batch-size 2e8 --approach pipedata

Causal analysis -- where did the makespan go, and what would change::

    python -m repro critical-path --n 2e9 --batch-size 2e8 --gantt
    python -m repro whatif --n 2e9 --batch-size 2e8 --scale GPUSort=0.5

Regression workflow -- freeze a run, compare a later one against it::

    python -m repro --n 2e9 --batch-size 2e8 --report before.json
    ... change something ...
    python -m repro --n 2e9 --batch-size 2e8 --report after.json
    python -m repro diff before.json after.json --fail-on-regression
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.hetsort import HeterogeneousSorter, cpu_reference_sort
from repro.hetsort.config import Approach
from repro.hw.platforms import get_platform
from repro.reporting import render_gantt, render_metrics_table, render_table
from repro.workloads import generate

__all__ = ["main", "build_parser", "build_metrics_parser",
           "build_critical_path_parser", "build_whatif_parser",
           "build_diff_parser"]


def _add_run_options(p: argparse.ArgumentParser) -> None:
    """Options shared by the default run mode and `metrics`."""
    p.add_argument("--platform", default="PLATFORM1",
                   help="PLATFORM1 (GP100) or PLATFORM2 (2x K40m)")
    p.add_argument("--gpus", type=int, default=1, help="GPUs to use")
    p.add_argument("--approach", default="pipemerge",
                   choices=Approach.ALL)
    p.add_argument("--n", type=float, default=None,
                   help="timing-only input size (e.g. 5e9)")
    p.add_argument("--functional", type=int, default=None, metavar="N",
                   help="really sort N random doubles and validate")
    p.add_argument("--distribution", default="uniform",
                   help="input distribution for --functional")
    p.add_argument("--batch-size", type=float, default=None,
                   help="b_s elements per batch (default: maximal)")
    p.add_argument("--streams", type=int, default=2,
                   help="n_s streams per GPU")
    p.add_argument("--pinned", type=float, default=1e6,
                   help="p_s pinned staging elements")
    p.add_argument("--memcpy-threads", type=int, default=1,
                   help="> 1 enables PARMEMCPY")
    p.add_argument("--trace-json", metavar="PATH", default=None,
                   help="write a chrome://tracing / Perfetto JSON "
                        "(spans + counter tracks + causal flow arrows)")
    p.add_argument("--report", metavar="PATH", default=None,
                   help="write the run report JSON (input to `repro diff` "
                        "and the regression gate)")
    p.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort",
        description="Hybrid CPU/GPU sorting on a simulated platform "
                    "(IPPS 2018 reproduction).")
    _add_run_options(p)
    p.add_argument("--compare", action="store_true",
                   help="run every approach plus the CPU reference")
    p.add_argument("--gantt", action="store_true",
                   help="print an ASCII timeline of the run")
    return p


def build_metrics_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort metrics",
        description="Run one sort and report its observability metrics: "
                    "per-lane utilization, the category-overlap matrix, "
                    "overlap efficiency, link goodput and live counters.")
    _add_run_options(p)
    p.add_argument("--profile", action="store_true",
                   help="wall-clock the real numpy kernels "
                        "(functional runs; never changes the timeline)")
    return p


def build_critical_path_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort critical-path",
        description="Run one sort and attribute its makespan along the "
                    "causal critical path: which dependency chain bound "
                    "the run, per category and per lane, with slack.")
    _add_run_options(p)
    p.add_argument("--gantt", action="store_true",
                   help="print the timeline with the critical path "
                        "highlighted and per-lane slack")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON instead of tables")
    p.add_argument("--limit", type=int, default=12,
                   help="path steps to show in the table (0 = all)")
    return p


def build_whatif_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort whatif",
        description="Run one sort, then predict the makespan if selected "
                    "span categories were k times their duration, by "
                    "re-scheduling the recorded causal DAG.  Without "
                    "--scale, prints a sensitivity sweep over every "
                    "category.")
    _add_run_options(p)
    p.add_argument("--scale", action="append", default=[],
                   metavar="CAT=K",
                   help="scale category CAT's durations by factor K "
                        "(repeatable; e.g. --scale GPUSort=0.5)")
    p.add_argument("--json", action="store_true",
                   help="print the prediction as JSON instead of a table")
    return p


def build_diff_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-hetsort diff",
        description="Structurally compare two run reports written with "
                    "--report: makespan / per-category / per-lane / "
                    "critical-path deltas plus span shapes added, removed "
                    "or recounted.")
    p.add_argument("report_a", help="baseline report JSON")
    p.add_argument("report_b", help="candidate report JSON")
    p.add_argument("--tolerance", type=float, default=0.0,
                   help="relative makespan growth to tolerate "
                        "(e.g. 0.02 = 2%%)")
    p.add_argument("--min-rel", type=float, default=0.0,
                   help="hide rows whose relative change is smaller")
    p.add_argument("--json", action="store_true",
                   help="print the machine-readable diff document")
    p.add_argument("--fail-on-regression", action="store_true",
                   help="exit 1 when the makespan regressed beyond "
                        "--tolerance or the trace structure changed")
    return p


def _make_sorter(args) -> HeterogeneousSorter:
    platform = get_platform(args.platform)
    return HeterogeneousSorter(
        platform, n_gpus=args.gpus,
        approach=args.approach,
        n_streams=args.streams,
        batch_size=int(args.batch_size) if args.batch_size else None,
        pinned_elements=int(args.pinned),
        memcpy_threads=args.memcpy_threads)


def _run_one(args, out) -> int:
    sorter = _make_sorter(args)
    if args.functional is not None:
        data = generate(args.functional, args.distribution,
                        seed=args.seed)
        res = sorter.sort(data, approach=args.approach)
        out.write("output validated: sorted permutation of the input\n")
    else:
        res = sorter.sort(n=int(args.n), approach=args.approach)
    out.write(res.summary() + "\n")
    if args.gantt:
        out.write(render_gantt(res.trace) + "\n")
    _maybe_write_trace(args, res, out)
    return 0


def _maybe_write_trace(args, res, out) -> None:
    if args.trace_json:
        from repro.reporting import write_chrome_trace
        count = write_chrome_trace(res.trace, args.trace_json,
                                   counters=res.recorder)
        out.write(f"wrote {count} trace events to {args.trace_json}\n")
    if args.report:
        from repro.obs import run_report, write_report
        write_report(run_report(res), args.report)
        out.write(f"wrote run report to {args.report}\n")


def _run_sort(args):
    """Run one sort for the causal subcommands (timing or functional)."""
    sorter = _make_sorter(args)
    if args.functional is not None:
        data = generate(args.functional, args.distribution, seed=args.seed)
        return sorter.sort(data, approach=args.approach)
    return sorter.sort(n=int(args.n), approach=args.approach)


def _run_critical_path(argv, out) -> int:
    parser = build_critical_path_parser()
    args = parser.parse_args(argv)
    if (args.n is None) == (args.functional is None):
        parser.error("pass exactly one of --n or --functional")
    from repro.obs import critical_path_report
    res = _run_sort(args)
    graph = res.causal_graph()
    report = critical_path_report(graph)
    if args.json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        _maybe_write_trace(args, res, out)
        return 0
    out.write(res.summary() + "\n\n")
    makespan = report["makespan"] or 1.0
    out.write(render_table(
        ["category", "time [ms]", "% of makespan"],
        [[c, f"{v * 1e3:.4f}", f"{v / makespan:.1%}"]
         for c, v in report["by_category"].items()],
        title=f"critical path: {report['n_spans']} of "
              f"{report['n_trace_spans']} spans, "
              f"{report['duration'] * 1e3:.4f} ms "
              f"(= makespan), wait {report['wait'] * 1e3:.4f} ms") + "\n")
    out.write("\n" + render_table(
        ["lane", "time [ms]", "% of makespan"],
        [[l, f"{v * 1e3:.4f}", f"{v / makespan:.1%}"]
         for l, v in report["by_lane"].items()],
        title="critical path by lane") + "\n")
    steps = report["path"]
    shown = steps if args.limit <= 0 else steps[:args.limit]
    rows = [[s["id"], s["category"], s["label"], s["lane"],
             f"{s['start'] * 1e3:.4f}", f"{s['duration'] * 1e3:.4f}",
             f"{s['wait_before'] * 1e3:.4f}"] for s in shown]
    title = "path steps" if len(shown) == len(steps) else \
        f"path steps (first {len(shown)} of {len(steps)})"
    out.write("\n" + render_table(
        ["id", "category", "label", "lane", "start [ms]", "dur [ms]",
         "wait [ms]"], rows, title=title) + "\n")
    if args.gantt:
        out.write("\n" + render_gantt(res.trace,
                                      critical=graph.critical_path(),
                                      slack=graph.slack()) + "\n")
    _maybe_write_trace(args, res, out)
    return 0


def _parse_scales(pairs, error) -> dict[str, float]:
    scale: dict[str, float] = {}
    for item in pairs:
        cat, sep, k = item.partition("=")
        if not sep:
            error(f"--scale expects CAT=K, got {item!r}")
        try:
            scale[cat] = float(k)
        except ValueError:
            error(f"--scale factor must be a number, got {k!r}")
    return scale


def _run_whatif(argv, out) -> int:
    parser = build_whatif_parser()
    args = parser.parse_args(argv)
    if (args.n is None) == (args.functional is None):
        parser.error("pass exactly one of --n or --functional")
    from repro.obs import sensitivity_report, whatif_report
    scale = _parse_scales(args.scale, parser.error)
    res = _run_sort(args)
    graph = res.causal_graph()
    if scale:
        report = whatif_report(graph, scale)
        if args.json:
            out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
            return 0
        out.write(res.summary() + "\n\n")
        # One combined prediction row labelled with every scaled category.
        label = " ".join(f"{c}x{k:g}" for c, k in report["scale"].items())
        rows = [[label, f"{report['measured_makespan'] * 1e3:.4f}",
                 f"{report['predicted_makespan'] * 1e3:.4f}",
                 f"{report['delta'] * 1e3:+.4f}",
                 f"{report['speedup']:.3f}"]]
        out.write(render_table(
            ["scenario", "measured [ms]", "predicted [ms]", "delta [ms]",
             "speedup"], rows, title="what-if prediction") + "\n")
        return 0
    report = sensitivity_report(graph)
    if args.json:
        out.write(json.dumps(report, indent=2, sort_keys=True) + "\n")
        return 0
    out.write(res.summary() + "\n\n")
    rows = [[r["category"], f"{r['factor']:g}",
             f"{r['predicted_makespan'] * 1e3:.4f}",
             f"{r['delta'] * 1e3:+.4f}", f"{r['speedup']:.3f}"]
            for r in report["rows"]]
    out.write(render_table(
        ["category", "factor", "predicted [ms]", "delta [ms]", "speedup"],
        rows,
        title=f"what-if sensitivity (measured "
              f"{report['measured_makespan'] * 1e3:.4f} ms)") + "\n")
    return 0


def _run_diff(argv, out) -> int:
    parser = build_diff_parser()
    args = parser.parse_args(argv)
    from repro.obs import diff_reports, load_report, render_diff
    a = load_report(args.report_a)
    b = load_report(args.report_b)
    diff = diff_reports(a, b, tolerance=args.tolerance)
    if args.json:
        out.write(json.dumps(diff, indent=2, sort_keys=True) + "\n")
    else:
        out.write(render_diff(diff, min_rel=args.min_rel) + "\n")
    if args.fail_on_regression and (diff["regression"]
                                    or diff["structural_change"]):
        return 1
    return 0


def _run_metrics(argv, out) -> int:
    args = build_metrics_parser().parse_args(argv)
    if (args.n is None) == (args.functional is None):
        build_metrics_parser().error("pass exactly one of --n or "
                                     "--functional")
    sorter = _make_sorter(args)
    profiling = args.profile and args.functional is not None
    if profiling:
        from repro.obs import enable_profiling, reset_profiling
        reset_profiling()
        enable_profiling()
    try:
        if args.functional is not None:
            data = generate(args.functional, args.distribution,
                            seed=args.seed)
            res = sorter.sort(data, approach=args.approach)
        else:
            res = sorter.sort(n=int(args.n), approach=args.approach)
    finally:
        if profiling:
            from repro.obs import disable_profiling
            disable_profiling()
    out.write(res.summary() + "\n\n")
    out.write(render_metrics_table(res.metrics) + "\n")
    if profiling:
        from repro.obs import profiling_stats
        rows = [[s.name, s.calls, f"{s.total_s * 1e3:.3f}",
                 f"{s.mean_s * 1e6:.1f}", f"{s.elements_per_s:.3g}"]
                for s in sorted(profiling_stats().values(),
                                key=lambda s: -s.total_s)]
        if rows:
            out.write("\n" + render_table(
                ["kernel", "calls", "total [ms]", "mean [us]", "elem/s"],
                rows, title="kernel wall-clock profile (real numpy)") + "\n")
    _maybe_write_trace(args, res, out)
    return 0


def _run_compare(args, out) -> int:
    platform = get_platform(args.platform)
    n = int(args.n)
    ref = cpu_reference_sort(platform, n=n)
    rows = [["cpu reference", f"{ref.elapsed:.3f}", "1.00"]]
    for approach in ("blinemulti", "pipedata", "pipemerge"):
        for threads in ((1, args.memcpy_threads)
                        if args.memcpy_threads > 1 else (1,)):
            sorter = _make_sorter(args).config.with_(
                approach=approach, memcpy_threads=threads)
            res = HeterogeneousSorter(
                platform, n_gpus=args.gpus, config=sorter).sort(
                n=n, approach=approach)
            tag = approach + ("+parmemcpy" if threads > 1 else "")
            rows.append([tag, f"{res.elapsed:.3f}",
                         f"{ref.elapsed / res.elapsed:.2f}"])
    out.write(render_table(["approach", "time [s]", "speedup"], rows,
                           title=f"{platform.name}, n={n:.2e}") + "\n")
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "metrics":
        return _run_metrics(argv[1:], out)
    if argv and argv[0] == "critical-path":
        return _run_critical_path(argv[1:], out)
    if argv and argv[0] == "whatif":
        return _run_whatif(argv[1:], out)
    if argv and argv[0] == "diff":
        return _run_diff(argv[1:], out)
    args = build_parser().parse_args(argv)
    if (args.n is None) == (args.functional is None):
        build_parser().error("pass exactly one of --n or --functional")
    if args.compare:
        if args.n is None:
            build_parser().error("--compare needs --n")
        return _run_compare(args, out)
    return _run_one(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
