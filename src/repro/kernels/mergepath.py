"""Merge Path: partitioned parallel pair-wise merging.

The paper's pipelined pair-wise merges (PIPEMERGE, Sec. III-D3) and the
GNU-library parallel merge it benchmarks (Fig. 6) both split one merge
across threads.  The standard technique is *Merge Path* [Green, Odeh &
Birk 2014, ref 18 of the paper]: the merge of sorted ``A`` and ``B`` is a
monotone path through an |A| x |B| grid; cutting the path at evenly spaced
cross-diagonals yields independent, equally sized sub-merges.

``corank(d, a, b)`` finds where diagonal ``d`` crosses the path via binary
search; ``partition_merge`` cuts both inputs into ``p`` balanced segment
pairs; ``merge_two`` merges a segment pair stably and vectorised.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.obs.profile import profiled

__all__ = ["corank", "partition_merge", "merge_two", "parallel_merge"]


def corank(d: int, a: np.ndarray, b: np.ndarray) -> tuple[int, int]:
    """Coordinates ``(i, j)`` with ``i + j = d`` where cross-diagonal ``d``
    intersects the merge path of sorted ``a`` and ``b``.

    The returned split is *stable*: ties are taken from ``a`` first.
    Invariants (checked by the property tests):

    * ``a[:i]`` and ``b[:j]`` together are the ``d`` smallest elements;
    * ``i == 0`` or ``a[i-1] <= b[j]`` (when ``j < len(b)``);
    * ``j == 0`` or ``b[j-1] <  a[i]`` (when ``i < len(a)``).
    """
    if not 0 <= d <= len(a) + len(b):
        raise ValidationError(
            f"diagonal {d} outside [0, {len(a) + len(b)}]")
    lo = max(0, d - len(b))
    hi = min(d, len(a))
    while lo < hi:
        i = (lo + hi) // 2
        j = d - i
        if j > 0 and i < len(a) and b[j - 1] >= a[i]:
            # Prefix holds b[j-1] but excludes the not-larger a[i]; a
            # stable merge (ties from a first) would emit a[i] earlier,
            # so the cut takes too few elements from a.
            lo = i + 1
        elif i > 0 and j < len(b) and a[i - 1] > b[j]:
            # Prefix holds a[i-1] but excludes the smaller b[j]: too
            # many elements from a.
            hi = i - 1
        else:
            return i, j
    return lo, d - lo


def partition_merge(a: np.ndarray, b: np.ndarray, parts: int
                    ) -> list[tuple[slice, slice]]:
    """Cut the merge of ``a`` and ``b`` into ``parts`` balanced,
    independent segment pairs ``(slice_of_a, slice_of_b)``.

    Concatenating ``merge_two`` of each pair in order equals the full
    merge.
    """
    if parts < 1:
        raise ValidationError(f"parts must be >= 1, got {parts}")
    total = len(a) + len(b)
    cuts = [(k * total) // parts for k in range(parts + 1)]
    coords = [corank(d, a, b) for d in cuts]
    out = []
    for (i0, j0), (i1, j1) in zip(coords[:-1], coords[1:]):
        out.append((slice(i0, i1), slice(j0, j1)))
    return out


@profiled("mergepath.merge_two",
          size_of=lambda a, b: len(a) + len(b))
def merge_two(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Stable merge of two sorted arrays, vectorised.

    Positions are computed with ``searchsorted``: an element of ``a`` lands
    after all smaller-or-equal elements of ``a`` before it and all strictly
    smaller elements of ``b`` (ties favour ``a`` -- stability).
    """
    n, m = len(a), len(b)
    out = np.empty(n + m, dtype=np.result_type(a, b))
    if n == 0:
        out[:] = b
        return out
    if m == 0:
        out[:] = a
        return out
    pos_a = np.arange(n) + np.searchsorted(b, a, side="left")
    pos_b = np.arange(m) + np.searchsorted(a, b, side="right")
    out[pos_a] = a
    out[pos_b] = b
    return out


def parallel_merge(a: np.ndarray, b: np.ndarray, threads: int = 1
                   ) -> np.ndarray:
    """Merge via Merge Path partitioning into ``threads`` segments.

    Segments are processed serially here (the host has one real core; the
    *simulated* speedup lives in the cost model), but the partitioning is
    exactly what each OpenMP thread would receive, and the tests verify
    the segments are independent and balanced.
    """
    if threads <= 1:
        return merge_two(a, b)
    pieces = [merge_two(a[sa], b[sb])
              for sa, sb in partition_merge(a, b, threads)]
    return np.concatenate(pieces) if pieces else \
        np.empty(0, dtype=np.result_type(a, b))
