"""Shared helpers for the functional sorting kernels.

The key transform maps IEEE-754 doubles to unsigned 64-bit integers whose
unsigned order equals the floats' numeric order -- the standard trick that
lets a radix sort (Thrust's algorithm for primitive keys) handle floating
point: flip all bits of negatives, flip only the sign bit of positives.

NaNs are rejected up front (they have no place in a total order; Thrust's
behaviour on NaN keys is unspecified too).  ``-0.0`` and ``+0.0`` compare
equal as floats but map to distinct keys (``-0.0`` before ``+0.0``), which
still yields a correctly sorted float array.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "float64_to_ordered_uint64", "ordered_uint64_to_float64",
    "check_no_nan", "is_sorted", "same_multiset",
]

_SIGN = np.uint64(0x8000000000000000)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


def check_no_nan(a: np.ndarray) -> None:
    """Raise :class:`ValidationError` if ``a`` contains NaN."""
    if a.dtype.kind == "f" and np.isnan(a).any():
        raise ValidationError("input contains NaN; keys must be totally "
                              "ordered")


def float64_to_ordered_uint64(a: np.ndarray) -> np.ndarray:
    """Order-preserving bijection from float64 to uint64.

    >>> import numpy as np
    >>> x = np.array([3.5, -1.0, 0.0, -0.0, np.inf, -np.inf])
    >>> k = float64_to_ordered_uint64(x)
    >>> (np.argsort(k, kind="stable") == np.argsort(x, kind="stable")).all()
    np.True_
    """
    if a.dtype != np.float64:
        raise ValidationError(f"expected float64, got {a.dtype}")
    check_no_nan(a)
    bits = a.view(np.uint64)
    mask = np.where(bits >> np.uint64(63) == 1, _FULL, _SIGN)
    return bits ^ mask


def ordered_uint64_to_float64(k: np.ndarray) -> np.ndarray:
    """Inverse of :func:`float64_to_ordered_uint64`."""
    if k.dtype != np.uint64:
        raise ValidationError(f"expected uint64, got {k.dtype}")
    mask = np.where(k >> np.uint64(63) == 1, _SIGN, _FULL)
    return (k ^ mask).view(np.float64)


def is_sorted(a: np.ndarray) -> bool:
    """True if ``a`` is non-decreasing."""
    if len(a) < 2:
        return True
    return bool(np.all(a[:-1] <= a[1:]))


def same_multiset(a: np.ndarray, b: np.ndarray) -> bool:
    """True if ``b`` is a permutation of ``a`` (bit-level comparison, so
    ``-0.0`` and ``+0.0`` are distinguished)."""
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    if a.dtype == np.float64:
        a = a.view(np.uint64)
        b = b.view(np.uint64)
    return bool(np.array_equal(np.sort(a), np.sort(b)))
