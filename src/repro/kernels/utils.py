"""Shared helpers for the functional sorting kernels.

The key transform maps IEEE-754 doubles to unsigned 64-bit integers whose
unsigned order equals the floats' numeric order -- the standard trick that
lets a radix sort (Thrust's algorithm for primitive keys) handle floating
point: flip all bits of negatives, flip only the sign bit of positives.

NaNs are rejected up front (they have no place in a total order; Thrust's
behaviour on NaN keys is unspecified too).  ``-0.0`` and ``+0.0`` compare
equal as floats but map to distinct keys (``-0.0`` before ``+0.0``), which
still yields a correctly sorted float array.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "float64_to_ordered_uint64", "ordered_uint64_to_float64",
    "check_no_nan", "has_nan", "is_sorted", "first_unsorted_index",
    "same_multiset",
]

_SIGN = np.uint64(0x8000000000000000)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


def has_nan(a: np.ndarray) -> bool:
    """True if ``a`` is a float array containing at least one NaN."""
    return a.dtype.kind == "f" and bool(np.isnan(a).any())


def check_no_nan(a: np.ndarray) -> None:
    """Raise :class:`ValidationError` if ``a`` contains NaN."""
    if has_nan(a):
        raise ValidationError("input contains NaN; keys must be totally "
                              "ordered")


def float64_to_ordered_uint64(a: np.ndarray) -> np.ndarray:
    """Order-preserving bijection from float64 to uint64.

    >>> import numpy as np
    >>> x = np.array([3.5, -1.0, 0.0, -0.0, np.inf, -np.inf])
    >>> k = float64_to_ordered_uint64(x)
    >>> (np.argsort(k, kind="stable") == np.argsort(x, kind="stable")).all()
    np.True_
    """
    if a.dtype != np.float64:
        raise ValidationError(f"expected float64, got {a.dtype}")
    check_no_nan(a)
    bits = a.view(np.uint64)
    mask = np.where(bits >> np.uint64(63) == 1, _FULL, _SIGN)
    return bits ^ mask


def ordered_uint64_to_float64(k: np.ndarray) -> np.ndarray:
    """Inverse of :func:`float64_to_ordered_uint64`."""
    if k.dtype != np.uint64:
        raise ValidationError(f"expected uint64, got {k.dtype}")
    mask = np.where(k >> np.uint64(63) == 1, _SIGN, _FULL)
    return (k ^ mask).view(np.float64)


def is_sorted(a: np.ndarray) -> bool:
    """True if ``a`` is non-decreasing under a *total* order.

    NaN-explicit: NaN compares False against everything, so an array
    containing NaN is never considered sorted -- including single-element
    and ``[x, ..., x, nan]`` tails that elementwise ``<=`` checks would
    wave through or reject for the wrong reason.
    """
    if has_nan(a):
        return False
    if len(a) < 2:
        return True
    return bool(np.all(a[:-1] <= a[1:]))


def first_unsorted_index(a: np.ndarray) -> int | None:
    """Index of the first order violation, or ``None`` if sorted.

    A violation at ``i`` means ``not (a[i] <= a[i+1])`` -- the negated
    form deliberately catches NaN (for which both ``<=`` and ``>`` are
    False, so the naive ``argmax(a[:-1] > a[1:])`` misreports index 0).
    A NaN at position 0 of a single-element array reports index 0.
    """
    if len(a) == 0:
        return None
    if has_nan(a):
        nan_idx = int(np.isnan(a).argmax())
        if len(a) < 2:
            return nan_idx
    if len(a) < 2:
        return None
    bad = ~(a[:-1] <= a[1:])
    idx = bad.nonzero()[0]
    return int(idx[0]) if len(idx) else None


def same_multiset(a: np.ndarray, b: np.ndarray) -> bool:
    """True if ``b`` is a permutation of ``a`` (bit-level comparison, so
    ``-0.0`` and ``+0.0`` are distinguished)."""
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    if a.dtype == np.float64:
        a = a.view(np.uint64)
        b = b.view(np.uint64)
    return bool(np.array_equal(np.sort(a), np.sort(b)))
