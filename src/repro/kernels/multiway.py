"""k-way multiway merging (the GNU ``multiway_merge`` stand-in).

The paper merges the sorted batches with the GNU library's parallel
multiway merge: ``O(n log k)`` work, one pass over the data, more
cache-efficient than cascaded pair-wise merging (Sec. III-A).  Three
implementations are provided:

* :func:`losertree_merge` -- the textbook tournament ("loser tree")
  multiway merge; genuinely single-pass and ``O(n log k)`` comparisons.
  Pure Python, used as the reference oracle.
* :func:`multiway_merge` -- vectorised engine used by the functional
  layer: a balanced binary tree of Merge-Path pair merges (numpy speed,
  same output, stable).
* :func:`partition_multiway` -- multi-sequence selection: cuts k sorted
  runs at a global rank so each simulated thread gets an independent,
  balanced share, generalising Merge Path to k runs.  Verified against
  the oracle in the tests.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.errors import ValidationError
from repro.kernels.mergepath import merge_two
from repro.obs.profile import profiled

__all__ = ["losertree_merge", "multiway_merge", "partition_multiway",
           "multiway_rank_split"]


def _check_runs(runs: _t.Sequence[np.ndarray]) -> None:
    for r in runs:
        if r.ndim != 1:
            raise ValidationError("runs must be 1-D arrays")


@profiled("multiway.losertree_merge",
          size_of=lambda runs: sum(len(r) for r in runs))
def losertree_merge(runs: _t.Sequence[np.ndarray]) -> np.ndarray:
    """Tournament-tree k-way merge (stable; ties resolved by run index).

    The loser tree keeps the current minimum's competitors ("losers") in
    internal nodes so each output element costs exactly ``ceil(log2 k)``
    comparisons -- the work bound the paper's merge-cost argument uses.
    """
    _check_runs(runs)
    runs = [r for r in runs if len(r)]
    k = len(runs)
    if k == 0:
        return np.empty(0)
    if k == 1:
        return runs[0].copy()
    total = sum(len(r) for r in runs)
    out = np.empty(total, dtype=np.result_type(*runs))

    # Pad the contestant count to a power of two with sentinel runs
    # (exhausted runs and pad runs both present the +infinity sentinel).
    size = 1
    while size < k:
        size *= 2
    pos = [0] * k                     # cursor per run

    def key(run_idx: int):
        """Current head of a run, or None as the +infinity sentinel."""
        if run_idx >= k or pos[run_idx] >= len(runs[run_idx]):
            return None
        return runs[run_idx][pos[run_idx]]

    def less(i: int, j: int) -> bool:
        """Stable comparison of run heads (sentinels lose; ties go to the
        lower run index)."""
        a, b = key(i), key(j)
        if b is None:
            return a is not None
        if a is None:
            return False
        return bool(a < b) or (bool(a == b) and i < j)

    # tree[1..size-1] hold the loser of each internal match.
    tree = [-1] * size

    def build(node: int) -> int:
        """Play the initial tournament; store losers, return the winner."""
        if node >= size:
            return node - size        # leaf: contestant index
        left = build(2 * node)
        right = build(2 * node + 1)
        if less(left, right):
            tree[node] = right
            return left
        tree[node] = left
        return right

    winner = build(1)
    for idx in range(total):
        out[idx] = key(winner)
        pos[winner] += 1
        # Replay only the winner's path to the root: ceil(log2 k) matches.
        cur = winner
        node = (size + winner) // 2
        while node >= 1:
            if less(tree[node], cur):
                tree[node], cur = cur, tree[node]
            node //= 2
        winner = cur
    return out


@profiled("multiway.multiway_merge",
          size_of=lambda runs: sum(len(r) for r in runs))
def multiway_merge(runs: _t.Sequence[np.ndarray]) -> np.ndarray:
    """Stable k-way merge via a balanced tree of vectorised pair merges.

    Equivalent output to :func:`losertree_merge`; used by the functional
    layer because numpy makes it orders of magnitude faster in Python.
    """
    _check_runs(runs)
    level = [np.asarray(r) for r in runs if len(r)]
    if not level:
        return np.empty(0)
    while len(level) > 1:
        nxt = []
        for m in range(0, len(level) - 1, 2):
            nxt.append(merge_two(level[m], level[m + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0].copy() if len(runs) == 1 else level[0]


def multiway_rank_split(runs: _t.Sequence[np.ndarray], rank: int
                        ) -> list[int]:
    """Multi-sequence selection: per-run cuts ``c`` with ``sum(c) == rank``
    such that ``concat(run[:c])`` are exactly the ``rank`` smallest
    elements (ties split arbitrarily but consistently by run order).

    Binary search over the value domain using ``searchsorted`` per run.
    """
    total = sum(len(r) for r in runs)
    if not 0 <= rank <= total:
        raise ValidationError(f"rank {rank} outside [0, {total}]")
    if rank == 0:
        return [0] * len(runs)
    if rank == total:
        return [len(r) for r in runs]

    # Binary search on the merged-rank of candidate values.
    # Candidate pivots come from the runs themselves.
    lo_counts = [0] * len(runs)
    lo_sum = 0
    # Search over value space: pick pivot = median-ish element.
    candidates = [r for r in runs if len(r)]
    lo_val = min(float(r[0]) for r in candidates)
    hi_val = max(float(r[-1]) for r in candidates)

    def count_le(v: float) -> list[int]:
        return [int(np.searchsorted(r, v, side="right")) for r in runs]

    def count_lt(v: float) -> list[int]:
        return [int(np.searchsorted(r, v, side="left")) for r in runs]

    # Binary search over the discrete set of run values for the smallest
    # value v with count_le(v) >= rank.
    pool = np.unique(np.concatenate([r for r in candidates]))
    lo, hi = 0, len(pool) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if sum(count_le(float(pool[mid]))) >= rank:
            hi = mid
        else:
            lo = mid + 1
    v = float(pool[lo])
    below = count_lt(v)
    need = rank - sum(below)   # how many copies of v itself to include
    cuts = below[:]
    for i, r in enumerate(runs):
        if need <= 0:
            break
        avail = int(np.searchsorted(r, v, side="right")) - below[i]
        take = min(avail, need)
        cuts[i] += take
        need -= take
    if need != 0:  # pragma: no cover - defensive
        raise ValidationError("rank split failed to converge")
    return cuts


def partition_multiway(runs: _t.Sequence[np.ndarray], parts: int
                       ) -> list[list[slice]]:
    """Cut k sorted runs into ``parts`` independent groups of slices whose
    merges concatenate to the full multiway merge.

    This is what each thread of the parallel multiway merge processes.
    """
    if parts < 1:
        raise ValidationError(f"parts must be >= 1, got {parts}")
    total = sum(len(r) for r in runs)
    prev = [0] * len(runs)
    out: list[list[slice]] = []
    for p in range(1, parts + 1):
        rank = (p * total) // parts
        cuts = multiway_rank_split(runs, rank)
        out.append([slice(a, b) for a, b in zip(prev, cuts)])
        prev = cuts
    return out
