"""Functional sorting and merging algorithms (the real computation).

These are the algorithms the paper's system calls into libraries for,
implemented from scratch on numpy primitives:

* :mod:`repro.kernels.radix` -- LSD radix sort (Thrust/CUB stand-in);
* :mod:`repro.kernels.bitonic` -- data-oblivious bitonic network;
* :mod:`repro.kernels.mergepath` -- Merge Path pair-wise parallel merge;
* :mod:`repro.kernels.multiway` -- loser-tree and partitioned k-way merge
  (GNU ``multiway_merge`` stand-in);
* :mod:`repro.kernels.samplesort` -- parallel sample sort (GNU parallel
  mode sort stand-in);
* :mod:`repro.kernels.quicksort` -- introsort (``std::sort`` stand-in).
"""

from repro.kernels.bitonic import bitonic_sort, bitonic_sort_inplace
from repro.kernels.mergepath import (corank, merge_two, parallel_merge,
                                     partition_merge)
from repro.kernels.multiway import (losertree_merge, multiway_merge,
                                    multiway_rank_split, partition_multiway)
from repro.kernels.quicksort import introsort
from repro.kernels.radix import (lsd_radix_sort_u64, sort_floats,
                                 sort_floats_inplace)
from repro.kernels.samplesort import sample_sort
from repro.kernels.utils import (first_unsorted_index,
                                 float64_to_ordered_uint64, has_nan,
                                 is_sorted, ordered_uint64_to_float64,
                                 same_multiset)

__all__ = [
    "sort_floats", "sort_floats_inplace", "lsd_radix_sort_u64",
    "bitonic_sort", "bitonic_sort_inplace",
    "merge_two", "parallel_merge", "partition_merge", "corank",
    "multiway_merge", "losertree_merge", "partition_multiway",
    "multiway_rank_split",
    "sample_sort", "introsort",
    "float64_to_ordered_uint64", "ordered_uint64_to_float64",
    "is_sorted", "same_multiset", "has_nan", "first_unsorted_index",
]
