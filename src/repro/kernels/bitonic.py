"""Vectorised bitonic sorting network.

The paper notes (Sec. IV-A) that its pipeline "can use any sorting
algorithm on the GPU, allowing us to use a data-oblivious sorting algorithm
if needed".  Bitonic sort is the canonical data-oblivious network (the same
compare-exchange sequence for every input), so we provide it as an
alternative device kernel; its comparison pattern is the classic
Batcher construction with ``O(n log^2 n)`` compare-exchanges.

The implementation vectorises each of the ``log^2`` stages over the whole
array with numpy index arithmetic, mirroring how a GPU executes one stage
as one kernel launch.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.kernels.utils import check_no_nan

__all__ = ["bitonic_sort", "bitonic_sort_inplace", "compare_exchange_pairs"]


def compare_exchange_pairs(n: int, k: int, j: int
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Index pairs ``(lo, hi)`` of stage ``(k, j)`` of the bitonic network
    over ``n`` (power-of-two) elements, with direction folded in:
    after the exchange, ``a[lo] <= a[hi]`` must hold.

    Exposed separately so the tests can verify the network structure
    (each element appears in at most one pair per stage, etc.).
    """
    i = np.arange(n)
    partner = i ^ j
    first = partner > i
    ascending = (i & k) == 0
    lo = np.where(ascending, i, partner)[first]
    hi = np.where(ascending, partner, i)[first]
    return lo, hi


def bitonic_sort_inplace(a: np.ndarray) -> None:
    """Sort ``a`` in place with a bitonic network.

    Non-power-of-two inputs are padded with ``+inf`` internally.
    """
    if a.ndim != 1:
        raise ValidationError("bitonic_sort expects a 1-D array")
    check_no_nan(a)
    n = len(a)
    if n < 2:
        return
    m = 1 << (n - 1).bit_length()
    if m != n:
        if a.dtype.kind != "f":
            raise ValidationError(
                "non-power-of-two bitonic sort needs a float dtype "
                "(padding uses +inf)")
        buf = np.full(m, np.inf, dtype=a.dtype)
        buf[:n] = a
    else:
        buf = a  # power of two: run the network directly in place
    k = 2
    while k <= m:
        j = k // 2
        while j >= 1:
            lo, hi = compare_exchange_pairs(m, k, j)
            x, y = buf[lo], buf[hi]
            swap = x > y
            buf[lo] = np.where(swap, y, x)
            buf[hi] = np.where(swap, x, y)
            j //= 2
        k *= 2
    if buf is not a:
        a[:] = buf[:n]


def bitonic_sort(a: np.ndarray) -> np.ndarray:
    """Sorted copy of ``a`` via the bitonic network."""
    out = np.array(a, copy=True)
    bitonic_sort_inplace(out)
    return out
