"""Least-significant-digit radix sort for 64-bit keys.

This is the functional stand-in for ``thrust::sort`` / CUB's radix sort
(the on-GPU sorting engine of the paper, Sec. III-B).  Like Thrust it:

* sorts *out of place* (ping-pong between two buffers, doubling the memory
  footprint -- the property that halves the usable batch size);
* processes ``radix_bits`` of the key per pass, LSD first, using a stable
  counting-sort scatter per pass;
* handles floats through the order-preserving bit transform of
  :mod:`repro.kernels.utils`.

Each pass's stable scatter is built on numpy primitives (``bincount`` for
the histogram and a stable integer ``argsort`` for the per-digit ranks --
numpy's stable integer sort is itself a radix pass, so the whole algorithm
stays "radix all the way down").  A tiny pure-Python counting sort is
provided as an independent oracle for the tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.kernels.utils import (float64_to_ordered_uint64,
                                 ordered_uint64_to_float64)
from repro.obs.profile import profiled

__all__ = [
    "lsd_radix_sort_u64", "sort_floats", "sort_floats_inplace",
    "counting_sort_pass", "counting_sort_pass_reference",
]


def counting_sort_pass(keys: np.ndarray, payload: np.ndarray | None,
                       shift: int, bits: int
                       ) -> tuple[np.ndarray, np.ndarray | None]:
    """One stable counting-sort pass on digit ``(keys >> shift) & mask``.

    Returns reordered ``(keys, payload)`` (new arrays).
    """
    if not 1 <= bits <= 24:
        raise ValidationError(f"radix pass width must be 1..24, got {bits}")
    mask = np.uint64((1 << bits) - 1)
    digits = ((keys >> np.uint64(shift)) & mask).astype(np.int64)
    # Stable argsort on small integers == counting-sort permutation.
    order = np.argsort(digits, kind="stable")
    out_keys = keys[order]
    out_payload = payload[order] if payload is not None else None
    return out_keys, out_payload


def counting_sort_pass_reference(keys, shift: int, bits: int):
    """Pure-Python stable counting sort on one digit (test oracle).

    O(n + 2^bits), no numpy sorting involved.
    """
    mask = (1 << bits) - 1
    buckets: list[list] = [[] for _ in range(1 << bits)]
    for k in keys:
        buckets[(int(k) >> shift) & mask].append(k)
    out = []
    for b in buckets:
        out.extend(b)
    return np.array(out, dtype=np.uint64) if len(out) else \
        np.empty(0, dtype=np.uint64)


def lsd_radix_sort_u64(keys: np.ndarray, radix_bits: int = 8,
                       payload: np.ndarray | None = None):
    """Sort uint64 ``keys`` (optionally permuting ``payload`` alongside).

    Passes skip automatically when every key shares the same digit (the
    usual MSB-pruning optimisation); the sort remains stable.

    Returns ``sorted_keys`` or ``(sorted_keys, permuted_payload)``.
    """
    if keys.dtype != np.uint64:
        raise ValidationError(f"expected uint64 keys, got {keys.dtype}")
    if payload is not None and len(payload) != len(keys):
        raise ValidationError("payload length mismatch")
    out = keys.copy()
    pay = payload.copy() if payload is not None else None
    for shift in range(0, 64, radix_bits):
        bits = min(radix_bits, 64 - shift)
        mask = np.uint64((1 << bits) - 1)
        digits = (out >> np.uint64(shift)) & mask
        if len(out) and (digits == digits[0]).all():
            continue  # constant digit: pass is the identity
        out, pay = counting_sort_pass(out, pay, shift, bits)
    if payload is not None:
        return out, pay
    return out


@profiled("radix.sort_floats", size_of=lambda a, *_, **__: len(a))
def sort_floats(a: np.ndarray, radix_bits: int = 8) -> np.ndarray:
    """Radix-sort a float64 array (returns a new array)."""
    keys = float64_to_ordered_uint64(np.ascontiguousarray(a))
    return ordered_uint64_to_float64(lsd_radix_sort_u64(keys, radix_bits))


def sort_floats_inplace(a: np.ndarray, radix_bits: int = 8) -> None:
    """Radix-sort a float64 array in place (the runtime's default device
    sort kernel -- "in place" from the caller's view; internally it
    ping-pongs like Thrust)."""
    a[:] = sort_floats(a, radix_bits)
