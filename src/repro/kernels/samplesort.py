"""Parallel sample sort -- the functional stand-in for the GNU parallel
mode sort (the paper's CPU reference implementation, Sec. IV-C).

The GNU ``__gnu_parallel::sort`` the paper benchmarks is a multiway
mergesort/balanced quicksort hybrid; sample sort captures its structure:

1. draw an oversampled random sample, sort it, pick ``p - 1`` splitters;
2. partition the input into ``p`` buckets by splitter (vectorised with
   ``searchsorted`` -- exactly the binary search each element undergoes);
3. sort each bucket independently (one bucket per simulated thread);
4. concatenate -- buckets are disjoint ranges, so no merge is needed.

The bucket layout (which elements each "thread" would own) is exposed for
the tests; buckets are sorted serially here since simulated parallelism is
the cost model's job.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.kernels.utils import check_no_nan
from repro.obs.profile import profiled

__all__ = ["sample_splitters", "partition_by_splitters", "sample_sort"]

#: Oversampling factor: splitters are drawn from a sample of
#: ``OVERSAMPLE * p`` elements, the classic choice for balanced buckets.
OVERSAMPLE = 32


def sample_splitters(a: np.ndarray, parts: int,
                     seed: int = 0x5EED) -> np.ndarray:
    """``parts - 1`` splitters from a sorted oversample of ``a``."""
    if parts < 1:
        raise ValidationError(f"parts must be >= 1, got {parts}")
    if parts == 1 or len(a) == 0:
        return a[:0]
    rng = np.random.default_rng(seed)
    m = min(len(a), OVERSAMPLE * parts)
    sample = np.sort(rng.choice(a, size=m, replace=True))
    idx = (np.arange(1, parts) * m) // parts
    return sample[idx]


def partition_by_splitters(a: np.ndarray, splitters: np.ndarray
                           ) -> list[np.ndarray]:
    """Split ``a`` into ``len(splitters) + 1`` buckets.

    Bucket ``i`` holds elements in ``(splitters[i-1], splitters[i]]``
    boundaries chosen so every element lands in exactly one bucket.
    """
    if len(splitters) == 0:
        return [a.copy()]
    which = np.searchsorted(splitters, a, side="left")
    return [a[which == b] for b in range(len(splitters) + 1)]


@profiled("samplesort.sample_sort", size_of=lambda a, *_, **__: len(a))
def sample_sort(a: np.ndarray, threads: int = 1,
                seed: int = 0x5EED) -> np.ndarray:
    """Sorted copy of ``a`` via sample sort with ``threads`` buckets."""
    a = np.asarray(a)
    if a.ndim != 1:
        raise ValidationError("sample_sort expects a 1-D array")
    check_no_nan(a)
    if len(a) < 2 or threads <= 1:
        return np.sort(a, kind="stable")
    splitters = sample_splitters(a, threads, seed=seed)
    buckets = partition_by_splitters(a, splitters)
    return np.concatenate(
        [np.sort(b, kind="stable") for b in buckets])
