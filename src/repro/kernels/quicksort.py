"""Comparator-driven quicksort (the ``std::qsort`` / ``std::sort``
stand-in).

Fig. 4 of the paper benchmarks the sequential ``std::sort`` (introsort)
and ``std::qsort`` (comparator callbacks, ~2x slower).  This module
implements an introsort with the same structure: median-of-three
quicksort, insertion sort below a cutoff, and a heapsort fallback when
recursion exceeds ``2 * log2(n)`` (the "intro" depth bound that guarantees
``O(n log n)`` worst case).

Vectorised partitioning keeps it usable on real arrays; the pure-Python
insertion sort / heapsort base cases keep the algorithm honest.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ValidationError
from repro.kernels.utils import check_no_nan

__all__ = ["introsort", "insertion_sort_inplace", "heapsort_inplace"]

#: Below this size, recursion switches to insertion sort.
INSERTION_CUTOFF = 16


def insertion_sort_inplace(a: np.ndarray, lo: int = 0,
                           hi: int | None = None) -> None:
    """Classic insertion sort on ``a[lo:hi]`` (in place, stable)."""
    hi = len(a) if hi is None else hi
    for i in range(lo + 1, hi):
        v = a[i]
        j = i - 1
        while j >= lo and a[j] > v:
            a[j + 1] = a[j]
            j -= 1
        a[j + 1] = v


def _sift_down(a: np.ndarray, lo: int, root: int, hi: int) -> None:
    while True:
        child = lo + 2 * (root - lo) + 1
        if child >= hi:
            return
        if child + 1 < hi and a[child] < a[child + 1]:
            child += 1
        if a[root] >= a[child]:
            return
        a[root], a[child] = a[child], a[root]
        root = child


def heapsort_inplace(a: np.ndarray, lo: int = 0,
                     hi: int | None = None) -> None:
    """In-place heapsort on ``a[lo:hi]`` (the introsort fallback)."""
    hi = len(a) if hi is None else hi
    n = hi - lo
    for root in range(lo + n // 2 - 1, lo - 1, -1):
        _sift_down(a, lo, root, hi)
    for end in range(hi - 1, lo, -1):
        a[lo], a[end] = a[end], a[lo]
        _sift_down(a, lo, lo, end)


def _median_of_three(a: np.ndarray, lo: int, hi: int) -> float:
    mid = (lo + hi) // 2
    x, y, z = a[lo], a[mid], a[hi - 1]
    if x > y:
        x, y = y, x
    if y > z:
        y = z if x <= z else x
    return y


def introsort(a: np.ndarray) -> np.ndarray:
    """Sorted copy of ``a`` via introsort (quicksort + insertion sort +
    depth-bounded heapsort fallback)."""
    a = np.asarray(a)
    if a.ndim != 1:
        raise ValidationError("introsort expects a 1-D array")
    check_no_nan(a)
    out = a.copy()
    n = len(out)
    if n < 2:
        return out
    max_depth = 2 * int(math.log2(n)) + 1
    _intro(out, 0, n, max_depth)
    return out


def _intro(a: np.ndarray, lo: int, hi: int, depth: int) -> None:
    while hi - lo > INSERTION_CUTOFF:
        if depth == 0:
            heapsort_inplace(a, lo, hi)
            return
        depth -= 1
        pivot = _median_of_three(a, lo, hi)
        seg = a[lo:hi]
        # Three-way vectorised partition (handles duplicate-heavy inputs,
        # the classic qsort worst case, in one pass).
        less = seg[seg < pivot]
        equal = seg[seg == pivot]
        greater = seg[seg > pivot]
        a[lo:lo + len(less)] = less
        a[lo + len(less):lo + len(less) + len(equal)] = equal
        a[lo + len(less) + len(equal):hi] = greater
        # Recurse into the smaller side, iterate on the larger (bounds the
        # Python recursion depth at O(log n)).
        left_hi = lo + len(less)
        right_lo = left_hi + len(equal)
        if left_hi - lo < hi - right_lo:
            _intro(a, lo, left_hi, depth)
            lo = right_lo
        else:
            _intro(a, right_lo, hi, depth)
            hi = left_hi
    insertion_sort_inplace(a, lo, hi)
