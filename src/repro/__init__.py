"""repro: a reproduction of "Sorting Large Datasets with Heterogeneous
CPU/GPU Architectures" (Gowanlock & Karsin, IPPS 2018).

The package sorts inputs larger than GPU global memory with a hybrid
CPU/GPU pipeline -- batches sorted on (simulated) GPUs, staged through
pinned memory over a (simulated) PCIe interconnect, and merged on the
CPU -- and reproduces every figure of the paper's evaluation on calibrated
hardware models.  See DESIGN.md for the architecture and EXPERIMENTS.md
for paper-vs-measured numbers.

Quick start::

    import numpy as np
    from repro import HeterogeneousSorter, PLATFORM1

    sorter = HeterogeneousSorter(PLATFORM1, batch_size=250_000)
    result = sorter.sort(np.random.default_rng(0).uniform(size=10**6),
                         approach="pipemerge")
    print(result.summary())
"""

from repro.errors import (CalibrationError, CudaError, CudaInvalidValue,
                          CudaOutOfMemory, FaultPlanError, GpuLostError,
                          PlanError, ReproError, RetryExhaustedError,
                          SimulationError, ValidationError)
from repro.hetsort import (Approach, HeterogeneousSorter, RetryPolicy,
                           SortConfig, SortPlan, SortResult, Staging,
                           cpu_reference_sort, make_plan)
from repro.hw import (PLATFORM1, PLATFORM2, PLATFORMS, Machine,
                      PlatformSpec, get_platform)
from repro.sim import FaultPlan, FaultSpec

__version__ = "1.0.0"

__all__ = [
    "HeterogeneousSorter", "cpu_reference_sort",
    "Approach", "SortConfig", "Staging", "SortPlan", "SortResult",
    "make_plan",
    "PLATFORM1", "PLATFORM2", "PLATFORMS", "get_platform", "PlatformSpec",
    "Machine",
    "ReproError", "SimulationError", "CudaError", "CudaOutOfMemory",
    "CudaInvalidValue", "PlanError", "ValidationError", "CalibrationError",
    "GpuLostError", "RetryExhaustedError", "FaultPlanError",
    "FaultPlan", "FaultSpec", "RetryPolicy",
    "__version__",
]
