"""The ``repro.service/v1`` verdict: per-tenant QoS outcome of one run.

A verdict is a plain JSON-able dict -- per-tenant latency percentiles
(nearest-rank, so no interpolation-dependent floats), the Jain fairness
index over per-tenant mean *normalized* latency (latency per element, so
tenants with different job sizes are comparable), the SLO hit rate, the
per-job rows and the controller's epoch stats.  Canonical-JSON of a
verdict is byte-stable across identical runs (pinned by the golden
battery).
"""

from __future__ import annotations

import math
import typing as _t

__all__ = ["SERVICE_SCHEMA", "percentile", "jain_index", "build_verdict",
           "archive_entry"]

SERVICE_SCHEMA = "repro.service/v1"


def percentile(sorted_vals: _t.Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence (0 for an
    empty one)."""
    if not sorted_vals:
        return 0.0
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    rank = math.ceil(q / 100.0 * len(sorted_vals))
    return float(sorted_vals[max(0, rank - 1)])


def jain_index(xs: _t.Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (k * sum x^2)``: 1.0 means
    perfectly even, ``1/k`` means one participant takes everything."""
    xs = [float(x) for x in xs]
    if not xs:
        return 1.0
    sq = sum(x * x for x in xs)
    if sq == 0.0:
        return 1.0
    s = sum(xs)
    return (s * s) / (len(xs) * sq)


def archive_entry(verdict: dict, label: str,
                  gate_verdicts: _t.Sequence[dict] = (),
                  source: str = "service") -> dict:
    """One ``repro.archive/v1`` entry for a service verdict.

    The point dict captures the run's identity (platform, allocator,
    seed, tenant geometry) so repeated runs of the same configuration
    land on one trend series regardless of ``source``; the metrics are
    the flat scalars the trend observatory charts (per-tenant p50/p99,
    Jain index, SLO hit rate, elapsed time).
    """
    from repro.obs.archive import make_entry

    point = {
        "kind": "service",
        "platform": verdict["platform"],
        "allocator": verdict["allocator"],
        "seed": verdict["seed"],
        "functional": verdict["functional"],
        "tenants": {
            name: {"priority": t["priority"], "share": t["share"],
                   "n_jobs": t["n_jobs"]}
            for name, t in verdict["tenants"].items()
        },
    }
    metrics: dict[str, float] = {
        "elapsed_s": verdict["elapsed_s"],
        "n_jobs": float(verdict["n_jobs"]),
        "jain_latency_index": verdict["fairness"]["jain_latency_index"],
        "bytes_moved": verdict["flows"]["bytes_moved"],
    }
    if verdict["slo"]["hit_rate"] is not None:
        metrics["slo_hit_rate"] = verdict["slo"]["hit_rate"]
    for name, t in verdict["tenants"].items():
        metrics[f"p50_latency_s.{name}"] = t["p50_latency_s"]
        metrics[f"p99_latency_s.{name}"] = t["p99_latency_s"]
        metrics[f"mean_queued_s.{name}"] = t["mean_queued_s"]
    ctl = verdict.get("controller")
    if ctl is not None:
        metrics["reclaimed_fraction"] = ctl["mean_reclaimed_fraction"]
    return make_entry(source=source, label=label, point=point,
                      metrics=metrics, verdicts=list(gate_verdicts))


def _tenant_bytes(ledger) -> dict[str, float]:
    out: dict[str, float] = {}
    if ledger is None:
        return out
    for rec in ledger.flows:
        tenant = rec.get("tenant")
        if tenant is None:
            continue
        moved = rec["moved"]
        out[tenant] = out.get(tenant, 0.0) + (moved if moved else 0.0)
    return out


def build_verdict(service) -> dict:
    """Assemble the verdict from a finished :class:`SortService` run."""
    rows = service._rows
    cfg = service.config
    ledger = service.machine.net.ledger
    bytes_by_tenant = _tenant_bytes(ledger)

    by_tenant: dict[str, list[dict]] = {t.name: [] for t in service.tenants}
    for r in rows:
        by_tenant[r["tenant"]].append(r)

    tenants: dict[str, dict] = {}
    norm_means: list[float] = []
    for t in service.tenants:
        rs = by_tenant[t.name]
        lats = sorted(r["latency_s"] for r in rs)
        mean = sum(lats) / len(lats) if lats else 0.0
        norm = [r["latency_s"] / r["n"] for r in rs]
        if norm:
            norm_means.append(sum(norm) / len(norm))
        slo_rows = [r for r in rs if r["slo_s"] is not None]
        hits = sum(1 for r in slo_rows if r["slo_ok"])
        tenants[t.name] = {
            "priority": t.priority,
            "share": t.share,
            "n_jobs": len(rs),
            "mean_latency_s": mean,
            "p50_latency_s": percentile(lats, 50.0),
            "p99_latency_s": percentile(lats, 99.0),
            "max_latency_s": float(lats[-1]) if lats else 0.0,
            "mean_queued_s": (sum(r["queued_s"] for r in rs) / len(rs)
                              if rs else 0.0),
            "mean_service_s": (sum(r["service_s"] for r in rs) / len(rs)
                               if rs else 0.0),
            "slo_s": t.slo_s,
            "slo_jobs": len(slo_rows),
            "slo_hits": hits,
            "slo_hit_rate": (hits / len(slo_rows) if slo_rows else None),
            "bytes_moved": bytes_by_tenant.get(t.name, 0.0),
        }

    slo_rows = [r for r in rows if r["slo_s"] is not None]
    slo_hits = sum(1 for r in slo_rows if r["slo_ok"])
    controller = service.controller
    return {
        "schema": SERVICE_SCHEMA,
        "platform": service.platform.name,
        "allocator": cfg.allocator,
        "seed": cfg.seed,
        "functional": cfg.functional,
        "n_tenants": len(service.tenants),
        "n_jobs": len(rows),
        "elapsed_s": max((r["end_s"] for r in rows), default=0.0),
        "tenants": tenants,
        "jobs": rows,
        "fairness": {"jain_latency_index": jain_index(norm_means)},
        "slo": {
            "jobs_with_slo": len(slo_rows),
            "hits": slo_hits,
            "hit_rate": (slo_hits / len(slo_rows) if slo_rows else None),
        },
        "controller": (controller.summary() if controller is not None
                       else None),
        "flows": {
            "n_flows": ledger.n_flows if ledger is not None else 0,
            "bytes_moved": (ledger.bytes_moved
                            if ledger is not None else 0.0),
            "tenant_bytes": dict(sorted(bytes_by_tenant.items())),
        },
    }
