"""The adaptive QoS controller: epoch-driven level reallocation.

:class:`~repro.sim.allocators.FixedLevels` confines every priority class
to a fixed fraction of each link -- floors *and* ceilings, no spillover.
That makes an idle tenant's reservation dead bandwidth.  The controller
closes the loop: every ``epoch_s`` of simulated time it samples which
priority classes are *backlogged* (have running or queued jobs), shrinks
the levels of idle classes by ``reclaim`` (default 90% of the idle
reservation) and hands the freed fraction to backlogged classes pro-rata
by their base levels, then triggers
:meth:`~repro.sim.bandwidth.FlowNetwork.reallocate` so in-flight
transfers immediately see the new partitioning.  When a class becomes
backlogged again the next epoch restores its base level -- reservations
are loaned, never sold.

The controller is a plain simulation process: its sampling is passive,
its interventions happen only at epoch boundaries, and its behaviour is a
deterministic function of the job stream, so service verdicts stay
byte-stable.
"""

from __future__ import annotations

import typing as _t

from repro.errors import SimulationError
from repro.sim.allocators import FixedLevels

__all__ = ["AdaptiveController"]


class AdaptiveController:
    """Reallocates idle FixedLevels capacity to backlogged classes.

    Parameters
    ----------
    env, net:
        The simulation environment and the flow network to re-fill.
    targets:
        ``(link, policy)`` pairs to manage; every policy must be a
        :class:`FixedLevels` (they may be shared between links).
    demand_fn:
        Zero-argument callable returning the currently backlogged
        priority classes (running or queued jobs).  Supplied by the
        service so queued-but-not-admitted demand counts too.
    epoch_s:
        Control period in simulated seconds.
    reclaim:
        Fraction of an idle class's base level loaned out per epoch,
        in [0, 1).
    bus:
        Optional :class:`~repro.obs.events.EventBus`; each epoch is
        published as a ``service.epoch`` event.
    """

    def __init__(self, env, net, targets: _t.Sequence[tuple],
                 demand_fn: _t.Callable[[], _t.Iterable[int]],
                 epoch_s: float = 0.05, reclaim: float = 0.9,
                 bus=None) -> None:
        if epoch_s <= 0:
            raise SimulationError(f"epoch_s must be > 0, got {epoch_s}")
        if not 0.0 <= reclaim < 1.0:
            raise SimulationError(
                f"reclaim must be in [0, 1), got {reclaim}")
        for _link, pol in targets:
            if not isinstance(pol, FixedLevels):
                raise SimulationError(
                    f"controller targets must use FixedLevels, got {pol!r}")
        self.env = env
        self.net = net
        self.targets = list(targets)
        self.demand_fn = demand_fn
        self.epoch_s = epoch_s
        self.reclaim = reclaim
        self.bus = bus
        #: Base level maps, frozen at attach time; epochs re-draw the
        #: live maps but always start from these.
        self.base = [dict(pol.levels) for _link, pol in self.targets]
        #: One record per epoch (index, time, backlogged/idle classes,
        #: reclaimed fraction, resulting levels) -- the verdict's
        #: ``controller.epochs`` series.
        self.epochs: list[dict] = []
        self.proc = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the control loop (runs until the service run ends)."""
        self.proc = self.env.process(self._loop(), name="qos.controller")

    def _loop(self):
        index = 0
        while True:
            yield self.env.timeout(self.epoch_s)
            self._epoch(index)
            index += 1

    # -- one control epoch -------------------------------------------------

    def _epoch(self, index: int) -> None:
        demanded = frozenset(int(p) for p in self.demand_fn())
        changed = False
        freed_total = 0.0
        idle_total = 0.0
        levels_out: dict[str, float] = {}
        for (link, pol), base in zip(self.targets, self.base):
            idle = [p for p in base if p not in demanded]
            active = [p for p in base if p in demanded]
            new = dict(base)
            if idle and active:
                freed = 0.0
                for p in idle:
                    keep = base[p] * (1.0 - self.reclaim)
                    freed += base[p] - keep
                    new[p] = keep
                wsum = sum(base[p] for p in active)
                for p in active:
                    new[p] = base[p] + freed * (base[p] / wsum)
                freed_total += freed
                idle_total += sum(base[p] for p in idle)
            if new != pol.levels:
                pol.levels.clear()
                pol.levels.update(new)
                changed = True
            for p, f in new.items():
                levels_out[f"{link.name}:{p}"] = f
        if changed:
            self.net.reallocate()
        base_classes = {p for b in self.base for p in b}
        rec = {
            "index": index,
            "t": self.env.now,
            "backlogged": sorted(demanded & base_classes),
            "idle": sorted(base_classes - demanded),
            "reclaimed_fraction": (freed_total / idle_total
                                   if idle_total > 0.0 else 0.0),
            "changed": changed,
            "levels": levels_out,
        }
        self.epochs.append(rec)
        if self.bus is not None:
            self.bus.epoch(index, t=rec["t"], backlogged=rec["backlogged"],
                           idle=rec["idle"],
                           reclaimed_fraction=rec["reclaimed_fraction"],
                           changed=changed)

    # -- verdict summary ----------------------------------------------------

    def summary(self) -> dict:
        """Scalar controller stats for the service verdict."""
        reclaiming = [e["reclaimed_fraction"] for e in self.epochs
                      if e["idle"] and e["backlogged"]]
        return {
            "n_epochs": len(self.epochs),
            "epoch_s": self.epoch_s,
            "reclaim": self.reclaim,
            "epochs_reclaiming": len(reclaiming),
            "mean_reclaimed_fraction": (sum(reclaiming) / len(reclaiming)
                                        if reclaiming else 0.0),
        }
