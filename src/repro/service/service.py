"""The multi-tenant sort service simulator.

One shared :class:`~repro.hw.machine.Machine` (GPUs, core pool, pinned
memory, interconnects) serves an open-loop stream of sort jobs from many
tenants.  Each admitted job runs the *unmodified* single-run machinery --
``RunContext`` + the approach runners of :mod:`repro.hetsort` -- against a
per-job :class:`_MachineView` that exposes only the job's assigned GPUs.
QoS enters through the engine, not the runners: the service stamps a
:class:`~repro.sim.allocators.QosTag` on each job's root process,
processes inherit it, and every flow the job opens carries the tenant's
priority and share to the per-link bandwidth allocators.

Admission is FIFO with conservative accounting: a job is admitted only
when its full worst-case footprint (3n pageable host bytes + pinned
staging upper bound + per-GPU device working set) fits in what the
currently running jobs leave, so no admitted job can hit a simulated OOM.
Head-of-line blocking is intentional -- bypassing the head would make
admission order depend on job sizes and wreck the differential batteries'
"same stream, same outputs" guarantee.
"""

from __future__ import annotations

import hashlib
import typing as _t
from collections import deque
from dataclasses import dataclass, field

from repro.cuda import ELEM, Runtime
from repro.errors import SimulationError, ValidationError
from repro.hetsort.config import SortConfig
from repro.hetsort.context import RunContext
from repro.hetsort.plan import SortPlan, make_plan
from repro.hetsort.validate import check_sorted_permutation
from repro.hw.machine import Machine
from repro.hw.platforms import PLATFORM1
from repro.hw.spec import PlatformSpec
from repro.obs.flows import FlowLedger
from repro.obs.memory import MemoryLedger
from repro.service.controller import AdaptiveController
from repro.service.verdict import build_verdict
from repro.service.workload import JobSpec, Tenant, build_jobs, job_data_seed
from repro.sim.allocators import FixedLevels, QosTag, make_allocator
from repro.sim.engine import Environment, Event
from repro.workloads import generate

__all__ = ["ServiceConfig", "ServiceResult", "SortService", "run_service"]


@dataclass(frozen=True)
class ServiceConfig:
    """Service-level knobs (per-job sort knobs are derived from these)."""

    allocator: str = "fair-share"   #: per-link bandwidth policy name
    seed: int = 0                   #: arrival + dataset seed
    functional: bool = True         #: move and validate real data
    gpus_per_job: int = 1           #: devices each job sorts across
    max_concurrent: int = 8         #: admission cap on running jobs
    batch_size: int = 25_000        #: per-job b_s (small: jobs share GPUs)
    n_streams: int = 2              #: per-job streams per GPU
    pinned_elements: int = 25_000   #: per-job staging buffer elements
    controller: bool = True         #: run the adaptive level controller
    epoch_s: float = 0.05           #: controller period (simulated s)
    reclaim: float = 0.9            #: idle-level fraction loaned per epoch

    def __post_init__(self) -> None:
        if self.gpus_per_job < 1:
            raise ValidationError("gpus_per_job must be >= 1")
        if self.max_concurrent < 1:
            raise ValidationError("max_concurrent must be >= 1")

    def sort_config(self, approach: str) -> SortConfig:
        return SortConfig(approach=approach, batch_size=self.batch_size,
                          n_streams=self.n_streams,
                          pinned_elements=self.pinned_elements)


@dataclass
class ServiceResult:
    """Everything one service run produced."""

    verdict: dict                 #: the ``repro.service/v1`` document
    jobs: list[dict]              #: per-job rows (also in the verdict)
    elapsed: float                #: simulated end of the last job
    trace: _t.Any                 #: shared machine Trace
    flow_ledger: FlowLedger
    memory_ledger: MemoryLedger
    controller: AdaptiveController | None
    meta: dict = field(default_factory=dict)


class _MachineView:
    """A per-job facade over the shared machine.

    * ``gpus`` is the job's assigned devices (so GPU index 0..n_gpus-1 in
      the plan lands on the right physical devices);
    * ``attach_recorder`` is a no-op -- the shared machine's probes stay
      service-owned instead of being re-pointed by every admitted job;
    * everything else (core pool, flow network, pinned pool, fault hooks)
      delegates to the real machine, which is exactly the contention the
      service exists to model.
    """

    __slots__ = ("_machine", "gpus")

    def __init__(self, machine: Machine, gpus: _t.Sequence) -> None:
        self._machine = machine
        self.gpus = list(gpus)

    def attach_recorder(self, recorder) -> None:
        pass

    def __getattr__(self, name: str):
        return getattr(self._machine, name)


class SortService:
    """A simulated multi-tenant sort service run."""

    def __init__(self, tenants: _t.Sequence[Tenant],
                 config: ServiceConfig | None = None,
                 platform: PlatformSpec = PLATFORM1,
                 faults=None, retry=None) -> None:
        if not tenants:
            raise ValidationError("service needs at least one tenant")
        self.tenants = list(tenants)
        self.config = config if config is not None else ServiceConfig()
        self.platform = platform
        self.faults = faults
        self.retry = retry
        self._tenant_index = {t.name: i for i, t in enumerate(self.tenants)}

    # -- the run -----------------------------------------------------------

    def run(self, sinks: _t.Sequence = ()) -> ServiceResult:
        cfg = self.config
        env = Environment()
        machine = Machine(env, self.platform,
                          n_gpus=self.platform.n_gpus)
        if cfg.gpus_per_job > len(machine.gpus):
            raise ValidationError(
                f"gpus_per_job={cfg.gpus_per_job} but platform has "
                f"{len(machine.gpus)} GPU(s)")
        self.env = env
        self.machine = machine

        # Observatories: one ledger each for the whole service run.
        capacities = {f"gpu{g.index}": g.spec.mem_bytes
                      for g in machine.gpus}
        capacities["pinned"] = self.platform.hostmem.capacity_bytes
        machine.memory = MemoryLedger(clock=lambda: env.now,
                                      capacities=capacities)
        machine.net.ledger = FlowLedger(
            clock=lambda: env.now,
            capacities={lv.name: lv.capacity
                        for lv in machine.net.link_snapshot()})

        injector = None
        if self.faults is not None:
            from repro.hetsort.resilience import RetryPolicy
            from repro.sim.faults import FaultInjector
            injector = FaultInjector(self.faults).attach(machine)
            machine.retry = (self.retry if self.retry is not None
                             else RetryPolicy())

        bus = None
        if sinks:
            from repro.obs.events import EV, EventBus, connect_machine
            bus = EventBus(clock=lambda: env.now)
            for sink in sinks:
                bus.attach(sink)
            connect_machine(bus, machine)
            bus.emit(EV.RUN_START, platform=self.platform.name,
                     service=True, allocator=cfg.allocator,
                     n_tenants=len(self.tenants),
                     functional=cfg.functional)
        self.bus = bus

        # Install the bandwidth policy on every link.
        self._links = [machine.host_bus, *machine.pcie.values()]
        self._policies = []
        base_levels = self._level_map()
        for link in self._links:
            pol = (make_allocator(cfg.allocator, levels=dict(base_levels))
                   if cfg.allocator == FixedLevels.name
                   else make_allocator(cfg.allocator))
            machine.net.set_policy(link, pol)
            self._policies.append(pol)

        controller = None
        if cfg.controller and cfg.allocator == FixedLevels.name:
            controller = AdaptiveController(
                env, machine.net,
                targets=list(zip(self._links, self._policies)),
                demand_fn=self._backlogged_classes,
                epoch_s=cfg.epoch_s, reclaim=cfg.reclaim, bus=bus)
            controller.start()
        self.controller = controller

        # Admission state (conservative accounting, see module docstring).
        self.jobs = build_jobs(self.tenants, seed=cfg.seed)
        self._pending: deque[JobSpec] = deque()
        self._running: dict[str, JobSpec] = {}
        self._completed = 0
        self._host_committed = 0
        self._device_reserved = [0] * len(machine.gpus)
        self._wake: Event | None = None
        self._rows: list[dict] = []

        env.process(self._arrivals(), name="service.arrivals")
        dispatcher = env.process(self._dispatcher(), name="service.admit")
        env.run(dispatcher)

        machine.memory.check_balanced()
        if injector is not None and injector.fired_total:
            faults_meta = injector.summary()
        else:
            faults_meta = None

        self._rows.sort(key=lambda r: (r["end_s"], r["job_id"]))
        elapsed = max((r["end_s"] for r in self._rows), default=0.0)
        verdict = build_verdict(self)
        if bus is not None:
            from repro.obs.events import EV
            bus.emit(EV.RUN_END, elapsed_s=elapsed,
                     n_jobs=len(self._rows),
                     makespan_s=machine.trace.makespan())
            bus.close()
        meta = {}
        if faults_meta is not None:
            meta["faults"] = faults_meta
        return ServiceResult(
            verdict=verdict, jobs=list(self._rows), elapsed=elapsed,
            trace=machine.trace, flow_ledger=machine.net.ledger,
            memory_ledger=machine.memory, controller=controller, meta=meta)

    # -- QoS plumbing ------------------------------------------------------

    def _level_map(self) -> dict[int, float]:
        """FixedLevels base map: each priority class gets the fraction of
        capacity proportional to its tenants' summed shares."""
        by_prio: dict[int, float] = {}
        for t in self.tenants:
            by_prio[t.priority] = by_prio.get(t.priority, 0.0) + t.share
        total = sum(by_prio.values())
        return {p: s / total for p, s in sorted(by_prio.items())}

    def _backlogged_classes(self) -> set[int]:
        """Priority classes with queued or running jobs (controller's
        demand signal)."""
        out = {j.priority for j in self._pending}
        out.update(j.priority for j in self._running.values())
        return out

    # -- processes ---------------------------------------------------------

    def _arrivals(self):
        """Open-loop job injection at the pre-built arrival instants."""
        for job in self.jobs:
            delay = job.arrival_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            self._pending.append(job)
            if self.bus is not None:
                self.bus.job_submit(job.job_id, job.tenant, job.n,
                                    approach=job.approach,
                                    priority=job.priority)
            self._kick()

    def _dispatcher(self):
        """FIFO admission: admit the head whenever it fits, else sleep
        until an arrival or a completion changes the picture."""
        total = len(self.jobs)
        while self._completed < total:
            while self._pending:
                admitted = self._try_admit(self._pending[0])
                if not admitted:
                    break
                self._pending.popleft()
            if self._completed < total:
                self._wake = Event(self.env)
                yield self._wake

    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            wake, self._wake = self._wake, None
            wake.succeed()

    # -- admission ---------------------------------------------------------

    def _footprint(self, job: JobSpec) -> tuple[SortPlan, SortConfig, int]:
        """Plan the job and bound its host bytes (pageable A/W/B plus the
        pinned staging upper bound: up to two pinned buffers per stream
        worker)."""
        jcfg = self.config.sort_config(job.approach)
        plan = make_plan(job.n, self.platform, jcfg,
                         n_gpus=self.config.gpus_per_job)
        pinned_est = (2 * plan.pinned_elements * ELEM
                      * plan.n_streams * plan.n_gpus)
        return plan, jcfg, plan.host_bytes + pinned_est

    def _try_admit(self, job: JobSpec) -> bool:
        if len(self._running) >= self.config.max_concurrent:
            return False
        plan, jcfg, host_need = self._footprint(job)
        cap = self.platform.hostmem.capacity_bytes
        if self._host_committed + host_need > cap:
            return False
        # Least-loaded GPU placement (ties broken by device index, so
        # placement is a pure function of the admission sequence).
        order = sorted(range(len(self.machine.gpus)),
                       key=lambda g: (self._device_reserved[g], g))
        assigned = order[:self.config.gpus_per_job]
        need = plan.device_bytes_per_gpu
        for g in assigned:
            if (self._device_reserved[g] + need
                    > self.machine.gpus[g].spec.mem_bytes):
                return False
        for g in assigned:
            self._device_reserved[g] += need
        self._host_committed += host_need
        self._running[job.job_id] = job
        proc = self.env.process(
            self._job(job, plan, jcfg, assigned, host_need),
            name=f"job:{job.job_id}")
        proc.tag = QosTag(tenant=job.tenant, priority=job.priority,
                          share=job.share)
        return True

    # -- one job -----------------------------------------------------------

    def _job(self, job: JobSpec, plan: SortPlan, jcfg: SortConfig,
             assigned: list[int], host_need: int):
        from repro.hetsort.sorter import APPROACH_RUNNERS
        env = self.env
        admit_s = env.now
        if self.bus is not None:
            self.bus.job_start(job.job_id, job.tenant,
                               queued_s=admit_s - job.arrival_s,
                               gpus=list(assigned))
        data = None
        if self.config.functional:
            seed = job_data_seed(self.config.seed,
                                 self._tenant_index[job.tenant], job.index)
            data = generate(job.n, "uniform", seed=seed)
        view = _MachineView(self.machine, [self.machine.gpus[g]
                                           for g in assigned])
        rt = Runtime(view)
        ctx = RunContext(env, view, rt, plan, jcfg, data=data)
        try:
            yield from APPROACH_RUNNERS[jcfg.approach](ctx)
        finally:
            self.machine.release_host(plan.host_bytes)
            need = plan.device_bytes_per_gpu
            for g in assigned:
                self._device_reserved[g] -= need
            self._host_committed -= host_need
            del self._running[job.job_id]
        end_s = env.now
        row = {
            "job_id": job.job_id,
            "tenant": job.tenant,
            "index": job.index,
            "n": job.n,
            "approach": job.approach,
            "priority": job.priority,
            "share": job.share,
            "gpus": list(assigned),
            "arrival_s": job.arrival_s,
            "admit_s": admit_s,
            "end_s": end_s,
            "queued_s": admit_s - job.arrival_s,
            "service_s": end_s - admit_s,
            "latency_s": end_s - job.arrival_s,
            "slo_s": job.slo_s,
            "slo_ok": (None if job.slo_s is None
                       else end_s - job.arrival_s <= job.slo_s),
        }
        if data is not None:
            out = ctx.B.data
            check_sorted_permutation(data, out)
            row["digest"] = hashlib.sha256(out.tobytes()).hexdigest()
        self._rows.append(row)
        self._completed += 1
        if self.bus is not None:
            self.bus.job_end(job.job_id, job.tenant,
                             latency_s=row["latency_s"],
                             queued_s=row["queued_s"],
                             service_s=row["service_s"])
        self._kick()


def run_service(tenants: _t.Sequence[Tenant],
                config: ServiceConfig | None = None,
                platform: PlatformSpec = PLATFORM1,
                sinks: _t.Sequence = (), faults=None,
                retry=None) -> ServiceResult:
    """Convenience wrapper: build and run one service simulation."""
    return SortService(tenants, config=config, platform=platform,
                       faults=faults, retry=retry).run(sinks=sinks)
