"""The simulated multi-tenant sort service (the QoS layer above the
single-run sorter).

Seeded synthetic tenants submit open-loop streams of sort jobs
(:mod:`repro.service.workload`); a shared machine admits and runs them
under a pluggable per-link bandwidth-allocation policy
(:mod:`repro.sim.allocators`) with an optional adaptive level controller
(:mod:`repro.service.controller`); the outcome is a byte-stable
``repro.service/v1`` verdict (:mod:`repro.service.verdict`).
"""

from repro.service.controller import AdaptiveController
from repro.service.service import (ServiceConfig, ServiceResult,
                                   SortService, run_service)
from repro.service.verdict import (SERVICE_SCHEMA, archive_entry,
                                   build_verdict, jain_index, percentile)
from repro.service.workload import (JobSpec, Tenant, build_jobs,
                                    job_data_seed, poisson_arrivals,
                                    trace_arrivals)

__all__ = [
    "AdaptiveController", "JobSpec", "SERVICE_SCHEMA", "ServiceConfig",
    "ServiceResult", "SortService", "Tenant", "archive_entry", "build_jobs",
    "build_verdict", "jain_index", "job_data_seed", "percentile",
    "poisson_arrivals", "run_service", "trace_arrivals",
]
