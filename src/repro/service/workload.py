"""Synthetic multi-tenant traffic: tenants, job specs and arrival
processes.

The service is driven *open loop*: every tenant submits a fixed number of
sort jobs at instants drawn from a seeded Poisson process (or replayed
from an explicit trace), independent of how fast the service drains them
-- the arrival pattern never adapts to backlog, which is what makes
latency under load a meaningful measurement.

Everything is deterministic given ``(tenants, seed)``: per-tenant arrival
streams use ``np.random.default_rng([seed, tenant_index])`` and per-job
datasets use ``[seed, tenant_index, job_index]``, so two builds of the
same traffic are identical element for element.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.hetsort.config import Approach

__all__ = ["Tenant", "JobSpec", "poisson_arrivals", "trace_arrivals",
           "build_jobs", "job_data_seed"]


@dataclass(frozen=True)
class Tenant:
    """One synthetic client of the sort service.

    ``priority`` is the QoS class consulted by layered link policies
    (strict-priority layering, fixed-levels level maps; larger = more
    important); ``share`` is the weighted-max-min weight.  ``slo_s`` is
    the per-job latency objective (submit-to-completion) counted by the
    verdict's SLO hit rate; ``None`` means the tenant has no SLO.

    ``rate_hz`` parameterises the Poisson arrival process (expected jobs
    per simulated second); ``arrivals`` instead replays an explicit trace
    of arrival instants (and then ``rate_hz``/``n_jobs`` are ignored).
    """

    name: str
    priority: int = 0
    share: float = 1.0
    slo_s: float | None = None
    rate_hz: float = 1.0
    n_jobs: int = 4
    n_elements: int = 100_000
    approach: str = Approach.PIPEMERGE
    arrivals: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("tenant needs a name")
        if self.share <= 0:
            raise ValidationError(
                f"tenant {self.name!r}: share must be > 0, got {self.share}")
        if self.arrivals is None:
            if self.rate_hz <= 0:
                raise ValidationError(
                    f"tenant {self.name!r}: rate_hz must be > 0")
            if self.n_jobs < 1:
                raise ValidationError(
                    f"tenant {self.name!r}: n_jobs must be >= 1")
        if self.n_elements < 1:
            raise ValidationError(
                f"tenant {self.name!r}: n_elements must be >= 1")
        if self.approach not in Approach.ALL:
            raise ValidationError(
                f"tenant {self.name!r}: unknown approach "
                f"{self.approach!r}")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValidationError(
                f"tenant {self.name!r}: slo_s must be > 0 or None")


@dataclass(frozen=True)
class JobSpec:
    """One sort job: a tenant, an arrival instant and a problem size."""

    job_id: str
    tenant: str
    index: int          #: per-tenant job index (seeds the dataset)
    arrival_s: float
    n: int
    approach: str
    priority: int
    share: float
    slo_s: float | None


def poisson_arrivals(rate_hz: float, n_jobs: int,
                     rng: np.random.Generator) -> list[float]:
    """``n_jobs`` arrival instants of a Poisson process of intensity
    ``rate_hz`` (cumulative exponential inter-arrival gaps)."""
    gaps = rng.exponential(scale=1.0 / rate_hz, size=n_jobs)
    return list(np.cumsum(gaps))


def trace_arrivals(times: _t.Sequence[float]) -> list[float]:
    """Validate and normalise an explicit arrival trace."""
    out = [float(t) for t in times]
    if any(t < 0 for t in out):
        raise ValidationError("arrival trace contains a negative instant")
    if any(b < a for a, b in zip(out, out[1:])):
        raise ValidationError("arrival trace must be non-decreasing")
    return out


def job_data_seed(seed: int, tenant_index: int, job_index: int) -> list[int]:
    """The numpy seed sequence for one job's functional dataset."""
    return [int(seed), int(tenant_index), int(job_index)]


def build_jobs(tenants: _t.Sequence[Tenant], seed: int = 0) -> list[JobSpec]:
    """Materialise the full deterministic job stream.

    Jobs are ordered by ``(arrival_s, tenant order, job index)`` --
    a total order, so admission FIFO ties are deterministic.
    """
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValidationError(f"duplicate tenant names in {names}")
    jobs: list[JobSpec] = []
    for ti, tenant in enumerate(tenants):
        if tenant.arrivals is not None:
            times = trace_arrivals(tenant.arrivals)
        else:
            rng = np.random.default_rng([int(seed), ti])
            times = poisson_arrivals(tenant.rate_hz, tenant.n_jobs, rng)
        for ji, at in enumerate(times):
            jobs.append(JobSpec(
                job_id=f"{tenant.name}/{ji}",
                tenant=tenant.name,
                index=ji,
                arrival_s=float(at),
                n=tenant.n_elements,
                approach=tenant.approach,
                priority=tenant.priority,
                share=tenant.share,
                slo_s=tenant.slo_s,
            ))
    order = {name: i for i, name in enumerate(names)}
    jobs.sort(key=lambda j: (j.arrival_s, order[j.tenant], j.index))
    return jobs
