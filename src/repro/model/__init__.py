"""Analytical models: the Sec. IV-G lower bounds and the Sec. IV-E
missing-overhead accounting."""

from repro.model.endtoend import (PAPER_FIG7_SECONDS, EndToEndAccounting,
                                  accounting_from_result,
                                  end_to_end_accounting)
from repro.model.lowerbound import (LowerBoundModel,
                                    measure_bline_throughput, paper_slopes)

__all__ = [
    "LowerBoundModel", "measure_bline_throughput", "paper_slopes",
    "EndToEndAccounting", "end_to_end_accounting",
    "accounting_from_result", "PAPER_FIG7_SECONDS",
]
