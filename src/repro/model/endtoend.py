"""The "missing overhead" accounting of Sec. IV-E.

Stehle & Jacobsen [5] report an end-to-end heterogeneous-sort time built
from only three components: HtoD transfer, DtoH transfer, and on-GPU sort
time.  The paper shows this omits every pinned-memory cost: staging
copies (``MCpy``), pinned allocation, and per-copy synchronisation.

:func:`end_to_end_accounting` runs a BLINE sort and splits its timeline
both ways, reproducing Fig. 7 (component bars) and Fig. 8 (related-work
total vs. full total as n grows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hetsort.result import SortResult
from repro.hetsort.sorter import HeterogeneousSorter
from repro.hw.spec import PlatformSpec
from repro.sim import CAT

__all__ = ["EndToEndAccounting", "end_to_end_accounting",
           "PAPER_FIG7_SECONDS"]

#: The related work's Fig. 8 "CUB" bar values the paper compares against
#: (6 GB of key/value pairs on a Titan X; times estimated from their plot):
PAPER_FIG7_SECONDS = {
    "HtoD_ours": 0.536, "DtoH_ours": 0.484,
    "HtoD_related": 0.542, "DtoH_related": 0.477,
}


@dataclass(frozen=True)
class EndToEndAccounting:
    """Both accountings of one run (all times in seconds)."""

    n: int
    htod: float
    dtoh: float
    gpusort: float
    mcpy: float
    pinned_alloc: float
    sync: float
    full_elapsed: float

    @property
    def related_work_total(self) -> float:
        """End-to-end as computed in [5]: transfers + sort only."""
        return self.htod + self.dtoh + self.gpusort

    @property
    def missing_overhead(self) -> float:
        """What [5]'s accounting leaves out (Fig. 8's shaded gap)."""
        return self.full_elapsed - self.related_work_total

    def rows(self) -> list[tuple[str, float]]:
        """(component, seconds) rows in Fig. 7 order."""
        return [
            ("HtoD", self.htod),
            ("DtoH", self.dtoh),
            ("GPUSort", self.gpusort),
            ("MCpy (omitted)", self.mcpy),
            ("PinnedAlloc (omitted)", self.pinned_alloc),
            ("Sync (omitted)", self.sync),
            ("Related-work end-to-end", self.related_work_total),
            ("Full end-to-end (BLine)", self.full_elapsed),
        ]


def end_to_end_accounting(platform: PlatformSpec, n: int,
                          pinned_elements: int = 10 ** 6
                          ) -> EndToEndAccounting:
    """Run BLINE (n_b = 1, pinned staging, blocking) at size ``n`` and
    decompose its response time both ways (the Fig. 7 / Fig. 8
    methodology)."""
    sorter = HeterogeneousSorter(platform, approach="bline",
                                 pinned_elements=pinned_elements)
    res: SortResult = sorter.sort(n=n, approach="bline")
    t = res.trace
    return EndToEndAccounting(
        n=n,
        htod=t.total(CAT.HTOD),
        dtoh=t.total(CAT.DTOH),
        gpusort=t.total(CAT.GPUSORT),
        mcpy=t.total(CAT.MCPY),
        pinned_alloc=t.total(CAT.PINNED_ALLOC),
        sync=t.total(CAT.SYNC),
        full_elapsed=res.elapsed,
    )
