"""The "missing overhead" accounting of Sec. IV-E.

Stehle & Jacobsen [5] report an end-to-end heterogeneous-sort time built
from only three components: HtoD transfer, DtoH transfer, and on-GPU sort
time.  The paper shows this omits every pinned-memory cost: staging
copies (``MCpy``), pinned allocation, and per-copy synchronisation.

:func:`end_to_end_accounting` runs a BLINE sort and splits its timeline
both ways, reproducing Fig. 7 (component bars) and Fig. 8 (related-work
total vs. full total as n grows).

The decomposition only makes sense for *serial* (blocking) runs: it sums
component durations, so on a pipelined run where transfers overlap the
GPU sort the "related-work total" can exceed the true elapsed time and
the missing overhead would come out negative.  That is not a measurement
-- it is a category error, and :attr:`EndToEndAccounting.missing_overhead`
raises :class:`~repro.errors.AccountingError` (naming the approach)
instead of silently producing nonsense.  Use
:func:`accounting_from_result` to build the accounting from an existing
run; it carries the approach name into the guard.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AccountingError
from repro.hetsort.result import SortResult
from repro.hetsort.sorter import HeterogeneousSorter
from repro.hw.spec import PlatformSpec
from repro.sim import CAT

__all__ = ["EndToEndAccounting", "end_to_end_accounting",
           "accounting_from_result", "PAPER_FIG7_SECONDS"]

#: The related work's Fig. 8 "CUB" bar values the paper compares against
#: (6 GB of key/value pairs on a Titan X; times estimated from their plot):
PAPER_FIG7_SECONDS = {
    "HtoD_ours": 0.536, "DtoH_ours": 0.484,
    "HtoD_related": 0.542, "DtoH_related": 0.477,
}

#: Slack for the non-negativity guard: a serial run's components never
#: exceed its elapsed time by more than event-queue rounding.
_NEGATIVE_EPS = 1e-9


@dataclass(frozen=True)
class EndToEndAccounting:
    """Both accountings of one run (all times in seconds)."""

    n: int
    htod: float
    dtoh: float
    gpusort: float
    mcpy: float
    pinned_alloc: float
    sync: float
    full_elapsed: float
    #: Which approach produced the timeline (guards the decomposition).
    approach: str = "bline"

    @property
    def related_work_total(self) -> float:
        """End-to-end as computed in [5]: transfers + sort only."""
        return self.htod + self.dtoh + self.gpusort

    @property
    def missing_overhead(self) -> float:
        """What [5]'s accounting leaves out (Fig. 8's shaded gap).

        Raises :class:`AccountingError` when the gap would be negative:
        the run overlapped its transfers with the GPU sort, so summing
        serial component durations over-counts and the Sec. IV-E
        decomposition does not apply to it.
        """
        gap = self.full_elapsed - self.related_work_total
        if gap < -_NEGATIVE_EPS:
            raise AccountingError(
                f"missing_overhead would be negative ({gap:.6f} s) for "
                f"approach {self.approach!r}: its components overlap, so "
                "the serial Sec. IV-E accounting does not apply -- derive "
                "it from a blocking (bline/blinemulti) run instead")
        return max(0.0, gap)

    def rows(self) -> list[tuple[str, float]]:
        """(component, seconds) rows in Fig. 7 order."""
        return [
            ("HtoD", self.htod),
            ("DtoH", self.dtoh),
            ("GPUSort", self.gpusort),
            ("MCpy (omitted)", self.mcpy),
            ("PinnedAlloc (omitted)", self.pinned_alloc),
            ("Sync (omitted)", self.sync),
            ("Related-work end-to-end", self.related_work_total),
            ("Full end-to-end (BLine)", self.full_elapsed),
        ]


def accounting_from_result(res: SortResult) -> EndToEndAccounting:
    """Decompose an existing run's timeline (any approach).

    The :attr:`~EndToEndAccounting.missing_overhead` guard will reject
    overlapped runs by name -- building the accounting itself always
    succeeds, so callers can still read the raw components.
    """
    t = res.trace
    n = res.plan.n if res.plan is not None else \
        (len(res.output) if res.output is not None else 0)
    return EndToEndAccounting(
        n=n,
        htod=t.total(CAT.HTOD),
        dtoh=t.total(CAT.DTOH),
        gpusort=t.total(CAT.GPUSORT),
        mcpy=t.total(CAT.MCPY),
        pinned_alloc=t.total(CAT.PINNED_ALLOC),
        sync=t.total(CAT.SYNC),
        full_elapsed=res.elapsed,
        approach=res.approach,
    )


def end_to_end_accounting(platform: PlatformSpec, n: int,
                          pinned_elements: int = 10 ** 6
                          ) -> EndToEndAccounting:
    """Run BLINE (n_b = 1, pinned staging, blocking) at size ``n`` and
    decompose its response time both ways (the Fig. 7 / Fig. 8
    methodology)."""
    sorter = HeterogeneousSorter(platform, approach="bline",
                                 pinned_elements=pinned_elements)
    res: SortResult = sorter.sort(n=n, approach="bline")
    return accounting_from_result(res)
