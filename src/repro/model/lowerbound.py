"""The lower-bound performance models of Sec. IV-G.

The paper builds a simple analytical baseline from measured BLINE
throughput and uses it to judge the efficiency of the pipelined
approaches (Fig. 11):

* **1 GPU**: "unlimited GPU memory" -- sorting at BLINE's peak
  elements/second, i.e. ``T(n) = n / rate_1gpu``, with the rate measured
  at the largest n that fits in global memory.  The paper reports the
  fitted slope ``6.278e-9`` s/element on PLATFORM2.
* **2 GPUs**: each GPU sorts n/2 concurrently, followed by one
  unavoidable pair-wise merge on the host (``n_b = 2``); the paper's
  fitted slope is ``3.706e-9`` s/element.

:func:`measure_bline_throughput` *derives* the model from a simulated
BLINE run exactly as the paper derives it from a measured one, so the
model and the simulator stay consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hetsort.sorter import HeterogeneousSorter
from repro.hw.spec import PlatformSpec

__all__ = ["LowerBoundModel", "measure_bline_throughput", "paper_slopes"]

#: The slopes the paper reports for PLATFORM2 (s per element), Fig. 11.
PAPER_SLOPE_1GPU = 6.278e-9
PAPER_SLOPE_2GPU = 3.706e-9


def paper_slopes() -> dict[int, float]:
    """The paper's fitted Fig. 11 slopes, keyed by GPU count."""
    return {1: PAPER_SLOPE_1GPU, 2: PAPER_SLOPE_2GPU}


@dataclass(frozen=True)
class LowerBoundModel:
    """A linear lower-bound model ``T(n) = slope * n``."""

    platform_name: str
    n_gpus: int
    slope: float           #: seconds per element
    calibration_n: int     #: the n the slope was measured at

    def seconds(self, n: int) -> float:
        """Predicted lower-bound response time."""
        return self.slope * n

    def slowdown_of(self, measured_seconds: float, n: int) -> float:
        """``model / measured`` -- the paper's "slowdown vs. model"
        metric (values < 1 mean the approach is slower than the model;
        Sec. IV-G reports 0.93x / 0.88x for PIPEDATA at n = 4.9e9)."""
        if measured_seconds <= 0:
            raise ValueError("measured time must be positive")
        return self.seconds(n) / measured_seconds


def measure_bline_throughput(platform: PlatformSpec, n_gpus: int = 1,
                             n: int | None = None) -> LowerBoundModel:
    """Derive the lower-bound model the way the paper does (Sec. IV-G).

    * ``n_gpus == 1``: run BLINE at the largest ``n`` whose ``2n``
      elements fit in global memory (paper: n = 7e8 on PLATFORM2).
    * ``n_gpus == 2``: run BLINE with ``b_s = n/2`` per GPU and ``n_s =
      1`` at near-capacity n (paper: n = 1.4e9), merge included.
    """
    if n is None:
        per_gpu = min(g.mem_bytes for g in platform.gpus[:n_gpus]) \
            // (2 * 8)
        # Round down to a tidy multiple of 1e8 like the paper's sizes.
        per_gpu = max(10 ** 8, (per_gpu // 10 ** 8) * 10 ** 8)
        n = per_gpu * n_gpus
    sorter = HeterogeneousSorter(platform, n_gpus=n_gpus,
                                 approach="bline", n_streams=1)
    res = sorter.sort(n=n, approach="bline")
    return LowerBoundModel(
        platform_name=platform.name, n_gpus=n_gpus,
        slope=res.elapsed / n, calibration_n=n)
