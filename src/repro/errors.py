"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with one handler while still being
able to discriminate subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised for illegal use of the discrete-event simulation engine."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while processes are still waiting."""


class CudaError(ReproError):
    """Base class for errors raised by the simulated CUDA runtime."""


class CudaOutOfMemory(CudaError):
    """Device (or pinned host) allocation exceeded the available capacity."""


class CudaInvalidValue(CudaError):
    """An argument to a simulated CUDA call was invalid (bad sizes, freed
    buffers, mismatched devices, ...)."""


class GpuLostError(CudaError):
    """The device suffered a fatal, permanent failure (simulated ECC /
    driver death): every subsequent allocation, kernel or transfer on it
    fails, and operations already queued on its engines are failed."""


class TransferFaultError(CudaError):
    """An injected *transient* PCIe transfer failure (fault injection).
    Retryable: the transfer may be re-issued after backoff."""


class PinnedAllocFault(CudaOutOfMemory):
    """An injected *transient* ``cudaMallocHost`` failure (fault
    injection).  Retryable, unlike a genuine capacity exhaustion."""


class DeviceAllocFault(CudaOutOfMemory):
    """An injected *transient* ``cudaMalloc`` failure (fault injection).
    Retryable, unlike a genuine capacity exhaustion."""


#: Injected fault types a :class:`repro.hetsort.resilience.RetryPolicy`
#: may retry.  Permanent failures (:class:`GpuLostError`) and genuine
#: capacity exhaustion are deliberately not listed.
TRANSIENT_FAULTS = (TransferFaultError, PinnedAllocFault, DeviceAllocFault)


class RetryExhaustedError(ReproError):
    """A bounded retry budget was exhausted without the operation ever
    succeeding; ``__cause__`` carries the last injected fault."""


class FaultPlanError(ReproError):
    """A ``repro.faults/v1`` fault-plan document is malformed (unknown
    schema, unknown fault kind, or invalid field values)."""


class PlanError(ReproError):
    """The requested heterogeneous-sort configuration is infeasible (batch
    does not fit on the GPU, input not covered by batches, ...)."""


class ValidationError(ReproError):
    """A functional-layer output failed verification (not sorted, or not a
    permutation of the input)."""


class CalibrationError(ReproError):
    """A cost-model constant is out of its documented validity range."""


class AccountingError(ReproError):
    """A model accounting was applied to a run it cannot describe (e.g.
    the serial Sec. IV-E component accounting on an overlapped run)."""


class LedgerError(ReproError):
    """A sweep ledger file is malformed or has an unknown schema."""


class EventLogError(ReproError):
    """A ``repro.events/v1`` telemetry event log is malformed (bad
    schema header, non-monotonic sequence, or an incomplete span
    stream that cannot be replayed into a trace)."""


class ArchiveError(ReproError):
    """A ``repro.archive/v1`` run archive is malformed: unknown schema,
    a corrupted (content-hash mismatch) entry, a duplicate entry id, or
    a manifest that disagrees with the JSONL it indexes."""


class MemoryLedgerError(ReproError):
    """A ``repro.memory/v1`` allocation ledger recorded impossible
    accounting (a pool balance going negative) or failed the leak check
    (a pool not balancing back to zero at run end)."""


class FlowLedgerError(ReproError):
    """A ``repro.flows/v1`` interconnect flow ledger recorded impossible
    accounting (a span bound to an unknown flow, a rate capture for a
    flow that never started) or failed an attribution invariant."""
