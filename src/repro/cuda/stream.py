"""CUDA streams: in-order work queues per device.

A :class:`Stream` preserves the two semantics the paper's pipelining
optimisations rely on (Sec. III-D2):

* operations submitted to *one* stream execute in submission order;
* operations in *different* streams may overlap (subject to the device's
  copy/kernel engines and PCIe bandwidth, which the hardware layer models).
"""

from __future__ import annotations

import typing as _t

from repro.errors import ReproError
from repro.sim import CAT
from repro.sim.engine import Environment
from repro.sim.events import Event

__all__ = ["Stream"]


class Stream:
    """An in-order queue of asynchronous operations on one GPU."""

    def __init__(self, env: Environment, gpu_index: int, index: int,
                 trace=None, sync_cost_s: float = 0.0) -> None:
        self.env = env
        self.gpu_index = gpu_index
        self.index = index
        self.name = f"stream{index}@gpu{gpu_index}"
        self._tail: Event | None = None
        self._trace = trace
        self._sync_cost_s = sync_cost_s
        self.ops_submitted = 0
        #: Causal tracing: the span of the most recently *completed*
        #: operation on this stream.  The next op records it as a
        #: dependency, materialising the in-stream submission order as
        #: edges of the span DAG.
        self.last_span = None

    def submit(self, factory: _t.Callable[[], _t.Generator],
               label: str = "op") -> Event:
        """Enqueue an operation; returns its completion event.

        ``factory`` produces the operation's process generator; it starts
        only after every previously submitted operation has completed.
        The completion event carries the factory's return value (the
        recorded span for runtime-issued copies and kernels), and
        :attr:`last_span` is updated with it.

        A failing operation fails its completion event instead: the
        error is delivered to whoever waits on it (typically the next
        :meth:`synchronize`).  The event is defused so a fire-and-forget
        op cannot abort the whole simulation, and a failed predecessor
        does *not* poison later submissions -- they start once it
        settles, preserving in-order timing, and succeed or fail on
        their own (the recovery layer re-uses streams after a fallback).
        """
        done = Event(self.env)
        prev = self._tail

        def runner():
            if prev is not None and not prev.processed:
                try:
                    yield prev
                except ReproError:
                    pass
            try:
                value = yield from factory()
            except ReproError as exc:
                done.fail(exc)
                done.defuse()
                return
            if value is not None:
                self.last_span = value
            done.succeed(value)

        self.env.process(runner(), name=f"{self.name}:{label}")
        self._tail = done
        self.ops_submitted += 1
        return done

    def synchronize(self, deps: _t.Sequence = ()):
        """Process: block the calling host thread until the stream drains
        (``cudaStreamSynchronize``), charging the per-call overhead that the
        related work's end-to-end accounting omits (Sec. IV-E).

        Returns the recorded Sync span (``None`` when the platform models
        the call as free).  The span depends on the stream op it waited
        for plus any explicit ``deps`` (host program order).

        A failed tail op raises its error here -- also when the failure
        already settled before the synchronize was issued (the CUDA
        "sticky stream error" surfacing at the next sync)."""
        if self._tail is not None:
            if not self._tail.processed:
                yield self._tail
            elif not self._tail._ok:
                raise self._tail._value
        if self._sync_cost_s > 0:
            start = self.env.now
            yield self.env.timeout(self._sync_cost_s)
            if self._trace is not None:
                causal = [d for d in deps if d is not None]
                if self.last_span is not None:
                    causal.append(self.last_span)
                return self._trace.record(CAT.SYNC, f"sync:{self.name}",
                                          start, self.env.now,
                                          lane=self.name, deps=causal)
        return None

    @property
    def idle(self) -> bool:
        """True when no submitted operation is still pending."""
        return self._tail is None or self._tail.processed
