"""Memory buffers of the simulated CUDA runtime.

Three kinds, mirroring the paper's memory taxonomy (Table I):

* :class:`PageableBuffer` -- ordinary host memory (the unsorted input ``A``,
  the working memory ``W``, the output ``B``);
* :class:`PinnedBuffer` -- page-locked staging memory allocated with
  ``cudaMallocHost`` (the ``Stage`` area);
* :class:`DeviceBuffer` -- GPU global memory.

Every buffer may carry a real ``numpy`` float64 array (the *functional
layer*); copies between buffers then move real data, so a simulated
pipeline produces a genuinely sorted output that the validators check.
Timing-only runs leave ``data = None`` and only the byte sizes matter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CudaInvalidValue

__all__ = ["Buffer", "PageableBuffer", "PinnedBuffer", "DeviceBuffer",
           "copy_payload", "ELEM"]

#: Element size in bytes; the paper sorts 64-bit floats throughout.
ELEM = 8


class Buffer:
    """Base class: a sized region optionally backed by a numpy array."""

    kind = "buffer"

    def __init__(self, nbytes: int, data: np.ndarray | None = None,
                 name: str = "") -> None:
        if nbytes < 0:
            raise CudaInvalidValue(f"negative buffer size {nbytes}")
        if data is not None:
            if data.dtype != np.float64:
                raise CudaInvalidValue(
                    f"functional buffers are float64, got {data.dtype}")
            if data.nbytes != nbytes:
                raise CudaInvalidValue(
                    f"array is {data.nbytes} B but buffer is {nbytes} B")
        self.nbytes = int(nbytes)
        self.data = data
        self.name = name
        self.freed = False

    @property
    def elements(self) -> int:
        """Capacity in 64-bit elements."""
        return self.nbytes // ELEM

    def check_range(self, offset: int, nbytes: int) -> None:
        """Validate a byte range within this buffer."""
        if self.freed:
            raise CudaInvalidValue(f"use of freed buffer {self.name!r}")
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise CudaInvalidValue(
                f"range [{offset}, {offset + nbytes}) outside buffer "
                f"{self.name!r} of {self.nbytes} B")
        if offset % ELEM or nbytes % ELEM:
            raise CudaInvalidValue(
                "offsets/sizes must be element (8-byte) aligned")

    def view(self, offset: int, nbytes: int) -> np.ndarray | None:
        """Functional-layer view of a byte range (``None`` in timing-only
        mode)."""
        self.check_range(offset, nbytes)
        if self.data is None:
            return None
        return self.data[offset // ELEM:(offset + nbytes) // ELEM]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        backing = "backed" if self.data is not None else "timing-only"
        return (f"<{type(self).__name__} {self.name!r} {self.nbytes} B "
                f"{backing}>")


class PageableBuffer(Buffer):
    """Ordinary (pageable) host memory."""

    kind = "pageable"

    @classmethod
    def for_elements(cls, n: int, data: np.ndarray | None = None,
                     name: str = "") -> "PageableBuffer":
        """A buffer holding ``n`` 64-bit elements."""
        return cls(n * ELEM, data=data, name=name)


class PinnedBuffer(Buffer):
    """Page-locked host memory (must be allocated through the runtime so
    the allocation cost is charged)."""

    kind = "pinned"
    #: Trace span of the ``cudaMallocHost`` that created this buffer
    #: (set by :meth:`repro.cuda.runtime.Runtime.malloc_host`); the first
    #: operation touching the buffer depends on it causally.
    alloc_span = None


class DeviceBuffer(Buffer):
    """GPU global memory, bound to one device."""

    kind = "device"

    def __init__(self, gpu_index: int, nbytes: int,
                 data: np.ndarray | None = None, name: str = "") -> None:
        super().__init__(nbytes, data=data, name=name)
        self.gpu_index = gpu_index


def copy_payload(dst: Buffer, dst_off: int, src: Buffer, src_off: int,
                 nbytes: int) -> None:
    """Functional-layer data movement between two backed buffers.

    A no-op when either side is timing-only; raises if exactly one side is
    backed (a backed pipeline must stay backed end to end, otherwise data
    would be silently invented or dropped).
    """
    dst.check_range(dst_off, nbytes)
    src.check_range(src_off, nbytes)
    if dst.data is None and src.data is None:
        return
    if dst.data is None or src.data is None:
        raise CudaInvalidValue(
            f"copy between backed ({src.name!r}) and timing-only "
            f"({dst.name!r}) buffers")
    d = dst.view(dst_off, nbytes)
    s = src.view(src_off, nbytes)
    assert d is not None and s is not None
    np.copyto(d, s)
