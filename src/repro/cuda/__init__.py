"""A simulated CUDA runtime API over the :mod:`repro.hw` hardware models.

Provides the vocabulary the paper's host code is written in -- device and
pinned buffers, blocking and asynchronous memcpy, streams, and Thrust-style
device sorts -- with the same ordering and validity semantics as real CUDA.
"""

from repro.cuda.buffers import (ELEM, Buffer, DeviceBuffer, PageableBuffer,
                                PinnedBuffer, copy_payload)
from repro.cuda.enums import MemcpyKind
from repro.cuda.runtime import Runtime
from repro.cuda.stream import Stream

__all__ = [
    "Runtime", "Stream", "MemcpyKind",
    "Buffer", "PageableBuffer", "PinnedBuffer", "DeviceBuffer",
    "copy_payload", "ELEM",
]
