"""Enumerations mirroring the CUDA runtime API surface we simulate."""

from __future__ import annotations

__all__ = ["MemcpyKind"]


class MemcpyKind:
    """Direction of a ``cudaMemcpy`` (mirrors ``cudaMemcpyKind``)."""

    HOST_TO_DEVICE = "HostToDevice"
    DEVICE_TO_HOST = "DeviceToHost"
    HOST_TO_HOST = "HostToHost"

    ALL = (HOST_TO_DEVICE, DEVICE_TO_HOST, HOST_TO_HOST)
