"""The simulated CUDA runtime: the API the sorting approaches program
against.

The surface intentionally mirrors the real CUDA host API the paper uses:

===========================  ===========================================
Paper / CUDA                 Here
===========================  ===========================================
``cudaMalloc``               :meth:`Runtime.malloc`
``cudaMallocHost``           :meth:`Runtime.malloc_host` (costs time!)
``cudaMemcpy`` (blocking)    :meth:`Runtime.memcpy`
``cudaMemcpyAsync``          :meth:`Runtime.memcpy_async`
``cudaStreamCreate``         :meth:`Runtime.create_stream`
``cudaStreamSynchronize``    ``yield from stream.synchronize()``
``cudaDeviceSynchronize``    :meth:`Runtime.device_synchronize`
``thrust::sort``             :meth:`Runtime.sort_async`
===========================  ===========================================

All methods that take simulated time are generators to be driven with
``yield from`` inside a host process.  ``memcpy_async`` and ``sort_async``
return quickly (after the call overhead) with a completion
:class:`~repro.sim.events.Event`, exactly like their CUDA counterparts
return control to the host thread.

Semantic checks the real runtime enforces are enforced here too and are
exercised by the test suite: async copies require pinned host memory,
buffers must belong to the right device, ranges must stay in bounds, and
device allocations may not exceed global-memory capacity.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.cuda.buffers import (DeviceBuffer, PageableBuffer, PinnedBuffer,
                                copy_payload)
from repro.cuda.enums import MemcpyKind
from repro.cuda.stream import Stream
from repro.errors import CudaInvalidValue, DeviceAllocFault
from repro.hw.gpu import Direction
from repro.hw.machine import Machine

__all__ = ["Runtime"]


class Runtime:
    """Simulated CUDA runtime bound to one :class:`~repro.hw.machine.Machine`."""

    def __init__(self, machine: Machine,
                 sort_kernel: _t.Callable[[np.ndarray], None] | None = None
                 ) -> None:
        self.machine = machine
        self.env = machine.env
        self.trace = machine.trace
        self._streams: list[Stream] = []
        self._stream_counter = 0
        # Functional on-GPU sort.  Default: our LSD radix sort (the Thrust
        # stand-in).  Imported lazily to keep layering acyclic.
        if sort_kernel is None:
            from repro.kernels.radix import sort_floats_inplace
            sort_kernel = sort_floats_inplace
        self.sort_kernel = sort_kernel

    # ------------------------------------------------------------------
    # Devices and streams
    # ------------------------------------------------------------------

    @property
    def n_gpus(self) -> int:
        return len(self.machine.gpus)

    def create_stream(self, gpu_index: int = 0) -> Stream:
        """``cudaStreamCreate`` on the given device."""
        self._check_gpu(gpu_index)
        s = Stream(self.env, gpu_index, self._stream_counter,
                   trace=self.trace,
                   sync_cost_s=self.machine.platform.runtime.stream_sync_s)
        self._stream_counter += 1
        self._streams.append(s)
        return s

    def device_synchronize(self, gpu_index: int | None = None):
        """Process: wait for every stream (of one device, or all)."""
        tails = [s._tail for s in self._streams
                 if (gpu_index is None or s.gpu_index == gpu_index)
                 and s._tail is not None and not s._tail.processed]
        if tails:
            yield self.env.all_of(tails)
        cost = self.machine.platform.runtime.device_sync_s
        if cost > 0:
            yield self.env.timeout(cost)

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------

    def malloc(self, nbytes: int, gpu_index: int = 0,
               name: str = "", data: np.ndarray | None = None
               ) -> DeviceBuffer:
        """``cudaMalloc``: account ``nbytes`` of device global memory.

        (The call itself is modelled as free; its hidden pinned-staging
        cost is discussed but not separately measured by the paper.)

        An injected ``alloc.device`` fault raises
        :class:`~repro.errors.DeviceAllocFault` (a transient
        ``CudaOutOfMemory``); the call is synchronous, so retry/backoff
        happens at the caller (see
        :func:`repro.hetsort.resilience.retry_call`).
        """
        self._check_gpu(gpu_index)
        faults = self.machine.faults
        if faults is not None and faults.on_device_alloc(gpu_index) is not None:
            raise DeviceAllocFault(
                f"injected cudaMalloc failure on gpu{gpu_index} ({name!r})")
        self.machine.gpus[gpu_index].alloc(nbytes)
        mem = self.machine.memory
        if mem is not None:
            mem.device_alloc(gpu_index, nbytes, name=name)
        self.machine._gauge(f"gpu{gpu_index}.mem_bytes",
                            self.machine.gpus[gpu_index].mem_used)
        return DeviceBuffer(gpu_index, nbytes, data=data, name=name)

    def free(self, buf: DeviceBuffer) -> None:
        """``cudaFree``."""
        if buf.freed:
            raise CudaInvalidValue(f"double free of {buf.name!r}")
        self.machine.gpus[buf.gpu_index].free(buf.nbytes)
        buf.freed = True
        mem = self.machine.memory
        if mem is not None:
            mem.device_free(buf.gpu_index, buf.nbytes, name=buf.name)
        self.machine._gauge(f"gpu{buf.gpu_index}.mem_bytes",
                            self.machine.gpus[buf.gpu_index].mem_used)

    def malloc_host(self, nbytes: int, name: str = "",
                    data: np.ndarray | None = None, deps=()):
        """Process: ``cudaMallocHost`` -- allocate pinned staging memory,
        charging the affine allocation cost (Sec. IV-E1).  Returns the
        :class:`PinnedBuffer` as the process value; the allocation's
        trace span is attached as ``buf.alloc_span`` so the first use of
        the buffer can depend on it causally."""
        span = yield from self.machine.pinned_alloc(
            nbytes, label=name or "pinned", deps=deps)
        buf = PinnedBuffer(nbytes, data=data, name=name)
        buf.alloc_span = span
        mem = self.machine.memory
        if mem is not None:
            mem.pinned_alloc(nbytes, name=name,
                             span=span.id if span is not None else None)
        return buf

    def free_host(self, buf: PinnedBuffer) -> None:
        """``cudaFreeHost`` (modelled as free of charge)."""
        if buf.freed:
            raise CudaInvalidValue(f"double free of {buf.name!r}")
        self.machine.pinned_free(buf.nbytes)
        buf.freed = True
        mem = self.machine.memory
        if mem is not None:
            mem.pinned_free(buf.nbytes, name=buf.name)

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------

    def memcpy(self, dst, src, nbytes: int, kind: str,
               dst_off: int = 0, src_off: int = 0, lane: str = "host",
               deps=()):
        """Process: blocking ``cudaMemcpy`` -- the calling host thread
        does not resume until the copy completes (the BLINE /
        BLINEMULTI data-transfer mode, Sec. III-D).  Returns the copy's
        trace span."""
        direction, gpu, pinned = self._classify(dst, src, nbytes, kind,
                                                dst_off, src_off)
        call = self.machine.platform.runtime.memcpy_blocking_call_s
        if call > 0:
            yield self.env.timeout(call)
        if direction is None:
            # HostToHost: a plain staging copy on the host bus.
            span = yield from self.machine.host_memcpy(
                nbytes, threads=1, label="cudaMemcpy(H2H)", lane=lane,
                work=lambda: copy_payload(dst, dst_off, src, src_off, nbytes),
                deps=deps)
        else:
            span = yield from self.machine.pcie_transfer(
                gpu, nbytes, direction, pinned=pinned,
                label=f"cudaMemcpy({direction})", lane=lane,
                work=lambda: copy_payload(dst, dst_off, src, src_off, nbytes),
                deps=deps)
        return span

    def memcpy_async(self, dst, src, nbytes: int, kind: str, stream: Stream,
                     dst_off: int = 0, src_off: int = 0, deps=()):
        """Process: ``cudaMemcpyAsync`` -- enqueue the copy on ``stream``
        and return its completion event after the (host-side) call
        overhead.  The host-memory end **must be pinned**, as in CUDA;
        otherwise :class:`~repro.errors.CudaInvalidValue` is raised.

        The completion event's value is the copy's trace span.  Its deps
        combine the explicit ``deps`` (e.g. the staging copy that filled
        the pinned buffer) with the in-stream predecessor, read when the
        op actually starts."""
        direction, gpu, pinned = self._classify(dst, src, nbytes, kind,
                                                dst_off, src_off)
        if direction is None:
            raise CudaInvalidValue("memcpy_async is for host<->device copies")
        if not pinned:
            raise CudaInvalidValue(
                "cudaMemcpyAsync requires the host buffer to be pinned "
                f"(got {src.kind if direction == Direction.HTOD else dst.kind})")
        if gpu.index != stream.gpu_index:
            raise CudaInvalidValue(
                f"stream on gpu{stream.gpu_index} cannot copy to/from "
                f"gpu{gpu.index}")
        call = self.machine.platform.runtime.memcpy_async_call_s
        if call > 0:
            yield self.env.timeout(call)
        explicit = tuple(deps)

        def op():
            span = yield from self.machine.pcie_transfer(
                gpu, nbytes, direction, pinned=True,
                label=f"cudaMemcpyAsync({direction})",
                lane=stream.name,
                work=lambda: copy_payload(dst, dst_off, src, src_off,
                                          nbytes),
                deps=(*explicit, stream.last_span))
            return span

        return stream.submit(op, label=f"memcpy.{direction}")

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def sort_async(self, buf: DeviceBuffer, n_elements: int, stream: Stream,
                   offset: int = 0, deps=()):
        """Process: launch ``thrust::sort`` over ``n_elements`` 64-bit keys
        of ``buf`` on ``stream``; returns the completion event after the
        kernel-launch overhead.  The completion event's value is the
        kernel's trace span.

        In functional mode the elements are really sorted with the
        runtime's sort kernel (LSD radix by default)."""
        nbytes = n_elements * 8
        buf.check_range(offset, nbytes)
        if buf.gpu_index != stream.gpu_index:
            raise CudaInvalidValue("sort stream is on a different device")
        gpu = self.machine.gpus[buf.gpu_index]
        call = self.machine.platform.runtime.kernel_launch_s
        if call > 0:
            yield self.env.timeout(call)
        explicit = tuple(deps)

        def work():
            view = buf.view(offset, nbytes)
            if view is not None:
                self.sort_kernel(view)

        def op():
            span = yield from gpu.sort(
                n_elements, label="thrust::sort", work=work,
                deps=(*explicit, stream.last_span))
            return span

        return stream.submit(op, label="sort")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_gpu(self, gpu_index: int) -> None:
        if not 0 <= gpu_index < len(self.machine.gpus):
            raise CudaInvalidValue(
                f"no such device {gpu_index} "
                f"(machine has {len(self.machine.gpus)})")

    def _classify(self, dst, src, nbytes, kind, dst_off, src_off):
        """Validate a copy and derive (direction, gpu, pinned)."""
        dst.check_range(dst_off, nbytes)
        src.check_range(src_off, nbytes)
        if kind == MemcpyKind.HOST_TO_DEVICE:
            if not isinstance(dst, DeviceBuffer) or isinstance(
                    src, DeviceBuffer):
                raise CudaInvalidValue("HtoD needs host src and device dst")
            gpu = self.machine.gpus[dst.gpu_index]
            return Direction.HTOD, gpu, isinstance(src, PinnedBuffer)
        if kind == MemcpyKind.DEVICE_TO_HOST:
            if not isinstance(src, DeviceBuffer) or isinstance(
                    dst, DeviceBuffer):
                raise CudaInvalidValue("DtoH needs device src and host dst")
            gpu = self.machine.gpus[src.gpu_index]
            return Direction.DTOH, gpu, isinstance(dst, PinnedBuffer)
        if kind == MemcpyKind.HOST_TO_HOST:
            if isinstance(dst, DeviceBuffer) or isinstance(src, DeviceBuffer):
                raise CudaInvalidValue("HtoH cannot involve device buffers")
            return None, None, True
        raise CudaInvalidValue(f"unknown memcpy kind {kind!r}")
