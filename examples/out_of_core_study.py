#!/usr/bin/env python
"""Paper-scale out-of-core study: which approach wins, and why.

Reruns the Fig. 9 experiment (PLATFORM1, b_s = 5e8, n_s = 2) in
timing-only mode -- inputs up to 37 GiB that no real laptop could hold --
and prints the response times, speedups over the CPU reference, and the
per-component breakdown that explains each gap.

    python examples/out_of_core_study.py
"""

from repro import HeterogeneousSorter, PLATFORM1, cpu_reference_sort
from repro.reporting import render_table
from repro.sim import CAT
from repro.workloads import dataset_gib

CONFIGS = [
    ("BLineMulti", "blinemulti", {}),
    ("PipeData", "pipedata", {}),
    ("PipeMerge", "pipemerge", {}),
    ("PipeMerge+ParMemCpy", "pipemerge", {"memcpy_threads": 8}),
]


def main() -> None:
    n = int(5e9)
    print(f"Sorting n = {n:.0e} doubles ({dataset_gib(n):.1f} GiB) "
          f"on simulated {PLATFORM1.name}\n")

    ref = cpu_reference_sort(PLATFORM1, n=n)
    rows = [["CPU reference (16T)", f"{ref.elapsed:.2f}", "1.00",
             "-", "-", "-", "-"]]
    for name, approach, kw in CONFIGS:
        sorter = HeterogeneousSorter(PLATFORM1, batch_size=int(5e8),
                                     n_streams=2, **kw)
        r = sorter.sort(n=n, approach=approach)
        rows.append([
            name, f"{r.elapsed:.2f}",
            f"{r.speedup_over(ref):.2f}",
            f"{r.component(CAT.MCPY):.1f}",
            f"{r.component(CAT.HTOD) + r.component(CAT.DTOH):.1f}",
            f"{r.component(CAT.GPUSORT):.1f}",
            f"{r.component(CAT.MERGE) + r.component(CAT.PAIRMERGE):.1f}",
        ])
    print(render_table(
        ["approach", "time [s]", "speedup", "MCpy", "PCIe", "GPUSort",
         "merge"],
        rows, title="Fig. 9 configuration (component columns are busy "
                    "seconds)"))

    print("""
Reading the table:
 * BLineMulti serialises staging, transfers and sorting, then merges.
 * PipeData overlaps them across 2 streams (the 20+% win).
 * PipeMerge pair-merges batches while the GPU still sorts, shrinking
   the final multiway merge's k.
 * ParMemCpy parallelises the staging copies -- the host-side bottleneck
   the paper shows cannot be ignored.""")


if __name__ == "__main__":
    main()
