#!/usr/bin/env python
"""The missing-overhead audit (Sec. IV-E, Figs. 7-8).

Shows how much of a heterogeneous sort's true end-to-end time disappears
if one only counts HtoD + DtoH + GPUSort, as the related work does --
and why allocating one giant pinned buffer is not the way out.

    python examples/missing_overhead_audit.py
"""

from repro import PLATFORM1
from repro.model import end_to_end_accounting
from repro.reporting import render_table
from repro.workloads import dataset_gib


def main() -> None:
    print(__doc__)
    n = int(8e8)   # the paper's 5.96 GiB comparison point
    acct = end_to_end_accounting(PLATFORM1, n)

    print(render_table(
        ["component", "seconds", "counted by related work?"],
        [
            ["HtoD (PCIe)", f"{acct.htod:.3f}", "yes"],
            ["DtoH (PCIe)", f"{acct.dtoh:.3f}", "yes"],
            ["GPUSort", f"{acct.gpusort:.3f}", "yes"],
            ["MCpy (staging copies)", f"{acct.mcpy:.3f}", "NO"],
            ["Pinned allocation", f"{acct.pinned_alloc:.3f}", "NO"],
            ["Async-copy synchronisation", f"{acct.sync:.3f}", "NO"],
        ],
        title=f"BLINE at n={n:.0e} ({dataset_gib(n):.2f} GiB), "
              "PLATFORM1"))
    print(f"\nrelated-work 'end-to-end':  {acct.related_work_total:.3f} s")
    print(f"actual end-to-end:          {acct.full_elapsed:.3f} s")
    print(f"missing overhead:           {acct.missing_overhead:.3f} s "
          f"({100 * acct.missing_overhead / acct.full_elapsed:.0f}% of "
          "the true time)")

    big_alloc = PLATFORM1.hostmem.pinned_alloc_seconds(8 * n)
    print(f"""
Could we avoid the staging copies by pinning the whole dataset?
Allocating one pinned buffer of p_s = n costs {big_alloc:.1f} s --
more than the entire related-work end-to-end time above.  A small,
reused staging buffer (p_s = 1e6 elements, {PLATFORM1.hostmem
    .pinned_alloc_seconds(8e6):.3f} s to allocate) is the right design,
and its copy/synchronisation costs are exactly the overheads that must
be reported (Sec. IV-E1).""")


if __name__ == "__main__":
    main()
