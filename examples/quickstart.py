#!/usr/bin/env python
"""Quickstart: sort real data with the heterogeneous CPU/GPU pipeline.

Runs the full PIPEMERGE pipeline (GPU-batch sorting, pinned-memory
staging, pipelined pair-wise merges, final multiway merge) in *functional
mode*: the simulated platform accounts the time a real PLATFORM1 would
take, while the data is really sorted by the same code path.

    python examples/quickstart.py
"""

import numpy as np

from repro import HeterogeneousSorter, PLATFORM1, cpu_reference_sort
from repro.workloads import generate


def main() -> None:
    # One million uniform 64-bit keys, cut into 10 GPU batches.
    data = generate(1_000_000, "uniform", seed=42)
    sorter = HeterogeneousSorter(
        PLATFORM1,
        batch_size=100_000,      # b_s: elements per GPU batch
        n_streams=2,             # n_s: CUDA streams (overlap HtoD/DtoH)
        pinned_elements=20_000,  # p_s: staging buffer size
        memcpy_threads=8,        # PARMEMCPY: parallel staging copies
    )

    result = sorter.sort(data, approach="pipemerge")

    assert np.all(result.output[:-1] <= result.output[1:])
    print("output verified: sorted permutation of the input\n")
    print(result.summary())

    print(f"\npipelined pair-wise merges executed: "
          f"{result.meta['pairwise_merged']} "
          f"(heuristic quota for {result.plan.n_batches} batches)")

    # At n = 1e6 the fixed per-batch overheads (kernel launches, pinned
    # allocation) dominate and the CPU wins -- hybrid sorting pays off on
    # inputs that exceed GPU memory.  Timing-only mode scales to the
    # paper's sizes without allocating the data:
    n_big = int(5e9)   # 37 GiB of keys
    big = HeterogeneousSorter(PLATFORM1, batch_size=int(5e8),
                              n_streams=2, memcpy_threads=8)
    r_big = big.sort(n=n_big, approach="pipemerge")
    ref_big = cpu_reference_sort(PLATFORM1, n=n_big)
    print(f"\nat paper scale (n = {n_big:.0e}, timing-only):")
    print(f"  hybrid PIPEMERGE+PARMEMCPY: {r_big.elapsed:8.2f} s")
    print(f"  CPU reference (16 threads): {ref_big.elapsed:8.2f} s")
    print(f"  speedup: {r_big.speedup_over(ref_big):.2f}x "
          f"(paper reports 3.21x at this size)")


if __name__ == "__main__":
    main()
