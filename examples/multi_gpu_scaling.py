#!/usr/bin/env python
"""Multi-GPU scaling and the lower-bound model (Figs. 10-11).

Compares 1-GPU and 2-GPU pipelines on simulated PLATFORM2 against the
Sec. IV-G analytical lower bound, reproducing the paper's observations:
two GPUs win, but shared PCIe and CPU-side merging keep the gain well
below 2x -- the argument for GPU-side merging in the NVLink era (Sec. V).

    python examples/multi_gpu_scaling.py
"""

from repro import HeterogeneousSorter, PLATFORM2, cpu_reference_sort
from repro.model import measure_bline_throughput
from repro.reporting import render_table
from repro.workloads import dataset_gib

BS = int(3.5e8)


def main() -> None:
    models = {g: measure_bline_throughput(PLATFORM2, n_gpus=g)
              for g in (1, 2)}
    print("Lower-bound models (derived from simulated BLINE, "
          "Sec. IV-G):")
    for g, m in models.items():
        print(f"  {g} GPU: T(n) = {m.slope * 1e9:.3f} ns/element "
              f"(paper: {6.278 if g == 1 else 3.706} ns/element)")
    print()

    rows = []
    for mult in (4, 8, 14):
        n = mult * BS
        ref = cpu_reference_sort(PLATFORM2, n=n)
        row = [f"{n:.2e}", f"{dataset_gib(n):.1f}",
               f"{ref.elapsed:.2f}"]
        for g in (1, 2):
            sorter = HeterogeneousSorter(PLATFORM2, n_gpus=g,
                                         batch_size=BS, n_streams=2,
                                         memcpy_threads=8)
            r = sorter.sort(n=n, approach="pipemerge")
            row += [f"{r.elapsed:.2f}",
                    f"{ref.elapsed / r.elapsed:.2f}",
                    f"{models[g].slowdown_of(r.elapsed, n):.2f}"]
        rows.append(row)
    print(render_table(
        ["n", "GiB", "ref [s]",
         "1 GPU [s]", "speedup", "vs model",
         "2 GPU [s]", "speedup", "vs model"],
        rows,
        title="PipeMerge+ParMemCpy vs CPU reference and lower bound "
              "(PLATFORM2)"))

    print("""
Observations (cf. Sec. IV-F/IV-G):
 * 2 GPUs beat every 1-GPU configuration, but nowhere near 2x -- both
   devices share the PCIe root complex, and the CPU still does all the
   merging.
 * 'vs model' < 1 means slower than the analytical lower bound; the
   erosion with n is the growing multiway-merge cost.""")


if __name__ == "__main__":
    main()
