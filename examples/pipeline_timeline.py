#!/usr/bin/env python
"""Visualise the pipeline: ASCII Gantt timelines of each approach.

Renders the simulated span timeline the way the paper's Figs. 1-3
illustrate the approaches: BLINEMULTI's serial staircase, PIPEDATA's
interleaved MCpy/HtoD/DtoH lanes, and PIPEMERGE's pair merges running
while the GPU still sorts.

    python examples/pipeline_timeline.py
"""

from repro import HeterogeneousSorter, PLATFORM1
from repro.reporting import render_gantt

N = int(1.2e9)
BS = int(2e8)       # 6 batches, like the paper's Fig. 1 example


def show(approach: str, **kw) -> None:
    sorter = HeterogeneousSorter(PLATFORM1, batch_size=BS, n_streams=2,
                                 # large p_s so each chunk is visible
                                 pinned_elements=int(5e7), **kw)
    r = sorter.sort(n=N, approach=approach)
    title = approach + ("+parmemcpy" if kw.get("memcpy_threads") else "")
    print(f"=== {title}: {r.elapsed:.2f} s "
          f"(n_b={r.plan.n_batches}) ===")
    print(render_gantt(r.trace, width=96))
    print()


def main() -> None:
    print(__doc__)
    show("blinemulti")
    show("pipedata")
    show("pipemerge")
    show("pipemerge", memcpy_threads=8)


if __name__ == "__main__":
    main()
