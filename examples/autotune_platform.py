#!/usr/bin/env python
"""Auto-tune the sorter for a platform and input size.

The paper picks its knobs (n_s = 2, p_s = 1e6, maximal b_s) by hardware
reasoning; with a simulator, a practitioner can simply search.  This
example tunes both platforms at a mid-range size and reports what the
search finds -- which matches the paper's reasoning: pipelined transfers,
two streams, parallel staging copies.

    python examples/autotune_platform.py
"""

from repro.hetsort import autotune
from repro.hw import PLATFORM1, PLATFORM2
from repro.reporting import render_table


def tune(platform, n, n_gpus=1) -> None:
    result = autotune(platform, n=n, n_gpus=n_gpus)
    print(render_table(
        ["approach", "n_s", "memcpy threads", "p_s", "n_b", "time [s]"],
        result.table_rows()[:8],
        title=f"{platform.name} (n={n:.0e}, {n_gpus} GPU(s)) -- "
              "top configurations"))
    best = result.config
    print(f"best: {best.approach}, n_s={best.n_streams}, "
          f"memcpy_threads={best.memcpy_threads}, "
          f"p_s={best.pinned_elements:.0e}  ->  {result.elapsed:.3f} s  "
          f"({result.improvement_over_default():.2f}x vs paper-default "
          "knobs)\n")


def main() -> None:
    print(__doc__)
    tune(PLATFORM1, n=int(2e9))
    tune(PLATFORM2, n=int(2.8e9), n_gpus=2)


if __name__ == "__main__":
    main()
