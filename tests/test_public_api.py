"""Tests of the package's public surface: everything README documents
must import from `repro` and behave as advertised."""

import numpy as np
import pytest

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_readme_quickstart_works():
    """The exact flow shown in README.md."""
    data = np.random.default_rng(0).uniform(size=50_000)
    sorter = repro.HeterogeneousSorter(
        repro.PLATFORM1, batch_size=10_000, n_streams=2,
        pinned_elements=2_000, memcpy_threads=8)
    result = sorter.sort(data, approach="pipemerge")
    assert np.all(result.output[:-1] <= result.output[1:])
    assert "pipemerge" in result.summary()

    # Paper-scale knobs for the paper-scale run (the tiny p_s above
    # would drown a 1e9-element run in per-chunk overhead).
    big = sorter.sort(n=int(1e9), approach="pipemerge",
                      batch_size=int(2.5e8), pinned_elements=10 ** 6)
    ref = repro.cpu_reference_sort(repro.PLATFORM1, n=int(1e9))
    assert big.speedup_over(ref) > 1.0


def test_exception_hierarchy():
    assert issubclass(repro.CudaOutOfMemory, repro.CudaError)
    assert issubclass(repro.CudaError, repro.ReproError)
    assert issubclass(repro.PlanError, repro.ReproError)
    assert issubclass(repro.ValidationError, repro.ReproError)
    assert issubclass(repro.SimulationError, repro.ReproError)


def test_platform_registry():
    assert repro.get_platform("platform1") is repro.PLATFORM1
    assert set(repro.PLATFORMS) == {"PLATFORM1", "PLATFORM2"}


def test_make_plan_exported():
    plan = repro.make_plan(
        10 ** 6, repro.PLATFORM1,
        repro.SortConfig(batch_size=10 ** 5, approach="pipedata"))
    assert plan.n_batches == 10


def test_approach_and_staging_enums():
    assert "pipemerge" in repro.Approach.ALL
    assert "pinned" in repro.Staging.ALL


def test_subpackage_imports():
    import repro.cpu
    import repro.cuda
    import repro.hetsort
    import repro.hw
    import repro.kernels
    import repro.model
    import repro.reporting
    import repro.sim
    import repro.workloads

    assert callable(repro.kernels.sort_floats)
    assert callable(repro.model.end_to_end_accounting)
    assert callable(repro.reporting.render_table)
    assert callable(repro.workloads.generate)
