"""Tests for the float<->uint64 key transform and verification helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ValidationError
from repro.kernels.utils import (check_no_nan, float64_to_ordered_uint64,
                                 is_sorted, ordered_uint64_to_float64,
                                 same_multiset)

finite_f64 = st.floats(allow_nan=False, allow_infinity=True, width=64)


def test_roundtrip_simple():
    a = np.array([-2.5, -0.0, 0.0, 1.0, np.inf, -np.inf])
    k = float64_to_ordered_uint64(a)
    back = ordered_uint64_to_float64(k)
    assert np.array_equal(a.view(np.uint64), back.view(np.uint64))


def test_order_preserved():
    a = np.array([3.5, -1.0, 0.0, 2.0, -7.25, 1e300, -1e300, np.inf])
    k = float64_to_ordered_uint64(a)
    assert np.array_equal(np.argsort(k, kind="stable"),
                          np.argsort(a, kind="stable"))
    # Sorting by key always yields a float-sorted sequence, even with
    # mixed zero signs (where key order refines float order).
    z = np.array([0.0, -0.0, 1.0, -0.0])
    kz = float64_to_ordered_uint64(z)
    by_key = z[np.argsort(kz, kind="stable")]
    assert np.all(by_key[:-1] <= by_key[1:])


def test_negative_zero_below_positive_zero():
    k = float64_to_ordered_uint64(np.array([-0.0, 0.0]))
    assert k[0] < k[1]


def test_nan_rejected():
    with pytest.raises(ValidationError):
        float64_to_ordered_uint64(np.array([np.nan]))
    with pytest.raises(ValidationError):
        check_no_nan(np.array([1.0, np.nan, 2.0]))


def test_wrong_dtypes_rejected():
    with pytest.raises(ValidationError):
        float64_to_ordered_uint64(np.zeros(3, dtype=np.float32))
    with pytest.raises(ValidationError):
        ordered_uint64_to_float64(np.zeros(3, dtype=np.int64))


def test_is_sorted():
    assert is_sorted(np.array([1.0, 1.0, 2.0]))
    assert not is_sorted(np.array([2.0, 1.0]))
    assert is_sorted(np.empty(0))
    assert is_sorted(np.array([5.0]))


def test_same_multiset():
    a = np.array([1.0, 2.0, 2.0])
    assert same_multiset(a, np.array([2.0, 1.0, 2.0]))
    assert not same_multiset(a, np.array([1.0, 2.0, 3.0]))
    assert not same_multiset(a, np.array([1.0, 2.0]))


def test_same_multiset_distinguishes_zero_signs():
    assert not same_multiset(np.array([0.0]), np.array([-0.0]))


@given(hnp.arrays(np.float64, st.integers(1, 200), elements=finite_f64))
@settings(max_examples=100, deadline=None)
def test_property_transform_is_monotone_bijection(a):
    k = float64_to_ordered_uint64(a)
    # Bijection: exact bitwise roundtrip.
    back = ordered_uint64_to_float64(k)
    assert np.array_equal(a.view(np.uint64), back.view(np.uint64))
    # Monotone: uint order equals float order for every pair.
    order_f = np.argsort(a, kind="stable")
    order_k = np.argsort(k, kind="stable")
    assert np.array_equal(a[order_f], a[order_k])
