"""Tests for the LSD radix sort (the Thrust stand-in)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ValidationError
from repro.kernels.radix import (counting_sort_pass,
                                 counting_sort_pass_reference,
                                 lsd_radix_sort_u64, sort_floats,
                                 sort_floats_inplace)
from repro.kernels.utils import is_sorted, same_multiset

finite_f64 = st.floats(allow_nan=False, allow_infinity=True, width=64)


def test_sorts_random_uniform(rng):
    a = rng.random(10_000)
    s = sort_floats(a)
    assert is_sorted(s)
    assert same_multiset(a, s)


def test_sorts_negatives_and_positives(rng):
    a = rng.normal(scale=1e6, size=5000)
    s = sort_floats(a)
    assert is_sorted(s)
    assert same_multiset(a, s)


def test_special_values_ordering():
    a = np.array([np.inf, -np.inf, 0.0, -0.0, 1e-300, -1e-300,
                  1e300, -1e300])
    s = sort_floats(a)
    assert is_sorted(s)
    assert s[0] == -np.inf and s[-1] == np.inf
    # -0.0 sorts immediately before +0.0 (bit-level order).
    zero_idx = np.where(s == 0.0)[0]
    assert np.signbit(s[zero_idx[0]]) and not np.signbit(s[zero_idx[1]])


def test_nan_rejected():
    with pytest.raises(ValidationError):
        sort_floats(np.array([1.0, np.nan]))


def test_empty_and_singleton():
    assert len(sort_floats(np.empty(0))) == 0
    assert sort_floats(np.array([3.14]))[0] == 3.14


def test_all_equal(rng):
    a = np.full(1000, 7.5)
    assert np.array_equal(sort_floats(a), a)


def test_already_sorted_and_reversed(rng):
    a = np.sort(rng.random(2000))
    assert np.array_equal(sort_floats(a), a)
    assert np.array_equal(sort_floats(a[::-1].copy()), a)


def test_inplace_variant(rng):
    a = rng.random(1000)
    expect = np.sort(a)
    sort_floats_inplace(a)
    assert np.array_equal(a, expect)


@pytest.mark.parametrize("radix_bits", [1, 4, 8, 11, 16])
def test_radix_width_invariance(rng, radix_bits):
    a = rng.random(3000)
    assert np.array_equal(sort_floats(a, radix_bits=radix_bits), np.sort(a))


def test_u64_keys_sorted(rng):
    keys = rng.integers(0, 2 ** 63, size=4000).astype(np.uint64)
    out = lsd_radix_sort_u64(keys)
    assert np.array_equal(out, np.sort(keys))


def test_u64_rejects_wrong_dtype():
    with pytest.raises(ValidationError):
        lsd_radix_sort_u64(np.arange(10, dtype=np.int64))


def test_stability_via_payload(rng):
    """Equal keys must keep their original relative order."""
    keys = rng.integers(0, 8, size=2000).astype(np.uint64)
    payload = np.arange(2000)
    out_keys, out_payload = lsd_radix_sort_u64(keys, payload=payload)
    assert np.array_equal(out_keys, np.sort(keys))
    for k in np.unique(keys):
        grp = out_payload[out_keys == k]
        assert np.array_equal(grp, np.sort(grp)), "stability violated"


def test_payload_length_mismatch_rejected(rng):
    with pytest.raises(ValidationError):
        lsd_radix_sort_u64(np.zeros(4, dtype=np.uint64),
                           payload=np.zeros(3))


def test_counting_pass_matches_pure_python_oracle(rng):
    keys = rng.integers(0, 2 ** 64, size=500, dtype=np.uint64)
    for shift in (0, 8, 56):
        got, _ = counting_sort_pass(keys, None, shift, 8)
        want = counting_sort_pass_reference(keys, shift, 8)
        assert np.array_equal(got, want)


def test_counting_pass_width_validation(rng):
    keys = np.zeros(4, dtype=np.uint64)
    with pytest.raises(ValidationError):
        counting_sort_pass(keys, None, 0, 0)
    with pytest.raises(ValidationError):
        counting_sort_pass(keys, None, 0, 32)


@given(hnp.arrays(np.float64, st.integers(0, 300), elements=finite_f64))
@settings(max_examples=80, deadline=None)
def test_property_matches_numpy_sort(a):
    got = sort_floats(a)
    assert is_sorted(got)
    assert same_multiset(a, got)


@given(hnp.arrays(np.uint64, st.integers(0, 300),
                  elements=st.integers(0, 2 ** 64 - 1)))
@settings(max_examples=80, deadline=None)
def test_property_u64_matches_numpy(keys):
    assert np.array_equal(lsd_radix_sort_u64(keys), np.sort(keys))
