"""Cross-algorithm consistency: every sorting kernel in the library must
agree with every other on identical inputs, across distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (bitonic_sort, introsort, losertree_merge,
                           merge_two, multiway_merge, sample_sort,
                           sort_floats)
from repro.workloads import DISTRIBUTIONS, generate

SORTERS = {
    "radix": sort_floats,
    "bitonic": bitonic_sort,
    "introsort": introsort,
    "samplesort": lambda a: sample_sort(a, threads=8),
    "numpy": np.sort,
}


@pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
def test_all_sorters_agree(dist):
    a = generate(3000, dist, seed=17)
    results = {name: fn(a) for name, fn in SORTERS.items()}
    ref = results.pop("numpy")
    for name, out in results.items():
        assert np.array_equal(out, ref), name


def test_sort_then_split_then_merge_roundtrip(rng):
    """Sorting, splitting into runs, and multiway-merging must be
    idempotent -- the pipeline's core algebraic identity."""
    a = rng.normal(size=5000)
    full = sort_floats(a)
    for k in (2, 3, 7):
        bounds = np.linspace(0, len(a), k + 1).astype(int)
        runs = [sort_floats(a[lo:hi])
                for lo, hi in zip(bounds[:-1], bounds[1:])]
        assert np.array_equal(multiway_merge(runs), full)
        assert np.array_equal(losertree_merge(runs), full)


def test_pairwise_merge_tree_equals_multiway(rng):
    runs = [np.sort(rng.normal(size=rng.integers(0, 200)))
            for _ in range(6)]
    tree = runs[0]
    for r in runs[1:]:
        tree = merge_two(tree, r)
    assert np.array_equal(tree, multiway_merge(runs))


@given(seed=st.integers(0, 50), n=st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_property_radix_vs_introsort_vs_samplesort(seed, n):
    a = generate(n, "gaussian", seed=seed)
    expected = np.sort(a)
    assert np.array_equal(sort_floats(a), expected)
    assert np.array_equal(introsort(a), expected)
    assert np.array_equal(sample_sort(a, threads=4), expected)
