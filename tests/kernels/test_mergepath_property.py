"""Property tests for Merge Path partitioning (seeded-random loops).

Adversarial inputs the binary search is most likely to get wrong:
heavy duplicates, all-equal keys, empty sides, single elements and
+/-inf keys.  Each case checks the documented invariants of ``corank``
plus the end-to-end oracle ``np.sort`` / stable-concatenation.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kernels.mergepath import (corank, merge_two, parallel_merge,
                                     partition_merge)

RNG_SEED = 0xC0FFEE
N_CASES = 150


def random_sorted_pair(rng):
    """Adversarial generator: sizes skewed to tiny, values drawn from a
    small alphabet (duplicate-heavy) with occasional +/-inf."""
    sizes = [0, 0, 1, 1, 2, 3, 5, 8, 17, 64, 257]
    n = int(rng.choice(sizes))
    m = int(rng.choice(sizes))
    alphabet = rng.choice([3, 8, 1000])
    a = rng.integers(0, alphabet, size=n).astype(np.float64)
    b = rng.integers(0, alphabet, size=m).astype(np.float64)
    # Sprinkle infinities in ~a third of the cases.
    if rng.random() < 0.35:
        for arr in (a, b):
            if len(arr):
                mask = rng.random(len(arr)) < 0.2
                arr[mask] = rng.choice([-np.inf, np.inf])
    a.sort()
    b.sort()
    return a, b


def check_corank_invariants(d, a, b):
    i, j = corank(d, a, b)
    assert i + j == d
    assert 0 <= i <= len(a)
    assert 0 <= j <= len(b)
    # Stable cut: everything taken is <= everything left, and ties are
    # taken from a first.
    if i > 0 and j < len(b):
        assert a[i - 1] <= b[j]
    if j > 0 and i < len(a):
        assert b[j - 1] < a[i]


def test_corank_invariants_random():
    rng = np.random.default_rng(RNG_SEED)
    for _ in range(N_CASES):
        a, b = random_sorted_pair(rng)
        for d in {0, 1, (len(a) + len(b)) // 2, len(a) + len(b)}:
            if d <= len(a) + len(b):
                check_corank_invariants(d, a, b)


def test_corank_all_equal_keys():
    a = np.full(10, 5.0)
    b = np.full(7, 5.0)
    for d in range(18):
        i, j = corank(d, a, b)
        assert i + j == d
        # Stability: with all ties, a is consumed before b.
        assert i == min(d, 10)


def test_corank_rejects_out_of_range():
    a = np.array([1.0])
    b = np.array([2.0])
    with pytest.raises(ValidationError):
        corank(3, a, b)
    with pytest.raises(ValidationError):
        corank(-1, a, b)


def test_merge_two_matches_numpy_random():
    rng = np.random.default_rng(RNG_SEED + 1)
    for _ in range(N_CASES):
        a, b = random_sorted_pair(rng)
        got = merge_two(a, b)
        want = np.sort(np.concatenate([a, b]), kind="stable")
        np.testing.assert_array_equal(got, want)


def test_merge_two_stability_with_tagged_ties():
    # Tag values in the fraction so equal keys are distinguishable:
    # a-elements carry .25, b-elements .75; floor() compares them equal
    # under the integer key, but merge order must put all a's first.
    a = np.array([1.25, 1.25, 2.25])
    b = np.array([1.75, 2.75, 2.75])
    keyed_a = np.floor(a)
    keyed_b = np.floor(b)
    merged = merge_two(keyed_a, keyed_b)
    assert merged.tolist() == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
    # Reconstruct with tags via the same positional computation.
    n, m = len(a), len(b)
    pos_a = np.arange(n) + np.searchsorted(keyed_b, keyed_a, side="left")
    pos_b = np.arange(m) + np.searchsorted(keyed_a, keyed_b, side="right")
    out = np.empty(n + m)
    out[pos_a] = a
    out[pos_b] = b
    # Within each group of equal integer keys, a-tags precede b-tags.
    assert out.tolist() == [1.25, 1.25, 1.75, 2.25, 2.75, 2.75]


def test_merge_two_empty_and_single():
    e = np.empty(0)
    one = np.array([3.0])
    np.testing.assert_array_equal(merge_two(e, e), e)
    np.testing.assert_array_equal(merge_two(e, one), one)
    np.testing.assert_array_equal(merge_two(one, e), one)
    np.testing.assert_array_equal(merge_two(one, np.array([1.0])),
                                  np.array([1.0, 3.0]))


def test_merge_two_infinities():
    a = np.array([-np.inf, 0.0, np.inf])
    b = np.array([-np.inf, np.inf, np.inf])
    got = merge_two(a, b)
    np.testing.assert_array_equal(
        got, np.array([-np.inf, -np.inf, 0.0, np.inf, np.inf, np.inf]))


def test_partition_merge_segments_reassemble():
    rng = np.random.default_rng(RNG_SEED + 2)
    for _ in range(N_CASES // 2):
        a, b = random_sorted_pair(rng)
        total = len(a) + len(b)
        for parts in (1, 2, 3, 7):
            segs = partition_merge(a, b, parts)
            assert len(segs) == parts
            pieces = [merge_two(a[sa], b[sb]) for sa, sb in segs]
            got = np.concatenate(pieces) if pieces else np.empty(0)
            want = np.sort(np.concatenate([a, b]), kind="stable")
            np.testing.assert_array_equal(got, want)
            # Balance: each segment within one element of total/parts.
            for sa, sb in segs:
                seg_n = (sa.stop - sa.start) + (sb.stop - sb.start)
                assert seg_n <= total // parts + 1


def test_partition_merge_rejects_bad_parts():
    with pytest.raises(ValidationError):
        partition_merge(np.empty(0), np.empty(0), 0)


def test_parallel_merge_matches_serial():
    rng = np.random.default_rng(RNG_SEED + 3)
    for _ in range(N_CASES // 2):
        a, b = random_sorted_pair(rng)
        want = merge_two(a, b)
        for threads in (1, 2, 4, 9):
            np.testing.assert_array_equal(
                parallel_merge(a, b, threads=threads), want)
