"""Tests for the bitonic sorting network."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ValidationError
from repro.kernels.bitonic import (bitonic_sort, bitonic_sort_inplace,
                                   compare_exchange_pairs)
from repro.kernels.utils import is_sorted, same_multiset

finite_f64 = st.floats(allow_nan=False, allow_infinity=False, width=64)


@pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 7, 8, 15, 16, 100, 256, 1000])
def test_various_sizes(rng, n):
    a = rng.normal(size=n)
    s = bitonic_sort(a)
    assert is_sorted(s)
    assert same_multiset(a, s)


def test_power_of_two_runs_in_place(rng):
    a = rng.normal(size=64)
    expect = np.sort(a)
    bitonic_sort_inplace(a)
    assert np.array_equal(a, expect)


def test_non_power_of_two_padding_handles_inf(rng):
    """Padding uses +inf; real +inf elements must still sort correctly."""
    a = np.concatenate([rng.normal(size=50), [np.inf, np.inf, -np.inf]])
    rng.shuffle(a)
    s = bitonic_sort(a)
    assert is_sorted(s)
    assert same_multiset(a, s)


def test_nan_rejected():
    with pytest.raises(ValidationError):
        bitonic_sort(np.array([1.0, np.nan]))


def test_2d_rejected():
    with pytest.raises(ValidationError):
        bitonic_sort(np.zeros((2, 2)))


def test_non_power_of_two_int_dtype_rejected():
    with pytest.raises(ValidationError):
        bitonic_sort_inplace(np.arange(5))


def test_power_of_two_int_dtype_supported():
    a = np.array([3, 1, 2, 0])
    assert np.array_equal(bitonic_sort(a), np.array([0, 1, 2, 3]))


def test_data_obliviousness():
    """The network structure depends only on n, never on values."""
    n = 16
    stages_a = []
    k = 2
    while k <= n:
        j = k // 2
        while j >= 1:
            lo, hi = compare_exchange_pairs(n, k, j)
            stages_a.append((lo.tolist(), hi.tolist()))
            j //= 2
        k *= 2
    # Expected stage count: log2(n) * (log2(n)+1) / 2 = 4*5/2 = 10.
    assert len(stages_a) == 10
    # Each element appears in exactly one pair per stage.
    for lo, hi in stages_a:
        touched = lo + hi
        assert len(touched) == n
        assert len(set(touched)) == n


@given(hnp.arrays(np.float64, st.integers(0, 128), elements=finite_f64))
@settings(max_examples=60, deadline=None)
def test_property_matches_numpy(a):
    assert np.array_equal(bitonic_sort(a), np.sort(a))
