"""Regression tests for NaN handling in order checks and validation.

NaN comparisons are all False, which broke the original checks in two
ways: single-element (and trailing-NaN) arrays passed ``is_sorted``, and
the "first failing index" diagnostic computed via ``argmax(a[:-1] >
a[1:])`` pointed at index 0 regardless of where the violation was.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.hetsort.validate import check_sorted_permutation
from repro.kernels.utils import first_unsorted_index, has_nan, is_sorted


def test_has_nan():
    assert has_nan(np.array([1.0, np.nan]))
    assert not has_nan(np.array([1.0, np.inf, -np.inf]))
    assert not has_nan(np.array([], dtype=np.float64))
    assert not has_nan(np.array([1, 2, 3]))  # int arrays can't hold NaN


def test_is_sorted_rejects_nan_everywhere():
    # The original bug: a lone NaN sailed through (len < 2 shortcut),
    # as did [x, nan] (x <= nan is False... but so is nan > x).
    assert not is_sorted(np.array([np.nan]))
    assert not is_sorted(np.array([1.0, np.nan]))
    assert not is_sorted(np.array([np.nan, 1.0]))
    assert not is_sorted(np.array([np.nan, np.nan]))
    assert not is_sorted(np.array([0.0, 1.0, np.nan, 2.0]))


def test_is_sorted_normal_cases_unaffected():
    assert is_sorted(np.array([], dtype=np.float64))
    assert is_sorted(np.array([5.0]))
    assert is_sorted(np.array([-np.inf, 0.0, np.inf]))
    assert not is_sorted(np.array([2.0, 1.0]))


def test_first_unsorted_index_points_at_real_violation():
    assert first_unsorted_index(np.array([1.0, 2.0, 3.0])) is None
    assert first_unsorted_index(np.array([3.0, 1.0, 2.0])) == 0
    assert first_unsorted_index(np.array([1.0, 3.0, 2.0])) == 1
    # The argmax-over-'>' bug reported 0 here; the first violating pair
    # is (a[1], a[2]) = (1.0, nan).
    assert first_unsorted_index(np.array([0.0, 1.0, np.nan, 2.0])) == 1
    assert first_unsorted_index(np.array([np.nan])) == 0
    assert first_unsorted_index(np.array([], dtype=np.float64)) is None
    assert first_unsorted_index(np.array([7.0])) is None


def test_validation_rejects_nan_input_with_position():
    data = np.array([1.0, np.nan, 2.0, np.nan])
    with pytest.raises(ValidationError, match=r"index 1.*2 total"):
        check_sorted_permutation(data, np.sort(data))


def test_validation_rejects_nan_output():
    original = np.array([1.0, 2.0, 3.0])
    bad_out = np.array([1.0, 2.0, np.nan])
    with pytest.raises(ValidationError, match="output contains NaN"):
        check_sorted_permutation(original, bad_out)


def test_validation_reports_unsorted_index():
    original = np.array([1.0, 2.0, 3.0])
    with pytest.raises(ValidationError, match="not sorted at index 1"):
        check_sorted_permutation(original, np.array([1.0, 3.0, 2.0]))


def test_validation_accepts_sorted_permutation():
    original = np.array([3.0, -np.inf, 1.0, np.inf])
    check_sorted_permutation(original, np.sort(original))


def test_validation_rejects_non_permutation():
    with pytest.raises(ValidationError, match="permutation"):
        check_sorted_permutation(np.array([1.0, 2.0]),
                                 np.array([1.0, 3.0]))
