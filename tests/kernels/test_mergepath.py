"""Tests for Merge Path: corank invariants, partition independence,
stable vectorised merging."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.kernels.mergepath import (corank, merge_two, parallel_merge,
                                     partition_merge)

sorted_arrays = st.lists(st.integers(-50, 50), min_size=0, max_size=120) \
    .map(lambda xs: np.array(sorted(xs), dtype=np.float64))


def ref_merge(a, b):
    return np.sort(np.concatenate([a, b]), kind="stable")


# ---------------------------------------------------------------------------
# merge_two
# ---------------------------------------------------------------------------

def test_merge_two_basic():
    a = np.array([1.0, 3.0, 5.0])
    b = np.array([2.0, 4.0, 6.0])
    assert np.array_equal(merge_two(a, b), np.arange(1.0, 7.0))


def test_merge_two_empty_sides():
    a = np.array([1.0, 2.0])
    empty = np.empty(0)
    assert np.array_equal(merge_two(a, empty), a)
    assert np.array_equal(merge_two(empty, a), a)
    assert len(merge_two(empty, empty)) == 0


def test_merge_two_with_many_ties():
    a = np.array([1.0, 1.0, 2.0, 2.0])
    b = np.array([1.0, 2.0, 2.0, 3.0])
    out = merge_two(a, b)
    assert np.array_equal(out, ref_merge(a, b))


def test_merge_two_stability():
    """Ties come from `a` first: verify via distinguishable payload trick
    using -0.0 / +0.0 which compare equal but differ bitwise."""
    a = np.array([-0.0, 1.0])
    b = np.array([0.0, 1.0])
    out = merge_two(a, b)
    # The -0.0 (from a) must precede the +0.0 (from b).
    assert np.signbit(out[0]) and not np.signbit(out[1])


def test_merge_two_disjoint_ranges():
    a = np.arange(0.0, 10.0)
    b = np.arange(10.0, 20.0)
    assert np.array_equal(merge_two(a, b), np.arange(0.0, 20.0))
    assert np.array_equal(merge_two(b, a), np.arange(0.0, 20.0))


@given(a=sorted_arrays, b=sorted_arrays)
@settings(max_examples=100, deadline=None)
def test_property_merge_two_matches_reference(a, b):
    assert np.array_equal(merge_two(a, b), ref_merge(a, b))


# ---------------------------------------------------------------------------
# corank
# ---------------------------------------------------------------------------

def assert_corank_invariants(a, b, d, i, j):
    assert i + j == d
    assert 0 <= i <= len(a) and 0 <= j <= len(b)
    if i > 0 and j < len(b):
        assert a[i - 1] <= b[j]
    if j > 0 and i < len(a):
        assert b[j - 1] < a[i]


def test_corank_every_diagonal(rng):
    a = np.sort(rng.integers(0, 30, 50).astype(float))
    b = np.sort(rng.integers(0, 30, 70).astype(float))
    for d in range(len(a) + len(b) + 1):
        i, j = corank(d, a, b)
        assert_corank_invariants(a, b, d, i, j)


def test_corank_boundaries():
    a = np.array([1.0, 2.0])
    b = np.array([3.0, 4.0])
    assert corank(0, a, b) == (0, 0)
    assert corank(4, a, b) == (2, 2)
    assert corank(2, a, b) == (2, 0)  # all of a first


def test_corank_out_of_range():
    a = np.array([1.0])
    with pytest.raises(ValidationError):
        corank(3, a, a)


def test_corank_all_ties():
    """All-equal inputs: stability demands a's elements come first."""
    a = np.full(4, 5.0)
    b = np.full(4, 5.0)
    for d in range(9):
        i, j = corank(d, a, b)
        assert_corank_invariants(a, b, d, i, j)
        assert i == min(d, 4)  # take from a first


@given(a=sorted_arrays, b=sorted_arrays, frac=st.floats(0, 1))
@settings(max_examples=100, deadline=None)
def test_property_corank_prefix_is_merge_prefix(a, b, frac):
    d = int(frac * (len(a) + len(b)))
    i, j = corank(d, a, b)
    assert_corank_invariants(a, b, d, i, j)
    prefix = ref_merge(a[:i], b[:j])
    full = ref_merge(a, b)
    assert np.array_equal(prefix, full[:d])


# ---------------------------------------------------------------------------
# partition_merge / parallel_merge
# ---------------------------------------------------------------------------

def test_partition_merge_concatenates_to_full_merge(rng):
    a = np.sort(rng.normal(size=500))
    b = np.sort(rng.normal(size=321))
    for parts in (1, 2, 3, 7, 16):
        pieces = [merge_two(a[sa], b[sb])
                  for sa, sb in partition_merge(a, b, parts)]
        assert np.array_equal(np.concatenate(pieces), ref_merge(a, b))


def test_partition_merge_balanced(rng):
    a = np.sort(rng.normal(size=800))
    b = np.sort(rng.normal(size=800))
    parts = partition_merge(a, b, 8)
    sizes = [(sa.stop - sa.start) + (sb.stop - sb.start)
             for sa, sb in parts]
    assert max(sizes) - min(sizes) <= 1  # balanced to within one element


def test_partition_merge_invalid_parts():
    a = np.array([1.0])
    with pytest.raises(ValidationError):
        partition_merge(a, a, 0)


def test_parallel_merge_equals_serial(rng):
    a = np.sort(rng.normal(size=257))
    b = np.sort(rng.normal(size=129))
    for threads in (1, 2, 5, 16):
        assert np.array_equal(parallel_merge(a, b, threads),
                              merge_two(a, b))


@given(a=sorted_arrays, b=sorted_arrays,
       parts=st.integers(min_value=1, max_value=9))
@settings(max_examples=80, deadline=None)
def test_property_partitioned_merge_correct(a, b, parts):
    got = parallel_merge(a, b, threads=parts)
    assert np.array_equal(got, ref_merge(a, b))
