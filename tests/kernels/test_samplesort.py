"""Tests for parallel sample sort (the GNU parallel-mode stand-in)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ValidationError
from repro.kernels.samplesort import (partition_by_splitters, sample_sort,
                                      sample_splitters)
from repro.kernels.utils import is_sorted, same_multiset

finite_f64 = st.floats(allow_nan=False, allow_infinity=False, width=64)


@pytest.mark.parametrize("threads", [1, 2, 4, 8, 16, 20])
def test_sorts_correctly_any_thread_count(rng, threads):
    a = rng.normal(size=5000)
    s = sample_sort(a, threads=threads)
    assert is_sorted(s)
    assert same_multiset(a, s)


def test_small_inputs(rng):
    assert len(sample_sort(np.empty(0))) == 0
    assert sample_sort(np.array([1.0]))[0] == 1.0
    assert np.array_equal(sample_sort(np.array([2.0, 1.0]), threads=8),
                          np.array([1.0, 2.0]))


def test_duplicate_heavy_input(rng):
    a = rng.integers(0, 4, 3000).astype(float)
    s = sample_sort(a, threads=8)
    assert is_sorted(s) and same_multiset(a, s)


def test_deterministic_given_seed(rng):
    a = rng.normal(size=2000)
    assert np.array_equal(sample_sort(a, threads=4, seed=7),
                          sample_sort(a, threads=4, seed=7))


def test_nan_rejected():
    with pytest.raises(ValidationError):
        sample_sort(np.array([np.nan, 1.0]))


def test_2d_rejected():
    with pytest.raises(ValidationError):
        sample_sort(np.zeros((3, 3)))


def test_splitters_count_and_order(rng):
    a = rng.normal(size=10_000)
    for p in (2, 4, 16):
        sp = sample_splitters(a, p)
        assert len(sp) == p - 1
        assert is_sorted(sp)
    assert len(sample_splitters(a, 1)) == 0


def test_splitters_invalid_parts(rng):
    with pytest.raises(ValidationError):
        sample_splitters(np.zeros(4), 0)


def test_partition_covers_input_disjointly(rng):
    a = rng.normal(size=4000)
    sp = sample_splitters(a, 8)
    buckets = partition_by_splitters(a, sp)
    assert len(buckets) == 8
    assert sum(map(len, buckets)) == len(a)
    assert same_multiset(a, np.concatenate(buckets))
    # Bucket ranges are ordered: max of bucket i <= min of bucket i+1.
    prev_max = -np.inf
    for b in buckets:
        if len(b):
            assert b.min() >= prev_max
            prev_max = max(prev_max, b.max())


def test_partition_without_splitters_returns_copy(rng):
    a = rng.normal(size=10)
    buckets = partition_by_splitters(a, a[:0])
    assert len(buckets) == 1
    assert np.array_equal(buckets[0], a)
    buckets[0][0] = 99.0
    assert a[0] != 99.0


def test_bucket_balance_uniform(rng):
    """Oversampling must keep buckets reasonably balanced on uniform
    data (within a factor ~3 of ideal for 8 buckets)."""
    a = rng.random(40_000)
    buckets = partition_by_splitters(a, sample_splitters(a, 8))
    ideal = len(a) / 8
    assert max(map(len, buckets)) < 3 * ideal


@given(a=hnp.arrays(np.float64, st.integers(0, 400), elements=finite_f64),
       threads=st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_property_matches_numpy(a, threads):
    assert np.array_equal(sample_sort(a, threads=threads), np.sort(a))
