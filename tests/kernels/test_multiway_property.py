"""Property tests for the loser-tree and partitioned k-way merge
(seeded-random loops standing in for hypothesis).

Covers the ISSUE's adversarial catalogue: heavy duplicates, all-equal
keys, empty runs, single-element runs and +/-inf keys; the loser tree is
additionally checked for stability (ties resolved by run index) and the
two engines are checked against each other.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.kernels.multiway import (losertree_merge, multiway_merge,
                                    multiway_rank_split, partition_multiway)

RNG_SEED = 0xBEEF
N_CASES = 60


def random_runs(rng):
    """A list of sorted runs with adversarial shapes: empty runs,
    single-element runs, duplicate-heavy alphabets, occasional +/-inf."""
    k = int(rng.integers(0, 9))
    alphabet = int(rng.choice([2, 5, 1000]))
    runs = []
    for _ in range(k):
        n = int(rng.choice([0, 0, 1, 1, 2, 4, 9, 33, 120]))
        r = rng.integers(0, alphabet, size=n).astype(np.float64)
        if len(r) and rng.random() < 0.3:
            mask = rng.random(n) < 0.25
            r[mask] = rng.choice([-np.inf, np.inf])
        r.sort()
        runs.append(r)
    return runs


def oracle(runs):
    if not runs or not any(len(r) for r in runs):
        return np.empty(0)
    return np.sort(np.concatenate([r for r in runs if len(r)]),
                   kind="stable")


def test_losertree_matches_numpy_random():
    rng = np.random.default_rng(RNG_SEED)
    for _ in range(N_CASES):
        runs = random_runs(rng)
        np.testing.assert_array_equal(losertree_merge(runs), oracle(runs))


def test_multiway_matches_losertree_random():
    rng = np.random.default_rng(RNG_SEED + 1)
    for _ in range(N_CASES):
        runs = random_runs(rng)
        np.testing.assert_array_equal(multiway_merge(runs),
                                      losertree_merge(runs))


def test_empty_and_single_element_runs():
    e = np.empty(0)
    for fn in (losertree_merge, multiway_merge):
        np.testing.assert_array_equal(fn([]), e)
        np.testing.assert_array_equal(fn([e, e, e]), e)
        np.testing.assert_array_equal(fn([e, np.array([1.0]), e]),
                                      np.array([1.0]))
        got = fn([np.array([2.0]), np.array([1.0]), np.array([3.0])])
        np.testing.assert_array_equal(got, np.array([1.0, 2.0, 3.0]))


def test_all_equal_keys():
    runs = [np.full(5, 7.0), np.full(3, 7.0), np.full(8, 7.0)]
    for fn in (losertree_merge, multiway_merge):
        out = fn(runs)
        assert len(out) == 16
        assert (out == 7.0).all()


def test_infinity_keys():
    runs = [np.array([-np.inf, 0.0]),
            np.array([-np.inf, np.inf]),
            np.array([np.inf])]
    want = np.array([-np.inf, -np.inf, 0.0, np.inf, np.inf])
    for fn in (losertree_merge, multiway_merge):
        np.testing.assert_array_equal(fn(runs), want)


def test_losertree_stability_by_run_index():
    # Equal integer keys, fractional tags identify the source run.
    # A stable k-way merge emits ties in run order: .1 before .2 before .3.
    runs = [np.array([1.1, 2.1]), np.array([1.2, 2.2]),
            np.array([1.3, 2.3])]
    keyed = [np.floor(r) for r in runs]
    merged = losertree_merge(keyed)
    np.testing.assert_array_equal(merged,
                                  np.array([1.0, 1.0, 1.0, 2.0, 2.0, 2.0]))
    # Drive the same loser tree with the tagged values and integer
    # comparison semantics replicated via a big scale: tag ordering holds
    # because floor-equal values differ only in the tag, and the tree must
    # never let a higher-index run win a tie.
    tagged = losertree_merge(runs)  # tags make keys distinct: sanity
    np.testing.assert_array_equal(
        tagged, np.array([1.1, 1.2, 1.3, 2.1, 2.2, 2.3]))


def test_rank_split_prefix_property_random():
    rng = np.random.default_rng(RNG_SEED + 2)
    for _ in range(N_CASES):
        runs = random_runs(rng)
        total = sum(len(r) for r in runs)
        if total == 0:
            continue
        merged = oracle(runs)
        for rank in {0, 1, total // 3, total // 2, total}:
            cuts = multiway_rank_split(runs, rank)
            assert sum(cuts) == rank
            taken = [r[:c] for r, c in zip(runs, cuts)]
            got = np.sort(np.concatenate(taken)) if rank else np.empty(0)
            np.testing.assert_array_equal(got, merged[:rank])


def test_rank_split_rejects_out_of_range():
    runs = [np.array([1.0, 2.0])]
    with pytest.raises(ValidationError):
        multiway_rank_split(runs, 3)
    with pytest.raises(ValidationError):
        multiway_rank_split(runs, -1)


def test_partition_multiway_reassembles():
    rng = np.random.default_rng(RNG_SEED + 3)
    for _ in range(N_CASES // 2):
        runs = random_runs(rng)
        merged = oracle(runs)
        for parts in (1, 2, 5):
            groups = partition_multiway(runs, parts)
            assert len(groups) == parts
            pieces = []
            for group in groups:
                segs = [r[s] for r, s in zip(runs, group)]
                pieces.append(losertree_merge(segs))
            got = (np.concatenate(pieces) if any(len(p) for p in pieces)
                   else np.empty(0))
            np.testing.assert_array_equal(got, merged)


def test_partition_multiway_rejects_bad_parts():
    with pytest.raises(ValidationError):
        partition_multiway([np.array([1.0])], 0)


def test_rejects_non_1d_runs():
    bad = np.zeros((2, 2))
    for fn in (losertree_merge, multiway_merge):
        with pytest.raises(ValidationError):
            fn([bad])
