"""Tests for introsort (the std::sort / qsort stand-in)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ValidationError
from repro.kernels.quicksort import (heapsort_inplace, insertion_sort_inplace,
                                     introsort)
from repro.kernels.utils import is_sorted, same_multiset

finite_f64 = st.floats(allow_nan=False, allow_infinity=False, width=64)


@pytest.mark.parametrize("n", [0, 1, 2, 15, 16, 17, 100, 1000])
def test_various_sizes(rng, n):
    a = rng.normal(size=n)
    s = introsort(a)
    assert is_sorted(s)
    assert same_multiset(a, s)


def test_input_not_mutated(rng):
    a = rng.normal(size=100)
    orig = a.copy()
    introsort(a)
    assert np.array_equal(a, orig)


def test_adversarial_inputs(rng):
    n = 2000
    cases = [
        np.sort(rng.normal(size=n)),           # sorted
        np.sort(rng.normal(size=n))[::-1].copy(),  # reversed
        np.full(n, 1.0),                       # all equal
        rng.integers(0, 3, n).astype(float),   # few distinct (3-way part.)
        np.tile([1.0, 2.0], n // 2),           # organ pipe
    ]
    for a in cases:
        s = introsort(a)
        assert is_sorted(s) and same_multiset(a, s)


def test_nan_rejected():
    with pytest.raises(ValidationError):
        introsort(np.array([np.nan]))


def test_2d_rejected():
    with pytest.raises(ValidationError):
        introsort(np.zeros((2, 3)))


def test_insertion_sort_subrange(rng):
    a = rng.normal(size=20)
    orig = a.copy()
    insertion_sort_inplace(a, 5, 15)
    assert is_sorted(a[5:15])
    assert np.array_equal(a[:5], orig[:5])
    assert np.array_equal(a[15:], orig[15:])


def test_heapsort_subrange(rng):
    a = rng.normal(size=50)
    orig = a.copy()
    heapsort_inplace(a, 10, 40)
    assert is_sorted(a[10:40])
    assert same_multiset(a[10:40], orig[10:40])
    assert np.array_equal(a[:10], orig[:10])


def test_heapsort_full(rng):
    a = rng.normal(size=333)
    expect = np.sort(a)
    heapsort_inplace(a)
    assert np.array_equal(a, expect)


@given(hnp.arrays(np.float64, st.integers(0, 300), elements=finite_f64))
@settings(max_examples=50, deadline=None)
def test_property_matches_numpy(a):
    assert np.array_equal(introsort(a), np.sort(a))
