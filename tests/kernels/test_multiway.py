"""Tests for k-way merging: loser tree, vectorised tree merge, and
multi-sequence partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.kernels.multiway import (losertree_merge, multiway_merge,
                                    multiway_rank_split, partition_multiway)

run_lists = st.lists(
    st.lists(st.integers(-30, 30), min_size=0, max_size=40)
    .map(lambda xs: np.array(sorted(xs), dtype=np.float64)),
    min_size=1, max_size=9,
)


def ref(runs):
    total = sum(len(r) for r in runs)
    if total == 0:
        return np.empty(0)
    return np.sort(np.concatenate([r for r in runs if len(r)]))


def make_runs(rng, k, max_len=60):
    return [np.sort(rng.integers(0, 40, rng.integers(0, max_len))
                    .astype(np.float64)) for _ in range(k)]


# ---------------------------------------------------------------------------
# losertree_merge (the oracle)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 8, 13])
def test_losertree_various_k(rng, k):
    runs = make_runs(rng, k)
    assert np.array_equal(losertree_merge(runs), ref(runs))


def test_losertree_empty_inputs():
    assert len(losertree_merge([np.empty(0), np.empty(0)])) == 0
    assert len(losertree_merge([])) == 0


def test_losertree_single_run(rng):
    r = np.sort(rng.normal(size=50))
    out = losertree_merge([r])
    assert np.array_equal(out, r)
    assert out is not r  # must be a copy


def test_losertree_heavy_duplicates(rng):
    runs = [np.sort(rng.integers(0, 3, 50).astype(float)) for _ in range(5)]
    assert np.array_equal(losertree_merge(runs), ref(runs))


def test_losertree_rejects_2d():
    with pytest.raises(ValidationError):
        losertree_merge([np.zeros((2, 2))])


# ---------------------------------------------------------------------------
# multiway_merge (the fast engine)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("k", [1, 2, 3, 6, 10, 17])
def test_multiway_matches_losertree(rng, k):
    runs = make_runs(rng, k)
    assert np.array_equal(multiway_merge(runs), losertree_merge(runs))


def test_multiway_empty():
    assert len(multiway_merge([np.empty(0)])) == 0


def test_multiway_single_run_copies(rng):
    r = np.sort(rng.normal(size=20))
    out = multiway_merge([r])
    assert np.array_equal(out, r)
    out[0] = -999.0
    assert r[0] != -999.0


@given(runs=run_lists)
@settings(max_examples=80, deadline=None)
def test_property_multiway_equals_sorted_concat(runs):
    assert np.array_equal(multiway_merge(runs), ref(runs))


@given(runs=run_lists)
@settings(max_examples=40, deadline=None)
def test_property_losertree_equals_sorted_concat(runs):
    assert np.array_equal(losertree_merge(runs), ref(runs))


# ---------------------------------------------------------------------------
# multi-sequence selection / partitioning
# ---------------------------------------------------------------------------

def test_rank_split_extremes(rng):
    runs = make_runs(rng, 4)
    total = sum(map(len, runs))
    assert multiway_rank_split(runs, 0) == [0] * 4
    assert multiway_rank_split(runs, total) == [len(r) for r in runs]


def test_rank_split_prefix_property(rng):
    runs = make_runs(rng, 5)
    total = sum(map(len, runs))
    full = ref(runs)
    for rank in range(0, total + 1, max(1, total // 13)):
        cuts = multiway_rank_split(runs, rank)
        assert sum(cuts) == rank
        prefix = np.sort(np.concatenate(
            [r[:c] for r, c in zip(runs, cuts)])) if rank else np.empty(0)
        assert np.array_equal(prefix, full[:rank])


def test_rank_split_out_of_range(rng):
    runs = make_runs(rng, 2)
    with pytest.raises(ValidationError):
        multiway_rank_split(runs, sum(map(len, runs)) + 1)


def test_partition_multiway_reassembles(rng):
    runs = make_runs(rng, 6, max_len=80)
    for parts in (1, 2, 4, 7):
        groups = partition_multiway(runs, parts)
        assert len(groups) == parts
        pieces = [multiway_merge([r[sl] for r, sl in zip(runs, grp)])
                  for grp in groups]
        assert np.array_equal(
            np.concatenate([p for p in pieces if len(p)]) if
            sum(map(len, pieces)) else np.empty(0),
            ref(runs))


def test_partition_multiway_balanced(rng):
    runs = [np.sort(rng.normal(size=100)) for _ in range(4)]
    groups = partition_multiway(runs, 8)
    sizes = [sum(sl.stop - sl.start for sl in grp) for grp in groups]
    assert max(sizes) - min(sizes) <= 1


def test_partition_multiway_invalid_parts(rng):
    with pytest.raises(ValidationError):
        partition_multiway(make_runs(rng, 2), 0)


@given(runs=run_lists, parts=st.integers(1, 6))
@settings(max_examples=60, deadline=None)
def test_property_partition_multiway(runs, parts):
    groups = partition_multiway(runs, parts)
    merged = [multiway_merge([r[sl] for r, sl in zip(runs, grp)])
              for grp in groups]
    flat = ([np.empty(0)] if not any(len(m) for m in merged)
            else [m for m in merged if len(m)])
    assert np.array_equal(np.concatenate(flat), ref(runs))
