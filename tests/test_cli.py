"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_timing_run():
    code, text = run_cli("--n", "1e9", "--approach", "pipedata",
                         "--batch-size", "2.5e8")
    assert code == 0
    assert "pipedata on PLATFORM1" in text
    assert "n_b=4" in text


def test_functional_run_validates():
    code, text = run_cli("--functional", "50000", "--batch-size",
                         "20000", "--approach", "pipemerge",
                         "--pinned", "5000")
    assert code == 0
    assert "validated" in text


def test_gantt_flag():
    code, text = run_cli("--functional", "30000", "--batch-size",
                         "10000", "--pinned", "3000", "--gantt")
    assert code == 0
    assert "s/column" in text


def test_compare_mode():
    code, text = run_cli("--n", "1e9", "--batch-size", "2.5e8",
                         "--compare", "--memcpy-threads", "8")
    assert code == 0
    assert "cpu reference" in text
    assert "pipemerge+parmemcpy" in text
    assert "speedup" in text


def test_platform2_multi_gpu():
    code, text = run_cli("--platform", "platform2", "--gpus", "2",
                         "--n", "1.4e9", "--batch-size", "3.5e8")
    assert code == 0
    assert "PLATFORM2" in text
    assert "n_gpu=2" in text


def test_gpumerge_approach():
    code, text = run_cli("--n", "8e8", "--approach", "gpumerge",
                         "--batch-size", "2e8")
    assert code == 0
    assert "gpumerge" in text


def test_requires_exactly_one_input_spec():
    with pytest.raises(SystemExit):
        main([])
    with pytest.raises(SystemExit):
        main(["--n", "1e6", "--functional", "100"])


def test_bad_approach_rejected():
    with pytest.raises(SystemExit):
        main(["--n", "1e6", "--approach", "bogosort"])


def test_parser_defaults_match_paper():
    args = build_parser().parse_args(["--n", "1e9"])
    assert args.streams == 2
    assert args.pinned == 1e6
    assert args.approach == "pipemerge"


def test_trace_json_export(tmp_path):
    import json
    path = tmp_path / "run.json"
    code, text = run_cli("--n", "4e8", "--batch-size", "2e8",
                         "--trace-json", str(path))
    assert code == 0
    assert "trace events" in text
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) > 10
