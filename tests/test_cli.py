"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_timing_run():
    code, text = run_cli("--n", "1e9", "--approach", "pipedata",
                         "--batch-size", "2.5e8")
    assert code == 0
    assert "pipedata on PLATFORM1" in text
    assert "n_b=4" in text


def test_functional_run_validates():
    code, text = run_cli("--functional", "50000", "--batch-size",
                         "20000", "--approach", "pipemerge",
                         "--pinned", "5000")
    assert code == 0
    assert "validated" in text


def test_gantt_flag():
    code, text = run_cli("--functional", "30000", "--batch-size",
                         "10000", "--pinned", "3000", "--gantt")
    assert code == 0
    assert "s/column" in text


def test_compare_mode():
    code, text = run_cli("--n", "1e9", "--batch-size", "2.5e8",
                         "--compare", "--memcpy-threads", "8")
    assert code == 0
    assert "cpu reference" in text
    assert "pipemerge+parmemcpy" in text
    assert "speedup" in text


def test_platform2_multi_gpu():
    code, text = run_cli("--platform", "platform2", "--gpus", "2",
                         "--n", "1.4e9", "--batch-size", "3.5e8")
    assert code == 0
    assert "PLATFORM2" in text
    assert "n_gpu=2" in text


def test_gpumerge_approach():
    code, text = run_cli("--n", "8e8", "--approach", "gpumerge",
                         "--batch-size", "2e8")
    assert code == 0
    assert "gpumerge" in text


def test_requires_exactly_one_input_spec():
    with pytest.raises(SystemExit):
        main([])
    with pytest.raises(SystemExit):
        main(["--n", "1e6", "--functional", "100"])


def test_bad_approach_rejected():
    with pytest.raises(SystemExit):
        main(["--n", "1e6", "--approach", "bogosort"])


def test_parser_defaults_match_paper():
    args = build_parser().parse_args(["--n", "1e9"])
    assert args.streams == 2
    assert args.pinned == 1e6
    assert args.approach == "pipemerge"


def test_trace_json_export(tmp_path):
    import json
    path = tmp_path / "run.json"
    code, text = run_cli("--n", "4e8", "--batch-size", "2e8",
                         "--trace-json", str(path))
    assert code == 0
    assert "trace events" in text
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) > 10
    assert any(e["ph"] == "s" for e in doc["traceEvents"])


def test_critical_path_subcommand():
    code, text = run_cli("critical-path", "--n", "1e6", "--batch-size",
                         "2.5e5", "--pinned", "5e4", "--gantt")
    assert code == 0
    assert "critical path" in text
    assert "= makespan" in text
    assert "GPUSort" in text
    assert "*critical*" in text            # the Gantt overlay
    assert "crit=" in text and "slack=" in text


def test_critical_path_json(tmp_path):
    import json
    code, text = run_cli("critical-path", "--n", "1e6", "--batch-size",
                         "2.5e5", "--pinned", "5e4", "--json")
    assert code == 0
    doc = json.loads(text)
    assert doc["schema"] == "repro.critical_path/v1"
    assert doc["duration"] == doc["makespan"]


def test_whatif_scale():
    code, text = run_cli("whatif", "--n", "1e6", "--batch-size", "2.5e5",
                         "--pinned", "5e4", "--scale", "GPUSort=0.5")
    assert code == 0
    assert "what-if prediction" in text
    assert "GPUSortx0.5" in text


def test_whatif_sensitivity_default():
    code, text = run_cli("whatif", "--n", "1e6", "--batch-size", "2.5e5",
                         "--pinned", "5e4")
    assert code == 0
    assert "sensitivity" in text
    assert "PinnedAlloc" in text and "GPUSort" in text


def test_whatif_bad_scale_rejected():
    with pytest.raises(SystemExit):
        main(["whatif", "--n", "1e6", "--scale", "GPUSort"])
    with pytest.raises(SystemExit):
        main(["whatif", "--n", "1e6", "--scale", "GPUSort=fast"])


def test_report_and_diff_workflow(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    args = ("--n", "1e6", "--batch-size", "2.5e5", "--pinned", "5e4")
    assert run_cli(*args, "--report", str(a))[0] == 0
    assert run_cli(*args, "--report", str(b))[0] == 0
    code, text = run_cli("diff", str(a), str(b), "--fail-on-regression")
    assert code == 0
    assert "identical" in text


def test_diff_detects_regression(tmp_path):
    import json
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    args = ("--n", "1e6", "--batch-size", "2.5e5", "--pinned", "5e4")
    run_cli(*args, "--report", str(a))
    doc = json.loads(a.read_text())
    doc["makespan_s"] *= 1.5               # simulate a slower candidate
    b.write_text(json.dumps(doc))
    code, text = run_cli("diff", str(a), str(b), "--fail-on-regression")
    assert code == 1
    assert "REGRESSION" in text
    # Without the flag the diff still prints but exits 0.
    assert run_cli("diff", str(a), str(b))[0] == 0


# ---------------------------------------------------------------------------
# Machine-readable output (--json) and its conflicts
# ---------------------------------------------------------------------------

def test_run_json_output():
    import json
    code, text = run_cli("--n", "1e6", "--batch-size", "2.5e5",
                         "--pinned", "5e4", "--json")
    assert code == 0
    doc = json.loads(text)
    assert doc["approach"] == "pipemerge"
    assert doc["elapsed_s"] > 0


def test_compare_json_output():
    import json
    code, text = run_cli("--n", "4e8", "--batch-size", "1e8",
                         "--compare", "--json")
    assert code == 0
    doc = json.loads(text)
    assert doc["schema"] == "repro.compare/v1"
    assert doc["runs"][0]["approach"] == "cpu reference"
    assert len(doc["runs"]) >= 4


def test_metrics_json_output():
    import json
    code, text = run_cli("metrics", "--n", "1e6", "--batch-size",
                         "2.5e5", "--pinned", "5e4", "--json")
    assert code == 0
    doc = json.loads(text)
    assert "overlap_efficiency" in doc or "lanes" in doc


def test_json_is_canonical():
    """Both --json surfaces share one serializer: sorted keys, stable
    bytes run-to-run."""
    args = ("metrics", "--n", "1e6", "--batch-size", "2.5e5",
            "--pinned", "5e4", "--json")
    assert run_cli(*args)[1] == run_cli(*args)[1]


@pytest.mark.parametrize("argv", [
    ("--n", "1e6", "--json", "--report", "r.json"),
    ("metrics", "--n", "1e6", "--json", "--report", "r.json"),
    ("critical-path", "--n", "1e6", "--json", "--report", "r.json"),
    ("whatif", "--n", "1e6", "--json", "--report", "r.json"),
])
def test_json_and_report_conflict(argv):
    with pytest.raises(SystemExit) as exc:
        main(list(argv))
    assert exc.value.code != 0


# ---------------------------------------------------------------------------
# Error paths exit non-zero with a one-line message
# ---------------------------------------------------------------------------

def test_diff_missing_report_file():
    code, text = run_cli("diff", "/nonexistent/a.json",
                         "/nonexistent/b.json")
    assert code != 0
    assert len(text.strip().splitlines()) == 1
    assert "cannot read report" in text


def test_diff_malformed_report_file(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    code, text = run_cli("diff", str(bad), str(bad))
    assert code != 0
    assert len(text.strip().splitlines()) == 1
    assert "not valid JSON" in text


def test_conformance_missing_ledger():
    code, text = run_cli("conformance", "--ledger", "/nonexistent.jsonl")
    assert code != 0
    assert len(text.strip().splitlines()) == 1
    assert "cannot load ledger" in text


def test_sweep_unknown_grid_rejected():
    with pytest.raises(SystemExit) as exc:
        main(["sweep", "--grid", "gigantic"])
    assert exc.value.code != 0


# ---------------------------------------------------------------------------
# Sweep -> conformance -> dashboard end to end
# ---------------------------------------------------------------------------

def test_sweep_conformance_dashboard_workflow(tmp_path):
    import json
    ledger = tmp_path / "ledger.jsonl"
    html = tmp_path / "dash.html"
    code, text = run_cli("sweep", "--grid", "tiny",
                         "--ledger", str(ledger))
    assert code == 0
    assert "wrote 2 ledger lines" in text
    lines = [json.loads(l) for l in ledger.read_text().splitlines()]
    assert all(l["schema"] == "repro.sweep/v1" for l in lines)

    code, text = run_cli("conformance", "--ledger", str(ledger),
                         "--html", str(html), "--fail-on-anomaly")
    assert code == 0
    assert "conformance:" in text
    assert html.read_text().startswith("<!DOCTYPE html>")

    code, text = run_cli("conformance", "--ledger", str(ledger),
                         "--json")
    assert code == 0
    doc = json.loads(text)
    assert doc["schema"] == "repro.conformance_summary/v1"
    assert doc["n_runs"] == 2


def test_sweep_ledger_byte_stable(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    assert run_cli("sweep", "--grid", "tiny", "--ledger", str(a),
                   "--quiet")[0] == 0
    assert run_cli("sweep", "--grid", "tiny", "--ledger", str(b),
                   "--quiet")[0] == 0
    assert a.read_bytes() == b.read_bytes()


# ---------------------------------------------------------------------------
# Live telemetry: --live / --events / watch
# ---------------------------------------------------------------------------

def test_run_with_events_log(tmp_path):
    from repro.obs import validate_event_log
    log = tmp_path / "run.events.jsonl"
    code, text = run_cli("--n", "1e6", "--batch-size", "2.5e5",
                         "--pinned", "5e4", "--events", str(log))
    assert code == 0
    assert "wrote event log" in text
    summary = validate_event_log(log)
    assert summary["counts"]["run.start"] == 1
    assert summary["counts"]["run.end"] == 1
    assert summary["counts"]["span"] > 0


def test_run_live_non_tty():
    code, text = run_cli("--n", "1e9", "--approach", "pipedata",
                         "--batch-size", "2.5e8", "--live")
    assert code == 0
    assert any(ln.startswith("live ") for ln in text.splitlines())
    assert "pipedata on PLATFORM1" in text   # the final frame
    assert "batches 4/4" in text


def test_run_deadline_warning(tmp_path):
    from repro.obs import EV, read_events
    log = tmp_path / "run.events.jsonl"
    code, _ = run_cli("--n", "1e6", "--batch-size", "2.5e5",
                      "--pinned", "5e4", "--deadline", "1e-4",
                      "--events", str(log))
    assert code == 0
    _, events = read_events(log)
    assert any(e.kind == EV.WARNING and e.data["code"] == "deadline"
               for e in events)


def test_watch_subcommand(tmp_path):
    log = tmp_path / "run.events.jsonl"
    run_cli("--n", "1e9", "--approach", "pipedata",
            "--batch-size", "2.5e8", "--events", str(log))
    code, text = run_cli("watch", str(log))
    assert code == 0
    assert any(ln.startswith("live ") for ln in text.splitlines())
    assert "pipedata on PLATFORM1" in text
    assert "done in" in text


def test_watch_json_snapshot(tmp_path):
    import json
    log = tmp_path / "run.events.jsonl"
    run_cli("--n", "1e6", "--batch-size", "2.5e5", "--pinned", "5e4",
            "--events", str(log))
    code, text = run_cli("watch", str(log), "--json")
    assert code == 0
    doc = json.loads(text)
    assert doc["ended"] is True
    assert doc["progress"]["fraction"] == 1.0


def test_watch_rejects_bad_log(tmp_path):
    code, text = run_cli("watch", str(tmp_path / "missing.jsonl"))
    assert code == 2
    assert "cannot read" in text
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"schema":"something/else"}\n')
    code, text = run_cli("watch", str(bad))
    assert code == 2
    assert "invalid event log" in text


# ---------------------------------------------------------------------------
# Run archive + trend observatory subcommands
# ---------------------------------------------------------------------------


def test_archive_flag_is_idempotent(tmp_path):
    arch = str(tmp_path / "runs.jsonl")
    argv = ("--n", "1e9", "--batch-size", "2.5e8", "--archive", arch)
    code, text = run_cli(*argv)
    assert code == 0
    assert f"archived 1 entry to {arch}" in text
    first = (tmp_path / "runs.jsonl").read_bytes()
    code, text = run_cli(*argv)
    assert code == 0
    assert "archived 0 entries" in text
    assert "(1 already archived)" in text
    assert (tmp_path / "runs.jsonl").read_bytes() == first
    assert (tmp_path / "runs.manifest.json").exists()


def test_archive_subcommand_validates_and_lists(tmp_path):
    arch = str(tmp_path / "runs.jsonl")
    run_cli("--n", "1e9", "--batch-size", "2.5e8", "--archive", arch)
    code, text = run_cli("archive", arch)
    assert code == 0
    assert "archive OK: 1 entries, 1 workload fingerprint(s)" in text
    code, text = run_cli("archive", arch, "--list")
    assert code == 0
    assert "archived runs (append order)" in text
    assert "pipemerge" in text
    code, text = run_cli("archive", arch, "--json")
    assert code == 0
    import json
    assert json.loads(text)["n_entries"] == 1


def test_archive_subcommand_flags_corruption(tmp_path):
    arch = tmp_path / "runs.jsonl"
    run_cli("--n", "1e9", "--batch-size", "2.5e8", "--archive",
            str(arch))
    arch.write_text(arch.read_text().replace('"makespan_s"', '"mk_s"'))
    code, text = run_cli("archive", str(arch))
    assert code == 1
    assert "INVALID" in text


def test_archive_diff_two_runs(tmp_path):
    arch = str(tmp_path / "runs.jsonl")
    run_cli("--n", "1e9", "--batch-size", "2.5e8", "--archive", arch)
    run_cli("--n", "2e9", "--batch-size", "2.5e8", "--archive", arch)
    from repro.obs import load_archive
    ids = [e["entry"] for e in load_archive(arch)]
    code, text = run_cli("archive", arch, "--diff", ids[0], ids[1])
    assert code == 0
    assert "makespan" in text
    code, text = run_cli("archive", arch, "--diff", ids[0], "zzzz")
    assert code == 2
    assert "no entry matches" in text


def test_trends_subcommand_reports_changepoint(tmp_path):
    from repro.obs import append_entries, make_entry
    arch = tmp_path / "runs.jsonl"
    step = [1.00, 1.02, 0.99, 1.01, 1.00, 1.40, 1.41, 1.39, 1.40, 1.42]
    append_entries(arch, [
        make_entry(source="run", label=f"r{i}",
                   point={"approach": "bline", "n": 1000},
                   metrics={"makespan_s": v})
        for i, v in enumerate(step)])
    code, text = run_cli("trends", str(arch))
    assert code == 0
    assert "1 workload(s), 1 series, 1 changepoint(s)" in text
    assert "changepoint at run 6: 1 -> 1.4 (1.40x" in text
    assert "RATCHET" in text
    assert "|" in text                            # sparkline marker
    html = tmp_path / "deep" / "trends.html"     # parent auto-created
    code, text = run_cli("trends", str(arch), "--html", str(html))
    assert code == 0
    assert html.exists()


def test_trends_missing_archive_exits_2(tmp_path):
    code, text = run_cli("trends", str(tmp_path / "nope.jsonl"))
    assert code == 2
    assert "cannot read archive" in text


def test_unwritable_output_is_a_clean_error(tmp_path):
    """Writing through an existing file must raise a one-line
    SystemExit, not an OSError traceback (ENOTDIR works even as
    root, unlike permission bits)."""
    blocker = tmp_path / "blocker"
    blocker.write_text("i am a file")
    bad = str(blocker / "sub" / "out.jsonl")
    with pytest.raises(SystemExit) as exc:
        run_cli("--n", "1e9", "--batch-size", "2.5e8",
                "--archive", bad)
    msg = str(exc.value)
    assert msg.startswith("repro: cannot write archive to")
    assert "Traceback" not in msg

    with pytest.raises(SystemExit) as exc:
        run_cli("--n", "1e9", "--batch-size", "2.5e8",
                "--report", str(blocker / "r.json"))
    assert str(exc.value).startswith("repro: cannot write run report")


# ---------------------------------------------------------------------------
# Memory observatory: `repro mem` and `repro plan-mem`
# ---------------------------------------------------------------------------

def test_mem_occupancy_table_and_timeline():
    code, text = run_cli("mem", "--n", "1e6", "--approach", "pipedata",
                         "--batch-size", "2.5e5", "--pinned", "5e4")
    assert code == 0
    assert "memory occupancy (6 allocs, 6 frees, balanced)" in text
    assert "gpu0" in text and "pinned" in text
    assert "8.0 MB" in text        # gpu0 peak: 2 workers x 2 x 250k x 8
    assert "1.6 MB" in text        # pinned peak: 2 workers x 2 x 50k x 8
    assert "occupancy timelines" in text
    # one sparkline row per pool, peak annotated
    assert text.count("peak") >= 2


def test_mem_json_is_the_ledger_document():
    import json as _json
    code, text = run_cli("mem", "--n", "1e6", "--approach", "bline",
                         "--pinned", "5e4", "--json")
    assert code == 0
    doc = _json.loads(text)
    assert doc["schema"] == "repro.memory/v1"
    assert doc["balanced"] is True
    assert doc["pools"]["gpu0"]["peak_bytes"] == 16_000_000
    assert doc["pools"]["pinned"]["peak_bytes"] == 800_000
    assert doc["pools"]["gpu0"]["balance_bytes"] == 0
    assert len(doc["entries"]) == 6


def test_mem_entries_flag_lists_every_operation():
    code, text = run_cli("mem", "--functional", "50000", "--batch-size",
                         "20000", "--pinned", "5000", "--approach",
                         "bline", "--entries")
    assert code == 0
    assert "ledger entries (6)" in text
    assert "alloc" in text and "free" in text
    assert "stage_in.g0" in text


def test_mem_html_dashboard(tmp_path):
    path = tmp_path / "mem.html"
    code, text = run_cli("mem", "--n", "1e6", "--approach", "bline",
                         "--pinned", "5e4", "--html", str(path))
    assert code == 0
    assert f"wrote memory dashboard to {path}" in text
    html = path.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "Occupancy" in html


def test_plan_mem_fits():
    code, text = run_cli("plan-mem", "--n", "1e6", "--approach",
                         "pipedata", "--batch-size", "2.5e5",
                         "--pinned", "5e4")
    assert code == 0
    assert "workers: gpu0x2" in text
    assert "predicted peak occupancy" in text
    assert "plan-mem: configuration fits" in text


def test_plan_mem_verify_zero_residual():
    code, text = run_cli("plan-mem", "--n", "1e6", "--approach",
                         "pipedata", "--batch-size", "2.5e5",
                         "--pinned", "5e4", "--verify")
    assert code == 0
    assert "predicted vs measured peaks" in text
    assert "+0 B" in text
    assert "measured peaks match the prediction" in text


def test_plan_mem_rejects_infeasible_batch():
    code, text = run_cli("plan-mem", "--platform", "PLATFORM2", "--n",
                         "2e9", "--batch-size", "1e9", "--approach",
                         "bline")
    assert code == 2
    assert "REJECTED" in text
    assert "global memory" in text


def test_plan_mem_flags_pinned_oversubscription():
    code, text = run_cli("plan-mem", "--n", "5.5e9", "--batch-size",
                         "2.5e8", "--pinned", "2.5e8", "--approach",
                         "pipedata")
    assert code == 1
    assert "OVERSUBSCRIBED" in text
    assert "does NOT fit" in text


def test_plan_mem_json_document():
    import json as _json
    code, text = run_cli("plan-mem", "--n", "1e6", "--approach", "bline",
                         "--pinned", "5e4", "--json", "--verify")
    assert code == 0
    doc = _json.loads(text)
    assert doc["schema"] == "repro.memplan/v1"
    assert doc["ok"] is True
    assert doc["predicted"]["gpu0"] == 16_000_000
    assert doc["conformance"]["ok"] is True
    assert doc["conformance"]["schema"] == "repro.memory_conformance/v1"


def test_metrics_json_carries_engine_counters():
    import json as _json
    code, text = run_cli("metrics", "--n", "1e6", "--batch-size",
                         "2.5e5", "--pinned", "5e4", "--json")
    assert code == 0
    doc = _json.loads(text)
    assert doc["engine"]["processed_events"] > 0
    assert doc["engine"]["events_per_sim_s"] > 0
    assert doc["flows"]["n_flows"] > 0


def test_flows_tables_and_timelines():
    code, text = run_cli("flows", "--n", "1e6", "--approach", "pipedata",
                         "--batch-size", "2.5e5", "--pinned", "5e4")
    assert code == 0
    assert "interconnect (" in text and "flows" in text
    assert "host_bus" in text
    assert "pcie.htod" in text and "pcie.dtoh" in text
    assert "link bandwidth timelines" in text
    assert "in flight" in text
    assert "top contended flows" in text
    assert "charged to" in text


def test_flows_json_is_the_ledger_document():
    import json as _json
    code, text = run_cli("flows", "--n", "1e6", "--approach", "bline",
                         "--pinned", "5e4", "--json")
    assert code == 0
    doc = _json.loads(text)
    assert doc["schema"] == "repro.flows/v1"
    assert doc["n_flows"] == len(doc["flows"]) > 0
    assert set(doc["capacities"]) == {"host_bus", "pcie.htod",
                                      "pcie.dtoh"}


def test_flows_json_is_byte_stable():
    args = ("flows", "--n", "1e6", "--approach", "pipedata",
            "--batch-size", "2.5e5", "--pinned", "5e4", "--json")
    assert run_cli(*args)[1] == run_cli(*args)[1]


def test_flows_html_dashboard(tmp_path):
    path = tmp_path / "flows.html"
    code, text = run_cli("flows", "--n", "1e6", "--approach", "pipedata",
                         "--batch-size", "2.5e5", "--pinned", "5e4",
                         "--html", str(path))
    assert code == 0
    assert f"wrote flows dashboard to {path}" in text
    html = path.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "host_bus" in html


def test_flows_trace_carries_link_counter_tracks(tmp_path):
    import json as _json
    path = tmp_path / "flows.trace.json"
    code, _ = run_cli("flows", "--n", "1e6", "--approach", "pipedata",
                      "--batch-size", "2.5e5", "--pinned", "5e4",
                      "--trace-json", str(path))
    assert code == 0
    events = _json.loads(path.read_text())["traceEvents"]
    names = {e["name"] for e in events if e["ph"] == "C"}
    assert "link.host_bus.bw_bytes_per_s" in names
    assert "link.pcie.htod.bw_bytes_per_s" in names
