"""Tests for CUDA stream ordering semantics in isolation."""

import pytest

from repro.cuda.stream import Stream
from repro.sim import CAT, Trace


def test_ops_run_in_submission_order(env):
    s = Stream(env, 0, 0)
    log = []

    def op(name, dur):
        def gen():
            yield env.timeout(dur)
            log.append((name, env.now))
        return gen

    s.submit(op("a", 2.0))
    s.submit(op("b", 1.0))
    s.submit(op("c", 1.0))
    env.run()
    assert log == [("a", 2.0), ("b", 3.0), ("c", 4.0)]


def test_submit_returns_completion_event(env):
    s = Stream(env, 0, 0)

    def op():
        yield env.timeout(1.5)

    ev = s.submit(op)
    env.run()
    assert ev.processed


def test_idle_tracking(env):
    s = Stream(env, 0, 0)
    assert s.idle

    def op():
        yield env.timeout(1.0)

    s.submit(op)
    assert not s.idle
    env.run()
    assert s.idle


def test_synchronize_waits_and_charges_overhead(env):
    trace = Trace()
    s = Stream(env, 0, 0, trace=trace, sync_cost_s=0.001)

    def op():
        yield env.timeout(1.0)

    def host():
        s.submit(op)
        yield from s.synchronize()
        return env.now

    proc = env.process(host())
    env.run(proc)
    assert proc.value == pytest.approx(1.001)
    assert trace.total(CAT.SYNC) == pytest.approx(0.001)


def test_synchronize_on_idle_stream_only_costs_overhead(env):
    s = Stream(env, 0, 0, sync_cost_s=0.002)

    def host():
        yield from s.synchronize()
        return env.now

    proc = env.process(host())
    env.run(proc)
    assert proc.value == pytest.approx(0.002)


def test_two_streams_independent(env):
    s1 = Stream(env, 0, 0)
    s2 = Stream(env, 0, 1)
    log = []

    def op(name, dur):
        def gen():
            yield env.timeout(dur)
            log.append((name, env.now))
        return gen

    s1.submit(op("s1a", 2.0))
    s2.submit(op("s2a", 1.0))
    env.run()
    # Different streams: no mutual ordering.
    assert ("s2a", 1.0) in log and ("s1a", 2.0) in log


def test_ops_submitted_counter(env):
    s = Stream(env, 0, 0)

    def op():
        yield env.timeout(0.1)

    s.submit(op)
    s.submit(op)
    assert s.ops_submitted == 2
