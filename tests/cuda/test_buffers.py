"""Tests for buffer semantics and functional data movement."""

import numpy as np
import pytest

from repro.cuda.buffers import (ELEM, DeviceBuffer, PageableBuffer,
                                PinnedBuffer, copy_payload)
from repro.errors import CudaInvalidValue


def test_for_elements():
    b = PageableBuffer.for_elements(100, name="A")
    assert b.nbytes == 800 and b.elements == 100
    assert b.data is None


def test_backed_buffer_requires_matching_array():
    data = np.zeros(10)
    b = PageableBuffer(80, data=data)
    assert b.data is data
    with pytest.raises(CudaInvalidValue):
        PageableBuffer(81, data=data)
    with pytest.raises(CudaInvalidValue):
        PageableBuffer(40, data=np.zeros(10, dtype=np.float32))


def test_check_range():
    b = PageableBuffer(80)
    b.check_range(0, 80)
    b.check_range(8, 72)
    with pytest.raises(CudaInvalidValue):
        b.check_range(0, 88)
    with pytest.raises(CudaInvalidValue):
        b.check_range(-8, 8)
    with pytest.raises(CudaInvalidValue):
        b.check_range(4, 8)  # misaligned offset
    with pytest.raises(CudaInvalidValue):
        b.check_range(0, 4)  # misaligned size


def test_freed_buffer_rejected():
    b = PageableBuffer(80)
    b.freed = True
    with pytest.raises(CudaInvalidValue):
        b.check_range(0, 8)


def test_view_returns_slice():
    data = np.arange(10, dtype=np.float64)
    b = PageableBuffer(80, data=data)
    v = b.view(16, 24)
    assert np.array_equal(v, [2.0, 3.0, 4.0])
    v[:] = 0  # views alias the backing array
    assert data[2] == 0.0


def test_view_timing_only_is_none():
    assert PageableBuffer(80).view(0, 80) is None


def test_copy_payload_moves_data():
    src = PageableBuffer(80, data=np.arange(10, dtype=np.float64))
    dst = PinnedBuffer(40, data=np.zeros(5))
    copy_payload(dst, 8, src, 24, 16)
    assert np.array_equal(dst.data, [0.0, 3.0, 4.0, 0.0, 0.0])


def test_copy_payload_timing_only_noop():
    src = PageableBuffer(80)
    dst = PinnedBuffer(80)
    copy_payload(dst, 0, src, 0, 80)  # no raise


def test_copy_payload_mixed_backing_rejected():
    src = PageableBuffer(80, data=np.zeros(10))
    dst = PinnedBuffer(80)
    with pytest.raises(CudaInvalidValue):
        copy_payload(dst, 0, src, 0, 80)


def test_device_buffer_gpu_index():
    d = DeviceBuffer(1, 160, name="dev")
    assert d.gpu_index == 1
    assert d.kind == "device"


def test_elem_constant():
    assert ELEM == 8  # the paper's 64-bit element size
