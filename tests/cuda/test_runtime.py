"""Tests for the simulated CUDA runtime: allocation, copies, sorts,
stream ordering, and the semantic checks real CUDA enforces."""

import numpy as np
import pytest

from repro.cuda import MemcpyKind, PageableBuffer, Runtime
from repro.errors import CudaInvalidValue, CudaOutOfMemory
from repro.hw import Machine, PLATFORM1, PLATFORM2
from repro.sim import CAT
from repro.sim.engine import Environment


@pytest.fixture
def rt(env):
    return Runtime(Machine(env, PLATFORM1))


def drive(env, gen):
    proc = env.process(gen)
    env.run(proc)
    return proc.value


# ---------------------------------------------------------------------------
# Memory management
# ---------------------------------------------------------------------------

def test_malloc_accounts_device_memory(env, rt):
    buf = rt.malloc(1024, name="d")
    assert rt.machine.gpus[0].mem_used == 1024
    rt.free(buf)
    assert rt.machine.gpus[0].mem_used == 0


def test_malloc_oom(env, rt):
    with pytest.raises(CudaOutOfMemory):
        rt.malloc(rt.machine.gpus[0].spec.mem_bytes + 1)


def test_double_free_rejected(env, rt):
    buf = rt.malloc(1024)
    rt.free(buf)
    with pytest.raises(CudaInvalidValue):
        rt.free(buf)


def test_malloc_bad_device(env, rt):
    with pytest.raises(CudaInvalidValue):
        rt.malloc(8, gpu_index=3)


def test_malloc_host_costs_time(env, rt):
    buf = drive(env, rt.malloc_host(8_000_000, name="pinned"))
    assert env.now == pytest.approx(0.01, rel=0.02)   # Sec. IV-E anchor
    assert buf.kind == "pinned"
    assert rt.machine.pinned_bytes == 8_000_000
    rt.free_host(buf)
    assert rt.machine.pinned_bytes == 0


# ---------------------------------------------------------------------------
# Blocking copies
# ---------------------------------------------------------------------------

def test_blocking_memcpy_moves_data_htod_dtoh(env, rt):
    n = 100
    src = PageableBuffer.for_elements(
        n, data=np.arange(n, dtype=np.float64), name="A")
    dst = PageableBuffer.for_elements(n, data=np.zeros(n), name="B")
    dev = rt.malloc(n * 8, data=np.zeros(n), name="dev")

    def go():
        yield from rt.memcpy(dev, src, n * 8, MemcpyKind.HOST_TO_DEVICE)
        yield from rt.memcpy(dst, dev, n * 8, MemcpyKind.DEVICE_TO_HOST)

    drive(env, go())
    assert np.array_equal(dst.data, src.data)
    assert rt.trace.count(CAT.HTOD) == 1
    assert rt.trace.count(CAT.DTOH) == 1


def test_memcpy_direction_validation(env, rt):
    host = PageableBuffer.for_elements(10)
    dev = rt.malloc(80)

    def bad(*args):
        with pytest.raises(CudaInvalidValue):
            drive(env, rt.memcpy(*args))

    bad(host, host, 80, MemcpyKind.HOST_TO_DEVICE)   # no device side
    bad(dev, dev, 80, MemcpyKind.DEVICE_TO_HOST)     # no host side
    bad(dev, host, 80, MemcpyKind.HOST_TO_HOST)      # device in H2H
    bad(dev, host, 80, "bogus")


def test_memcpy_range_validation(env, rt):
    host = PageableBuffer.for_elements(10)
    dev = rt.malloc(40)
    with pytest.raises(CudaInvalidValue):
        drive(env, rt.memcpy(dev, host, 80, MemcpyKind.HOST_TO_DEVICE))


def test_host_to_host_memcpy(env, rt):
    a = PageableBuffer.for_elements(8, data=np.arange(8, dtype=np.float64))
    b = PageableBuffer.for_elements(8, data=np.zeros(8))
    drive(env, rt.memcpy(b, a, 64, MemcpyKind.HOST_TO_HOST))
    assert np.array_equal(a.data, b.data)
    assert rt.trace.count(CAT.MCPY) == 1


# ---------------------------------------------------------------------------
# Async copies and streams
# ---------------------------------------------------------------------------

def test_async_requires_pinned(env, rt):
    pageable = PageableBuffer.for_elements(10)
    dev = rt.malloc(80)
    stream = rt.create_stream()

    def go():
        yield from rt.memcpy_async(dev, pageable, 80,
                                   MemcpyKind.HOST_TO_DEVICE, stream)

    with pytest.raises(CudaInvalidValue, match="pinned"):
        drive(env, go())


def test_async_copy_overlaps_with_host(env, rt):
    """The host regains control after the call overhead, long before the
    copy completes."""
    nbytes = int(12e8)

    def go():
        pinned = yield from rt.malloc_host(nbytes)
        stream = rt.create_stream()
        dev = rt.malloc(nbytes)
        t0 = env.now
        ev = yield from rt.memcpy_async(dev, pinned, nbytes,
                                        MemcpyKind.HOST_TO_DEVICE, stream)
        host_back = env.now - t0
        yield ev
        total = env.now - t0
        return host_back, total

    host_back, total = drive(env, go())
    assert host_back < 1e-4            # call overhead only
    assert total == pytest.approx(nbytes / 12e9, rel=0.05)


def test_stream_serializes_in_order(env, rt):
    """Ops in one stream run back to back even when issued together."""
    nbytes = int(6e8)

    def go():
        pin1 = yield from rt.malloc_host(nbytes)
        pin2 = yield from rt.malloc_host(nbytes)
        stream = rt.create_stream()
        dev = rt.malloc(2 * nbytes)
        t0 = env.now
        rt_ev1 = yield from rt.memcpy_async(dev, pin1, nbytes,
                                            MemcpyKind.HOST_TO_DEVICE,
                                            stream)
        ev2 = yield from rt.memcpy_async(dev, pin2, nbytes,
                                         MemcpyKind.HOST_TO_DEVICE, stream,
                                         dst_off=nbytes)
        yield ev2
        return env.now - t0

    elapsed = drive(env, go())
    assert elapsed == pytest.approx(2 * 6e8 / 12e9, rel=0.05)


def test_streams_overlap_opposite_directions(env, rt):
    """HtoD in one stream overlaps DtoH in another (the PIPEDATA premise,
    Fig. 2)."""
    nbytes = int(6e8)

    def go():
        pin1 = yield from rt.malloc_host(nbytes)
        pin2 = yield from rt.malloc_host(nbytes)
        s1, s2 = rt.create_stream(), rt.create_stream()
        dev = rt.malloc(2 * nbytes)
        t0 = env.now
        e1 = yield from rt.memcpy_async(dev, pin1, nbytes,
                                        MemcpyKind.HOST_TO_DEVICE, s1)
        e2 = yield from rt.memcpy_async(pin2, dev, nbytes,
                                        MemcpyKind.DEVICE_TO_HOST, s2,
                                        src_off=nbytes)
        yield env.all_of([e1, e2])
        return env.now - t0

    elapsed = drive(env, go())
    serial = 2 * nbytes / 12e9
    assert elapsed < 0.75 * serial  # real overlap happened


def test_stream_device_mismatch_rejected():
    env = Environment()
    rt = Runtime(Machine(env, PLATFORM2, n_gpus=2))
    stream0 = rt.create_stream(0)
    dev1 = rt.malloc(80, gpu_index=1)

    def go():
        pinned = yield from rt.malloc_host(80)
        yield from rt.memcpy_async(dev1, pinned, 80,
                                   MemcpyKind.HOST_TO_DEVICE, stream0)

    with pytest.raises(CudaInvalidValue, match="stream"):
        proc = env.process(go())
        env.run(proc)


# ---------------------------------------------------------------------------
# Sorts
# ---------------------------------------------------------------------------

def test_sort_async_times_and_sorts(env, rt, rng):
    n = 1000
    data = rng.normal(size=n)
    dev = rt.malloc(n * 8, data=data.copy(), name="dev")
    stream = rt.create_stream()

    def go():
        ev = yield from rt.sort_async(dev, n, stream)
        yield ev

    drive(env, go())
    assert np.array_equal(dev.data, np.sort(data))
    assert env.now == pytest.approx(
        PLATFORM1.gpus[0].sort_seconds(n), rel=0.05)


def test_sort_wrong_device_stream(env):
    rt = Runtime(Machine(env, PLATFORM2, n_gpus=2))
    dev = rt.malloc(80, gpu_index=1)
    stream = rt.create_stream(0)

    def go():
        yield from rt.sort_async(dev, 10, stream)

    with pytest.raises(CudaInvalidValue):
        drive(env, go())


def test_custom_sort_kernel(env, rng):
    """The runtime accepts any in-place kernel (e.g. bitonic sort)."""
    from repro.kernels.bitonic import bitonic_sort_inplace
    rt = Runtime(Machine(env, PLATFORM1), sort_kernel=bitonic_sort_inplace)
    n = 256
    data = rng.normal(size=n)
    dev = rt.malloc(n * 8, data=data.copy())
    stream = rt.create_stream()

    def go():
        ev = yield from rt.sort_async(dev, n, stream)
        yield ev

    drive(env, go())
    assert np.array_equal(dev.data, np.sort(data))


def test_device_synchronize_waits_for_all_streams(env, rt):
    nbytes = int(6e8)

    def go():
        pin = yield from rt.malloc_host(2 * nbytes)
        dev = rt.malloc(2 * nbytes)
        s1, s2 = rt.create_stream(), rt.create_stream()
        yield from rt.memcpy_async(dev, pin, nbytes,
                                   MemcpyKind.HOST_TO_DEVICE, s1)
        yield from rt.memcpy_async(dev, pin, nbytes,
                                   MemcpyKind.HOST_TO_DEVICE, s2,
                                   dst_off=nbytes, src_off=nbytes)
        yield from rt.device_synchronize()
        return env.now

    t = drive(env, go())
    # Same direction, one copy engine: both copies done before sync ends.
    assert t >= 2 * nbytes / 12e9
    assert rt.machine.net.active_flows == 0
