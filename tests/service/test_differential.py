"""The differential service battery.

The allocator family changes *when* bytes move, never *which* bytes
move: the same seeded job stream must produce identical sorted outputs
(digest for digest) under every allocator, the flow ledger's exact
rate-integral invariant must hold under every allocator, and each
tenant must move the same bytes regardless of policy -- only latencies
may differ.  The chaos cross-test extends the "never silently wrong"
contract to mid-stream fault plans.
"""

import pytest

from repro.errors import ReproError
from repro.obs.flows import verify_rate_integral
from repro.service import ServiceConfig, Tenant, run_service
from repro.sim.allocators import ALLOCATORS
from repro.sim.faults import FaultPlan

ALLOCATOR_NAMES = sorted(ALLOCATORS)

TENANTS = (
    Tenant("gold", priority=2, share=2.0, rate_hz=40.0, n_jobs=2,
           n_elements=60_000, slo_s=0.5),
    Tenant("silver", priority=1, share=1.0, rate_hz=30.0, n_jobs=2,
           n_elements=60_000),
    Tenant("batch", priority=0, share=0.5, rate_hz=20.0, n_jobs=2,
           n_elements=120_000),
)


def _cfg(allocator, **kw):
    base = dict(allocator=allocator, seed=11, batch_size=20_000,
                pinned_elements=5_000)
    base.update(kw)
    return ServiceConfig(**base)


@pytest.fixture(scope="module")
def runs():
    """One functional run per allocator over the identical job stream."""
    return {name: run_service(TENANTS, _cfg(name))
            for name in ALLOCATOR_NAMES}


def test_all_jobs_complete_under_every_allocator(runs):
    for name, res in runs.items():
        assert res.verdict["n_jobs"] == 6, name
        assert {r["job_id"] for r in res.jobs} == {
            "gold/0", "gold/1", "silver/0", "silver/1",
            "batch/0", "batch/1"}


def test_identical_outputs_across_allocators(runs):
    """Digest-for-digest: the allocator never changes what is sorted."""
    digests = {
        name: {r["job_id"]: r["digest"] for r in res.jobs}
        for name, res in runs.items()}
    reference = digests["fair-share"]
    assert all(d == reference for d in digests.values())


def test_rate_integral_holds_under_every_allocator(runs):
    """The ledger's bit-exact ``p[i+1] == p[i] + rate*dt`` invariant is
    allocator-independent."""
    for name, res in runs.items():
        doc = res.flow_ledger.to_dict()
        verdict = verify_rate_integral(doc)
        assert verdict["ok"], (name, verdict["failures"])
        assert verdict["checked"] == doc["n_flows"] > 0


def test_tenant_bytes_identical_across_allocators(runs):
    """Each tenant moves the same bytes under every policy; only the
    schedule differs."""
    per_alloc = {name: res.verdict["flows"]["tenant_bytes"]
                 for name, res in runs.items()}
    reference = per_alloc["fair-share"]
    assert set(reference) == {"gold", "silver", "batch"}
    for name, bytes_by_tenant in per_alloc.items():
        assert set(bytes_by_tenant) == set(reference), name
        for tenant, moved in bytes_by_tenant.items():
            assert moved == pytest.approx(reference[tenant],
                                          rel=1e-9), (name, tenant)


def test_every_flow_carries_a_tenant(runs):
    for name, res in runs.items():
        recs = res.flow_ledger.flows
        assert recs, name
        assert all(rec.get("tenant") in ("gold", "silver", "batch")
                   for rec in recs), name


def test_memory_ledger_balanced_under_every_allocator(runs):
    """Every pool drains back to zero whatever the policy (no leak)."""
    for name, res in runs.items():
        res.memory_ledger.check_balanced()   # raises on a leak
        assert all(b == 0 for b in res.memory_ledger.balances.values()), name
        assert res.memory_ledger.n_allocs == res.memory_ledger.n_frees > 0


# -- chaos cross-test --------------------------------------------------------

@pytest.mark.parametrize("fault_seed", [1, 5, 9])
@pytest.mark.parametrize("allocator", ["fair-share", "strict-priority"])
def test_chaos_mid_stream_never_silently_wrong(fault_seed, allocator):
    """A random fault plan injected into the shared machine mid-stream:
    the service either completes with every job's output verified (the
    per-job ``check_sorted_permutation`` runs inside the service) and
    digests identical to the fault-free run, or dies with a typed
    ReproError -- never a silently wrong sort."""
    plan = FaultPlan.random(fault_seed, n_gpus=1)
    clean = run_service(TENANTS, _cfg(allocator))
    clean_digests = {r["job_id"]: r["digest"] for r in clean.jobs}
    try:
        res = run_service(TENANTS, _cfg(allocator), faults=plan)
    except ReproError:
        return      # typed failure is an acceptable outcome
    assert {r["job_id"]: r["digest"] for r in res.jobs} == clean_digests
    if res.meta.get("faults"):
        assert res.meta["faults"]["fired"] >= 1
