"""The acceptance demo: QoS differentiation in a transfer-bound regime.

Small jobs are compute-bound on PLATFORM1's single GPU, so allocator
choice barely moves latency.  This battery uses the transfer-bound demo
regime (2M-element jobs, 500k batches, burst arrivals, timing-only) in
which PCIe/host-bus bandwidth is the bottleneck: strict-priority must
cut the priority tenant's p99 versus fair-share, and the adaptive
fixed-levels controller must recover >= 90% of idle reservations.
"""

import pytest

from repro.service import ServiceConfig, Tenant, run_service

BURST = tuple(i * 0.001 for i in range(4))

TENANTS = (
    Tenant("gold", priority=2, share=2.0, n_elements=2_000_000,
           arrivals=BURST, slo_s=0.45),
    Tenant("silver", priority=1, share=1.0, n_elements=2_000_000,
           arrivals=BURST),
    Tenant("batch", priority=0, share=0.5, n_elements=2_000_000,
           arrivals=BURST),
)


def _run(allocator, **kw):
    cfg = ServiceConfig(allocator=allocator, seed=0, functional=False,
                        batch_size=500_000, pinned_elements=500_000,
                        max_concurrent=12, **kw)
    return run_service(TENANTS, cfg)


@pytest.fixture(scope="module")
def fair():
    return _run("fair-share")


@pytest.fixture(scope="module")
def strict():
    return _run("strict-priority")


def test_strict_priority_cuts_priority_tenant_p99(fair, strict):
    """The headline acceptance number: strict-priority reduces the gold
    tenant's p99 latency versus fair-share in the transfer-bound
    regime."""
    p99_fair = fair.verdict["tenants"]["gold"]["p99_latency_s"]
    p99_strict = strict.verdict["tenants"]["gold"]["p99_latency_s"]
    assert p99_strict < 0.95 * p99_fair, (p99_strict, p99_fair)


def test_strict_priority_does_not_change_work(fair, strict):
    """Differentiation moves latency, not bytes."""
    fb = fair.verdict["flows"]["tenant_bytes"]
    sb = strict.verdict["flows"]["tenant_bytes"]
    for tenant in ("gold", "silver", "batch"):
        assert sb[tenant] == pytest.approx(fb[tenant], rel=1e-9)


def test_batch_tenant_not_collapsed(strict):
    """Starvation is per-instant, not forever: once the gold burst
    drains, the batch tenant finishes in comparable time."""
    v = strict.verdict["tenants"]
    assert v["batch"]["n_jobs"] == 4
    assert v["batch"]["p99_latency_s"] < 3.0 * v["gold"]["p99_latency_s"]


def test_controller_recovers_idle_capacity():
    """Fixed-levels + controller: with only some classes backlogged at
    a time, the mean reclaimed fraction of idle reservations meets the
    >= 90% acceptance bar (reclaim defaults to 0.9)."""
    res = _run("fixed-levels")
    ctl = res.verdict["controller"]
    assert ctl is not None
    assert ctl["epochs_reclaiming"] > 0
    assert ctl["mean_reclaimed_fraction"] >= 0.9 - 1e-9


def test_controller_improves_backlogged_latency_over_static_levels():
    """The controller's reclaimed bandwidth is real: a backlogged class
    finishes no later with the controller than under frozen levels."""
    with_ctl = _run("fixed-levels")
    without = _run("fixed-levels", controller=False)
    assert (with_ctl.verdict["elapsed_s"]
            <= without.verdict["elapsed_s"] * (1 + 1e-9))


def test_max_min_honours_shares():
    """Weighted max-min gives the share-2 tenant a lower mean latency
    than the share-0.5 tenant on identical job streams."""
    res = _run("max-min")
    v = res.verdict["tenants"]
    assert (v["gold"]["mean_latency_s"]
            < v["batch"]["mean_latency_s"])
