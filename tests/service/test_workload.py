"""Tenant / job-stream construction: validation and seeding."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.service import (Tenant, build_jobs, job_data_seed,
                           poisson_arrivals, trace_arrivals)


def test_tenant_validation():
    with pytest.raises(ValidationError):
        Tenant("x", share=0.0)
    with pytest.raises(ValidationError):
        Tenant("x", rate_hz=0.0)
    with pytest.raises(ValidationError):
        Tenant("x", n_jobs=0)
    with pytest.raises(ValidationError):
        Tenant("x", n_elements=0)
    with pytest.raises(ValidationError):
        Tenant("x", slo_s=-1.0)
    with pytest.raises(ValidationError):
        Tenant("")


def test_trace_arrivals_validation():
    assert trace_arrivals((0.0, 0.5, 0.5, 2.0)) == [0.0, 0.5, 0.5, 2.0]
    with pytest.raises(ValidationError):
        trace_arrivals([-0.1])
    with pytest.raises(ValidationError):
        trace_arrivals([1.0, 0.5])


def test_poisson_arrivals_seeded():
    a = poisson_arrivals(10.0, 8, np.random.default_rng(3))
    b = poisson_arrivals(10.0, 8, np.random.default_rng(3))
    assert a == b
    assert all(x >= 0 for x in a)
    assert list(a) == sorted(a)


def test_build_jobs_deterministic_and_ordered():
    tenants = (Tenant("a", rate_hz=20.0, n_jobs=3),
               Tenant("b", rate_hz=20.0, n_jobs=3))
    jobs1 = build_jobs(tenants, seed=5)
    jobs2 = build_jobs(tenants, seed=5)
    assert [(j.job_id, j.arrival_s) for j in jobs1] == \
           [(j.job_id, j.arrival_s) for j in jobs2]
    arrivals = [j.arrival_s for j in jobs1]
    assert arrivals == sorted(arrivals)
    assert {j.job_id for j in jobs1} == {"a/0", "a/1", "a/2",
                                         "b/0", "b/1", "b/2"}
    # A different seed moves the Poisson arrivals.
    jobs3 = build_jobs(tenants, seed=6)
    assert [j.arrival_s for j in jobs3] != arrivals


def test_build_jobs_rejects_duplicate_names():
    with pytest.raises(ValidationError):
        build_jobs((Tenant("a"), Tenant("a")), seed=0)


def test_explicit_trace_overrides_poisson():
    t = Tenant("a", n_jobs=3, arrivals=(0.0, 0.1, 0.2))
    jobs = build_jobs((t,), seed=0)
    assert [j.arrival_s for j in jobs] == [0.0, 0.1, 0.2]
    # The trace defines the job count; rate_hz/n_jobs are ignored.
    jobs = build_jobs((Tenant("a", n_jobs=9, arrivals=(0.0, 0.1)),), seed=0)
    assert len(jobs) == 2
    with pytest.raises(ValidationError):
        build_jobs((Tenant("a", arrivals=(0.2, 0.1)),), seed=0)


def test_job_data_seed_distinct_per_job():
    seeds = {tuple(job_data_seed(0, ti, ji))
             for ti in range(3) for ji in range(4)}
    assert len(seeds) == 12
