"""AdaptiveController unit battery: validation, epoch mechanics, the
loan-not-sale property, and the service.* event stream contract."""

import pytest

from repro.errors import SimulationError
from repro.obs.events import Sink
from repro.obs.sinks import validate_events
from repro.service import (AdaptiveController, ServiceConfig, Tenant,
                           run_service)
from repro.sim.allocators import FairShare, FixedLevels
from repro.sim.bandwidth import FlowNetwork
from repro.sim.engine import Environment


def _harness(levels={1: 0.6, 0: 0.4}, **kw):
    env = Environment()
    net = FlowNetwork(env)
    link = net.add_link("bus", 100.0)
    pol = FixedLevels(levels)
    net.set_policy(link, pol)
    return env, net, link, pol


def test_controller_validation():
    env, net, link, pol = _harness()
    with pytest.raises(SimulationError):
        AdaptiveController(env, net, [(link, pol)], demand_fn=set,
                           epoch_s=0.0)
    with pytest.raises(SimulationError):
        AdaptiveController(env, net, [(link, pol)], demand_fn=set,
                           reclaim=1.0)
    with pytest.raises(SimulationError):
        AdaptiveController(env, net, [(link, FairShare())],
                           demand_fn=set)


def test_idle_levels_are_loaned_and_restored():
    """Class 0 idle -> its level shrinks to base*(1-reclaim) and class 1
    absorbs the loan; class 0 backlogged again -> base levels return."""
    env, net, link, pol = _harness()
    demand = {"classes": {0, 1}}
    ctl = AdaptiveController(env, net, [(link, pol)],
                             demand_fn=lambda: demand["classes"],
                             epoch_s=0.1, reclaim=0.9)
    ctl.start()

    def driver():
        yield env.timeout(0.15)          # epoch 0: both backlogged
        assert pol.levels == {1: 0.6, 0: 0.4}
        demand["classes"] = {1}
        yield env.timeout(0.1)           # epoch 1: class 0 idle
        assert pol.levels[0] == pytest.approx(0.04)
        assert pol.levels[1] == pytest.approx(0.96)
        demand["classes"] = {0, 1}
        yield env.timeout(0.1)           # epoch 2: restored
        assert pol.levels == {1: 0.6, 0: 0.4}

    env.run(env.process(driver(), name="driver"))
    assert [e["changed"] for e in ctl.epochs] == [False, True, True]
    reclaiming = [e for e in ctl.epochs if e["idle"] and e["backlogged"]]
    assert len(reclaiming) == 1
    assert reclaiming[0]["reclaimed_fraction"] == pytest.approx(0.9)
    summary = ctl.summary()
    assert summary["epochs_reclaiming"] == 1
    assert summary["mean_reclaimed_fraction"] == pytest.approx(0.9)


def test_all_idle_changes_nothing():
    """No backlogged class -> nothing to loan to; levels stay at base."""
    env, net, link, pol = _harness()
    ctl = AdaptiveController(env, net, [(link, pol)],
                             demand_fn=lambda: set(), epoch_s=0.1)
    ctl.start()

    def driver():
        yield env.timeout(0.35)

    env.run(env.process(driver(), name="driver"))
    assert pol.levels == {1: 0.6, 0: 0.4}
    assert all(not e["changed"] for e in ctl.epochs)


class CollectSink(Sink):
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


def test_service_event_stream_contract():
    """run.start first, run.end last, one submit/start/end triple per
    job in a valid repro.events/v1 stream, plus service.epoch events
    when the controller runs."""
    tenants = (Tenant("a", priority=1, rate_hz=30.0, n_jobs=2,
                      n_elements=50_000),
               Tenant("b", priority=0, rate_hz=30.0, n_jobs=2,
                      n_elements=50_000))
    sink = CollectSink()
    run_service(tenants, ServiceConfig(allocator="fixed-levels",
                                       functional=False, seed=2,
                                       batch_size=20_000,
                                       pinned_elements=5_000),
                sinks=(sink,))
    summary = validate_events(sink.events)
    counts = summary["counts"]
    assert counts["run.start"] == 1 and counts["run.end"] == 1
    assert counts["service.job.submit"] == 4
    assert counts["service.job.start"] == 4
    assert counts["service.job.end"] == 4
    assert counts["service.epoch"] >= 1
    # Per-job causality: submit precedes start precedes end.
    seq = {}
    for ev in sink.events:
        if ev.kind.startswith("service.job."):
            job = ev.data["job"]
            seq.setdefault(job, []).append(ev.kind.rsplit(".", 1)[1])
    assert all(v == ["submit", "start", "end"] for v in seq.values())
