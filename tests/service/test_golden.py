"""Golden/byte-stability battery for the ``repro.service/v1`` verdict.

The verdict is a deterministic function of ``(tenants, config,
platform)``: two identical runs must produce byte-identical canonical
JSON, and the ``repro serve --json`` CLI output is that same canonical
document, byte for byte, run after run.
"""

import io
import json

import pytest

from repro.cli import main
from repro.obs import canonical_json
from repro.service import (SERVICE_SCHEMA, ServiceConfig, Tenant,
                           archive_entry, jain_index, percentile,
                           run_service)

TENANTS = (
    Tenant("gold", priority=2, share=2.0, rate_hz=40.0, n_jobs=2,
           n_elements=50_000, slo_s=0.5),
    Tenant("batch", priority=0, share=0.5, rate_hz=20.0, n_jobs=2,
           n_elements=100_000),
)

CFG = dict(seed=3, batch_size=20_000, pinned_elements=5_000)


def test_percentile_nearest_rank():
    vals = [1.0, 2.0, 3.0, 4.0]
    assert percentile(vals, 50.0) == 2.0
    assert percentile(vals, 99.0) == 4.0
    assert percentile(vals, 100.0) == 4.0
    assert percentile([], 50.0) == 0.0
    with pytest.raises(ValueError):
        percentile(vals, 0.0)


def test_jain_index_bounds():
    assert jain_index([]) == 1.0
    assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)


@pytest.mark.parametrize("allocator", ["fair-share", "fixed-levels"])
def test_verdict_bytes_stable_across_runs(allocator):
    a = run_service(TENANTS, ServiceConfig(allocator=allocator, **CFG))
    b = run_service(TENANTS, ServiceConfig(allocator=allocator, **CFG))
    ja, jb = canonical_json(a.verdict), canonical_json(b.verdict)
    assert ja == jb
    doc = json.loads(ja)
    assert doc["schema"] == SERVICE_SCHEMA
    assert json.loads(canonical_json(doc)) == doc   # round-trips


def test_verdict_seed_sensitivity():
    a = run_service(TENANTS, ServiceConfig(seed=3, batch_size=20_000,
                                           pinned_elements=5_000))
    b = run_service(TENANTS, ServiceConfig(seed=4, batch_size=20_000,
                                           pinned_elements=5_000))
    assert canonical_json(a.verdict) != canonical_json(b.verdict)


def _serve(args):
    out = io.StringIO()
    code = main(args, out)
    return code, out.getvalue()


SERVE_ARGS = ["serve", "--timing", "--seed", "3",
              "--tenant", "gold:2:2:40:2:50000:0.5",
              "--tenant", "batch:0:0.5:20:2:100000",
              "--batch-size", "20000", "--pinned", "5000"]


def test_cli_serve_json_byte_stable():
    code1, out1 = _serve(SERVE_ARGS + ["--json"])
    code2, out2 = _serve(SERVE_ARGS + ["--json"])
    assert code1 == code2 == 0
    assert out1 == out2
    doc = json.loads(out1)
    assert doc["schema"] == SERVICE_SCHEMA
    assert canonical_json(doc) + "\n" == out1


def test_cli_serve_json_matches_library_verdict():
    _code, out = _serve(SERVE_ARGS + ["--json"])
    res = run_service(TENANTS, ServiceConfig(functional=False, **CFG))
    assert out == canonical_json(res.verdict) + "\n"


def test_cli_serve_table_output():
    code, out = _serve(SERVE_ARGS)
    assert code == 0
    assert "per-tenant QoS" in out
    assert "gold" in out and "batch" in out
    assert "Jain fairness index" in out


def test_cli_serve_allocator_choices():
    code, out = _serve(SERVE_ARGS + ["--allocator", "strict-priority",
                                     "--json"])
    assert code == 0
    assert json.loads(out)["allocator"] == "strict-priority"
    with pytest.raises(SystemExit):
        _serve(SERVE_ARGS + ["--allocator", "bogus"])


def test_cli_serve_rejects_malformed_tenant():
    with pytest.raises(SystemExit):
        _serve(["serve", "--timing", "--tenant", "gold:2"])
    with pytest.raises(SystemExit):
        _serve(["serve", "--timing", "--tenant", ":2:1:10:2:1000"])


def test_cli_serve_html_and_archive(tmp_path):
    html = tmp_path / "svc.html"
    arch = tmp_path / "svc.jsonl"
    code, out = _serve(SERVE_ARGS + ["--html", str(html),
                                     "--archive", str(arch)])
    assert code == 0
    page = html.read_text()
    assert "Multi-tenant sort service" in page
    assert "Per-tenant job latencies" in page
    assert "gold" in page
    # Archiving the same run again is a no-op (content-addressed).
    before = arch.read_bytes()
    code, out = _serve(SERVE_ARGS + ["--archive", str(arch)])
    assert code == 0
    assert "0 entries" in out or "already archived" in out
    assert arch.read_bytes() == before


def test_archive_entry_shape():
    res = run_service(TENANTS, ServiceConfig(functional=False, **CFG))
    entry = archive_entry(res.verdict, label="golden")
    assert entry["source"] == "service"
    assert entry["point"]["kind"] == "service"
    for key in ("elapsed_s", "jain_latency_index", "slo_hit_rate",
                "p99_latency_s.gold", "p99_latency_s.batch"):
        assert isinstance(entry["metrics"][key], float), key
    # Entries of identical runs share fingerprint AND content hash.
    again = archive_entry(run_service(
        TENANTS, ServiceConfig(functional=False, **CFG)).verdict,
        label="golden")
    assert again["fingerprint"] == entry["fingerprint"]
    assert canonical_json(again) == canonical_json(entry)
