"""Tests for the host-side library facades (functional + cost model)."""

import numpy as np
import pytest

from repro.cpu import (LIBRARIES, get_library, memcpy_seconds,
                       multiway_merge_arrays, multiway_merge_seconds,
                       pairwise_merge, pairwise_merge_seconds, staged_copy)
from repro.hw.platforms import PLATFORM1
from repro.kernels.utils import is_sorted, same_multiset


@pytest.mark.parametrize("name", sorted(LIBRARIES))
def test_every_library_sorts(name, rng):
    lib = get_library(name)
    a = rng.normal(size=3000)
    s = lib.sort(a, threads=8)
    assert is_sorted(s)
    assert same_multiset(a, s)


def test_unknown_library():
    with pytest.raises(KeyError):
        get_library("introsort9000")


def test_library_cost_models_bound_to_platform():
    n = 10 ** 8
    gnu = get_library("gnu")
    assert gnu.seconds(PLATFORM1, n, 16) == pytest.approx(
        PLATFORM1.sort_model("gnu").seconds(n, 16))


def test_sequential_libraries_ignore_threads(rng):
    std = get_library("std")
    a = rng.normal(size=500)
    assert np.array_equal(std.sort(a, threads=16), std.sort(a, threads=1))
    n = 10 ** 7
    assert std.seconds(PLATFORM1, n, 16) == std.seconds(PLATFORM1, n, 1)


def test_pairwise_merge_functional(rng):
    a = np.sort(rng.normal(size=400))
    b = np.sort(rng.normal(size=300))
    m = pairwise_merge(a, b, threads=4)
    assert np.array_equal(m, np.sort(np.concatenate([a, b])))


def test_multiway_merge_functional(rng):
    runs = [np.sort(rng.normal(size=100)) for _ in range(5)]
    m = multiway_merge_arrays(runs)
    assert np.array_equal(m, np.sort(np.concatenate(runs)))


def test_merge_cost_models():
    n = 10 ** 9
    t2 = pairwise_merge_seconds(PLATFORM1, n, 16)
    t8 = multiway_merge_seconds(PLATFORM1, n, 8, 16)
    assert t2 == pytest.approx(PLATFORM1.merge.seconds(n, 16, 2))
    assert t8 > t2  # k-way costs more per element


def test_staged_copy(rng):
    src = rng.normal(size=1000)
    dst = np.zeros(1000)
    chunks = staged_copy(dst, src, chunk_elements=64)
    assert np.array_equal(dst, src)
    assert chunks == int(np.ceil(1000 / 64))
    with pytest.raises(ValueError):
        staged_copy(np.zeros(3), src, 4)


def test_memcpy_seconds_parallel_capped_by_bus():
    hm = PLATFORM1.hostmem
    nbytes = 1e9
    t1 = memcpy_seconds(PLATFORM1, nbytes, 1)
    t8 = memcpy_seconds(PLATFORM1, nbytes, 8)
    assert t1 == pytest.approx(nbytes / hm.per_core_copy_bw)
    assert t8 == pytest.approx(nbytes / hm.copy_bus_bw)
    assert t8 < t1
