"""Recovery accounting and determinism guarantees of the resilience
layer: retries/backoffs are first-class spans, the critical path still
tiles the makespan under faults, conformance residuals still sum
bit-for-bit on a degraded run, no-fault runs are byte-identical to
fault-free ones, and same-seed chaos runs are byte-deterministic."""

import math

import pytest

from repro.errors import FaultPlanError
from repro.hetsort import HeterogeneousSorter, RetryPolicy
from repro.hetsort.resilience import DEGRADED
from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.model.lowerbound import LowerBoundModel
from repro.obs.causal import critical_path_report
from repro.obs.conformance import conformance_record
from repro.obs.diff import canonical_json, run_report
from repro.obs.events import EV
from repro.obs.sinks import JsonlSink, read_events, validate_events
from repro.sim.faults import FaultPlan, FaultSpec
from repro.sim.trace import CAT


def sorter(platform=PLATFORM1, **kw):
    kw.setdefault("batch_size", 50_000)
    kw.setdefault("pinned_elements", 10_000)
    return HeterogeneousSorter(platform, **kw)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_backoff_schedule_is_exponential_and_capped():
    p = RetryPolicy(max_attempts=6, base_backoff_s=1e-4, multiplier=2.0,
                    max_backoff_s=3e-4)
    assert p.backoff_s(1) == pytest.approx(1e-4)
    assert p.backoff_s(2) == pytest.approx(2e-4)
    assert p.backoff_s(3) == pytest.approx(3e-4)   # capped
    assert p.backoff_s(4) == pytest.approx(3e-4)


@pytest.mark.parametrize("kw", [
    {"max_attempts": 0},
    {"base_backoff_s": -1.0},
    {"max_backoff_s": -1.0},
    {"multiplier": 0.5},
])
def test_retry_policy_validation(kw):
    with pytest.raises(FaultPlanError):
        RetryPolicy(**kw)


def test_degraded_does_not_cover_genuine_errors():
    from repro.errors import CudaOutOfMemory, GpuLostError, \
        RetryExhaustedError
    assert issubclass(RetryExhaustedError, DEGRADED)
    assert issubclass(GpuLostError, DEGRADED)
    assert not issubclass(CudaOutOfMemory, DEGRADED)


# ---------------------------------------------------------------------------
# Recovery accounting
# ---------------------------------------------------------------------------


def test_retries_appear_as_spans_and_events(tmp_path):
    plan = FaultPlan(faults=(
        FaultSpec(kind="pcie.transient", times=2),))
    log = tmp_path / "events.jsonl"
    res = sorter().sort(n=200_000, approach="pipedata", faults=plan,
                        sinks=(JsonlSink(log),))
    assert res.meta["faults"] == {
        "fired": 2, "by_kind": {"pcie.transient": 2}}
    assert res.trace.count(CAT.RETRY) == 2
    assert res.component(CAT.RETRY) > 0       # backoff charged to the clock

    _, events = read_events(log)
    counts = validate_events(events)["counts"]
    assert counts[EV.FAULT] == 2
    assert counts[EV.RETRY] == 2
    retries = [e for e in events if e.kind == EV.RETRY]
    # Two interleaved transfers may each draw one fault, so attempts are
    # per-operation; every backoff is attempt >= 1 with a charged delay.
    assert all(e.data["attempt"] >= 1 for e in retries)
    assert all(e.data["backoff_s"] > 0 for e in retries)


def test_critical_path_still_tiles_makespan_under_faults():
    plan = FaultPlan(faults=(
        FaultSpec(kind="pcie.transient", times=3),
        FaultSpec(kind="alloc.pinned", times=1),
        FaultSpec(kind="bandwidth.degrade", link="pcie.htod",
                  at_s=0.002, duration_s=0.01, factor=0.3),))
    res = sorter().sort(n=200_000, approach="pipedata", faults=plan)
    cp = critical_path_report(res.causal_graph())
    assert cp["duration"] + cp["lead_in"] == pytest.approx(cp["makespan"],
                                                           rel=1e-12)
    tiled = sum(cp["by_category"].values())
    assert tiled == pytest.approx(cp["duration"], rel=1e-9)
    assert CAT.RETRY in cp["by_category"] or res.trace.count(CAT.RETRY) > 0


def test_conformance_residuals_sum_bit_for_bit_on_degraded_run():
    # Exhaust the retry budget so batches degrade to the CPU fallback,
    # then check the conformance invariant on the degraded run.
    plan = FaultPlan(faults=(
        FaultSpec(kind="pcie.transient", times=50),))
    res = sorter().sort(n=200_000, approach="bline", faults=plan,
                        retry=RetryPolicy(max_attempts=2))
    assert res.meta["degrades"], "expected a degraded run"
    report = run_report(res)
    model = LowerBoundModel(platform_name=res.platform_name, n_gpus=1,
                            slope=4.0e-9, calibration_n=10 ** 6)
    record = conformance_record(report, model)
    total = 0.0
    for cat in sorted(record["residuals"]):
        total += record["residuals"][cat]
    assert total == record["gap_s"]           # bit-for-bit, not approx
    assert math.isfinite(record["slowdown"])


def test_degraded_run_is_still_verified_sorted(rng):
    plan = FaultPlan(faults=(
        FaultSpec(kind="pcie.transient", times=50),))
    data = rng.random(100_000)
    res = sorter().sort(data, approach="bline", faults=plan,
                        retry=RetryPolicy(max_attempts=2))
    out = res.output
    assert out is not None
    assert all(out[i] <= out[i + 1] for i in range(len(out) - 1))
    assert res.meta["degrades"]


def test_device_alloc_exhaustion_degrades_to_cpu_fallback():
    """retry_call: spending the budget on an injected cudaMalloc fault
    raises RetryExhaustedError, which degrades the batch, not the run."""
    plan = FaultPlan(faults=(
        FaultSpec(kind="alloc.device", times=10),))
    res = sorter().sort(n=200_000, approach="bline", faults=plan,
                        retry=RetryPolicy(max_attempts=2))
    reasons = {d["reason"] for d in res.meta["degrades"]}
    assert "cpu.fallback" in reasons
    assert res.meta["faults"]["by_kind"] == {"alloc.device": 2}


def test_pipedata_exhaustion_drains_inflight_stream():
    """A degraded PIPEDATA worker settles its stream's in-flight tail
    before falling back; the run completes with every batch accounted."""
    plan = FaultPlan(faults=(
        FaultSpec(kind="pcie.transient", times=50),))
    res = sorter().sort(n=200_000, approach="pipedata", faults=plan,
                        retry=RetryPolicy(max_attempts=2))
    assert res.meta["degrades"]
    assert res.trace.count(CAT.CPUSORT) >= len(
        [d for d in res.meta["degrades"] if d["reason"] == "cpu.fallback"])


def test_gpu_loss_with_no_survivors_falls_back_to_cpu():
    plan = FaultPlan(faults=(
        FaultSpec(kind="gpu.lost", gpu=0, at_s=0.004),))
    res = sorter().sort(n=400_000, approach="blinemulti", faults=plan)
    reasons = [d["reason"] for d in res.meta["degrades"]]
    assert "replan.no_survivors" in reasons
    assert "cpu.fallback" in reasons


def test_drain_stream_settles_an_unprocessed_tail(env):
    """drain_stream waits out a still-running tail op and swallows a
    failing one, leaving the stream reusable."""
    from repro.cuda import Runtime
    from repro.errors import RetryExhaustedError
    from repro.hetsort.resilience import drain_stream
    from repro.hw.machine import Machine
    stream = Runtime(Machine(env, PLATFORM1)).create_stream(0)

    def slow_op():
        yield env.timeout(0.001)
        return None

    def failing_op():
        yield env.timeout(0.001)
        raise RetryExhaustedError("injected for the drain test")

    def scenario():
        stream.submit(slow_op, label="slow")
        yield from drain_stream(stream)       # waits for the tail
        assert stream.idle
        stream.submit(failing_op, label="failing")
        yield from drain_stream(stream)       # swallows the failure
        assert stream.idle

    env.run(env.process(scenario()))


def test_replan_with_empty_queue_reports_survivor_state():
    from collections import deque

    from repro.hetsort.resilience import replan_batches
    queues = {0: deque(), 1: deque()}
    active = {0: True, 1: True}
    # Nothing to move: the verdict is just "are there survivors".
    assert replan_batches(None, "blinemulti", 1, queues, active) is True
    active[0] = False
    assert replan_batches(None, "blinemulti", 1, queues, active) is False


def test_gpu_loss_replans_onto_survivor():
    plan = FaultPlan(faults=(
        FaultSpec(kind="gpu.lost", gpu=1, at_s=0.004),))
    res = HeterogeneousSorter(
        PLATFORM2, n_gpus=2, batch_size=50_000,
        pinned_elements=10_000).sort(n=400_000, approach="blinemulti",
                                     faults=plan)
    reasons = {d["reason"] for d in res.meta["degrades"]}
    assert reasons & {"replan", "worker.degraded", "cpu.fallback"}
    assert res.meta["faults"]["by_kind"] == {"gpu.lost": 1}


# ---------------------------------------------------------------------------
# Byte-determinism guarantees
# ---------------------------------------------------------------------------


def run_with_log(path, *, faults=None, retry=None):
    res = sorter().sort(n=200_000, approach="pipedata", faults=faults,
                        retry=retry, sinks=(JsonlSink(path),))
    return canonical_json(run_report(res)), path.read_text()


def test_empty_fault_plan_is_byte_neutral(tmp_path):
    """The fault-neutrality regression: an attached-but-empty FaultPlan
    (plus sinks) leaves both the canonical run report and the event log
    byte-for-byte identical to a run with no plan at all."""
    base_report, base_log = run_with_log(tmp_path / "base.jsonl")
    plan_report, plan_log = run_with_log(tmp_path / "plan.jsonl",
                                         faults=FaultPlan(),
                                         retry=RetryPolicy())
    assert plan_report == base_report
    assert plan_log == base_log


def test_same_seed_chaos_runs_are_byte_identical(tmp_path):
    plan = FaultPlan.random(42)
    rep_a, log_a = run_with_log(tmp_path / "a.jsonl", faults=plan)
    rep_b, log_b = run_with_log(tmp_path / "b.jsonl", faults=plan)
    assert rep_a == rep_b
    assert log_a == log_b
    # ... and the faulted run differs from the healthy one.
    rep_h, _ = run_with_log(tmp_path / "h.jsonl")
    assert rep_a != rep_h
