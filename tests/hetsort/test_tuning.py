"""Tests for the configuration autotuner."""

import pytest

from repro.hetsort.config import Approach
from repro.hetsort.tuning import autotune
from repro.hw.platforms import PLATFORM1, PLATFORM2


@pytest.fixture(scope="module")
def tuned():
    return autotune(PLATFORM1, n=int(1e9), quick=True)


def test_grid_size(tuned):
    # quick: 2 approaches x 2 stream counts x 2 memcpy settings x 1 p_s.
    assert len(tuned.trials) == 8


def test_best_is_minimum(tuned):
    assert tuned.elapsed == min(t.elapsed for t in tuned.trials)


def test_best_uses_overlap(tuned):
    """Any sane tuning picks a pipelined, multi-stream configuration."""
    assert tuned.config.approach in Approach.PIPELINED
    assert tuned.config.n_streams >= 2


def test_parmemcpy_chosen(tuned):
    """With free threads, parallel staging copies always help."""
    assert tuned.config.memcpy_threads > 1


def test_improvement_over_default(tuned):
    assert tuned.improvement_over_default() >= 1.0


def test_table_rows_sorted(tuned):
    rows = tuned.table_rows()
    times = [float(r[-1]) for r in rows]
    assert times == sorted(times)


def test_batch_size_respects_stream_count(tuned):
    """More streams => smaller batches => more of them."""
    by_ns = {}
    for t in tuned.trials:
        by_ns.setdefault(t.config.n_streams, t.n_batches)
    assert by_ns[2] >= by_ns[1]


def test_multi_gpu_tuning():
    r = autotune(PLATFORM2, n=int(1.4e9), n_gpus=2, quick=True)
    assert r.n_gpus == 2
    assert r.elapsed < autotune(PLATFORM2, n=int(1.4e9), n_gpus=1,
                                quick=True).elapsed
