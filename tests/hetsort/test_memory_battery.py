"""The memory battery: the allocation ledger must balance to zero at
run end for every approach on both platforms -- including degraded,
fault-injected runs -- the measured peaks must match the analytic
planner with zero residual on healthy runs, and attaching the memory
instrumentation must never perturb the simulated timeline."""

import io

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import ReproError  # noqa: E402
from repro.hetsort import APPROACH_RUNNERS, HeterogeneousSorter  # noqa: E402
from repro.hw.platforms import PLATFORM1, PLATFORM2  # noqa: E402
from repro.obs import (EV, JsonlSink, canonical_json,  # noqa: E402
                       measured_peaks, memory_conformance, plan_memory,
                       validate_events)
from repro.obs.events import Sink  # noqa: E402
from repro.sim.faults import FaultKind, FaultPlan, FaultSpec  # noqa: E402

APPROACHES = sorted(APPROACH_RUNNERS)

N = 60_000
BATCH = 20_000
PINNED = 5_000


class CollectSink(Sink):
    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=2 ** 16),
       approach=st.sampled_from(APPROACHES),
       multi=st.booleans())
def test_ledger_balances_under_chaos(seed, approach, multi):
    """Every surviving chaos run -- alloc faults, GPU loss, degraded
    CPU fallback included -- releases every byte it allocated, and the
    mem.* event stream agrees with the ledger's accounting."""
    platform, n_gpus = (PLATFORM2, 2) if multi else (PLATFORM1, 1)
    plan = FaultPlan.random(seed, n_gpus=n_gpus)
    data = np.random.default_rng(seed).random(N)
    s = HeterogeneousSorter(platform, n_gpus=n_gpus, batch_size=BATCH,
                            pinned_elements=PINNED)
    sink = CollectSink()
    try:
        res = s.sort(data, approach=approach, faults=plan, sinks=(sink,))
    except ReproError:
        # A typed failure is an acceptable chaos outcome; the partial
        # event stream must still validate (balances never negative).
        validate_events(sink.events)
        return
    mem = res.metrics["memory"]
    assert mem["balanced"], mem
    res.memory_ledger.check_balanced()
    counts = validate_events(sink.events)["counts"]
    assert counts[EV.MEM_ALLOC] == mem["n_allocs"]
    assert counts[EV.MEM_FREE] == mem["n_frees"]
    # the last watermark per pool is the recorded peak
    last_mark = {}
    for e in sink.events:
        if e.kind == EV.MEM_WATERMARK:
            last_mark[e.data["pool"]] = e.data["peak_bytes"]
    assert last_mark == {p: b for p, b in res.memory_ledger.peaks.items()
                         if b > 0}


@pytest.mark.parametrize("platform,n_gpus", [(PLATFORM1, 1),
                                             (PLATFORM2, 2)])
@pytest.mark.parametrize("approach", APPROACHES)
def test_healthy_runs_match_planner_exactly(platform, n_gpus, approach):
    """On a fault-free run the planner's predicted peaks equal the
    measured peaks byte-for-byte -- the worker geometry is exact."""
    kw = {} if approach in ("bline",) else {"batch_size": 250_000,
                                            "n_streams": 2}
    s = HeterogeneousSorter(platform, n_gpus=n_gpus,
                            pinned_elements=50_000, **kw)
    res = s.sort(n=1_000_000, approach=approach)
    memplan = plan_memory(platform, 1_000_000, approach=approach,
                          n_gpus=n_gpus, pinned_elements=50_000, **kw)
    conf = memory_conformance(memplan, measured_peaks(res))
    assert conf["ok"], conf
    assert all(p["residual_bytes"] == 0 for p in conf["pools"].values())
    assert res.metrics["memory"]["balanced"]


def test_metrics_carry_peaks_through_canonical_serialisation():
    res = HeterogeneousSorter(PLATFORM1, pinned_elements=50_000).sort(
        n=1_000_000, approach="bline")
    mem = res.metrics["memory"]
    assert mem["peak_device_bytes"]["gpu0"] == 2 * 1_000_000 * 8
    assert mem["peak_pinned_bytes"] == 2 * 50_000 * 8
    assert res.memory == mem
    doc = canonical_json(res.metrics)
    assert '"peak_pinned_bytes": 800000' in doc


def test_memory_instrumentation_is_timeline_neutral():
    """Runs with and without telemetry sinks attached produce the
    identical canonical run record: the ledger observes, never
    schedules."""
    def run(sinks):
        s = HeterogeneousSorter(PLATFORM1, batch_size=BATCH,
                                pinned_elements=PINNED)
        data = np.random.default_rng(3).random(N)
        return s.sort(data, approach="pipedata", sinks=sinks)

    bare = run(())
    watched = run((CollectSink(),))
    assert canonical_json(bare.to_dict()) == \
        canonical_json(watched.to_dict())
    assert bare.elapsed == watched.elapsed


def test_same_seed_runs_are_byte_identical_with_mem_events():
    """Event logs -- mem.* events included -- are byte-stable across
    identical runs."""
    logs = []
    for _ in range(2):
        buf = io.StringIO()
        s = HeterogeneousSorter(PLATFORM2, n_gpus=2, batch_size=BATCH,
                                pinned_elements=PINNED)
        s.sort(np.random.default_rng(7).random(N), approach="pipemerge",
               sinks=(JsonlSink(buf),))
        logs.append(buf.getvalue())
    assert logs[0] == logs[1]
    assert '"kind":"mem.alloc"' in logs[0]
    assert '"kind":"mem.watermark"' in logs[0]


def test_degraded_run_still_balances():
    """Force the device-allocation path to exhaust so a worker degrades
    to the CPU fallback: its partially-allocated staging buffers must
    not leak (the alloc_worker_buffers unwind path)."""
    plan = FaultPlan(faults=[FaultSpec(kind=FaultKind.DEVICE_ALLOC,
                                       gpu=0, after=0, times=10_000)])
    data = np.random.default_rng(11).random(N)
    s = HeterogeneousSorter(PLATFORM1, batch_size=BATCH,
                            pinned_elements=PINNED)
    res = s.sort(data, approach="bline", faults=plan)
    assert res.meta.get("degrades")
    assert res.metrics["memory"]["balanced"]
    res.memory_ledger.check_balanced()
