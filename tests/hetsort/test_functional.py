"""Functional-mode integration tests: every approach must really sort.

These run the full simulated pipeline over real numpy arrays and verify
the output is a sorted permutation of the input -- the same code path the
timing experiments use.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError, ValidationError
from repro.hetsort import Approach, HeterogeneousSorter
from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.kernels.utils import is_sorted, same_multiset
from repro.workloads import generate

APPROACHES = ["blinemulti", "pipedata", "pipemerge"]


def small_sorter(platform=PLATFORM1, **kw):
    kw.setdefault("batch_size", 25_000)
    kw.setdefault("pinned_elements", 4_000)
    return HeterogeneousSorter(platform, **kw)


@pytest.mark.parametrize("approach", APPROACHES)
def test_sorts_uniform_data(approach, rng):
    data = rng.random(100_000)
    res = small_sorter().sort(data, approach=approach)
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)


@pytest.mark.parametrize("approach", APPROACHES)
@pytest.mark.parametrize("dist", ["gaussian", "sorted", "reverse",
                                  "duplicates", "nearly_sorted"])
def test_sorts_every_distribution(approach, dist):
    data = generate(60_000, dist, seed=7)
    res = small_sorter().sort(data, approach=approach)
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)


def test_bline_functional(rng):
    data = rng.random(50_000)
    res = HeterogeneousSorter(PLATFORM1).sort(data, approach="bline")
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)


def test_bline_pageable_functional(rng):
    data = rng.random(50_000)
    res = HeterogeneousSorter(PLATFORM1, staging="pageable").sort(
        data, approach="bline")
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)


def test_bline_two_gpus_functional(rng):
    data = rng.random(40_000)
    res = HeterogeneousSorter(PLATFORM2, n_gpus=2).sort(
        data, approach="bline")
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)
    assert res.plan.n_batches == 2


@pytest.mark.parametrize("approach", APPROACHES)
def test_two_gpu_pipelines_functional(approach, rng):
    data = rng.random(120_000)
    res = small_sorter(PLATFORM2, n_gpus=2).sort(data, approach=approach)
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)


def test_blinemulti_pageable_functional(rng):
    data = rng.random(80_000)
    res = small_sorter(staging="pageable").sort(data,
                                                approach="blinemulti")
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)


def test_parmemcpy_functional(rng):
    data = rng.random(100_000)
    res = small_sorter(memcpy_threads=8).sort(data, approach="pipemerge")
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)


def test_uneven_last_batch(rng):
    """n not divisible by b_s: the remainder batch must still work."""
    data = rng.random(90_001)
    res = small_sorter().sort(data, approach="pipemerge")
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)
    assert res.plan.batches[-1].size == 90_001 - 3 * 25_000


def test_single_batch_pipeline(rng):
    """n <= b_s: the pipelined approaches degenerate to one batch and a
    copy instead of a merge."""
    data = rng.random(10_000)
    res = small_sorter().sort(data, approach="pipedata")
    assert is_sorted(res.output)
    assert res.plan.n_batches == 1


def test_more_streams_than_batches(rng):
    data = rng.random(30_000)
    res = small_sorter(n_streams=4).sort(data, approach="pipedata")
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)


def test_pipemerge_counts_pairwise_merges(rng):
    data = rng.random(250_000)  # 10 batches of 25k
    res = small_sorter().sort(data, approach="pipemerge")
    assert res.plan.n_batches == 10
    assert res.meta["pairwise_merged"] == res.plan.pairwise_merges == 4
    assert is_sorted(res.output)


def test_negative_values_and_special_floats(rng):
    data = np.concatenate([
        rng.normal(size=50_000) * 1e6,
        [np.inf, -np.inf, 0.0, -0.0, 1e-308, -1e-308],
    ])
    rng.shuffle(data)
    res = small_sorter().sort(data, approach="pipemerge")
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)


def test_input_array_not_mutated(rng):
    data = rng.random(60_000)
    orig = data.copy()
    small_sorter().sort(data, approach="pipemerge")
    assert np.array_equal(data, orig)


def test_sort_requires_exactly_one_of_data_or_n(rng):
    s = small_sorter()
    with pytest.raises(PlanError):
        s.sort()
    with pytest.raises(PlanError):
        s.sort(data=rng.random(10), n=10)


def test_config_and_kwargs_mutually_exclusive():
    from repro.hetsort.config import SortConfig
    with pytest.raises(PlanError):
        HeterogeneousSorter(PLATFORM1, config=SortConfig(),
                            batch_size=100)


def test_validation_catches_corruption(monkeypatch, rng):
    """If the pipeline produced garbage, validation must fire."""
    from repro.hetsort import validate as v
    with pytest.raises(ValidationError):
        v.check_sorted_permutation(np.array([1.0, 2.0]),
                                   np.array([2.0, 1.0]))
    with pytest.raises(ValidationError):
        v.check_sorted_permutation(np.array([1.0, 2.0]),
                                   np.array([1.0, 3.0]))
    with pytest.raises(ValidationError):
        v.check_sorted_permutation(np.array([1.0]), None)


@given(n=st.integers(1, 4000), seed=st.integers(0, 10))
@settings(max_examples=20, deadline=None)
def test_property_any_size_sorts(n, seed):
    data = generate(n, "uniform", seed=seed)
    res = HeterogeneousSorter(
        PLATFORM1, batch_size=max(1, n // 3),
        pinned_elements=max(1, n // 7)).sort(data, approach="pipemerge")
    assert is_sorted(res.output)
    assert same_multiset(data, res.output)
