"""Tests for SortResult accounting."""

import pytest

from repro.hetsort import HeterogeneousSorter, cpu_reference_sort
from repro.hw.platforms import PLATFORM1
from repro.sim import CAT


@pytest.fixture(scope="module")
def result():
    s = HeterogeneousSorter(PLATFORM1, batch_size=int(2e8),
                            n_streams=2)
    return s.sort(n=int(8e8), approach="pipedata")


def test_elapsed_positive_and_matches_trace(result):
    assert result.elapsed > 0
    assert result.trace.makespan() <= result.elapsed + 1e-9


def test_breakdown_contains_expected_components(result):
    bd = result.breakdown
    for cat in (CAT.HTOD, CAT.DTOH, CAT.GPUSORT, CAT.MCPY,
                CAT.PINNED_ALLOC, CAT.SYNC, CAT.MERGE):
        assert cat in bd, f"missing {cat}"
        assert bd[cat] > 0


def test_related_work_total_less_than_elapsed(result):
    """The related-work accounting must omit real overheads (Sec. IV-E)."""
    assert result.related_work_end_to_end < result.elapsed
    assert result.missing_overhead > 0
    assert result.missing_overhead == pytest.approx(
        result.elapsed - result.related_work_end_to_end)


def test_component_bytes_conserved(result):
    """Every element crosses PCIe exactly once per direction."""
    n_bytes = result.plan.n * 8
    assert result.trace.bytes_moved(CAT.HTOD) == pytest.approx(n_bytes)
    assert result.trace.bytes_moved(CAT.DTOH) == pytest.approx(n_bytes)
    # Staging copies both directions: 2 n bytes of MCpy.
    assert result.trace.bytes_moved(CAT.MCPY) == pytest.approx(2 * n_bytes)


def test_speedup_over(result):
    ref = cpu_reference_sort(PLATFORM1, n=result.plan.n)
    sp = result.speedup_over(ref)
    assert sp == pytest.approx(ref.elapsed / result.elapsed)
    assert result.speedup_over(ref.elapsed) == pytest.approx(sp)


def test_throughput(result):
    assert result.throughput == pytest.approx(
        result.plan.n / result.elapsed)


def test_summary_mentions_key_facts(result):
    s = result.summary()
    assert "pipedata" in s
    assert "PLATFORM1" in s
    assert "n_b=4" in s


def test_cpu_reference_result_shape():
    ref = cpu_reference_sort(PLATFORM1, n=10 ** 9)
    assert ref.plan is None
    assert ref.approach == "cpu:gnu"
    assert ref.meta["threads"] == 16
    assert ref.trace.count(CAT.CPUSORT) == 1
    assert ref.elapsed == pytest.approx(
        PLATFORM1.reference_sort_seconds(10 ** 9), rel=0.01)


def test_to_dict_serialisable(result):
    import json
    doc = result.to_dict()
    assert json.dumps(doc)
    assert doc["approach"] == "pipedata"
    assert doc["plan"]["n_batches"] == 4
    assert doc["elapsed_s"] == result.elapsed
    assert doc["breakdown_s"] == result.breakdown


def test_conformance_property(result):
    from repro.hw.platforms import PLATFORM1 as _p1
    from repro.model.lowerbound import measure_bline_throughput
    from repro.obs import attach_conformance
    assert result.conformance is None
    model = measure_bline_throughput(_p1, n=4_000_000)
    record = attach_conformance(result, model)
    assert result.conformance is record
    assert result.metrics["conformance"] is record
    assert record["measured_s"] == result.trace.makespan()
