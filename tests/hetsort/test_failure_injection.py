"""Failure-injection tests: the pipeline must fail loudly and precisely
when resources are exhausted or invariants are violated -- never produce
a wrong answer silently.

These cover *genuine* failures (capacity exhaustion, broken kernels, bad
inputs).  Deterministic *injected* faults and recovery live in
``tests/sim/test_faults.py`` and ``tests/hetsort/test_resilience.py``;
the FaultPlan-ported variants at the bottom of this file check that the
two worlds stay distinct: a genuine CudaOutOfMemory is never retried,
while an injected alloc fault of the same family is.
"""

import numpy as np
import pytest

from repro.cuda import Runtime
from repro.errors import (CudaInvalidValue, CudaOutOfMemory, PlanError,
                          ValidationError)
from repro.hetsort import HeterogeneousSorter, RetryPolicy
from repro.hetsort.config import SortConfig
from repro.hw.machine import Machine
from repro.hw.platforms import PLATFORM1
from repro.sim.faults import FaultPlan, FaultSpec
from repro.sim.trace import CAT


def test_batch_too_big_for_gpu_rejected_at_plan_time(shrunk_platform):
    tiny = shrunk_platform(gpu_mem_bytes=1024 * 1024)  # 1 MiB GPU
    s = HeterogeneousSorter(tiny, batch_size=10 ** 6)
    with pytest.raises(PlanError, match="global memory"):
        s.sort(n=10 ** 7)


def test_host_memory_exhausted_rejected_at_plan_time(shrunk_platform):
    tiny = shrunk_platform(host_bytes=1024 ** 2)
    s = HeterogeneousSorter(tiny, batch_size=1000)
    with pytest.raises(PlanError, match="3n"):
        s.sort(n=10 ** 6)


def test_pinned_exhaustion_raises_at_runtime(shrunk_platform):
    """Pinned staging buffers count against host capacity at allocation
    time (not plan time): exhausts mid-run with CudaOutOfMemory."""
    # Host that fits 3n but not also the pinned staging buffers.
    n = 10 ** 6
    host = 3 * n * 8 + 1000   # 3n plus almost nothing
    tiny = shrunk_platform(host_bytes=host)
    s = HeterogeneousSorter(tiny, batch_size=n // 4,
                            pinned_elements=n // 8)
    with pytest.raises(CudaOutOfMemory, match="pinned"):
        s.sort(n=n, approach="pipedata")


def test_genuine_oom_not_retried_even_with_retry_policy(shrunk_platform):
    """A *real* capacity exhaustion is not a transient fault: attaching a
    retry policy (via an empty FaultPlan) must not mask it or burn sim
    time on backoff -- the run still dies with CudaOutOfMemory."""
    n = 10 ** 6
    tiny = shrunk_platform(host_bytes=3 * n * 8 + 1000)
    s = HeterogeneousSorter(tiny, batch_size=n // 4,
                            pinned_elements=n // 8)
    with pytest.raises(CudaOutOfMemory, match="pinned"):
        s.sort(n=n, approach="pipedata", faults=FaultPlan(),
               retry=RetryPolicy(max_attempts=5))


def test_injected_alloc_faults_are_retried_transparently():
    """Injected pinned/device alloc faults of the same CudaOutOfMemory
    family ARE transient: the run recovers and completes with no
    degradation."""
    plan = FaultPlan(faults=(
        FaultSpec(kind="alloc.pinned", times=1),
        FaultSpec(kind="alloc.device", times=1),
    ))
    s = HeterogeneousSorter(PLATFORM1, batch_size=50_000,
                            pinned_elements=10_000)
    res = s.sort(n=200_000, approach="pipedata", faults=plan)
    assert res.meta["faults"]["fired"] == 2
    assert "degrades" not in res.meta
    assert res.trace.count(CAT.RETRY) == 2


def test_double_device_free_detected(env):
    rt = Runtime(Machine(env, PLATFORM1))
    buf = rt.malloc(1024)
    rt.free(buf)
    with pytest.raises(CudaInvalidValue):
        rt.free(buf)


def test_use_after_free_detected(env):
    from repro.cuda import MemcpyKind, PageableBuffer
    rt = Runtime(Machine(env, PLATFORM1))
    host = PageableBuffer.for_elements(10)
    dev = rt.malloc(80)
    rt.free(dev)

    def go():
        yield from rt.memcpy(dev, host, 80, MemcpyKind.HOST_TO_DEVICE)

    proc = env.process(go())
    with pytest.raises(CudaInvalidValue, match="freed"):
        env.run(proc)


def test_corrupted_output_caught_by_validation(rng, monkeypatch):
    """If a kernel were broken, sort() must raise, not return garbage."""
    import repro.hetsort.sorter as sorter_mod

    def broken_kernel(view):
        view[:] = view[::-1]   # "sorts" by reversing

    s = HeterogeneousSorter(PLATFORM1, batch_size=5_000,
                            pinned_elements=1_000)
    data = rng.random(20_000)

    real_runtime = sorter_mod.Runtime

    def patched_runtime(machine, sort_kernel=None):
        return real_runtime(machine, sort_kernel=broken_kernel)

    monkeypatch.setattr(sorter_mod, "Runtime", patched_runtime)
    with pytest.raises(ValidationError):
        s.sort(data, approach="pipemerge")


def test_nan_input_rejected(rng):
    data = rng.random(10_000)
    data[1234] = np.nan
    s = HeterogeneousSorter(PLATFORM1, batch_size=5_000,
                            pinned_elements=1_000)
    with pytest.raises(ValidationError, match="NaN"):
        s.sort(data, approach="pipemerge")


def test_config_validation_happens_before_simulation():
    with pytest.raises(PlanError):
        SortConfig(approach="quantum")
    s = HeterogeneousSorter(PLATFORM1)
    with pytest.raises(PlanError):
        s.sort(n=100, approach="pipedata", n_streams=0)
