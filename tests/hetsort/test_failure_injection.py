"""Failure-injection tests: the pipeline must fail loudly and precisely
when resources are exhausted or invariants are violated -- never produce
a wrong answer silently."""

import dataclasses

import numpy as np
import pytest

from repro.cuda import Runtime
from repro.errors import (CudaInvalidValue, CudaOutOfMemory, PlanError,
                          ValidationError)
from repro.hetsort import HeterogeneousSorter
from repro.hetsort.config import SortConfig
from repro.hw.machine import Machine
from repro.hw.platforms import PLATFORM1
from repro.hw.spec import GIB
from repro.sim.engine import Environment


def shrunk_platform(gpu_mem_bytes=None, host_bytes=None):
    """PLATFORM1 with artificially small memories."""
    p = PLATFORM1
    gpus = p.gpus
    if gpu_mem_bytes is not None:
        gpus = tuple(dataclasses.replace(g, mem_bytes=gpu_mem_bytes)
                     for g in gpus)
    hostmem = p.hostmem
    if host_bytes is not None:
        hostmem = dataclasses.replace(hostmem, capacity_bytes=host_bytes)
    return dataclasses.replace(p, gpus=gpus, hostmem=hostmem)


def test_batch_too_big_for_gpu_rejected_at_plan_time():
    tiny = shrunk_platform(gpu_mem_bytes=1024 * 1024)  # 1 MiB GPU
    s = HeterogeneousSorter(tiny, batch_size=10 ** 6)
    with pytest.raises(PlanError, match="global memory"):
        s.sort(n=10 ** 7)


def test_host_memory_exhausted_rejected_at_plan_time():
    tiny = shrunk_platform(host_bytes=1024 ** 2)
    s = HeterogeneousSorter(tiny, batch_size=1000)
    with pytest.raises(PlanError, match="3n"):
        s.sort(n=10 ** 6)


def test_pinned_exhaustion_raises_at_runtime():
    """Pinned staging buffers count against host capacity at allocation
    time (not plan time): exhausts mid-run with CudaOutOfMemory."""
    # Host that fits 3n but not also the pinned staging buffers.
    n = 10 ** 6
    host = 3 * n * 8 + 1000   # 3n plus almost nothing
    tiny = shrunk_platform(host_bytes=host)
    s = HeterogeneousSorter(tiny, batch_size=n // 4,
                            pinned_elements=n // 8)
    with pytest.raises(CudaOutOfMemory, match="pinned"):
        s.sort(n=n, approach="pipedata")


def test_double_device_free_detected(env):
    rt = Runtime(Machine(env, PLATFORM1))
    buf = rt.malloc(1024)
    rt.free(buf)
    with pytest.raises(CudaInvalidValue):
        rt.free(buf)


def test_use_after_free_detected(env):
    from repro.cuda import MemcpyKind, PageableBuffer
    rt = Runtime(Machine(env, PLATFORM1))
    host = PageableBuffer.for_elements(10)
    dev = rt.malloc(80)
    rt.free(dev)

    def go():
        yield from rt.memcpy(dev, host, 80, MemcpyKind.HOST_TO_DEVICE)

    proc = env.process(go())
    with pytest.raises(CudaInvalidValue, match="freed"):
        env.run(proc)


def test_corrupted_output_caught_by_validation(rng, monkeypatch):
    """If a kernel were broken, sort() must raise, not return garbage."""
    import repro.hetsort.sorter as sorter_mod

    def broken_kernel(view):
        view[:] = view[::-1]   # "sorts" by reversing

    s = HeterogeneousSorter(PLATFORM1, batch_size=5_000,
                            pinned_elements=1_000)
    data = rng.random(20_000)

    real_runtime = sorter_mod.Runtime

    def patched_runtime(machine, sort_kernel=None):
        return real_runtime(machine, sort_kernel=broken_kernel)

    monkeypatch.setattr(sorter_mod, "Runtime", patched_runtime)
    with pytest.raises(ValidationError):
        s.sort(data, approach="pipemerge")


def test_nan_input_rejected(rng):
    data = rng.random(10_000)
    data[1234] = np.nan
    s = HeterogeneousSorter(PLATFORM1, batch_size=5_000,
                            pinned_elements=1_000)
    with pytest.raises(ValidationError, match="NaN"):
        s.sort(data, approach="pipemerge")


def test_config_validation_happens_before_simulation():
    with pytest.raises(PlanError):
        SortConfig(approach="quantum")
    s = HeterogeneousSorter(PLATFORM1)
    with pytest.raises(PlanError):
        s.sort(n=100, approach="pipedata", n_streams=0)
