"""Timing-shape tests: the qualitative results of the paper's evaluation
must hold in simulation (who wins, in which order, by what rough factor).

These are the paper's headline claims, checked at a reduced but still
batched scale so the suite stays fast; the full-scale numbers live in the
benchmarks and EXPERIMENTS.md.
"""

import pytest

from repro.hetsort import HeterogeneousSorter, cpu_reference_sort
from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.sim import CAT

N = int(2e9)
BS = int(2e8)          # 10 batches, like the paper's n=5e9 / b_s=5e8


@pytest.fixture(scope="module")
def times():
    out = {}
    for key, ap, kw in [("blinemulti", "blinemulti", {}),
                        ("pipedata", "pipedata", {}),
                        ("pipemerge", "pipemerge", {}),
                        ("pipemerge+pmc", "pipemerge",
                         {"memcpy_threads": 8})]:
        s = HeterogeneousSorter(PLATFORM1, batch_size=BS, n_streams=2,
                                **kw)
        out[key] = s.sort(n=N, approach=ap)
    out["ref"] = cpu_reference_sort(PLATFORM1, n=N)
    return out


def test_every_approach_beats_cpu_reference(times):
    """Sec. IV-F: 'Across all input sizes, our approaches outperform the
    parallel CPU reference implementation, including BLINEMULTI.'"""
    ref = times["ref"].elapsed
    for key in ("blinemulti", "pipedata", "pipemerge", "pipemerge+pmc"):
        assert times[key].elapsed < ref, key


def test_approach_ordering(times):
    """BLINEMULTI > PIPEDATA > PIPEMERGE > PIPEMERGE+PARMEMCPY."""
    assert times["blinemulti"].elapsed > times["pipedata"].elapsed
    assert times["pipedata"].elapsed > times["pipemerge"].elapsed
    assert times["pipemerge"].elapsed >= times["pipemerge+pmc"].elapsed


def test_pipedata_gain_over_blinemulti_about_20_percent(times):
    """Paper: 22% faster at n = 5e9 (31.2 s -> 25.55 s)."""
    gain = 1 - times["pipedata"].elapsed / times["blinemulti"].elapsed
    assert 0.10 <= gain <= 0.40


def test_pipemerge_gain_is_marginal(times):
    """Paper: PIPEMERGE 'marginally improves' on PIPEDATA."""
    gain = 1 - times["pipemerge"].elapsed / times["pipedata"].elapsed
    assert 0.0 <= gain <= 0.15


def test_fastest_speedup_in_paper_range(times):
    """Paper: 3.47x (n=1e9) to 3.21x (n=5e9) on PLATFORM1."""
    sp = times["pipemerge+pmc"].speedup_over(times["ref"])
    assert 2.5 <= sp <= 4.0


def test_pipemerge_reduces_final_merge_k(times):
    """Pair-merging shrinks the multiway merge (Fig. 3: 10 batches and 4
    pair merges leave k = 6)."""
    pd = times["pipedata"]
    pm = times["pipemerge"]
    assert pm.meta["pairwise_merged"] == 4
    assert pm.component(CAT.MERGE) < pd.component(CAT.MERGE)
    assert pm.component(CAT.PAIRMERGE) > 0


def test_parmemcpy_cuts_mcpy_time(times):
    pm = times["pipemerge"]
    pmc = times["pipemerge+pmc"]
    assert pmc.component(CAT.MCPY) < pm.component(CAT.MCPY)


def test_transfer_bytes_independent_of_approach(times):
    """Every element crosses PCIe exactly once per direction whatever the
    approach; span *durations* may stretch under contention but the bytes
    are conserved."""
    for k in ("blinemulti", "pipedata", "pipemerge"):
        t = times[k].trace
        assert t.bytes_moved(CAT.HTOD) == pytest.approx(N * 8)
        assert t.bytes_moved(CAT.DTOH) == pytest.approx(N * 8)
    htod = [times[k].component(CAT.HTOD)
            for k in ("blinemulti", "pipedata", "pipemerge")]
    assert max(htod) / min(htod) < 1.8  # contention stretch is bounded


def test_two_gpus_beat_one_on_platform2():
    """Sec. IV-F Experiment 2: 'using two GPUs outperforms all of the
    single-GPU configurations.'"""
    n, bs = int(1.4e9), int(3.5e8)
    single = {}
    for ap, kw in [("blinemulti", {}), ("pipedata", {}),
                   ("pipemerge", {"memcpy_threads": 8})]:
        s = HeterogeneousSorter(PLATFORM2, n_gpus=1, batch_size=bs,
                                n_streams=2, **kw)
        single[ap] = s.sort(n=n, approach=ap).elapsed
    dual = HeterogeneousSorter(PLATFORM2, n_gpus=2, batch_size=bs,
                               n_streams=2, memcpy_threads=8
                               ).sort(n=n, approach="pipemerge").elapsed
    assert dual < min(single.values())


def test_multi_gpu_gap_between_approaches_shrinks():
    """Sec. IV-F: with 2 GPUs sharing PCIe, the relative difference
    between the approaches is smaller than with 1 GPU."""
    n, bs = int(1.4e9), int(3.5e8)

    def spread(ng):
        ts = []
        for ap in ("blinemulti", "pipedata"):
            s = HeterogeneousSorter(PLATFORM2, n_gpus=ng, batch_size=bs,
                                    n_streams=2)
            ts.append(s.sort(n=n, approach=ap).elapsed)
        return max(ts) / min(ts)

    assert spread(2) < spread(1)


def test_pinned_staging_pays_off_only_with_overlap():
    """Serially, user-managed pinned staging is no faster than pageable
    cudaMemcpy (the driver stages through its own pinned buffers -- that
    is exactly why pageable runs at ~half rate).  The pinned path's win
    comes from *overlapping* the staging copies, i.e. PIPEDATA: the
    reason the paper cannot skip pinned-memory overheads (Sec. IV-E)."""
    n, bs = int(1e9), int(2.5e8)
    pinned_serial = HeterogeneousSorter(
        PLATFORM1, batch_size=bs).sort(n=n, approach="blinemulti")
    pageable_serial = HeterogeneousSorter(
        PLATFORM1, batch_size=bs, staging="pageable").sort(
        n=n, approach="blinemulti")
    overlapped = HeterogeneousSorter(
        PLATFORM1, batch_size=bs, n_streams=2).sort(
        n=n, approach="pipedata")
    ratio = pinned_serial.elapsed / pageable_serial.elapsed
    assert 0.8 <= ratio <= 1.25         # serial: roughly a wash
    assert overlapped.elapsed < pageable_serial.elapsed
    assert overlapped.elapsed < pinned_serial.elapsed
