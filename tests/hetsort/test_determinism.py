"""Determinism and layer-consistency invariants.

The simulation must be perfectly reproducible, and -- because the paper's
workload is data-oblivious (Sec. IV-A) -- the simulated time must be
*identical* whether or not real data flows through the pipeline.
"""

import pytest

from repro.hetsort import HeterogeneousSorter
from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.workloads import generate

APPROACHES = ["blinemulti", "pipedata", "pipemerge", "gpumerge"]


@pytest.mark.parametrize("approach", APPROACHES)
def test_identical_runs_identical_timelines(approach):
    def run():
        s = HeterogeneousSorter(PLATFORM1, batch_size=int(1e8),
                                n_streams=2, memcpy_threads=4)
        return s.sort(n=int(4e8), approach=approach)

    a, b = run(), run()
    assert a.elapsed == b.elapsed
    assert len(a.trace.spans) == len(b.trace.spans)
    for sa, sb in zip(a.trace.spans, b.trace.spans):
        assert (sa.category, sa.label, sa.start, sa.end) == \
            (sb.category, sb.label, sb.start, sb.end)


@pytest.mark.parametrize("approach", APPROACHES)
def test_functional_and_timing_only_agree(approach, rng):
    """Attaching real data must not change the simulated timeline at all:
    time depends only on sizes, never on values."""
    n = 60_000
    kw = dict(batch_size=15_000, pinned_elements=3_000, n_streams=2)
    timing = HeterogeneousSorter(PLATFORM1, **kw).sort(
        n=n, approach=approach)
    functional = HeterogeneousSorter(PLATFORM1, **kw).sort(
        generate(n, "uniform", seed=5), approach=approach)
    assert functional.elapsed == pytest.approx(timing.elapsed, rel=1e-12)
    assert functional.breakdown.keys() == timing.breakdown.keys()
    for cat, t in timing.breakdown.items():
        assert functional.breakdown[cat] == pytest.approx(t, rel=1e-12)


def test_distribution_does_not_change_timing(rng):
    """Sec. IV-A's data-obliviousness, as a hard invariant."""
    n = 40_000
    kw = dict(batch_size=10_000, pinned_elements=2_000)
    times = set()
    for dist in ("uniform", "gaussian", "reverse", "duplicates"):
        r = HeterogeneousSorter(PLATFORM1, **kw).sort(
            generate(n, dist, seed=2), approach="pipemerge")
        times.add(round(r.elapsed, 15))
    assert len(times) == 1


def test_platforms_differ():
    """Sanity: the two platforms are genuinely different machines."""
    n = int(1.4e9)
    t1 = HeterogeneousSorter(PLATFORM1, batch_size=int(3.5e8),
                             n_streams=2).sort(
        n=n, approach="pipedata").elapsed
    t2 = HeterogeneousSorter(PLATFORM2, batch_size=int(3.5e8),
                             n_streams=2).sort(
        n=n, approach="pipedata").elapsed
    assert t1 != t2
    assert t1 < t2      # GP100 sorts ~5x faster than a K40m