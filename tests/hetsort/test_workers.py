"""Unit tests for the shared pipeline building blocks in
repro.hetsort.workers (below the approach level)."""

import numpy as np
import pytest

from repro.cuda import Runtime
from repro.hetsort.config import SortConfig
from repro.hetsort.context import RunContext, SortedRun
from repro.hetsort.plan import make_plan
from repro.hetsort.workers import (alloc_worker_buffers, final_multiway,
                                   free_worker_buffers,
                                   pair_merge_scheduler)
from repro.hw.machine import Machine
from repro.hw.platforms import PLATFORM1
from repro.sim import CAT
from repro.sim.engine import Environment


def make_ctx(n=40_000, bs=10_000, data=None, **cfg_kw):
    cfg_kw.setdefault("batch_size", bs)
    cfg_kw.setdefault("pinned_elements", 2_000)
    cfg_kw.setdefault("approach", "pipemerge")
    env = Environment()
    machine = Machine(env, PLATFORM1)
    rt = Runtime(machine)
    cfg = SortConfig(**cfg_kw)
    plan = make_plan(n, PLATFORM1, cfg)
    return RunContext(env, machine, rt, plan, cfg, data=data)


def test_alloc_and_free_worker_buffers_accounting():
    ctx = make_ctx()
    done = {}

    def go():
        bufs = yield from alloc_worker_buffers(ctx, 0, "t")
        done["bufs"] = bufs

    proc = ctx.env.process(go())
    ctx.env.run(proc)
    pin_in, pin_out, dev = done["bufs"]
    assert pin_in.nbytes == pin_out.nbytes == 2_000 * 8
    assert dev.nbytes == 2 * 10_000 * 8      # batch + Thrust scratch
    assert ctx.machine.gpus[0].mem_used == dev.nbytes
    assert ctx.machine.pinned_bytes == 2 * 2_000 * 8
    free_worker_buffers(ctx, pin_in, pin_out, dev)
    assert ctx.machine.gpus[0].mem_used == 0
    assert ctx.machine.pinned_bytes == 0


def test_pair_scheduler_respects_quota():
    ctx = make_ctx(n=100_000, bs=10_000)     # 10 batches -> quota 4
    assert ctx.plan.pairwise_merges == 4

    def feeder():
        for b in ctx.plan.batches:
            yield ctx.env.timeout(0.1)
            ctx.finish_run(b)

    ctx.env.process(feeder())
    sched = ctx.env.process(pair_merge_scheduler(ctx))
    merged = ctx.env.run(sched)
    assert len(merged) == 4
    assert all(m.from_pair for m in merged)
    assert all(m.size == 20_000 for m in merged)
    ctx.env.run()   # let the feeder deliver the remaining batches
    # 10 - 8 consumed = 2 originals left in the store.
    assert len(ctx.sorted_runs) == 2


def test_pair_scheduler_zero_quota_returns_immediately():
    ctx = make_ctx(n=20_000, bs=10_000)      # 2 batches -> quota 0
    sched = ctx.env.process(pair_merge_scheduler(ctx))
    merged = ctx.env.run(sched)
    assert merged == []


def test_pair_scheduler_functional_merges(rng):
    data = rng.random(40_000)
    ctx = make_ctx(n=40_000, bs=10_000, data=data)
    # Pretend every batch was sorted into W already.
    for b in ctx.plan.batches:
        seg = ctx.W.view(b.offset * 8, b.size * 8)
        seg[:] = np.sort(data[b.offset:b.offset + b.size])
        ctx.finish_run(b)
    sched = ctx.env.process(pair_merge_scheduler(ctx))
    merged = ctx.env.run(sched)
    assert len(merged) == ctx.plan.pairwise_merges == 1
    out = merged[0].array
    assert out is not None and len(out) == 20_000
    assert np.all(out[:-1] <= out[1:])


def test_final_multiway_single_run_is_a_copy(rng):
    data = rng.random(10_000)
    ctx = make_ctx(n=10_000, bs=10_000, data=data)
    ctx.W.data[:] = np.sort(data)
    ctx.finish_run(ctx.plan.batches[0])

    def go():
        yield from final_multiway(ctx)

    proc = ctx.env.process(go())
    ctx.env.run(proc)
    assert np.array_equal(ctx.B.data, np.sort(data))
    # A copy, not a merge: MCpy recorded, no Merge span.
    assert ctx.trace.count(CAT.MERGE) == 0
    assert ctx.trace.count(CAT.MCPY) >= 1


def test_final_multiway_merges_runs_and_pairs(rng):
    data = rng.random(40_000)
    ctx = make_ctx(n=40_000, bs=10_000, data=data)
    batches = ctx.plan.batches
    for b in batches[:2]:
        seg = ctx.W.view(b.offset * 8, b.size * 8)
        seg[:] = np.sort(data[b.offset:b.offset + b.size])
        ctx.finish_run(b)
    pair = SortedRun(size=20_000, from_pair=True,
                     array=np.sort(data[20_000:]))

    def go():
        yield from final_multiway(ctx, extra_runs=[pair])

    proc = ctx.env.process(go())
    ctx.env.run(proc)
    assert np.array_equal(ctx.B.data, np.sort(data))
    spans = ctx.trace.filter(category=CAT.MERGE)
    assert len(spans) == 1
    assert dict(spans[0].meta)["k"] == 3


def test_final_multiway_without_runs_raises():
    ctx = make_ctx()

    def go():
        yield from final_multiway(ctx)

    proc = ctx.env.process(go())
    with pytest.raises(RuntimeError, match="no sorted runs"):
        ctx.env.run(proc)


def test_final_multiway_coverage_check(rng):
    ctx = make_ctx(n=40_000, bs=10_000)
    ctx.finish_run(ctx.plan.batches[0])   # only 10k of 40k

    def go():
        yield from final_multiway(ctx)

    proc = ctx.env.process(go())
    with pytest.raises(RuntimeError, match="cover"):
        ctx.env.run(proc)


def test_context_pipeline_merge_threads_default():
    ctx = make_ctx(n_streams=2)
    # 16 cores - 2 stream workers = 14.
    assert ctx.pipeline_merge_threads == 14
    ctx2 = make_ctx(pipeline_merge_threads=5)
    assert ctx2.pipeline_merge_threads == 5


def test_context_rejects_mismatched_data(rng):
    with pytest.raises(ValueError):
        make_ctx(n=100, bs=50, data=rng.random(99))
