"""Tests for the GPUMERGE extension (Sec. V outlook)."""

import dataclasses

import numpy as np
import pytest

from repro.hetsort import HeterogeneousSorter
from repro.hw.platforms import PLATFORM1, PLATFORM2
from repro.kernels.utils import is_sorted, same_multiset


def test_functional_correctness(rng):
    data = rng.random(80_000)
    s = HeterogeneousSorter(PLATFORM1, batch_size=20_000,
                            pinned_elements=4_000)
    r = s.sort(data, approach="gpumerge")
    assert is_sorted(r.output)
    assert same_multiset(data, r.output)


def test_merge_tree_depth(rng):
    data = rng.random(160_000)
    s = HeterogeneousSorter(PLATFORM1, batch_size=20_000,
                            pinned_elements=4_000)
    r = s.sort(data, approach="gpumerge")
    assert r.plan.n_batches == 8
    assert r.meta["gpu_merge_levels"] == 3   # ceil(log2(8))


def test_odd_run_count(rng):
    data = rng.random(100_000)   # 5 batches
    s = HeterogeneousSorter(PLATFORM1, batch_size=20_000,
                            pinned_elements=4_000)
    r = s.sort(data, approach="gpumerge")
    assert is_sorted(r.output)
    assert r.meta["gpu_merge_levels"] == 3   # 5 -> 3 -> 2 -> 1


def test_single_batch_skips_tree(rng):
    data = rng.random(10_000)
    s = HeterogeneousSorter(PLATFORM1, batch_size=20_000,
                            pinned_elements=4_000)
    r = s.sort(data, approach="gpumerge")
    assert is_sorted(r.output)
    assert r.meta["gpu_merge_levels"] == 0


def test_multi_gpu_gpumerge(rng):
    data = rng.random(120_000)
    s = HeterogeneousSorter(PLATFORM2, n_gpus=2, batch_size=20_000,
                            pinned_elements=4_000)
    r = s.sort(data, approach="gpumerge")
    assert is_sorted(r.output)
    assert same_multiset(data, r.output)


def test_loses_on_pcie3_wins_on_fat_link():
    """The Sec. V prediction: GPU merging is transfer-bound, so it loses
    on PCIe v3 and wins once the link is several times wider."""
    n, bs = int(1e9), int(2e8)

    def run(platform, ap):
        return HeterogeneousSorter(platform, batch_size=bs, n_streams=2,
                                   memcpy_threads=8).sort(
            n=n, approach=ap).elapsed

    assert run(PLATFORM1, "gpumerge") > run(PLATFORM1, "pipemerge")

    fat_pcie = dataclasses.replace(PLATFORM1.pcie, peak_bw=80e9,
                                   pinned_efficiency=0.9)
    fat_hm = dataclasses.replace(PLATFORM1.hostmem, copy_bus_bw=80e9,
                                 per_core_copy_bw=12e9)
    nvlinkish = dataclasses.replace(PLATFORM1, name="NV", pcie=fat_pcie,
                                    hostmem=fat_hm)
    assert run(nvlinkish, "gpumerge") < run(nvlinkish, "pipemerge")


def test_transfer_volume_grows_with_tree_depth():
    """Each merge level re-crosses the link with the whole dataset: HtoD
    bytes = n * (1 + levels)."""
    from repro.sim import CAT
    n, bs = int(8e8), int(1e8)   # 8 batches -> 3 levels
    s = HeterogeneousSorter(PLATFORM1, batch_size=bs, n_streams=2)
    r = s.sort(n=n, approach="gpumerge")
    levels = r.meta["gpu_merge_levels"]
    assert levels == 3
    expected = n * 8 * (1 + levels)
    assert r.trace.bytes_moved(CAT.HTOD) == pytest.approx(expected,
                                                          rel=0.01)
