"""Hypothesis property tests for the batch planner."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hetsort.config import SortConfig
from repro.hetsort.plan import make_plan, pairwise_quota
from repro.hw.platforms import PLATFORM1, PLATFORM2


@given(n=st.integers(1, 10 ** 7),
       bs=st.integers(1, 10 ** 6),
       ns=st.integers(1, 4),
       ps=st.integers(1, 10 ** 6))
@settings(max_examples=150, deadline=None)
def test_plan_tiles_input_exactly(n, bs, ns, ps):
    cfg = SortConfig(approach="pipedata", batch_size=bs, n_streams=ns,
                     pinned_elements=ps)
    plan = make_plan(n, PLATFORM1, cfg)
    # Batches tile [0, n) contiguously, in order, without overlap.
    offset = 0
    for b in plan.batches:
        assert b.offset == offset
        assert 1 <= b.size <= bs
        offset += b.size
    assert offset == n
    # Only the last batch may be short.
    sizes = [b.size for b in plan.batches]
    assert all(s == bs for s in sizes[:-1])
    # Pinned buffer never exceeds the batch.
    assert plan.pinned_elements <= plan.batch_size


@given(n=st.integers(1, 10 ** 7),
       bs=st.integers(1, 10 ** 6),
       ns=st.integers(1, 3),
       gpus=st.integers(1, 2))
@settings(max_examples=100, deadline=None)
def test_plan_worker_partition_is_exact(n, bs, ns, gpus):
    cfg = SortConfig(approach="pipedata", batch_size=bs, n_streams=ns)
    plan = make_plan(n, PLATFORM2, cfg, n_gpus=gpus)
    # Every batch belongs to exactly one (gpu, slot) worker...
    seen = []
    for g in range(gpus):
        for s in range(ns):
            seen.extend(plan.batches_for(g, s))
    assert sorted(b.index for b in seen) == \
        [b.index for b in plan.batches]
    # ...and workers are balanced to within one batch.
    counts = [len(plan.batches_for(g, s))
              for g in range(gpus) for s in range(ns)]
    assert max(counts) - min(counts) <= 1


@given(n=st.integers(1, 10 ** 7),
       bs=st.integers(1, 10 ** 6),
       ps=st.integers(1, 10 ** 5))
@settings(max_examples=100, deadline=None)
def test_chunks_tile_every_batch(n, bs, ps):
    cfg = SortConfig(approach="pipedata", batch_size=bs,
                     pinned_elements=ps)
    plan = make_plan(n, PLATFORM1, cfg)
    for batch in plan.batches:
        chunks = plan.chunks(batch)
        assert sum(c[2] for c in chunks) == batch.size
        a_off = batch.offset
        d_off = 0
        for ca, cd, size in chunks:
            assert ca == a_off and cd == d_off
            assert 1 <= size <= plan.pinned_elements
            a_off += size
            d_off += size


@given(nb=st.integers(0, 1000), gpus=st.integers(1, 8))
@settings(max_examples=200, deadline=None)
def test_quota_invariants(nb, gpus):
    q = pairwise_quota(nb, gpus)
    assert q >= 0
    # Never consumes all batches: at least one un-merged original stays.
    assert 2 * q <= max(0, nb - 1)
    # More GPUs never increase the quota (less host-side slack).
    assert q <= pairwise_quota(nb, 1)
