"""Differential battery: every approach x every distribution vs np.sort.

The oracle is exact: functional mode must produce byte-identical output
to ``np.sort`` for every registered approach on uniform, pre-sorted,
reverse-sorted and heavy-duplicate inputs.  Each run's metrics must also
satisfy the structural invariants of the observability layer.
"""

import numpy as np
import pytest

from repro.hetsort import APPROACH_RUNNERS, HeterogeneousSorter
from repro.hw.platforms import PLATFORM1
from repro.workloads import generate

DISTRIBUTIONS = ["uniform", "sorted", "reverse", "duplicates"]
N = 60_000


def battery_sorter(approach):
    if approach == "bline":
        # BLINE plans exactly one batch per GPU; let the planner size it.
        return HeterogeneousSorter(PLATFORM1, pinned_elements=3_000)
    return HeterogeneousSorter(PLATFORM1, batch_size=15_000,
                               pinned_elements=3_000)


def check_metrics_invariants(res):
    m = res.metrics
    assert m, "SortResult.metrics must be populated"
    makespan = m["makespan_s"]

    # Per lane: utilization in [0, 1] and busy + idle == makespan.
    assert m["lanes"], "at least one lane must have activity"
    for lane, lm in m["lanes"].items():
        assert 0.0 <= lm["utilization"] <= 1.0 + 1e-12, lane
        assert lm["busy_s"] + lm["idle_s"] == pytest.approx(makespan), lane

    # Overlap matrix: symmetric, and every pairwise overlap bounded by
    # the smaller of the two categories' own (collapsed) busy time.
    ov = m["overlap_matrix"]
    for a in ov:
        for b in ov:
            assert ov[a][b] == pytest.approx(ov[b][a])
            assert ov[a][b] <= min(ov[a][a], ov[b][b]) + 1e-9

    # Component accounting reproduces the trace's own totals exactly.
    for cat, total in m["components"].items():
        assert abs(total - res.trace.total(cat)) < 1e-9

    assert 0.0 < m["overlap_efficiency"] <= 1.0 + 1e-12
    assert m["critical_path_s"] <= makespan + 1e-9


def check_causal_invariants(res):
    """The span DAG must be valid, its critical path must tile the
    makespan exactly, and the what-if identity must reproduce the
    measured makespan (the PR's acceptance criteria)."""
    graph = res.causal_graph()             # validates on construction
    report = res.critical_path_report()
    assert report["duration"] == res.trace.makespan()
    assert report["lead_in"] == 0.0
    assert graph.whatif_makespan({}) == res.trace.makespan()


@pytest.mark.parametrize("dist", DISTRIBUTIONS)
@pytest.mark.parametrize("approach", sorted(APPROACH_RUNNERS))
def test_approach_matches_numpy(approach, dist):
    data = generate(N, dist, seed=42)
    res = battery_sorter(approach).sort(data.copy(), approach=approach)
    np.testing.assert_array_equal(res.output, np.sort(data))
    check_metrics_invariants(res)
    check_causal_invariants(res)


@pytest.mark.parametrize("approach", sorted(APPROACH_RUNNERS))
def test_timing_mode_metrics_invariants(approach):
    """Timing-only runs (no data) must satisfy the same invariants."""
    sorter = battery_sorter(approach)
    res = sorter.sort(n=1_000_000, approach=approach)
    check_metrics_invariants(res)
    assert res.metrics["counters"], "live counters must be recorded"
    done = res.metrics["counters"].get("batches.completed")
    assert done is not None and done["last"] >= 1
