"""Tests for the batch planner."""

import pytest

from repro.errors import PlanError
from repro.hetsort.config import Approach, SortConfig
from repro.hetsort.plan import (make_plan, max_batch_size, pairwise_quota)
from repro.hw.platforms import PLATFORM1, PLATFORM2


def cfg(**kw):
    return SortConfig(**kw)


def test_max_batch_size_respects_double_buffering():
    """2 * b_s * n_s elements must fit on the GPU (Sec. III-B)."""
    for ns in (1, 2, 4):
        bs = max_batch_size(PLATFORM1, n_streams=ns)
        assert 2 * bs * ns * 8 <= PLATFORM1.gpus[0].mem_bytes
        # Maximal: one more element per batch would overflow.
        assert 2 * (bs + 1) * ns * 8 > PLATFORM1.gpus[0].mem_bytes


def test_paper_batch_sizes_fit():
    """The paper's choices: b_s = 5e8 with n_s = 2 on PLATFORM1 (16 GiB)
    and b_s = 3.5e8 with n_s = 2 on PLATFORM2 (12 GiB)."""
    assert 2 * int(5e8) * 2 * 8 <= PLATFORM1.gpus[0].mem_bytes
    assert 2 * int(3.5e8) * 2 * 8 <= PLATFORM2.gpus[0].mem_bytes


def test_plan_covers_input_exactly():
    plan = make_plan(10 ** 6, PLATFORM1,
                     cfg(batch_size=3 * 10 ** 5, approach="pipedata"))
    assert sum(b.size for b in plan.batches) == 10 ** 6
    offsets = [b.offset for b in plan.batches]
    assert offsets == sorted(offsets)
    assert plan.n_batches == 4           # 3+3+3+1 x 1e5
    assert plan.batches[-1].size == 10 ** 5


def test_plan_round_robin_over_gpu_stream_pairs():
    plan = make_plan(8 * 10 ** 5, PLATFORM2,
                     cfg(batch_size=10 ** 5, n_streams=2,
                         approach="pipedata"), n_gpus=2)
    pairs = [(b.gpu, b.stream_slot) for b in plan.batches]
    assert pairs[:4] == [(0, 0), (1, 0), (0, 1), (1, 1)]
    # Balanced: every (gpu, stream) worker gets the same number.
    for g in range(2):
        for s in range(2):
            assert len(plan.batches_for(g, s)) == 2


def test_plan_default_batch_size_maximal():
    plan = make_plan(4 * 10 ** 9, PLATFORM1, cfg(approach="pipedata"))
    assert plan.batch_size == max_batch_size(PLATFORM1, 2)


def test_chunks_tile_batch():
    plan = make_plan(10 ** 6, PLATFORM1,
                     cfg(batch_size=250_000, pinned_elements=64_000,
                         approach="pipedata"))
    batch = plan.batches[0]
    chunks = plan.chunks(batch)
    assert sum(c[2] for c in chunks) == batch.size
    assert chunks[0][0] == batch.offset
    # Device offsets tile contiguously from 0.
    assert [c[1] for c in chunks] == \
        [sum(ch[2] for ch in chunks[:i]) for i in range(len(chunks))]
    assert all(c[2] <= plan.pinned_elements for c in chunks)


def test_pinned_clamped_to_batch():
    plan = make_plan(1000, PLATFORM1,
                     cfg(batch_size=500, pinned_elements=10 ** 6,
                         approach="pipedata"))
    assert plan.pinned_elements == 500


def test_pairwise_quota_heuristics():
    """Sec. III-D3: floor((nb-1)/2) for 1 GPU; floor((nb-1)/(2 nGPU))
    for multi-GPU; the paper's Fig. 3 example: nb = 6 -> 2 merges."""
    assert pairwise_quota(6, 1) == 2
    assert pairwise_quota(7, 1) == 3   # odd: last batch unmerged
    assert pairwise_quota(1, 1) == 0
    assert pairwise_quota(2, 1) == 0
    assert pairwise_quota(10, 1) == 4
    assert pairwise_quota(10, 2) == 2
    assert pairwise_quota(10, 4) == 1


def test_quota_never_exhausts_batches():
    """2 * quota < n_b always: the final multiway merge always has at
    least one unpaired original batch plus the merged runs."""
    for nb in range(1, 50):
        for ng in (1, 2, 3, 4):
            assert 2 * pairwise_quota(nb, ng) < max(nb, 1) or nb == 0


def test_bline_single_gpu_plan():
    plan = make_plan(10 ** 6, PLATFORM1, cfg(approach=Approach.BLINE))
    assert plan.n_batches == 1
    assert plan.n_streams == 1
    assert plan.batch_size == 10 ** 6


def test_bline_two_gpu_plan():
    plan = make_plan(10 ** 6, PLATFORM2, cfg(approach=Approach.BLINE),
                     n_gpus=2)
    assert plan.n_batches == 2
    assert {b.gpu for b in plan.batches} == {0, 1}


def test_bline_rejects_oversized_input():
    too_big = PLATFORM1.gpus[0].mem_bytes // 8  # 2n would overflow
    with pytest.raises(PlanError):
        make_plan(too_big, PLATFORM1, cfg(approach=Approach.BLINE))


def test_bline_divisibility():
    with pytest.raises(PlanError, match="divisible"):
        make_plan(10 ** 6 + 1, PLATFORM2, cfg(approach=Approach.BLINE),
                  n_gpus=2)


def test_plan_rejects_too_many_gpus():
    with pytest.raises(PlanError):
        make_plan(100, PLATFORM1, cfg(), n_gpus=2)


def test_plan_rejects_empty_input():
    with pytest.raises(PlanError):
        make_plan(0, PLATFORM1, cfg())


def test_plan_host_memory_limit():
    """~3n bytes must fit in host memory (Sec. III-C): the paper caps n
    at ~5e9 on 128 GiB hosts."""
    ok = int(5e9)
    make_plan(ok, PLATFORM1, cfg(batch_size=int(5e8), approach="pipedata"))
    too_big = int(6.5e9)
    with pytest.raises(PlanError, match="3n"):
        make_plan(too_big, PLATFORM1,
                  cfg(batch_size=int(5e8), approach="pipedata"))


def test_device_memory_validation():
    with pytest.raises(PlanError, match="global memory"):
        make_plan(10 ** 10, PLATFORM1,
                  cfg(batch_size=int(2e9), approach="pipedata"))


def test_plan_properties():
    plan = make_plan(10 ** 6, PLATFORM1,
                     cfg(batch_size=10 ** 5, approach="pipemerge"))
    assert plan.n_batches == 10
    assert plan.pairwise_merges == 4
    assert plan.device_bytes_per_gpu == 2 * 10 ** 5 * 2 * 8
    assert plan.host_bytes == 3 * 10 ** 6 * 8
