"""Tests for SortConfig validation and helpers."""

import pytest

from repro.errors import PlanError
from repro.hetsort.config import Approach, SortConfig, Staging


def test_defaults():
    c = SortConfig()
    assert c.approach == Approach.PIPEMERGE
    assert c.n_streams == 2                 # the paper's choice
    assert c.pinned_elements == 10 ** 6     # the paper's p_s
    assert c.staging == Staging.PINNED
    assert not c.parallel_memcpy


def test_parallel_memcpy_flag():
    assert SortConfig(memcpy_threads=8).parallel_memcpy
    assert not SortConfig(memcpy_threads=1).parallel_memcpy


def test_with_replaces_fields():
    c = SortConfig()
    c2 = c.with_(approach=Approach.BLINE, memcpy_threads=4)
    assert c2.approach == Approach.BLINE
    assert c2.memcpy_threads == 4
    assert c.approach == Approach.PIPEMERGE  # original untouched


@pytest.mark.parametrize("kw", [
    {"approach": "warp9"},
    {"staging": "floating"},
    {"n_streams": 0},
    {"pinned_elements": 0},
    {"memcpy_threads": 0},
    {"batch_size": 0},
])
def test_invalid_configs_rejected(kw):
    with pytest.raises(PlanError):
        SortConfig(**kw)


def test_approach_constants():
    assert set(Approach.ALL) == {"bline", "blinemulti", "pipedata",
                                 "pipemerge", "gpumerge"}
    assert set(Approach.PIPELINED) == {"pipedata", "pipemerge",
                                       "gpumerge"}
