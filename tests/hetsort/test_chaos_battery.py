"""The chaos battery: seed-driven random FaultPlans across every
approach and both platforms.  The contract under fault injection is
*never silently wrong* -- each run either completes with a verified
sorted permutation (possibly degraded) or dies with a typed
:class:`~repro.errors.ReproError`; and the event stream stays valid,
with fault/retry/degrade events matching the run's accounting."""

import io

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import ReproError  # noqa: E402
from repro.hetsort import APPROACH_RUNNERS, HeterogeneousSorter  # noqa: E402
from repro.hetsort.validate import check_sorted_permutation  # noqa: E402
from repro.hw.platforms import PLATFORM1, PLATFORM2  # noqa: E402
from repro.obs.events import EV, Sink  # noqa: E402
from repro.obs.sinks import JsonlSink, validate_events  # noqa: E402
from repro.sim.faults import FaultPlan  # noqa: E402

APPROACHES = sorted(APPROACH_RUNNERS)

N = 60_000
BATCH = 20_000
PINNED = 5_000


class CollectSink(Sink):
    """In-memory sink: keeps the TelemetryEvent objects for validation."""

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


def chaos_run(seed, approach, multi):
    """One battery run; returns (result_or_None, exc_or_None, events)."""
    platform, n_gpus = (PLATFORM2, 2) if multi else (PLATFORM1, 1)
    plan = FaultPlan.random(seed, n_gpus=n_gpus)
    data = np.random.default_rng(seed).random(N)
    s = HeterogeneousSorter(platform, n_gpus=n_gpus, batch_size=BATCH,
                            pinned_elements=PINNED)
    sink = CollectSink()
    try:
        res = s.sort(data, approach=approach, faults=plan, sinks=(sink,))
    except ReproError as exc:
        return None, exc, sink.events
    return res, None, sink.events


@settings(max_examples=25, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=2 ** 16),
       approach=st.sampled_from(APPROACHES),
       multi=st.booleans())
def test_chaos_is_never_silently_wrong(seed, approach, multi):
    res, exc, events = chaos_run(seed, approach, multi)
    counts = validate_events(events)["counts"]
    if exc is not None:
        # A typed, loud failure is an acceptable outcome -- but only the
        # typed kind, and the partial event stream must still be valid.
        assert isinstance(exc, ReproError)
        return
    # Survival means a verified sorted permutation of the input.
    check_sorted_permutation(np.random.default_rng(seed).random(N),
                             res.output)
    # Accounting matches the event stream bidirectionally.
    fired = res.meta.get("faults", {}).get("fired", 0)
    assert counts[EV.FAULT] == fired
    degrades = res.meta.get("degrades", [])
    assert counts[EV.DEGRADE] == len(degrades)
    if degrades:
        assert {d["reason"] for d in degrades} == \
            {e.data["reason"] for e in events if e.kind == EV.DEGRADE}


@pytest.mark.parametrize("approach", APPROACHES)
def test_same_seed_chaos_is_byte_identical_across_approaches(approach):
    """Pinned-seed reproducibility for every approach: two runs of the
    same plan write byte-identical event logs."""
    logs = []
    for _ in range(2):
        plan = FaultPlan.random(7, n_gpus=2)
        data = np.random.default_rng(7).random(N)
        s = HeterogeneousSorter(PLATFORM2, n_gpus=2, batch_size=BATCH,
                                pinned_elements=PINNED)
        buf = io.StringIO()
        try:
            s.sort(data, approach=approach, faults=plan,
                   sinks=(JsonlSink(buf),))
        except ReproError as exc:
            buf.write(f"# died: {type(exc).__name__}\n")
        logs.append(buf.getvalue())
    assert logs[0] == logs[1]
    assert logs[0]    # non-empty: the header line at minimum
